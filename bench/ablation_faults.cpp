// Ablation: what an adversarial fabric costs the runtime (docs/faults.md).
//
// The paper's relaxations presume the lossless, ordered fabric NVLink-class
// hardware provides; this bench measures what happens when that assumption
// is relaxed too.  A fixed all-pairs traffic pattern runs over fault rates
// from 0 to 20%, with the ack/retransmit reliability layer recovering
// every loss, and reports the recovery cost: retransmissions per delivered
// message and the stretch in simulated completion time.
//
// Usage: ablation_faults [--json <path>] [--threads <n>] [--faults <rate>]
//   --faults adds one extra sweep point at the given drop rate.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "runtime/endpoint.hpp"
#include "util/table.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 8;
constexpr int kRounds = 32;  // Messages per directed pair.

struct Point {
  double fault_rate = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t failures = 0;
  double virtual_us = 0.0;
};

std::uint64_t counter(const telemetry::TelemetryReport& r, const std::string& name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

Point run_point(double fault_rate, const bench::Options& opt) {
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.policy = opt.policy();
  cfg.network.seed = 0xAB1A7E;
  cfg.network.jitter_us = 0.3;
  cfg.network.faults.drop_prob = fault_rate;
  cfg.network.faults.dup_prob = fault_rate / 2.0;
  cfg.network.faults.corrupt_prob = fault_rate / 4.0;
  cfg.network.faults.delay_spike_prob = fault_rate / 4.0;
  cfg.network.faults.delay_spike_us = 20.0;
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 10.0;
  cfg.reliability.max_attempts = 16;
  runtime::Cluster cluster(cfg);

  std::vector<runtime::RecvHandle> handles;
  matching::Tag tag = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int from = 0; from < kNodes; ++from) {
      for (int to = 0; to < kNodes; ++to) {
        if (from == to) continue;
        handles.push_back(cluster.irecv(to, from, tag));
        cluster.send(from, to, tag,
                     static_cast<std::uint64_t>(tag) * 1315423911u + 7u);
        ++tag;
      }
    }
  }
  cluster.run_until_quiescent();

  Point p;
  p.fault_rate = fault_rate;
  p.messages = cluster.stats().messages_sent;
  p.virtual_us = cluster.stats().virtual_time_us;
  p.failures = cluster.stats().delivery_failures;
  const auto r = cluster.snapshot();
  p.retransmits = counter(r, "runtime.reliability.retransmits");
  p.dup_suppressed = counter(r, "runtime.reliability.duplicates_suppressed");
  p.corruptions = counter(r, "runtime.reliability.corruptions_detected");

  std::uint64_t completed = 0;
  for (const auto& h : handles) completed += cluster.test(h) ? 1 : 0;
  if (completed != handles.size()) {
    std::cerr << "FATAL: " << (handles.size() - completed)
              << " receives incomplete at fault rate " << fault_rate << "\n";
    std::exit(1);
  }
  return p;
}

int run(const bench::Options& opt) {
  bench::print_header("ablation_faults",
                      "reliability-layer recovery cost vs per-packet fault rate "
                      "(fabric-relaxation ablation, docs/faults.md)");

  std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  if (opt.faults > 0.0) rates.push_back(opt.faults);

  bench::WallTimer timer;
  bench::JsonReport report("ablation_faults",
                           "fault-rate sweep over the reliability protocol");
  util::AsciiTable table({"drop rate", "retx / msg", "dups drop'd", "corrupt",
                          "failures", "virtual us", "stretch"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"drop_rate", "messages", "retransmits", "retx_per_msg",
                 "dup_suppressed", "corruptions", "failures", "virtual_us",
                 "stretch"});

  double base_us = 0.0;
  for (const double rate : rates) {
    const Point p = run_point(rate, opt);
    if (rate == 0.0) base_us = p.virtual_us;
    const double retx_per_msg =
        static_cast<double>(p.retransmits) / static_cast<double>(p.messages);
    const double stretch = base_us > 0.0 ? p.virtual_us / base_us : 1.0;

    table.add_row({util::AsciiTable::num(rate, 2),
                   util::AsciiTable::num(retx_per_msg, 3),
                   std::to_string(p.dup_suppressed), std::to_string(p.corruptions),
                   std::to_string(p.failures), util::AsciiTable::num(p.virtual_us, 1),
                   util::AsciiTable::num(stretch, 2) + " x"});
    csv.push_back({util::AsciiTable::num(rate, 2), std::to_string(p.messages),
                   std::to_string(p.retransmits), util::AsciiTable::num(retx_per_msg, 4),
                   std::to_string(p.dup_suppressed), std::to_string(p.corruptions),
                   std::to_string(p.failures), util::AsciiTable::num(p.virtual_us, 2),
                   util::AsciiTable::num(stretch, 3)});

    auto& row = report.add_row();
    row.set("drop_rate", rate)
        .set("messages", p.messages)
        .set("retransmits", p.retransmits)
        .set("retx_per_msg", retx_per_msg)
        .set("dup_suppressed", p.dup_suppressed)
        .set("corruptions", p.corruptions)
        .set("failures", p.failures)
        .set("virtual_us", p.virtual_us)
        .set("stretch", stretch);
  }

  table.print(std::cout);
  std::cout << "every receive completed at every rate (reliability layer "
               "recovers all losses;\nfailures column would flag retry-cap "
               "exhaustion).\n";
  bench::print_csv(csv);
  timer.report(opt);

  report.headline().set("nodes", kNodes).set("rounds", kRounds);
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return run(simtmsg::bench::Options::parse(argc, argv));
}

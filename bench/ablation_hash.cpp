// Ablation for the hash matcher's design choices (Section VI-C).  The paper
// fixes Jenkins' 6-shift hash and a 5:1 primary:secondary ratio and defers
// alternatives to future work ("Future work might further investigate
// various combinations of hash functions and collision resolution
// policies") — this bench explores that axis.
#include <iostream>

#include "bench_common.hpp"
#include "matching/hash_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

struct Outcome {
  double mps = 0.0;
  int iterations = 0;
};

Outcome run_once(util::HashKind hash, double ratio, bool duplicates) {
  matching::WorkloadSpec spec;
  spec.pairs = 1024;
  if (duplicates) {
    spec.sources = 8;
    spec.tags = 8;  // 64 distinct tuples: heavy duplication.
  } else {
    spec.unique_tuples = true;
    spec.sources = 256;
    spec.tags = 256;
  }
  spec.seed = 6000;
  const auto w = matching::make_workload(spec);

  matching::HashMatcher::Options opt;
  opt.hash = hash;
  opt.table_ratio = ratio;
  const matching::HashMatcher matcher(simt::pascal_gtx1080(), opt);
  const auto s = matcher.match(w.messages, w.requests);
  return {s.matches_per_second(), s.iterations};
}

int run() {
  bench::print_header("ablation_hash",
                      "Section VI-C design choices (hash function, table ratio)");

  std::cout << "hash function sweep (1024 elements, GTX 1080):\n";
  util::AsciiTable t1({"hash", "unique tuples", "iters", "duplicated tuples", "iters"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"hash", "unique_mps", "unique_iters", "dup_mps", "dup_iters"});
  for (const auto kind :
       {util::HashKind::kJenkins, util::HashKind::kMurmur3Fmix, util::HashKind::kFnv1a,
        util::HashKind::kIdentity}) {
    const auto u = run_once(kind, 5.0, /*duplicates=*/false);
    const auto d = run_once(kind, 5.0, /*duplicates=*/true);
    t1.add_row({std::string(util::hash_name(kind)), util::AsciiTable::rate_mps(u.mps),
                std::to_string(u.iterations), util::AsciiTable::rate_mps(d.mps),
                std::to_string(d.iterations)});
    csv.push_back({std::string(util::hash_name(kind)),
                   util::AsciiTable::num(u.mps / 1e6, 1), std::to_string(u.iterations),
                   util::AsciiTable::num(d.mps / 1e6, 1), std::to_string(d.iterations)});
  }
  t1.print(std::cout);

  std::cout << "\nprimary:secondary ratio sweep (Jenkins, unique tuples):\n";
  util::AsciiTable t2({"ratio", "rate", "iterations"});
  for (const double ratio : {2.0, 3.0, 5.0, 8.0}) {
    const auto u = run_once(util::HashKind::kJenkins, ratio, false);
    t2.add_row({util::AsciiTable::num(ratio, 0) + ":1", util::AsciiTable::rate_mps(u.mps),
                std::to_string(u.iterations)});
  }
  t2.print(std::cout);
  std::cout << "\npaper choice: Jenkins 6-shift, 5:1 ratio.  The identity 'hash'\n"
               "shows the collision sensitivity the strong mixers avoid.\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

// Ablation for the Section V-B long-queue claim: "Queues that contain more
// than 1024 elements require multiple iterations and the performance drops
// accordingly.  At this point, the order of the receive requests matters.
// While an ordered queue would yield the same performance as shown in the
// graph, a reversed queue would decrease performance."
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

struct Outcome {
  double mps = 0.0;
  int iterations = 0;
};

Outcome run_case(std::size_t len, bool reversed) {
  matching::WorkloadSpec spec;
  spec.pairs = len;
  spec.unique_tuples = true;  // Unique tuples make request order decisive.
  spec.sources = 256;
  spec.tags = 256;
  spec.seed = 8000 + len;
  auto w = matching::make_workload(spec);

  // "Ordered" = receive requests posted in message-arrival order;
  // "reversed" = the pathological opposite (late messages wanted first).
  std::vector<matching::RecvRequest> reqs;
  reqs.reserve(len);
  for (const auto& m : w.messages) {
    matching::RecvRequest r;
    r.env = m.env;
    reqs.push_back(r);
  }
  if (reversed) std::reverse(reqs.begin(), reqs.end());

  const matching::MatrixMatcher matcher(simt::pascal_gtx1080());
  matching::MessageQueue mq;
  matching::RecvQueue rq;
  for (const auto& m : w.messages) mq.push(m);
  for (const auto& r : reqs) rq.push(r);
  const auto s = matcher.match_queues(mq, rq);
  if (s.result.matched() != len) {
    std::cerr << "FATAL: drain incomplete at " << len << "\n";
    std::exit(1);
  }
  return {s.matches_per_second(), s.iterations};
}

int run() {
  bench::print_header("ablation_long_queues",
                      "Section V-B: request order beyond the 1024-element window");

  util::AsciiTable table({"queue length", "ordered (M/s)", "iters", "reversed (M/s)",
                          "iters", "slowdown"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"length", "ordered_mps", "ordered_iters", "reversed_mps",
                 "reversed_iters"});

  for (const std::size_t len : {512u, 1024u, 2048u, 4096u, 8192u}) {
    const auto ord = run_case(len, false);
    const auto rev = run_case(len, true);
    table.add_row({std::to_string(len), util::AsciiTable::num(ord.mps / 1e6, 2),
                   std::to_string(ord.iterations),
                   util::AsciiTable::num(rev.mps / 1e6, 2),
                   std::to_string(rev.iterations),
                   util::AsciiTable::num(ord.mps / rev.mps, 2) + "x"});
    csv.push_back({std::to_string(len), util::AsciiTable::num(ord.mps / 1e6, 2),
                   std::to_string(ord.iterations),
                   util::AsciiTable::num(rev.mps / 1e6, 2),
                   std::to_string(rev.iterations)});
  }
  table.print(std::cout);
  std::cout << "\npaper: within one window (<=1024) request order has no effect;\n"
               "beyond it, reversed requests force extra iterations and the rate\n"
               "drops (the trace analysis shows most real queues stay below 1024).\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

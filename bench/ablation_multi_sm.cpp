// Ablation for the paper's multi-SM remark (Section VI-A): "If multiple
// SMs were used, the performance would be increasing linearly since all
// CTAs would be running in parallel, however, less resources would be
// available to execute the application."
//
// Partitioned matching with 32 queues over a large total queue, spreading
// waves across 1..8 SMs of the GTX 1080 model.
#include <iostream>

#include "bench_common.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

int run() {
  bench::print_header("ablation_multi_sm",
                      "Section VI-A: multi-SM scaling of partitioned matching");

  matching::WorkloadSpec spec;
  spec.pairs = 16384;  // 32 queues x 512 entries.
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 9000;
  const auto w = matching::make_workload(spec);

  util::AsciiTable table({"SMs", "rate (M/s)", "speedup vs 1 SM"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"sms", "mps", "speedup"});

  double base = 0.0;
  for (const int sms : {1, 2, 4, 8}) {
    matching::PartitionedMatcher::Options opt;
    opt.partitions = 32;
    opt.sms = sms;
    const matching::PartitionedMatcher matcher(simt::pascal_gtx1080(), opt);
    const auto s = matcher.match(w.messages, w.requests);
    if (s.result.matched() != spec.pairs) {
      std::cerr << "FATAL: incomplete match\n";
      return 1;
    }
    const double mps = s.matches_per_second();
    if (sms == 1) base = mps;
    table.add_row({std::to_string(sms), util::AsciiTable::num(mps / 1e6, 1),
                   util::AsciiTable::num(mps / base, 2) + "x"});
    csv.push_back({std::to_string(sms), util::AsciiTable::num(mps / 1e6, 2),
                   util::AsciiTable::num(mps / base, 2)});
  }
  table.print(std::cout);
  std::cout << "\npaper remark: near-linear until waves run out; the cost is SMs\n"
               "taken away from the application's compute grid.\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

// Ablation for Section VI-B ("No unexpected messages"):
//  1. Compaction cost: "Experiments have shown that this reduces the
//     matching rate by about 10%."
//  2. Match fraction: "performance decreases linearly with the number of
//     matched messages per iteration ... if only half of the messages can
//     be matched, the matching rate ... is reduced by about 50% as well."
#include <iostream>

#include "bench_common.hpp"
#include "matching/compaction.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

// Per-iteration rate, the paper's metric: one matching pass over a full
// 1024-element window (plus, optionally, the compaction of both queues),
// regardless of how many elements actually matched.
double rate_for(double match_fraction, bool compact, std::size_t pairs = 1024) {
  matching::WorkloadSpec spec;
  spec.pairs = pairs;
  spec.sources = 64;
  spec.tags = 64;
  spec.unique_tuples = true;
  spec.match_fraction = match_fraction;
  spec.seed = 5000 + static_cast<std::uint64_t>(match_fraction * 100);
  const auto w = matching::make_workload(spec);

  const auto& device = simt::pascal_gtx1080();
  const matching::MatrixMatcher matcher(device);
  const auto s = matcher.match_window(w.messages, w.requests);

  double cycles = s.cycles;
  if (compact) {
    const matching::Compactor compactor(device);
    const std::size_t matched = s.result.matched();
    cycles += compactor.cost(w.messages.size(), matched).cycles;
    cycles += compactor.cost(w.requests.size(), matched).cycles;
  }
  const simt::TimingModel model(device);
  return static_cast<double>(s.result.matched()) / model.seconds_from_cycles(cycles);
}

int run() {
  bench::print_header("ablation_unexpected",
                      "Section VI-B claims (compaction ~10%, linear degradation)");

  // Part 1: compaction cost at partial match fractions (with a full match
  // nothing needs to move, so the cost shows with leftovers present).
  std::cout << "compaction cost (matched fraction 0.75, GTX 1080):\n";
  const double with_c = rate_for(0.75, /*compact=*/true);
  const double without_c = rate_for(0.75, /*compact=*/false);
  util::AsciiTable t1({"configuration", "rate", "relative"});
  t1.add_row({"compaction charged", util::AsciiTable::rate_mps(with_c),
              util::AsciiTable::num(100.0 * with_c / without_c, 1) + " %"});
  t1.add_row({"compaction skipped (no unexpected msgs)",
              util::AsciiTable::rate_mps(without_c), "100.0 %"});
  t1.print(std::cout);
  std::cout << "paper: compaction reduces the matching rate by about 10%.\n\n";

  // Part 2: rate vs matched fraction.
  std::cout << "rate vs matched fraction (GTX 1080):\n";
  util::AsciiTable t2({"match fraction", "rate", "vs 100%"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"fraction", "mps", "relative_pct"});
  const double full = rate_for(1.0, true);
  for (const double f : {1.0, 0.9, 0.75, 0.5, 0.25, 0.1}) {
    const double r = rate_for(f, true);
    t2.add_row({util::AsciiTable::num(f, 2), util::AsciiTable::rate_mps(r),
                util::AsciiTable::num(100.0 * r / full, 1) + " %"});
    csv.push_back({util::AsciiTable::num(f, 2), util::AsciiTable::num(r / 1e6, 2),
                   util::AsciiTable::num(100.0 * r / full, 1)});
  }
  t2.print(std::cout);
  std::cout << "paper: rate degrades roughly linearly with the matched fraction\n"
               "(50% matched -> ~50% rate).\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

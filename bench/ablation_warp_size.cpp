// Ablation for the paper's architectural wish list (Section VII-C): "We
// endorse new architectural features like variable warp sizes, which helps
// with the matching of shorter queues."
//
// The matrix matcher runs with logical warp widths 8/16/32 across queue
// lengths: narrower warps give short queues more independently scheduled
// warps (better latency hiding), while long queues pay the extra issued
// instructions — the crossover quantifies when variable warp sizing pays.
#include <iostream>

#include "bench_common.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

double rate(std::size_t len, int width) {
  matching::WorkloadSpec spec;
  spec.pairs = len;
  spec.sources = 32;
  spec.tags = 32;
  spec.seed = 7000 + len;
  const auto w = matching::make_workload(spec);

  matching::MatrixMatcher::Options opt;
  opt.warp_width = width;
  const matching::MatrixMatcher matcher(simt::pascal_gtx1080(), opt);
  matching::MessageQueue mq;
  matching::RecvQueue rq;
  matching::fill_queues(w, mq, rq);
  return matcher.match_queues(mq, rq).matches_per_second();
}

int run() {
  bench::print_header("ablation_warp_size",
                      "Section VII-C: variable warp sizes for short queues");

  const std::vector<std::size_t> lengths = {16, 32, 64, 128, 256, 512, 1024};
  const std::vector<int> widths = {8, 16, 32};

  util::AsciiTable table({"queue length", "width 8 (M/s)", "width 16 (M/s)",
                          "width 32 (M/s)", "best"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"length", "w8_mps", "w16_mps", "w32_mps"});

  for (const auto len : lengths) {
    std::vector<std::string> row = {std::to_string(len)};
    std::vector<std::string> csv_row = {std::to_string(len)};
    double best = 0.0;
    int best_width = 0;
    for (const auto width : widths) {
      const double r = rate(len, width);
      row.push_back(util::AsciiTable::num(r / 1e6, 2));
      csv_row.push_back(util::AsciiTable::num(r / 1e6, 3));
      if (r > best) {
        best = r;
        best_width = width;
      }
    }
    row.push_back("w" + std::to_string(best_width));
    table.add_row(row);
    csv.push_back(csv_row);
  }

  std::cout << "GTX 1080 model, fully MPI-compliant matrix matching:\n";
  table.print(std::cout);
  std::cout << "\npaper hypothesis: variable warp sizes help short queues; the\n"
               "crossover above shows where the extra issue bandwidth of narrow\n"
               "warps stops paying for the improved latency hiding.\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

// Beyond the paper: the feasibility-and-payoff matrix.
//
// Section VII argues qualitatively which relaxations each application
// class tolerates (wildcard users cannot drop wildcards; apps with
// unexpected messages need rewrites to pre-post).  This bench makes the
// argument quantitative: for every proxy application, the busiest
// destination rank's real traffic is pushed through all six Table II
// semantics rows; each cell shows the modelled matching rate, or why the
// row is infeasible for that application as written:
//   "wildcard"  — the app posts MPI_ANY_SOURCE receives (Table I),
//   "rewrite"   — the app's receives arrive after messages (unexpected
//                 messages exist), so the no-unexpected rows require the
//                 synchronization rewrite of Section VI-B.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "matching/engine.hpp"
#include "trace/apps/apps.hpp"
#include "trace/replay.hpp"

namespace {

using namespace simtmsg;
using matching::Message;
using matching::RecvRequest;

struct RankTraffic {
  std::vector<Message> msgs;
  std::vector<RecvRequest> reqs;
};

/// Traffic of the destination rank with the most incoming messages.
RankTraffic busiest_rank(const trace::Trace& t) {
  std::map<std::uint32_t, RankTraffic> per_rank;
  for (const auto& e : t.events) {
    if (e.type == trace::EventType::kSend) {
      Message m;
      m.env = {.src = static_cast<matching::Rank>(e.rank), .tag = e.tag, .comm = e.comm};
      per_rank[static_cast<std::uint32_t>(e.peer)].msgs.push_back(m);
    } else {
      RecvRequest r;
      r.env = {.src = e.peer, .tag = e.tag, .comm = e.comm};
      per_rank[e.rank].reqs.push_back(r);
    }
  }
  std::uint32_t best = 0;
  std::size_t best_n = 0;
  for (const auto& [rank, traffic] : per_rank) {
    if (traffic.msgs.size() > best_n && !traffic.reqs.empty()) {
      best = rank;
      best_n = traffic.msgs.size();
    }
  }
  return per_rank[best];
}

int run() {
  bench::print_header("app_relaxation_rates",
                      "Section VII feasibility, quantified (beyond the paper)");

  trace::apps::AppParams params;
  params.ranks = 64;
  params.iterations = 1;
  params.volume_scale = 0.25;

  const auto rows = matching::table2_rows();
  util::AsciiTable table({"app", "traffic", "unexp%", "row1 MPI", "row2", "row3 part",
                          "row4", "row5 hash", "row6"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"app", "row", "mps_or_reason"});

  for (const auto& app : trace::apps::all_apps()) {
    const auto t = app.generate(params);
    const auto traffic = busiest_rank(t);
    const auto replay = trace::replay_queues(t);
    const double unexpected_pct =
        replay.total_messages() > 0
            ? 100.0 * static_cast<double>(replay.total_unexpected()) /
                  static_cast<double>(replay.total_messages())
            : 0.0;

    std::vector<std::string> row = {std::string(app.name),
                                    std::to_string(traffic.msgs.size()),
                                    util::AsciiTable::num(unexpected_pct, 0)};
    int row_no = 1;
    for (const auto& semantics : rows) {
      std::string cell;
      if (!semantics.wildcards && app.uses_src_wildcard) {
        cell = "wildcard";
      } else if (!semantics.unexpected && unexpected_pct > 0.0) {
        cell = "rewrite";
      } else {
        try {
          const matching::MatchEngine engine(simt::pascal_gtx1080(), semantics);
          const auto stats = engine.match(traffic.msgs, traffic.reqs);
          cell = util::AsciiTable::num(stats.matches_per_second() / 1e6, 1);
        } catch (const std::exception&) {
          cell = "error";
        }
      }
      row.push_back(cell);
      csv.push_back({std::string(app.name), std::to_string(row_no), cell});
      ++row_no;
    }
    table.add_row(row);
  }

  std::cout << "modelled matching rate in M matches/s for the busiest rank's\n"
               "traffic (GTX 1080), or the blocker for that Table II row:\n\n";
  table.print(std::cout);
  std::cout <<
      "\nreading: only MiniDFT and MiniFE hit the 'wildcard' wall (Table I);\n"
      "burst apps (NEKBONE, MultiGrid, CMC, PARTISN, SNAP) need the\n"
      "pre-posting rewrite before the no-unexpected rows apply — exactly the\n"
      "paper's Section VII-B feasibility discussion.\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

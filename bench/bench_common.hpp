// Shared helpers for the reproduction benches.  Every binary prints (a) the
// paper-shaped table and (b) a machine-readable CSV block, so EXPERIMENTS.md
// can quote either.  With `--json <path>` a bench additionally writes a
// schema-versioned JSON report (see docs/telemetry.md) that
// scripts/run_benches.sh merges into BENCH_matching.json.
#pragma once

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"
#include "telemetry/json.hpp"
#include "util/table.hpp"

namespace simtmsg::bench {

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::cout << "\n=== " << experiment << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

inline void print_csv(const std::vector<std::vector<std::string>>& rows) {
  std::cout << "\n--- csv ---\n";
  util::CsvWriter csv(std::cout);
  for (const auto& r : rows) csv.row(r);
  std::cout << "--- end csv ---\n";
}

/// Strict whole-string integer parse: no leading/trailing garbage, no empty
/// string.  std::atoi's silent-0 fallback turned a typo'd `--threads 4x`
/// into a run with the default thread count and no diagnostic.
[[nodiscard]] inline bool parse_int(std::string_view s, int& out) {
  const char* const first = s.data();
  const char* const last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

/// Strict whole-string floating-point parse (same contract as parse_int).
[[nodiscard]] inline bool parse_double(std::string_view s, double& out) {
  const char* const first = s.data();
  const char* const last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last && !s.empty();
}

/// Command line shared by every bench binary.  Unknown flags abort with
/// usage so a typo'd `--jsno` cannot silently drop the report.
struct Options {
  std::string json_path;  ///< Empty unless `--json <path>` was given.
  /// Host threads for the emulation (`--threads N`; 0 = hardware
  /// concurrency).  Changes only host wall-clock time: the modelled cycle
  /// and rate numbers — and therefore the JSON report — are bit-identical
  /// for every thread count, which scripts/run_benches.sh relies on.
  int threads = 1;
  /// Per-packet fault rate for the runtime benches (`--faults <rate>` in
  /// [0, 1]); applied as the drop probability, with the other fault knobs
  /// scaled from it (docs/faults.md).  Ignored by the pure-matching benches.
  double faults = 0.0;

  /// Testable core of parse(): fills `opt`, returning std::nullopt on
  /// success or the message parse() prints before exiting 2.  Every
  /// malformed value — trailing garbage, empty string, missing value,
  /// out-of-range — is a hard error; nothing falls back to a default.
  [[nodiscard]] static std::optional<std::string> try_parse(int argc,
                                                            const char* const* argv,
                                                            Options& opt) {
    const auto usage = [&]() -> std::string {
      return std::string("usage: ") + argv[0] +
             " [--json <path>] [--threads <n>] [--faults <rate>]";
    };
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--json") {
        if (i + 1 >= argc) return "--json requires a value\n" + usage();
        opt.json_path = argv[++i];
      } else if (arg == "--threads") {
        if (i + 1 >= argc) return "--threads requires a value\n" + usage();
        const std::string_view value = argv[++i];
        if (!parse_int(value, opt.threads)) {
          return "--threads: not an integer: '" + std::string(value) + "'";
        }
        if (opt.threads < 0) return "--threads must be >= 0";
      } else if (arg == "--faults") {
        if (i + 1 >= argc) return "--faults requires a value\n" + usage();
        const std::string_view value = argv[++i];
        if (!parse_double(value, opt.faults)) {
          return "--faults: not a number: '" + std::string(value) + "'";
        }
        // Negated form so NaN (accepted by from_chars) is also rejected.
        if (!(opt.faults >= 0.0 && opt.faults <= 1.0)) return "--faults must be in [0, 1]";
      } else {
        return usage();
      }
    }
    return std::nullopt;
  }

  static Options parse(int argc, char** argv) {
    Options opt;
    if (const auto error = try_parse(argc, argv, opt)) {
      std::cerr << *error << "\n";
      std::exit(2);
    }
    return opt;
  }

  [[nodiscard]] simt::ExecutionPolicy policy() const noexcept {
    return simt::ExecutionPolicy{threads};
  }
};

/// True when SIMTMSG_BENCH_FAST is set to a non-empty, non-"0" value: the
/// sweep benches then run a reduced subset of their configurations (for CI's
/// bench-regression gate).  The subset rows are value-identical to the same
/// rows of a full run — only coverage shrinks, never the numbers.
[[nodiscard]] inline bool fast_mode() {
  const char* v = std::getenv("SIMTMSG_BENCH_FAST");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

/// Wall-clock stopwatch for the host-side emulation cost.  Printed to
/// stdout only — never written into the JSON report, which must stay
/// byte-identical across `--threads` settings.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// "host wall time: 1.234 s (4 threads)"
  void report(const Options& opt) const {
    std::cout << "host wall time: " << seconds() << " s ("
              << opt.policy().resolved_threads() << " thread"
              << (opt.policy().resolved_threads() == 1 ? "" : "s") << ")\n";
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench result:
///   { "schema_version": 1, "bench": ..., "paper_ref": ...,
///     "rows": [ {...}, ... ], "headline": {...} }
/// `rows` mirrors the printed CSV one object per measurement; `headline` is
/// the single number (or small set) a downstream report would quote.
class JsonReport {
 public:
  JsonReport(std::string bench, std::string paper_ref) {
    doc_ = telemetry::Json::object();
    doc_.set("schema_version", 1)
        .set("bench", std::move(bench))
        .set("paper_ref", std::move(paper_ref))
        .set("rows", telemetry::Json::array())
        .set("headline", telemetry::Json::object());
  }

  /// Append and return a fresh row object; fill it with set().
  telemetry::Json& add_row() {
    telemetry::Json& r = rows();
    r.push(telemetry::Json::object());
    return const_cast<telemetry::Json&>(std::as_const(r).at(r.size() - 1));
  }

  telemetry::Json& headline() { return member("headline"); }

  /// Write the report; on I/O failure report to stderr and return false.
  [[nodiscard]] bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "FATAL: cannot open " << path << " for writing\n";
      return false;
    }
    doc_.dump(out, 2);
    out << "\n";
    return out.good();
  }

  /// Convenience: write only when the user asked for JSON.  Returns false
  /// only on failed writes, so `return report.emit(opt) ? 0 : 1;` works.
  [[nodiscard]] bool emit(const Options& opt) const {
    return opt.json_path.empty() || write(opt.json_path);
  }

 private:
  telemetry::Json& rows() { return member("rows"); }
  telemetry::Json& member(std::string_view key) {
    // Json only exposes const at(); the report owns doc_, so the cast is safe.
    return const_cast<telemetry::Json&>(std::as_const(doc_).at(key));
  }

  telemetry::Json doc_;
};

}  // namespace simtmsg::bench

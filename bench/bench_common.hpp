// Shared helpers for the reproduction benches.  Every binary prints (a) the
// paper-shaped table and (b) a machine-readable CSV block, so EXPERIMENTS.md
// can quote either.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "simt/device_spec.hpp"
#include "util/table.hpp"

namespace simtmsg::bench {

inline void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::cout << "\n=== " << experiment << " ===\n"
            << "reproduces: " << paper_ref << "\n\n";
}

inline void print_csv(const std::vector<std::vector<std::string>>& rows) {
  std::cout << "\n--- csv ---\n";
  util::CsvWriter csv(std::cout);
  for (const auto& r : rows) csv.row(r);
  std::cout << "--- end csv ---\n";
}

}  // namespace simtmsg::bench

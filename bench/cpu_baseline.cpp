// CPU baseline (Section II-C): "we experimentally assessed the CPU's
// matching rate with various MPI implementations and found that 30M
// matches/s can be achieved with short queues.  However, this rate drops to
// below 5M matches/s for queues longer than 512 entries."
//
// This is the only bench that measures real wall time: the list-based
// UMQ/PRQ matcher runs natively on the host CPU via google-benchmark.
#include <benchmark/benchmark.h>

#include "matching/list_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

// Worst-case list traversal: all messages arrive unexpected, then receives
// are posted in arrival order — the UMQ stays at full depth while posting
// begins, so the average search length grows with the queue depth.
void BM_ListMatcherReversed(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  matching::WorkloadSpec spec;
  spec.pairs = len;
  spec.sources = 32;
  spec.tags = 32;
  spec.unique_tuples = (len <= 1024);
  spec.sources = 128;
  spec.tags = 128;
  spec.seed = len;
  auto w = matching::make_workload(spec);
  // Reversed posting order maximizes traversal depth.
  std::reverse(w.requests.begin(), w.requests.end());

  std::size_t matched = 0;
  for (auto _ : state) {
    matching::ListMatcher lm;
    for (const auto& m : w.messages) benchmark::DoNotOptimize(lm.arrive(m));
    for (const auto& r : w.requests) {
      matched += lm.post(r).has_value();
    }
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(len) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ListMatcherReversed)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

// Friendly case: receives posted in arrival order — every UMQ search hits
// the queue head (the "short queue" regime of the paper's 30 M number).
void BM_ListMatcherInOrder(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  matching::WorkloadSpec spec;
  spec.pairs = len;
  spec.sources = 128;
  spec.tags = 128;
  spec.seed = len + 7;
  const auto w = matching::make_workload(spec);

  // Posting in exactly message-arrival order.
  std::vector<matching::RecvRequest> ordered;
  ordered.reserve(len);
  for (const auto& m : w.messages) {
    matching::RecvRequest r;
    r.env = m.env;
    ordered.push_back(r);
  }

  std::size_t matched = 0;
  for (auto _ : state) {
    matching::ListMatcher lm;
    for (const auto& m : w.messages) benchmark::DoNotOptimize(lm.arrive(m));
    for (const auto& r : ordered) matched += lm.post(r).has_value();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(len) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ListMatcherInOrder)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();

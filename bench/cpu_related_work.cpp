// Related-work CPU matchers (Section III), measured in real wall time:
// flat lists (the MPI default) vs Zounmevo-style rank partitions vs
// Flajslik-style hashed bins.  Flajslik et al. report 3.5x over list-based
// matching for FDS with 256 queues; the hashed bins reproduce that class
// of speedup on deep-queue tag-heavy workloads.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "matching/hashed_bins_matcher.hpp"
#include "matching/list_matcher.hpp"
#include "matching/partitioned_list_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

// Deep-queue regime: all messages arrive unexpected, receives posted in
// reverse (worst-case traversal) — one source per 16 tags, PARTISN-like.
matching::Workload deep_workload(std::size_t len) {
  matching::WorkloadSpec spec;
  spec.pairs = len;
  spec.sources = 16;
  spec.tags = static_cast<int>(std::max<std::size_t>(len / 4, 16));
  spec.seed = len;
  auto w = matching::make_workload(spec);
  std::reverse(w.requests.begin(), w.requests.end());
  return w;
}

template <typename Matcher>
void run_matcher(benchmark::State& state, Matcher& m, const matching::Workload& w) {
  std::size_t matched = 0;
  for (auto _ : state) {
    m.clear();
    for (const auto& msg : w.messages) benchmark::DoNotOptimize(m.arrive(msg));
    for (const auto& req : w.requests) matched += m.post(req).has_value();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(w.messages.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_FlatList(benchmark::State& state) {
  const auto w = deep_workload(static_cast<std::size_t>(state.range(0)));
  matching::ListMatcher m;
  run_matcher(state, m, w);
}
BENCHMARK(BM_FlatList)->Arg(128)->Arg(512)->Arg(2048);

void BM_PartitionedList(benchmark::State& state) {
  const auto w = deep_workload(static_cast<std::size_t>(state.range(0)));
  matching::PartitionedListMatcher m(16);
  run_matcher(state, m, w);
}
BENCHMARK(BM_PartitionedList)->Arg(128)->Arg(512)->Arg(2048);

void BM_HashedBins(benchmark::State& state) {
  const auto w = deep_workload(static_cast<std::size_t>(state.range(0)));
  matching::HashedBinsMatcher m(256);  // Flajslik's FDS configuration.
  run_matcher(state, m, w);
}
BENCHMARK(BM_HashedBins)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();

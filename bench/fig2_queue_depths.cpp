// Figure 2: "Length of the unexpected message queue (UMQ)" — per-rank
// maximum UMQ depth distribution at any matching attempt, reconstructed by
// queue replay (Section IV-A).  The PRQ is printed too; the paper omits its
// figure "due to their similarity".
#include <iostream>

#include "bench_common.hpp"
#include "trace/apps/apps.hpp"
#include "trace/replay.hpp"

namespace {

using namespace simtmsg;

int run() {
  bench::print_header("fig2_queue_depths", "Figure 2 (Section IV-A)");

  trace::apps::AppParams params;
  params.ranks = 64;
  params.iterations = 2;

  util::AsciiTable table({"app", "UMQ mean", "UMQ median", "UMQ max", "PRQ mean",
                          "PRQ median", "unexpected %", "avg search"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"app", "umq_mean", "umq_median", "umq_q1", "umq_q3", "umq_max",
                 "prq_mean", "prq_median", "unexpected_pct"});

  for (const auto& app : trace::apps::all_apps()) {
    const auto t = app.generate(params);
    const auto r = trace::replay_queues(t);
    const auto umq = r.umq_max_summary();
    const auto prq = r.prq_max_summary();
    const double unexpected_pct =
        r.total_messages() > 0
            ? 100.0 * static_cast<double>(r.total_unexpected()) /
                  static_cast<double>(r.total_messages())
            : 0.0;
    double search_sum = 0.0;
    for (const auto& rank : r.per_rank) search_sum += rank.avg_search_length;
    const double avg_search =
        r.per_rank.empty() ? 0.0 : search_sum / static_cast<double>(r.per_rank.size());
    table.add_row({std::string(app.name), util::AsciiTable::num(umq.mean, 0),
                   util::AsciiTable::num(umq.median, 0),
                   util::AsciiTable::num(umq.max, 0),
                   util::AsciiTable::num(prq.mean, 0),
                   util::AsciiTable::num(prq.median, 0),
                   util::AsciiTable::num(unexpected_pct, 1),
                   util::AsciiTable::num(avg_search, 2)});
    csv.push_back({std::string(app.name), util::AsciiTable::num(umq.mean, 1),
                   util::AsciiTable::num(umq.median, 1),
                   util::AsciiTable::num(umq.q1, 1), util::AsciiTable::num(umq.q3, 1),
                   util::AsciiTable::num(umq.max, 1),
                   util::AsciiTable::num(prq.mean, 1),
                   util::AsciiTable::num(prq.median, 1),
                   util::AsciiTable::num(unexpected_pct, 1)});
  }
  table.print(std::cout);

  std::cout <<
      "\npaper reference (Figure 2 / Section IV): most applications stay\n"
      "below 512 entries; EXACT MultiGrid ~2,000 mean (median 1,500) and\n"
      "CESAR NEKBONE ~4,000 mean (median 1,800) are the outliers; UMQ and\n"
      "PRQ show similar lengths.  Related work (Brightwell/Goudy, Section\n"
      "III) reports average search lengths always below 30 entries - the\n"
      "'avg search' column shows the skeletons share that property.\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

// Figure 4: "Single CTA matching rate for the GPU algorithm on various GPU
// architectures."  Fully MPI-compliant matrix matcher, one CTA, queue
// lengths 64..1024, all-matching random tuples (Section V-B).
//
// Paper result: ~3 M matches/s (Kepler K80), ~3.5 M (Maxwell M40), ~6 M
// (Pascal GTX1080), steady across lengths with a drop at 1024 where the
// scan needs all 32 warps and the reduce can no longer be overlapped.
#include <iostream>
#include <string_view>

#include "bench_common.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

int run(const bench::Options& opt) {
  bench::print_header("fig4_matrix_rate", "Figure 4 (Section V-B)");
  bench::JsonReport report("fig4_matrix_rate", "Figure 4 (Section V-B)");
  const bench::WallTimer timer;

  // Fast mode keeps 1024 so the headline row is still measured; every
  // subset row is value-identical to the same row of a full run (the
  // workload seed depends only on the row's own length).
  const std::vector<std::size_t> lengths =
      bench::fast_mode()
          ? std::vector<std::size_t>{64, 256, 1024}
          : std::vector<std::size_t>{64, 128, 256, 384, 512, 640, 768, 896, 1024};

  util::AsciiTable table({"queue length", "Tesla K80 (M/s)", "Tesla M40 (M/s)",
                          "GTX 1080 (M/s)"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"length", "kepler_mps", "maxwell_mps", "pascal_mps"});

  double pascal_mps_at_1024 = 0.0;
  for (const auto len : lengths) {
    matching::WorkloadSpec spec;
    spec.pairs = len;
    spec.sources = 32;
    spec.tags = 32;
    spec.seed = 1000 + len;
    const auto w = matching::make_workload(spec);

    std::vector<std::string> row = {std::to_string(len)};
    std::vector<std::string> csv_row = {std::to_string(len)};
    for (const auto& dev : simt::all_devices()) {
      matching::MatrixMatcher::Options mopt;
      mopt.policy = opt.policy();
      const matching::MatrixMatcher matcher(dev, mopt);
      matching::MessageQueue mq;
      matching::RecvQueue rq;
      matching::fill_queues(w, mq, rq);
      const auto s = matcher.match_queues(mq, rq);
      if (s.result.matched() != len) {
        std::cerr << "FATAL: incomplete match at length " << len << "\n";
        return 1;
      }
      const double mps = s.matches_per_second() / 1e6;
      row.push_back(util::AsciiTable::num(mps, 2));
      csv_row.push_back(util::AsciiTable::num(mps, 3));
      report.add_row()
          .set("device", dev.name)
          .set("length", len)
          .set("matches_per_second", s.matches_per_second());
      if (std::string_view(dev.name).find("1080") != std::string_view::npos) {
        pascal_mps_at_1024 = s.matches_per_second();  // Last length wins: 1024.
      }
    }
    table.add_row(row);
    csv.push_back(csv_row);
  }

  table.print(std::cout);
  std::cout << "\npaper reference: K80 ~3 M/s, M40 ~3.5 M/s, GTX1080 ~6 M/s;\n"
               "steady across lengths, drop at 1024 (no scan/reduce overlap).\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "pascal_matches_per_second_at_1024")
      .set("matches_per_second", pascal_mps_at_1024)
      .set("paper_reference", "GTX1080 ~6 M matches/s");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

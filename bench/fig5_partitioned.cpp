// Figure 5: "Matching rate for multiple queues" — rank partitioning after
// prohibiting the source wildcard (Section VI-A).  GTX 1080, queue counts
// 1..32 against total queue length; CTA counts annotated.
//
// Paper result: near-linear scaling up to 4 queues, just below linear
// beyond; GTX1080 averages 2.12x over the K80 and 1.56x over the M40.
#include <iostream>

#include "bench_common.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

double measure(const simt::DeviceSpec& dev, int queues, std::size_t total_len,
               const simt::ExecutionPolicy& policy, int* ctas_out = nullptr) {
  matching::WorkloadSpec spec;
  spec.pairs = total_len;
  // Uniform source distribution over enough ranks to feed every queue (the
  // paper's best case for multi-queue utilization).
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 3000 + total_len + static_cast<std::size_t>(queues);
  const auto w = matching::make_workload(spec);

  matching::PartitionedMatcher::Options opt;
  opt.partitions = queues;
  opt.policy = policy;
  const matching::PartitionedMatcher matcher(dev, opt);
  const auto s = matcher.match(w.messages, w.requests);
  if (ctas_out != nullptr) *ctas_out = s.ctas_used;
  return s.matches_per_second();
}

int run(const bench::Options& opt) {
  bench::print_header("fig5_partitioned", "Figure 5 (Section VI-A)");
  bench::JsonReport report("fig5_partitioned", "Figure 5 (Section VI-A)");
  const bench::WallTimer timer;

  const std::vector<int> queue_counts = {1, 2, 4, 8, 16, 32};
  // Fast-mode rows are value-identical to the same rows of a full run (the
  // workload seed depends only on the row's own length and queue count);
  // only the headline speedup average is taken over fewer samples.
  const std::vector<std::size_t> total_lengths =
      bench::fast_mode() ? std::vector<std::size_t>{256, 2048}
                         : std::vector<std::size_t>{256, 512, 1024, 2048, 4096, 8192};

  util::AsciiTable table({"total length", "1 q", "2 q", "4 q", "8 q", "16 q", "32 q"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"total_length", "queues", "pascal_mps", "ctas"});

  for (const auto len : total_lengths) {
    std::vector<std::string> row = {std::to_string(len)};
    for (const auto q : queue_counts) {
      int ctas = 0;
      const double raw = measure(simt::pascal_gtx1080(), q, len, opt.policy(), &ctas);
      const double mps = raw / 1e6;
      row.push_back(util::AsciiTable::num(mps, 1) + " (" + std::to_string(ctas) + ")");
      csv.push_back({std::to_string(len), std::to_string(q),
                     util::AsciiTable::num(mps, 2), std::to_string(ctas)});
      report.add_row()
          .set("device", "GTX 1080")
          .set("total_length", len)
          .set("queues", q)
          .set("ctas", ctas)
          .set("matches_per_second", raw);
    }
    table.add_row(row);
  }
  std::cout << "GTX 1080, matches/s in millions (CTAs in parentheses):\n";
  table.print(std::cout);

  // Cross-generation speedup claim at a representative configuration.
  double sum_k = 0, sum_m = 0;
  int samples = 0;
  for (const auto q : queue_counts) {
    for (const auto len : total_lengths) {
      const double p = measure(simt::pascal_gtx1080(), q, len, opt.policy());
      sum_k += p / measure(simt::kepler_k80(), q, len, opt.policy());
      sum_m += p / measure(simt::maxwell_m40(), q, len, opt.policy());
      ++samples;
    }
  }
  std::cout << "\naverage GTX1080 speedup: " << util::AsciiTable::num(sum_k / samples, 2)
            << "x over K80 (paper: 2.12x), " << util::AsciiTable::num(sum_m / samples, 2)
            << "x over M40 (paper: 1.56x)\n"
            << "paper reference: ~linear scaling to 4 queues, just below linear after.\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "pascal_speedup_over_k80")
      .set("speedup_over_k80", sum_k / samples)
      .set("speedup_over_m40", sum_m / samples)
      .set("paper_reference", "2.12x over K80, 1.56x over M40");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

// Figure 5 companion: the runtime's multi-SM sharding (Section VI-A's
// closing remark — "If multiple SMs were used, the performance would be
// increasing linearly since all CTAs would be running in parallel").
// ShardedMatchEngine partitions a node's matching by (comm, source rank)
// across independent MatchEngine shards modelled as concurrent
// communication SMs, so the modelled time of a pass is the slowest
// shard's.  GTX 1080, shard counts 1..8 against total queue length.
//
// Match results are bit-identical for every shard count (docs/sharding.md);
// only the modelled rate changes.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "matching/queue.hpp"
#include "matching/sharded_engine.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

double measure(const simt::DeviceSpec& dev, int shards, std::size_t total_len,
               const simt::ExecutionPolicy& policy) {
  matching::WorkloadSpec spec;
  spec.pairs = total_len;
  // Uniform source spread over enough ranks to feed every shard; concrete
  // sources only, so no pass falls back to the serialized wildcard path.
  spec.sources = 64;
  spec.tags = 64;
  // The seed depends only on the row's length: every shard count at a given
  // length matches the same workload (and fast-mode rows are value-identical
  // to the same rows of a full run).
  spec.seed = 7000 + total_len;
  const auto w = matching::make_workload(spec);

  matching::ShardedMatchEngine::Options opt;
  opt.shards = shards;
  opt.policy = policy;
  const matching::ShardedMatchEngine engine(dev, matching::SemanticsConfig{}, opt);
  const auto s = engine.match(w.messages, w.requests);
  return s.matches_per_second();
}

/// Batched-ingestion axis: deliver the same arrival stream in chunks of
/// `batch` through match_batch (one match pass per chunk) and report the
/// end-to-end modelled rate — total matches over total modelled seconds.
/// Small batches pay the per-pass kernel launch and queue-walk overhead once
/// per message; large batches amortize it (docs/perf.md).
double measure_batched(const simt::DeviceSpec& dev, int shards, std::size_t total_len,
                       std::size_t batch, const simt::ExecutionPolicy& policy) {
  matching::WorkloadSpec spec;
  spec.pairs = total_len;
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 7000 + total_len;  // Same stream as the unbatched rows.
  const auto w = matching::make_workload(spec);

  matching::ShardedMatchEngine::Options opt;
  opt.shards = shards;
  opt.policy = policy;
  const matching::ShardedMatchEngine engine(dev, matching::SemanticsConfig{}, opt);

  matching::MessageQueue mq;
  matching::RecvQueue rq;
  matching::SimtMatchStats pass;
  std::uint64_t matched = 0;
  double seconds = 0.0;
  for (std::size_t off = 0; off < total_len; off += batch) {
    const std::size_t n = std::min(batch, total_len - off);
    engine.match_batch({&w.messages[off], n}, {&w.requests[off], n}, mq, rq, pass);
    matched += pass.result.matched();
    seconds += pass.seconds;
  }
  return static_cast<double>(matched) / seconds;
}

int run(const bench::Options& opt) {
  bench::print_header("fig5_runtime_shards", "Section VI-A multi-SM remark");
  bench::JsonReport report("fig5_runtime_shards", "Section VI-A multi-SM remark");
  const bench::WallTimer timer;

  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> total_lengths =
      bench::fast_mode() ? std::vector<std::size_t>{256, 2048}
                         : std::vector<std::size_t>{256, 512, 1024, 2048, 4096, 8192};

  util::AsciiTable table({"total length", "1 shard", "2 shards", "4 shards", "8 shards"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"total_length", "shards", "pascal_mps"});

  double speedup8 = 0.0;
  for (const auto len : total_lengths) {
    std::vector<std::string> row = {std::to_string(len)};
    double base = 0.0;
    for (const auto s : shard_counts) {
      const double raw = measure(simt::pascal_gtx1080(), s, len, opt.policy());
      if (s == 1) base = raw;
      if (s == 8) speedup8 = raw / base;
      const double mps = raw / 1e6;
      row.push_back(util::AsciiTable::num(mps, 1));
      csv.push_back({std::to_string(len), std::to_string(s),
                     util::AsciiTable::num(mps, 2)});
      report.add_row()
          .set("device", "GTX 1080")
          .set("total_length", len)
          .set("shards", s)
          .set("matches_per_second", raw);
    }
    table.add_row(row);
  }
  std::cout << "GTX 1080, matches/s in millions (matching sharded by (comm, src)):\n";
  table.print(std::cout);
  std::cout << "\n8-shard speedup over 1 shard at the longest queue: "
            << util::AsciiTable::num(speedup8, 2)
            << "x\npaper reference: multiple SMs would scale the matching rate "
               "(Section VI-A);\nthe matrix algorithm's cost is quadratic in "
               "queue length, so splitting the\nqueues across shards scales "
               "superlinearly with the shard count.\n";

  // ---- Batched-ingestion axis (rows carry a batch_size field, so they key
  // separately from the one-pass rows above and never perturb them).
  const std::vector<std::size_t> batch_lengths =
      bench::fast_mode() ? std::vector<std::size_t>{1024}
                         : std::vector<std::size_t>{1024, 4096};
  const std::vector<std::size_t> batch_sizes = {1, 16, 256};
  util::AsciiTable btable({"total length", "shards", "B=1", "B=16", "B=256"});
  double batch_lift = 0.0;
  for (const auto len : batch_lengths) {
    for (const int s : {1, 8}) {
      std::vector<std::string> row = {std::to_string(len), std::to_string(s)};
      double base = 0.0;
      for (const auto b : batch_sizes) {
        const double raw = measure_batched(simt::pascal_gtx1080(), s, len, b, opt.policy());
        if (b == 1) base = raw;
        if (len == 1024 && s == 1 && b == 256) batch_lift = raw / base;
        row.push_back(util::AsciiTable::num(raw / 1e6, 1));
        csv.push_back({std::to_string(len), std::to_string(s),
                       util::AsciiTable::num(raw / 1e6, 2)});
        report.add_row()
            .set("device", "GTX 1080")
            .set("total_length", len)
            .set("shards", s)
            .set("batch_size", b)
            .set("matches_per_second", raw);
      }
      btable.add_row(row);
    }
  }
  std::cout << "\nBatched ingestion, matches/s in millions over total modelled "
               "time\n(one match pass per batch of B arrivals):\n";
  btable.print(std::cout);
  std::cout << "\nbatch=256 lift over batch=1 at length 1024, 1 shard: "
            << util::AsciiTable::num(batch_lift, 2)
            << "x\nper-pass kernel launch and queue-walk overhead is paid once "
               "per batch,\nso batching arrivals amortizes it (docs/perf.md).\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "shard8_speedup_over_shard1")
      .set("speedup", speedup8)
      .set("paper_reference", "Section VI-A: multi-SM matching scales with SM count");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

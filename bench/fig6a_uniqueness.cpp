// Figure 6(a): "Uniqueness of {src, tag} tuples among all destinations" —
// the share of the most frequent tuple among all messages to a destination
// (Section VI-C).  Low shares justify the hash-table data structure.
#include <iostream>

#include "bench_common.hpp"
#include "trace/analyzer.hpp"
#include "trace/apps/apps.hpp"

namespace {

using namespace simtmsg;

int run() {
  bench::print_header("fig6a_uniqueness", "Figure 6(a) (Section VI-C)");

  trace::apps::AppParams params;
  params.ranks = 64;
  params.iterations = 2;

  util::AsciiTable table({"app", "dominant tuple share avg (%)",
                          "worst destination (%)", "hash friendly"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"app", "share_avg_pct", "share_worst_pct"});

  for (const auto& app : trace::apps::all_apps()) {
    const auto c = trace::analyze(app.generate(params));
    table.add_row({std::string(app.name),
                   util::AsciiTable::num(c.tuple_max_share_avg, 1),
                   util::AsciiTable::num(c.tuple_max_share_worst, 1),
                   c.tuple_max_share_avg < 10.0 ? "yes" : "marginal"});
    csv.push_back({std::string(app.name), util::AsciiTable::num(c.tuple_max_share_avg, 2),
                   util::AsciiTable::num(c.tuple_max_share_worst, 2)});
  }
  table.print(std::cout);

  std::cout <<
      "\npaper reference (Figure 6a): most applications range in single-digit\n"
      "percentages, supporting the choice of hash tables; a 50% share would\n"
      "be a bad case (many collisions).\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

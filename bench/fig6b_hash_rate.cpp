// Figure 6(b): "Matching rate with hash tables" — the out-of-order
// relaxation (Section VI-C).  Random unique {src, tag} tuples, two-level
// Jenkins hash table, element counts 64..32768, CTA counts 1..32.
//
// Paper result: Kepler 110 M matches/s @1024/1 CTA and 150 M @32 CTAs;
// Pascal ~500 M matches/s (3.3x over Kepler).
#include <algorithm>
#include <iostream>
#include <string_view>

#include "bench_common.hpp"
#include "matching/hash_matcher.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

int run(const bench::Options& opt) {
  bench::print_header("fig6b_hash_rate", "Figure 6(b) (Section VI-C)");
  bench::JsonReport report("fig6b_hash_rate", "Figure 6(b) (Section VI-C)");
  const bench::WallTimer timer;

  // Fast-mode rows are value-identical to the same rows of a full run (the
  // workload seed depends only on the row's own element count).
  const std::vector<std::size_t> element_counts =
      bench::fast_mode()
          ? std::vector<std::size_t>{64, 1024, 32768}
          : std::vector<std::size_t>{64, 128, 256, 512, 1024,
                                     2048, 4096, 8192, 16384, 32768};
  const std::vector<int> cta_counts = {1, 2, 4, 32};

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"device", "elements", "ctas", "mps", "iterations"});

  double pascal_best = 0.0;
  for (const auto& dev : simt::all_devices()) {
    util::AsciiTable table({"elements", "1 CTA (M/s)", "2 CTAs (M/s)", "4 CTAs (M/s)",
                            "32 CTAs (M/s)"});
    for (const auto n : element_counts) {
      matching::WorkloadSpec spec;
      spec.pairs = n;
      spec.unique_tuples = true;
      spec.sources = 1024;
      spec.tags = 1024;
      spec.seed = 2000 + n;
      const auto w = matching::make_workload(spec);

      std::vector<std::string> row = {std::to_string(n)};
      for (const auto ctas : cta_counts) {
        matching::HashMatcher::Options mopt;
        mopt.ctas = ctas;
        mopt.policy = opt.policy();
        const matching::HashMatcher matcher(dev, mopt);
        const auto s = matcher.match(w.messages, w.requests);
        if (s.result.matched() != n) {
          std::cerr << "FATAL: incomplete hash match at n=" << n << "\n";
          return 1;
        }
        const double mps = s.matches_per_second() / 1e6;
        row.push_back(util::AsciiTable::num(mps, 1));
        csv.push_back({std::string(dev.name), std::to_string(n), std::to_string(ctas),
                       util::AsciiTable::num(mps, 2), std::to_string(s.iterations)});
        report.add_row()
            .set("device", dev.name)
            .set("elements", n)
            .set("ctas", ctas)
            .set("iterations", s.iterations)
            .set("matches_per_second", s.matches_per_second());
        if (std::string_view(dev.name).find("1080") != std::string_view::npos) {
          pascal_best = std::max(pascal_best, s.matches_per_second());
        }
      }
      table.add_row(row);
    }
    std::cout << dev.name << " (" << dev.arch << "):\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "paper reference: Kepler 110 M/s @1024 x 1 CTA, 150 M/s @32 CTAs;\n"
               "Pascal ~500 M/s (3.3x over Kepler).\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "pascal_peak_matches_per_second")
      .set("matches_per_second", pascal_best)
      .set("paper_reference", "Pascal ~500 M matches/s");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

// Cluster-scale sweep for the event-driven scheduler (docs/runtime.md).
//
// The paper's Figure 1(b) fleet is "many" accelerators autonomously
// sourcing and sinking traffic; this bench checks that the runtime holds
// its per-node matching rate as the fleet grows from 1 node to 10k nodes
// with over a million messages in flight.
//
// Scenario "ring":   every node sends K tagged messages to its successor
//                    (uniform load, N*K messages in flight at once; at
//                    N=10000, K=128 that is 1.28M).  The reported rate is
//                    total matches over total modelled device time — a
//                    per-device-time figure that is N-invariant when the
//                    runtime scales, so the headline scale_efficiency_10k
//                    (rate at 10k nodes / rate at 1 node) should sit at
//                    ~1.0.
// Scenario "hotset": a fixed 64-node hot set exchanges over a jittered,
//                    lossy fabric with the reliability layer on, inside
//                    fleets of growing size.  The modelled figures are
//                    fleet-size-invariant by construction; what the fleet
//                    sweep shows (host wall time, stdout only) is that the
//                    event scheduler's tick cost follows the active set,
//                    not the fleet.
//
// All modelled figures are deterministic — independent of host threads,
// wall clock, and scheduler policy — so the rows are safe under the
// regression gate (scripts/check_bench_regression.py).  Host wall time is
// never written to the JSON.
//
// Usage: fig_cluster_scale [--json <path>] [--threads <n>]
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "runtime/endpoint.hpp"
#include "util/table.hpp"

namespace {

using namespace simtmsg;

struct Point {
  std::string scenario;
  int nodes = 0;
  int msgs_per_node = 0;
  std::uint64_t matches = 0;
  double modelled_seconds = 0.0;
  double virtual_us = 0.0;
  double wall_ms = 0.0;  ///< Host cost; stdout only, never in the JSON.

  [[nodiscard]] double rate() const {
    return modelled_seconds > 0.0 ? static_cast<double>(matches) / modelled_seconds
                                  : 0.0;
  }
};

// Uniform ring: node i posts K receives from its predecessor and sends K
// messages to its successor, then the cluster runs to quiescence.  Hash
// semantics (no wildcards, no ordering) — the Table II row built for this
// kind of bulk traffic.
Point run_ring(int nodes, int msgs_per_node, const bench::Options& opt) {
  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.policy = opt.policy();
  cfg.scheduler = runtime::SchedulerPolicy::kEventDriven;
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  const bench::WallTimer timer;
  runtime::Cluster cluster(cfg);
  for (int n = 0; n < nodes; ++n) {
    const int prev = (n + nodes - 1) % nodes;
    for (int t = 0; t < msgs_per_node; ++t) {
      (void)cluster.irecv(n, prev, t);
    }
  }
  for (int n = 0; n < nodes; ++n) {
    const int next = (n + 1) % nodes;
    for (int t = 0; t < msgs_per_node; ++t) {
      cluster.send(n, next, t, static_cast<std::uint64_t>(n) * 131u + t);
    }
  }
  cluster.run_until_quiescent();

  const auto s = cluster.stats();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(nodes) * static_cast<std::uint64_t>(msgs_per_node);
  if (s.matches != expected) {
    std::cerr << "FATAL: ring N=" << nodes << " matched " << s.matches << " of "
              << expected << "\n";
    std::exit(1);
  }
  Point p;
  p.scenario = "ring";
  p.nodes = nodes;
  p.msgs_per_node = msgs_per_node;
  p.matches = s.matches;
  p.modelled_seconds = s.matching_seconds;
  p.virtual_us = s.virtual_time_us;
  p.wall_ms = timer.seconds() * 1e3;
  return p;
}

constexpr int kHotNodes = 64;
constexpr int kHotRounds = 8;

// Hot set: the first 64 nodes run an all-pairs-lite exchange over a lossy
// jittered fabric with the reliability protocol on; the rest of the fleet
// is idle.  Modelled results are identical for every fleet size — only the
// host cost of carrying the cold nodes varies.
Point run_hotset(int nodes, const bench::Options& opt) {
  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.policy = opt.policy();
  cfg.scheduler = runtime::SchedulerPolicy::kEventDriven;
  cfg.network.seed = 0x5CA1E;
  cfg.network.jitter_us = 0.5;
  cfg.network.faults.drop_prob = 0.02;
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 10.0;
  cfg.reliability.max_attempts = 16;
  const bench::WallTimer timer;
  runtime::Cluster cluster(cfg);
  std::vector<runtime::RecvHandle> handles;
  matching::Tag tag = 0;
  for (int round = 0; round < kHotRounds; ++round) {
    for (int from = 0; from < kHotNodes; ++from) {
      const int to = (from + round + 1) % kHotNodes;
      handles.push_back(cluster.irecv(to, from, tag));
      cluster.send(from, to, tag, static_cast<std::uint64_t>(tag) * 2654435761u);
      tag = static_cast<matching::Tag>((tag + 1) % 1024);
    }
  }
  cluster.run_until_quiescent();

  std::uint64_t completed = 0;
  for (const auto& h : handles) completed += cluster.test(h) ? 1 : 0;
  if (completed != handles.size()) {
    std::cerr << "FATAL: hotset fleet=" << nodes << " completed " << completed
              << " of " << handles.size() << "\n";
    std::exit(1);
  }
  const auto s = cluster.stats();
  Point p;
  p.scenario = "hotset";
  p.nodes = nodes;
  p.msgs_per_node = kHotRounds;
  p.matches = s.matches;
  p.modelled_seconds = s.matching_seconds;
  p.virtual_us = s.virtual_time_us;
  p.wall_ms = timer.seconds() * 1e3;
  return p;
}

int run(const bench::Options& opt) {
  bench::print_header("fig_cluster_scale",
                      "event-driven scheduler: matching rate vs fleet size "
                      "(docs/runtime.md)");

  const std::vector<int> ring_nodes = bench::fast_mode()
                                          ? std::vector<int>{1, 64, 256}
                                          : std::vector<int>{1, 64, 256, 1024, 10000};
  const std::vector<int> ring_load =
      bench::fast_mode() ? std::vector<int>{16} : std::vector<int>{16, 128};
  const std::vector<int> hot_fleets = bench::fast_mode()
                                          ? std::vector<int>{64, 1024}
                                          : std::vector<int>{64, 1024, 10000};

  bench::WallTimer timer;
  bench::JsonReport report("fig_cluster_scale",
                           "cluster-scale sweep for the event-driven scheduler");
  util::AsciiTable table({"scenario", "nodes", "msgs/node", "matches",
                          "matches/s", "virtual us", "host ms"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"scenario", "nodes", "msgs_per_node", "matches", "mps",
                 "virtual_us", "wall_ms"});

  std::vector<Point> points;
  for (const int k : ring_load) {
    for (const int n : ring_nodes) points.push_back(run_ring(n, k, opt));
  }
  for (const int n : hot_fleets) points.push_back(run_hotset(n, opt));

  double rate_1 = 0.0, rate_10k = 0.0;
  for (const Point& p : points) {
    table.add_row({p.scenario, std::to_string(p.nodes),
                   std::to_string(p.msgs_per_node),
                   util::AsciiTable::num(p.matches),
                   util::AsciiTable::rate_mps(p.rate()),
                   util::AsciiTable::num(p.virtual_us, 2),
                   util::AsciiTable::num(p.wall_ms, 1)});
    csv.push_back({p.scenario, std::to_string(p.nodes),
                   std::to_string(p.msgs_per_node), std::to_string(p.matches),
                   util::AsciiTable::num(p.rate() / 1e6, 2),
                   util::AsciiTable::num(p.virtual_us, 2),
                   util::AsciiTable::num(p.wall_ms, 1)});
    report.add_row()
        .set("scenario", p.scenario)
        .set("nodes", p.nodes)
        .set("msgs_per_node", p.msgs_per_node)
        .set("matches_per_second", p.rate());
    if (p.scenario == "ring" && p.msgs_per_node == 128) {
      if (p.nodes == 1) rate_1 = p.rate();
      if (p.nodes == 10000) rate_10k = p.rate();
    }
  }

  table.print(std::cout);
  timer.report(opt);
  bench::print_csv(csv);

  report.headline().set("metric", "cluster_scale_matches_per_second");
  if (rate_1 > 0.0 && rate_10k > 0.0) {
    const double efficiency = rate_10k / rate_1;
    std::cout << "scale_efficiency_10k: " << efficiency << "\n";
    report.headline().set("scale_efficiency_10k", efficiency);
    if (efficiency < 0.95 || efficiency > 1.05) {
      std::cerr << "FATAL: 10k-node per-device rate drifted " << efficiency
                << "x from the 1-node rate (acceptance band is 5%)\n";
      return 1;
    }
  }
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

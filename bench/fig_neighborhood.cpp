// Neighborhood-degree sweep for the StarForest sparse collectives
// (docs/collectives.md).
//
// The paper's Table I puts real applications' neighborhood sizes at 4-79
// peer ranks (AMG 4-6, LULESH ~13, NEKBONE ~23, CESM up to 79) out of
// fleets of thousands.  This bench fixes the fleet at 96 nodes and sweeps
// the per-node root degree across that range: each configuration builds a
// star forest where every node roots `degree` edges to a strided neighbor
// set (wrapping into parallel edges at the top of the range), then drives
// one bcast, one reduce, and one fetch_and_op through the matching engine.
//
// Reported rate is total matches over total modelled device matching time
// — deterministic (independent of host threads, wall clock, and scheduler
// policy), so the rows are safe under the regression gate
// (scripts/check_bench_regression.py).  The sparse-vs-dense message ratio
// per degree is printed alongside: the point of the forest is that traffic
// scales with edges, not with the fleet.
//
// Usage: fig_neighborhood [--json <path>] [--threads <n>]
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/star_forest.hpp"
#include "util/table.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 96;

struct Point {
  int degree = 0;
  std::uint64_t edges = 0;
  std::uint64_t messages = 0;
  std::uint64_t matches = 0;
  double modelled_seconds = 0.0;
  double virtual_us = 0.0;
  double wall_ms = 0.0;  ///< Host cost; stdout only, never in the JSON.

  [[nodiscard]] double rate() const {
    return modelled_seconds > 0.0 ? static_cast<double>(matches) / modelled_seconds
                                  : 0.0;
  }
};

/// Node n's k-th neighbor: stride-3 ring offsets.  Never self (3k+1 is
/// never a multiple of 96); k and k+32 alias to the same peer, so the
/// degree-79 sweep point exercises parallel edges.
int neighbor_of(int n, int k) { return (n + 1 + 3 * k) % kNodes; }

Point run_degree(int degree, const bench::Options& opt) {
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.policy = opt.policy();
  cfg.scheduler = runtime::SchedulerPolicy::kEventDriven;
  cfg.semantics.wildcards = false;  // Hash semantics: the bulk-traffic row.
  cfg.semantics.ordering = false;
  const bench::WallTimer timer;
  runtime::Cluster cluster(cfg);

  std::vector<runtime::SfEdge> edges;
  for (int n = 0; n < kNodes; ++n) {
    for (int k = 0; k < degree; ++k) {
      edges.push_back({.root = n, .root_slot = k, .leaf = neighbor_of(n, k),
                       .leaf_slot = static_cast<std::int32_t>(n * degree + k)});
    }
  }
  runtime::StarForest forest(cluster, edges);

  // One round of each operation; values are read/written through flat
  // deterministic functions so nothing depends on host state.
  std::uint64_t sink = 0;
  const auto value = [](int node, std::int32_t slot) {
    return static_cast<std::uint64_t>(node) * 7919u + static_cast<std::uint64_t>(slot);
  };
  const auto store = [&sink](int, std::int32_t, std::uint64_t v) { sink ^= v; };
  const auto add = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  forest.bcast(value, store);
  forest.reduce(value, value, store, add);
  forest.fetch_and_op(value, value, store, store, add);

  const auto s = cluster.stats();
  const std::uint64_t expected = 4 * static_cast<std::uint64_t>(kNodes) *
                                 static_cast<std::uint64_t>(degree);
  if (s.matches != expected || s.delivery_failures != 0 ||
      !forest.last_failures().empty()) {
    std::cerr << "FATAL: degree " << degree << " matched " << s.matches << " of "
              << expected << " (failures " << s.delivery_failures << ")\n";
    std::exit(1);
  }
  (void)sink;

  Point p;
  p.degree = degree;
  p.edges = static_cast<std::uint64_t>(forest.nedges());
  p.messages = forest.messages_used();
  p.matches = s.matches;
  p.modelled_seconds = s.matching_seconds;
  p.virtual_us = s.virtual_time_us;
  p.wall_ms = timer.seconds() * 1e3;
  return p;
}

int run(const bench::Options& opt) {
  bench::print_header("fig_neighborhood",
                      "Table I neighborhood sizes: StarForest sparse "
                      "collectives, degree sweep 4..79 (docs/collectives.md)");

  const std::vector<int> degrees = bench::fast_mode()
                                       ? std::vector<int>{4, 16}
                                       : std::vector<int>{4, 8, 16, 32, 79};

  bench::WallTimer timer;
  bench::JsonReport report("fig_neighborhood",
                           "StarForest sparse-neighborhood degree sweep");
  util::AsciiTable table({"degree", "edges", "messages", "dense msgs", "matches",
                          "matches/s", "virtual us", "host ms"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"degree", "edges", "messages", "dense_messages", "matches", "mps",
                 "virtual_us", "wall_ms"});

  // What the same four data movements would cost as dense whole-fleet
  // collectives: every op visits all N-1 peers per node.
  const std::uint64_t dense_messages =
      4ull * kNodes * (kNodes - 1);

  double rate_79 = 0.0;
  for (const int d : degrees) {
    const Point p = run_degree(d, opt);
    table.add_row({std::to_string(p.degree), util::AsciiTable::num(p.edges),
                   util::AsciiTable::num(p.messages),
                   util::AsciiTable::num(dense_messages),
                   util::AsciiTable::num(p.matches),
                   util::AsciiTable::rate_mps(p.rate()),
                   util::AsciiTable::num(p.virtual_us, 2),
                   util::AsciiTable::num(p.wall_ms, 1)});
    csv.push_back({std::to_string(p.degree), std::to_string(p.edges),
                   std::to_string(p.messages), std::to_string(dense_messages),
                   std::to_string(p.matches),
                   util::AsciiTable::num(p.rate() / 1e6, 2),
                   util::AsciiTable::num(p.virtual_us, 2),
                   util::AsciiTable::num(p.wall_ms, 1)});
    report.add_row()
        .set("nodes", kNodes)
        .set("degree", p.degree)
        .set("matches", static_cast<double>(p.matches))
        .set("matches_per_second", p.rate());
    if (p.degree == 79) rate_79 = p.rate();
  }

  table.print(std::cout);
  timer.report(opt);
  bench::print_csv(csv);

  report.headline().set("metric", "neighborhood_matches_per_second");
  if (rate_79 > 0.0) {
    report.headline().set("degree79_matches_per_second", rate_79);
  }
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

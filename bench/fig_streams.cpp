// Stream-sliced injection sweep (docs/streams.md): one producer endpoint
// fans its traffic across P ordering domains, P = 1..64.  Each stream's
// messages must stay FIFO only among themselves, so the per-node matcher
// can route streams to distinct shards (communication SMs) by the
// (comm, src, stream) map and match them concurrently — stream slicing
// turns the serialized single-producer queue into min(P, shards)
// independent queues.  The matrix algorithm's cost is quadratic in queue
// length, so the modelled rate scales superlinearly until the shards are
// saturated, then flattens: the paper's multi-SM remark (Section VI-A)
// unlocked by a relaxation instead of by hardware.
//
// Hard gate: 8 concurrent producer streams must model >= 4x the
// single-stream serialized injection rate (exit 1 otherwise).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "matching/sharded_engine.hpp"

namespace {

using namespace simtmsg;

/// Single-producer traffic fanned over `streams` ordering domains:
/// message i rides stream i % streams; its receive names the same
/// concrete (src, tag, stream) tuple, so every row fully matches.
double measure(const simt::DeviceSpec& dev, int streams, std::size_t total_len,
               int shards, const simt::ExecutionPolicy& policy) {
  std::vector<matching::Message> msgs;
  std::vector<matching::RecvRequest> reqs;
  msgs.reserve(total_len);
  reqs.reserve(total_len);
  for (std::size_t i = 0; i < total_len; ++i) {
    const auto stream = static_cast<matching::StreamId>(
        i % static_cast<std::size_t>(streams));
    matching::Message m;
    m.env = {.src = 0,
             .tag = static_cast<matching::Tag>(i),
             .comm = 0,
             .stream = stream};
    m.payload = 0xB5Eu + i;
    msgs.push_back(m);
    matching::RecvRequest r;
    r.env = m.env;
    reqs.push_back(r);
  }

  matching::ShardedMatchEngine::Options opt;
  opt.shards = shards;
  opt.policy = policy;
  const matching::ShardedMatchEngine engine(
      dev, matching::SemanticsConfig::compliant(), opt);
  const auto s = engine.match(msgs, reqs);
  return s.matches_per_second();
}

int run(const bench::Options& opt) {
  bench::print_header("fig_streams", "stream-sliced producer sweep");
  bench::JsonReport report("fig_streams", "stream-sliced producer sweep");
  const bench::WallTimer timer;

  constexpr int kShards = 8;
  const std::vector<int> producer_streams = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::size_t> total_lengths =
      bench::fast_mode() ? std::vector<std::size_t>{1024}
                         : std::vector<std::size_t>{1024, 4096};

  util::AsciiTable table({"total length", "streams", "Mmatches/s", "speedup"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"total_length", "streams", "pascal_mps", "speedup"});

  double gate_speedup = 0.0;
  for (const auto len : total_lengths) {
    double base = 0.0;
    for (const int p : producer_streams) {
      const double raw = measure(simt::pascal_gtx1080(), p, len, kShards, opt.policy());
      if (p == 1) base = raw;
      const double speedup = raw / base;
      if (p == 8) gate_speedup = speedup;  // Last length wins; all must pass.
      table.add_row({std::to_string(len), std::to_string(p),
                     util::AsciiTable::num(raw / 1e6, 1),
                     util::AsciiTable::num(speedup, 2)});
      csv.push_back({std::to_string(len), std::to_string(p),
                     util::AsciiTable::num(raw / 1e6, 2),
                     util::AsciiTable::num(speedup, 2)});
      report.add_row()
          .set("device", "GTX 1080")
          .set("total_length", len)
          .set("streams", p)
          .set("shards", kShards)
          .set("matches_per_second", raw)
          .set("speedup_over_serialized", speedup);
      if (p == 8 && speedup < 4.0) {
        std::cerr << "FAIL: " << len << "-element sweep models only "
                  << util::AsciiTable::num(speedup, 2)
                  << "x at 8 producer streams (gate: >= 4x over single-stream "
                     "serialized injection)\n";
        return 1;
      }
    }
  }
  std::cout << "GTX 1080, one producer endpoint, " << kShards
            << " matcher shards, streams routed by (comm, src, stream):\n";
  table.print(std::cout);
  std::cout << "\n8-stream speedup over serialized single-stream injection: "
            << util::AsciiTable::num(gate_speedup, 2)
            << "x (gate: >= 4x)\nper-stream FIFO lets the shards match "
               "concurrently; within one stream the\nfull ordering contract "
               "still holds (docs/streams.md).\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "stream8_speedup_over_serialized")
      .set("speedup", gate_speedup)
      .set("paper_reference",
           "Section VI-A multi-SM scaling, reached via per-stream ordering "
           "domains");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

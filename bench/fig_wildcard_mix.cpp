// Wildcard-mix sweep (beyond the paper): matching rate as the fraction of
// MPI_ANY_SOURCE receives sweeps 0% -> 100%, for the fully compliant matrix
// row (the fallback every wildcard workload previously paid) against the
// wildcard-capable pattern-table row (docs/wildcards.md).
//
// The paper's position is that wildcards force the O(M*R) compliant path
// (Section VI-C prohibits them to unlock hashing); the pattern-table row is
// the repo's counterpoint: exact MPI wildcard semantics at exact-probe
// speed.  The headline pins the speedup at 15% wildcards / 1024-entry
// queues — MiniFE-like traffic — and fails the bench below 10x.
#include <algorithm>
#include <iostream>
#include <string_view>

#include "bench_common.hpp"
#include "matching/engine.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

int run(const bench::Options& opt) {
  bench::print_header("fig_wildcard_mix", "Wildcard-mix sweep (pattern-table row)");
  bench::JsonReport report("fig_wildcard_mix", "Wildcard-mix sweep (pattern-table row)");
  const bench::WallTimer timer;

  // Fast-mode rows are value-identical to the same rows of a full run (the
  // workload seed depends only on the row's own length and wildcard mix).
  const std::vector<std::size_t> element_counts =
      bench::fast_mode() ? std::vector<std::size_t>{1024}
                         : std::vector<std::size_t>{256, 1024, 4096};
  const std::vector<int> wildcard_pcts =
      bench::fast_mode() ? std::vector<int>{0, 15, 100}
                         : std::vector<int>{0, 5, 15, 30, 50, 75, 100};

  const auto compliant = matching::SemanticsConfig::compliant();  // Row 1: matrix fallback.
  const auto pattern_cfg = matching::SemanticsConfig::pattern_tables();

  std::vector<std::vector<std::string>> csv;
  csv.push_back({"device", "elements", "wildcard_pct", "algorithm", "mps"});

  double speedup_15_1024 = 0.0;
  for (const auto& dev : simt::all_devices()) {
    const matching::MatchEngine matrix(dev, compliant, opt.policy());
    const matching::MatchEngine pattern(dev, pattern_cfg, opt.policy());

    util::AsciiTable table(
        {"elements", "wildcards", "matrix (M/s)", "pattern (M/s)", "speedup"});
    for (const auto n : element_counts) {
      for (const auto pct : wildcard_pcts) {
        matching::WorkloadSpec spec;
        spec.pairs = n;
        spec.sources = 64;
        spec.tags = 64;
        spec.src_wildcard_prob = static_cast<double>(pct) / 100.0;
        spec.seed = 7000 + 131 * n + static_cast<std::uint64_t>(pct);
        const auto w = matching::make_workload(spec);

        const auto sm = matrix.match(w.messages, w.requests);
        const auto sp = pattern.match(w.messages, w.requests);
        // Both rows are order-exact, so the pairings must be bit-identical;
        // a divergence means the bench is measuring two different problems.
        if (sm.result.request_match != sp.result.request_match) {
          std::cerr << "FATAL: matrix and pattern-table pairings diverge at n=" << n
                    << " pct=" << pct << "\n";
          return 1;
        }

        const double m_mps = sm.matches_per_second() / 1e6;
        const double p_mps = sp.matches_per_second() / 1e6;
        const double speedup = m_mps > 0.0 ? p_mps / m_mps : 0.0;
        table.add_row({std::to_string(n), std::to_string(pct) + "%",
                       util::AsciiTable::num(m_mps, 2), util::AsciiTable::num(p_mps, 1),
                       util::AsciiTable::num(speedup, 1) + "x"});
        for (const auto* algo : {"matrix", "pattern-table"}) {
          const auto& s = std::string_view(algo) == "matrix" ? sm : sp;
          csv.push_back({std::string(dev.name), std::to_string(n), std::to_string(pct),
                         algo, util::AsciiTable::num(s.matches_per_second() / 1e6, 2)});
          report.add_row()
              .set("device", dev.name)
              .set("elements", n)
              .set("wildcard_pct", pct)
              .set("algorithm", algo)
              .set("matches_per_second", s.matches_per_second());
        }
        if (n == 1024 && pct == 15 &&
            std::string_view(dev.name).find("1080") != std::string_view::npos) {
          speedup_15_1024 = speedup;
        }
      }
    }
    std::cout << dev.name << " (" << dev.arch << "):\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "pattern-table speedup at 15% wildcards, 1024 entries (Pascal): "
            << util::AsciiTable::num(speedup_15_1024, 1) << "x (gate: >= 10x)\n";
  timer.report(opt);
  bench::print_csv(csv);

  report.headline()
      .set("metric", "pattern_vs_matrix_speedup_15pct_1024")
      .set("speedup", speedup_15_1024)
      .set("gate", ">= 10x over the compliant matrix fallback");
  if (speedup_15_1024 < 10.0) {
    std::cerr << "FATAL: pattern-table speedup gate failed ("
              << speedup_15_1024 << "x < 10x)\n";
    return 1;
  }
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

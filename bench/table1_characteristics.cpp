// Table I: "Overview of the applications and their characteristics" —
// rank counts, wildcard usage, communicators, peers, distinct tags for the
// thirteen synthetic proxy applications (Section IV).
#include <iostream>

#include "bench_common.hpp"
#include "trace/analyzer.hpp"
#include "trace/apps/apps.hpp"

namespace {

using namespace simtmsg;

int run() {
  bench::print_header("table1_characteristics", "Table I (Section IV)");

  trace::apps::AppParams params;
  params.ranks = 64;
  params.iterations = 3;

  util::AsciiTable table({"suite", "app", "ranks", "sends", "src wc", "tag wc",
                          "comms", "avg peers", "max peers", "tags", "tag<=16b"});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"suite", "app", "ranks", "sends", "src_wildcards", "tag_wildcards",
                 "communicators", "avg_peers", "max_peers", "distinct_tags"});

  for (const auto& app : trace::apps::all_apps()) {
    const auto t = app.generate(params);
    const auto c = trace::analyze(t);
    table.add_row({std::string(app.suite), std::string(app.name),
                   std::to_string(c.ranks), std::to_string(c.sends),
                   std::to_string(c.src_wildcards), std::to_string(c.tag_wildcards),
                   std::to_string(c.communicators),
                   util::AsciiTable::num(c.avg_peers, 1), std::to_string(c.max_peers),
                   std::to_string(c.distinct_tags), c.tags_fit_16bit() ? "yes" : "NO"});
    csv.push_back({std::string(app.suite), std::string(app.name),
                   std::to_string(c.ranks), std::to_string(c.sends),
                   std::to_string(c.src_wildcards), std::to_string(c.tag_wildcards),
                   std::to_string(c.communicators),
                   util::AsciiTable::num(c.avg_peers, 2), std::to_string(c.max_peers),
                   std::to_string(c.distinct_tags)});
  }
  table.print(std::cout);

  std::cout <<
      "\npaper reference (Section IV): no app uses the tag wildcard; only\n"
      "MiniDFT and MiniFE use the src wildcard; all but NEKBONE (2) and\n"
      "MiniDFT (7) use a single communicator; most apps talk to 10-30 peers\n"
      "(CNS 72, AMG 79 are the outliers); tag counts range from <4 (AMG,\n"
      "LULESH, MiniFE) to thousands (MiniDFT, MOCFE, PARTISN); every tag\n"
      "fits in 16 bits.  (Synthetic skeletons at reduced scale: ranks=64.)\n";
  bench::print_csv(csv);
  return 0;
}

}  // namespace

int main() { return run(); }

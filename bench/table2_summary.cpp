// Table II: "Summary of our relaxations and their implications."  Runs all
// six semantic configurations through the MatchEngine on the Pascal model
// and prints the measured matching rate next to the paper's reference
// figure.
//
// Paper reference (GTX 1080): rows 1-2 ~6 M matches/s, rows 3-4 <60/~60 M
// (partitioned; compaction costs ~10%), rows 5-6 <500/~500 M (hash table).
#include <iostream>

#include "bench_common.hpp"
#include "matching/engine.hpp"
#include "matching/workload.hpp"

namespace {

using namespace simtmsg;

int run(const bench::Options& opt) {
  bench::print_header("table2_summary", "Table II (Section VII)");
  bench::JsonReport report("table2_summary", "Table II (Section VII)");
  const bench::WallTimer timer;

  // The fully matching 1024-element workload every row can complete;
  // wildcard-free and unique so all six semantics apply.
  matching::WorkloadSpec spec;
  spec.pairs = 1024;
  spec.unique_tuples = true;
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 42;
  const auto w = matching::make_workload(spec);

  const char* paper_perf[6] = {"~6 M/s", "~6 M/s", "<60 M/s", "~60 M/s",
                               "<500 M/s", "~500 M/s"};
  const char* user_impl[6] = {"none", "medium", "low", "medium", "high", "high"};

  util::AsciiTable table({"wildcards", "ordering", "unexp. msgs", "part.",
                          "data structure", "measured", "paper", "user impl."});
  std::vector<std::vector<std::string>> csv;
  csv.push_back({"row", "wildcards", "ordering", "unexpected", "partitions",
                 "algorithm", "mps"});

  int row_idx = 0;
  for (const auto& row : matching::table2_rows()) {
    const matching::MatchEngine engine(simt::pascal_gtx1080(), row, opt.policy());
    const auto s = engine.match(w.messages, w.requests);
    if (s.result.matched() != spec.pairs) {
      std::cerr << "FATAL: row " << row_idx << " matched " << s.result.matched() << "\n";
      return 1;
    }
    const matching::Algorithm algo = engine.algorithm_kind();
    const std::string structure =
        algo == matching::Algorithm::kHashTable ? "Hash Table" : "Matrix";
    table.add_row({row.wildcards ? "yes" : "no", row.ordering ? "yes" : "no",
                   row.unexpected ? "yes" : "no", row.partitions > 1 ? "yes" : "no",
                   structure, util::AsciiTable::rate_mps(s.matches_per_second()),
                   paper_perf[row_idx], user_impl[row_idx]});
    csv.push_back({std::to_string(row_idx + 1), row.wildcards ? "1" : "0",
                   row.ordering ? "1" : "0", row.unexpected ? "1" : "0",
                   std::to_string(row.partitions), std::string(to_string(algo)),
                   util::AsciiTable::num(s.matches_per_second() / 1e6, 2)});
    report.add_row()
        .set("row", row_idx + 1)
        .set("wildcards", row.wildcards)
        .set("ordering", row.ordering)
        .set("unexpected", row.unexpected)
        .set("partitions", row.partitions)
        .set("algorithm", to_string(algo))
        .set("matches_per_second", s.matches_per_second())
        .set("paper_reference", paper_perf[row_idx]);
    report.headline().set("row" + std::to_string(row_idx + 1) + "_matches_per_second",
                          s.matches_per_second());
    ++row_idx;
  }

  std::cout << "GTX 1080 model, 1024-element fully matching workload:\n";
  table.print(std::cout);
  timer.report(opt);
  bench::print_csv(csv);

  report.headline().set("metric", "table2_row_matches_per_second");
  return report.emit(opt) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return run(bench::Options::parse(argc, argv)); }

file(REMOVE_RECURSE
  "CMakeFiles/ablation_long_queues.dir/ablation_long_queues.cpp.o"
  "CMakeFiles/ablation_long_queues.dir/ablation_long_queues.cpp.o.d"
  "ablation_long_queues"
  "ablation_long_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_long_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

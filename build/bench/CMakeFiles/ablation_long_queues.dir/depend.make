# Empty dependencies file for ablation_long_queues.
# This may be replaced when dependencies are built.

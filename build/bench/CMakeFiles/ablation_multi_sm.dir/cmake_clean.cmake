file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_sm.dir/ablation_multi_sm.cpp.o"
  "CMakeFiles/ablation_multi_sm.dir/ablation_multi_sm.cpp.o.d"
  "ablation_multi_sm"
  "ablation_multi_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_multi_sm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_unexpected.dir/ablation_unexpected.cpp.o"
  "CMakeFiles/ablation_unexpected.dir/ablation_unexpected.cpp.o.d"
  "ablation_unexpected"
  "ablation_unexpected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unexpected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

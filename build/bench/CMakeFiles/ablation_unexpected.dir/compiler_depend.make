# Empty compiler generated dependencies file for ablation_unexpected.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_warp_size.dir/ablation_warp_size.cpp.o"
  "CMakeFiles/ablation_warp_size.dir/ablation_warp_size.cpp.o.d"
  "ablation_warp_size"
  "ablation_warp_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warp_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_warp_size.
# This may be replaced when dependencies are built.

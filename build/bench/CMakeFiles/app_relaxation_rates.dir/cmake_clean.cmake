file(REMOVE_RECURSE
  "CMakeFiles/app_relaxation_rates.dir/app_relaxation_rates.cpp.o"
  "CMakeFiles/app_relaxation_rates.dir/app_relaxation_rates.cpp.o.d"
  "app_relaxation_rates"
  "app_relaxation_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_relaxation_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

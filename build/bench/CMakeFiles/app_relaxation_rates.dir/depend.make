# Empty dependencies file for app_relaxation_rates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpu_baseline.dir/cpu_baseline.cpp.o"
  "CMakeFiles/cpu_baseline.dir/cpu_baseline.cpp.o.d"
  "cpu_baseline"
  "cpu_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cpu_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpu_related_work.dir/cpu_related_work.cpp.o"
  "CMakeFiles/cpu_related_work.dir/cpu_related_work.cpp.o.d"
  "cpu_related_work"
  "cpu_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

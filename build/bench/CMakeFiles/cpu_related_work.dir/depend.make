# Empty dependencies file for cpu_related_work.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_queue_depths.dir/fig2_queue_depths.cpp.o"
  "CMakeFiles/fig2_queue_depths.dir/fig2_queue_depths.cpp.o.d"
  "fig2_queue_depths"
  "fig2_queue_depths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_queue_depths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2_queue_depths.
# This may be replaced when dependencies are built.

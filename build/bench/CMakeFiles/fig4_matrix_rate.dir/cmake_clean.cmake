file(REMOVE_RECURSE
  "CMakeFiles/fig4_matrix_rate.dir/fig4_matrix_rate.cpp.o"
  "CMakeFiles/fig4_matrix_rate.dir/fig4_matrix_rate.cpp.o.d"
  "fig4_matrix_rate"
  "fig4_matrix_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_matrix_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_matrix_rate.
# This may be replaced when dependencies are built.

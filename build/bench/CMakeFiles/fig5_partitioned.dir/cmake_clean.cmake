file(REMOVE_RECURSE
  "CMakeFiles/fig5_partitioned.dir/fig5_partitioned.cpp.o"
  "CMakeFiles/fig5_partitioned.dir/fig5_partitioned.cpp.o.d"
  "fig5_partitioned"
  "fig5_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

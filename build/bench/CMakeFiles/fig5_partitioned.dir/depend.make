# Empty dependencies file for fig5_partitioned.
# This may be replaced when dependencies are built.

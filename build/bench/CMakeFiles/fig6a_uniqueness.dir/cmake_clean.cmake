file(REMOVE_RECURSE
  "CMakeFiles/fig6a_uniqueness.dir/fig6a_uniqueness.cpp.o"
  "CMakeFiles/fig6a_uniqueness.dir/fig6a_uniqueness.cpp.o.d"
  "fig6a_uniqueness"
  "fig6a_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6a_uniqueness.
# This may be replaced when dependencies are built.

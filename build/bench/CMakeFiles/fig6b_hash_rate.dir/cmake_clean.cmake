file(REMOVE_RECURSE
  "CMakeFiles/fig6b_hash_rate.dir/fig6b_hash_rate.cpp.o"
  "CMakeFiles/fig6b_hash_rate.dir/fig6b_hash_rate.cpp.o.d"
  "fig6b_hash_rate"
  "fig6b_hash_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_hash_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

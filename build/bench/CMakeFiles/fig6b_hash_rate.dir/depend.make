# Empty dependencies file for fig6b_hash_rate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bsp_pagerank.dir/bsp_pagerank.cpp.o"
  "CMakeFiles/bsp_pagerank.dir/bsp_pagerank.cpp.o.d"
  "bsp_pagerank"
  "bsp_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

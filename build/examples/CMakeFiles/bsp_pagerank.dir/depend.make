# Empty dependencies file for bsp_pagerank.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/relaxation_tour.dir/relaxation_tour.cpp.o"
  "CMakeFiles/relaxation_tour.dir/relaxation_tour.cpp.o.d"
  "relaxation_tour"
  "relaxation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

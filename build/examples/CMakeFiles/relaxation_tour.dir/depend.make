# Empty dependencies file for relaxation_tour.
# This may be replaced when dependencies are built.

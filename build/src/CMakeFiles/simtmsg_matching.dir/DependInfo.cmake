
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/compaction.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/compaction.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/compaction.cpp.o.d"
  "/root/repo/src/matching/device_hash_table.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/device_hash_table.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/device_hash_table.cpp.o.d"
  "/root/repo/src/matching/engine.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/engine.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/engine.cpp.o.d"
  "/root/repo/src/matching/envelope.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/envelope.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/envelope.cpp.o.d"
  "/root/repo/src/matching/hash_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/hash_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/hash_matcher.cpp.o.d"
  "/root/repo/src/matching/hashed_bins_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/hashed_bins_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/hashed_bins_matcher.cpp.o.d"
  "/root/repo/src/matching/list_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/list_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/list_matcher.cpp.o.d"
  "/root/repo/src/matching/matrix_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/matrix_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/matrix_matcher.cpp.o.d"
  "/root/repo/src/matching/partitioned_list_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/partitioned_list_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/partitioned_list_matcher.cpp.o.d"
  "/root/repo/src/matching/partitioned_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/partitioned_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/partitioned_matcher.cpp.o.d"
  "/root/repo/src/matching/queue.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/queue.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/queue.cpp.o.d"
  "/root/repo/src/matching/reference_matcher.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/reference_matcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/reference_matcher.cpp.o.d"
  "/root/repo/src/matching/semantics.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/semantics.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/semantics.cpp.o.d"
  "/root/repo/src/matching/workload.cpp" "src/CMakeFiles/simtmsg_matching.dir/matching/workload.cpp.o" "gcc" "src/CMakeFiles/simtmsg_matching.dir/matching/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/simtmsg_matching.dir/matching/compaction.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/compaction.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/device_hash_table.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/device_hash_table.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/engine.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/engine.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/envelope.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/envelope.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/hash_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/hash_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/hashed_bins_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/hashed_bins_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/list_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/list_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/matrix_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/matrix_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/partitioned_list_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/partitioned_list_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/partitioned_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/partitioned_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/queue.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/queue.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/reference_matcher.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/reference_matcher.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/semantics.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/semantics.cpp.o.d"
  "CMakeFiles/simtmsg_matching.dir/matching/workload.cpp.o"
  "CMakeFiles/simtmsg_matching.dir/matching/workload.cpp.o.d"
  "libsimtmsg_matching.a"
  "libsimtmsg_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtmsg_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsimtmsg_matching.a"
)

# Empty dependencies file for simtmsg_matching.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bsp.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/bsp.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/bsp.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/collectives.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/collectives.cpp.o.d"
  "/root/repo/src/runtime/endpoint.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/endpoint.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/endpoint.cpp.o.d"
  "/root/repo/src/runtime/gas.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/gas.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/gas.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/network.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/network.cpp.o.d"
  "/root/repo/src/runtime/progress_engine.cpp" "src/CMakeFiles/simtmsg_runtime.dir/runtime/progress_engine.cpp.o" "gcc" "src/CMakeFiles/simtmsg_runtime.dir/runtime/progress_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/simtmsg_runtime.dir/runtime/bsp.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/bsp.cpp.o.d"
  "CMakeFiles/simtmsg_runtime.dir/runtime/collectives.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/collectives.cpp.o.d"
  "CMakeFiles/simtmsg_runtime.dir/runtime/endpoint.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/endpoint.cpp.o.d"
  "CMakeFiles/simtmsg_runtime.dir/runtime/gas.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/gas.cpp.o.d"
  "CMakeFiles/simtmsg_runtime.dir/runtime/network.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/network.cpp.o.d"
  "CMakeFiles/simtmsg_runtime.dir/runtime/progress_engine.cpp.o"
  "CMakeFiles/simtmsg_runtime.dir/runtime/progress_engine.cpp.o.d"
  "libsimtmsg_runtime.a"
  "libsimtmsg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtmsg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsimtmsg_runtime.a"
)

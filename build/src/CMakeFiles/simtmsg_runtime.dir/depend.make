# Empty dependencies file for simtmsg_runtime.
# This may be replaced when dependencies are built.

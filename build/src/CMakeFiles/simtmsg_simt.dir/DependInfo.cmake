
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simt/cta.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/cta.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/cta.cpp.o.d"
  "/root/repo/src/simt/device_spec.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/device_spec.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/device_spec.cpp.o.d"
  "/root/repo/src/simt/event_counters.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/event_counters.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/event_counters.cpp.o.d"
  "/root/repo/src/simt/launcher.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/launcher.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/launcher.cpp.o.d"
  "/root/repo/src/simt/timing_model.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/timing_model.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/timing_model.cpp.o.d"
  "/root/repo/src/simt/warp.cpp" "src/CMakeFiles/simtmsg_simt.dir/simt/warp.cpp.o" "gcc" "src/CMakeFiles/simtmsg_simt.dir/simt/warp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/simtmsg_simt.dir/simt/cta.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/cta.cpp.o.d"
  "CMakeFiles/simtmsg_simt.dir/simt/device_spec.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/device_spec.cpp.o.d"
  "CMakeFiles/simtmsg_simt.dir/simt/event_counters.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/event_counters.cpp.o.d"
  "CMakeFiles/simtmsg_simt.dir/simt/launcher.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/launcher.cpp.o.d"
  "CMakeFiles/simtmsg_simt.dir/simt/timing_model.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/timing_model.cpp.o.d"
  "CMakeFiles/simtmsg_simt.dir/simt/warp.cpp.o"
  "CMakeFiles/simtmsg_simt.dir/simt/warp.cpp.o.d"
  "libsimtmsg_simt.a"
  "libsimtmsg_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtmsg_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

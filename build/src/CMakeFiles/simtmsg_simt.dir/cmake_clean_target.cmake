file(REMOVE_RECURSE
  "libsimtmsg_simt.a"
)

# Empty dependencies file for simtmsg_simt.
# This may be replaced when dependencies are built.

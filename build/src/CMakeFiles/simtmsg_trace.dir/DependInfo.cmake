
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyzer.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/analyzer.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/analyzer.cpp.o.d"
  "/root/repo/src/trace/apps/app_registry.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/app_registry.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/app_registry.cpp.o.d"
  "/root/repo/src/trace/apps/halo_apps.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/halo_apps.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/halo_apps.cpp.o.d"
  "/root/repo/src/trace/apps/multigrid_apps.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/multigrid_apps.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/multigrid_apps.cpp.o.d"
  "/root/repo/src/trace/apps/spectral_apps.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/spectral_apps.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/spectral_apps.cpp.o.d"
  "/root/repo/src/trace/apps/sweep_apps.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/sweep_apps.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/apps/sweep_apps.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/record.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/record.cpp.o.d"
  "/root/repo/src/trace/replay.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/replay.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/replay.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/simtmsg_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/simtmsg_trace.dir/trace/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

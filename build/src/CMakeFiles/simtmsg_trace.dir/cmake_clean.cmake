file(REMOVE_RECURSE
  "CMakeFiles/simtmsg_trace.dir/trace/analyzer.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/analyzer.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/app_registry.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/app_registry.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/halo_apps.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/halo_apps.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/multigrid_apps.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/multigrid_apps.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/spectral_apps.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/spectral_apps.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/sweep_apps.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/apps/sweep_apps.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/record.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/record.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/replay.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/replay.cpp.o.d"
  "CMakeFiles/simtmsg_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/simtmsg_trace.dir/trace/trace_io.cpp.o.d"
  "libsimtmsg_trace.a"
  "libsimtmsg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtmsg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

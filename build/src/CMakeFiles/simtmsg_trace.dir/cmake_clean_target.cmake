file(REMOVE_RECURSE
  "libsimtmsg_trace.a"
)

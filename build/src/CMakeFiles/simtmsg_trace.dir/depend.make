# Empty dependencies file for simtmsg_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simtmsg_util.dir/util/hash.cpp.o"
  "CMakeFiles/simtmsg_util.dir/util/hash.cpp.o.d"
  "CMakeFiles/simtmsg_util.dir/util/prefix_scan.cpp.o"
  "CMakeFiles/simtmsg_util.dir/util/prefix_scan.cpp.o.d"
  "CMakeFiles/simtmsg_util.dir/util/stats.cpp.o"
  "CMakeFiles/simtmsg_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/simtmsg_util.dir/util/table.cpp.o"
  "CMakeFiles/simtmsg_util.dir/util/table.cpp.o.d"
  "libsimtmsg_util.a"
  "libsimtmsg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtmsg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

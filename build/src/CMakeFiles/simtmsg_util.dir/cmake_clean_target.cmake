file(REMOVE_RECURSE
  "libsimtmsg_util.a"
)

# Empty compiler generated dependencies file for simtmsg_util.
# This may be replaced when dependencies are built.

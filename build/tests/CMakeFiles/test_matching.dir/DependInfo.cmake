
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matching/compaction_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/compaction_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/compaction_test.cpp.o.d"
  "/root/repo/tests/matching/cpu_matchers_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/cpu_matchers_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/cpu_matchers_test.cpp.o.d"
  "/root/repo/tests/matching/edge_cases_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/edge_cases_test.cpp.o.d"
  "/root/repo/tests/matching/engine_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/engine_test.cpp.o.d"
  "/root/repo/tests/matching/envelope_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/envelope_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/envelope_test.cpp.o.d"
  "/root/repo/tests/matching/figure3_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/figure3_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/figure3_test.cpp.o.d"
  "/root/repo/tests/matching/hash_matcher_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/hash_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/hash_matcher_test.cpp.o.d"
  "/root/repo/tests/matching/hash_table_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/hash_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/hash_table_test.cpp.o.d"
  "/root/repo/tests/matching/list_matcher_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/list_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/list_matcher_test.cpp.o.d"
  "/root/repo/tests/matching/matrix_matcher_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/matrix_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/matrix_matcher_test.cpp.o.d"
  "/root/repo/tests/matching/multi_comm_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/multi_comm_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/multi_comm_test.cpp.o.d"
  "/root/repo/tests/matching/multi_sm_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/multi_sm_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/multi_sm_test.cpp.o.d"
  "/root/repo/tests/matching/partitioned_matcher_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/partitioned_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/partitioned_matcher_test.cpp.o.d"
  "/root/repo/tests/matching/property_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/property_test.cpp.o.d"
  "/root/repo/tests/matching/queue_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/queue_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/queue_test.cpp.o.d"
  "/root/repo/tests/matching/reference_matcher_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/reference_matcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/reference_matcher_test.cpp.o.d"
  "/root/repo/tests/matching/semantics_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/semantics_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/semantics_test.cpp.o.d"
  "/root/repo/tests/matching/warp_width_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/warp_width_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/warp_width_test.cpp.o.d"
  "/root/repo/tests/matching/workload_test.cpp" "tests/CMakeFiles/test_matching.dir/matching/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/matching/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

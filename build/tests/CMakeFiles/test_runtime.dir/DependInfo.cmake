
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/bsp_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/bsp_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/bsp_test.cpp.o.d"
  "/root/repo/tests/runtime/cluster_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/cluster_test.cpp.o.d"
  "/root/repo/tests/runtime/collectives_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/collectives_test.cpp.o.d"
  "/root/repo/tests/runtime/gas_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/gas_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/gas_test.cpp.o.d"
  "/root/repo/tests/runtime/network_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/network_test.cpp.o.d"
  "/root/repo/tests/runtime/progress_engine_test.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/progress_engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/progress_engine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simt/cta_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/cta_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/cta_test.cpp.o.d"
  "/root/repo/tests/simt/device_spec_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/device_spec_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/device_spec_test.cpp.o.d"
  "/root/repo/tests/simt/divergence_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/divergence_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/divergence_test.cpp.o.d"
  "/root/repo/tests/simt/lane_array_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/lane_array_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/lane_array_test.cpp.o.d"
  "/root/repo/tests/simt/launcher_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/launcher_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/launcher_test.cpp.o.d"
  "/root/repo/tests/simt/timing_extras_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/timing_extras_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/timing_extras_test.cpp.o.d"
  "/root/repo/tests/simt/timing_model_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/timing_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/timing_model_test.cpp.o.d"
  "/root/repo/tests/simt/warp_test.cpp" "tests/CMakeFiles/test_simt.dir/simt/warp_test.cpp.o" "gcc" "tests/CMakeFiles/test_simt.dir/simt/warp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_simt.dir/simt/cta_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/cta_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/device_spec_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/device_spec_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/divergence_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/divergence_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/lane_array_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/lane_array_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/launcher_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/launcher_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/timing_extras_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/timing_extras_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/timing_model_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/timing_model_test.cpp.o.d"
  "CMakeFiles/test_simt.dir/simt/warp_test.cpp.o"
  "CMakeFiles/test_simt.dir/simt/warp_test.cpp.o.d"
  "test_simt"
  "test_simt.pdb"
  "test_simt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

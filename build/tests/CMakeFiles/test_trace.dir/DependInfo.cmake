
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/analyzer_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/analyzer_test.cpp.o.d"
  "/root/repo/tests/trace/app_scaling_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/app_scaling_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/app_scaling_test.cpp.o.d"
  "/root/repo/tests/trace/apps_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/apps_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/apps_test.cpp.o.d"
  "/root/repo/tests/trace/record_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/record_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/record_test.cpp.o.d"
  "/root/repo/tests/trace/replay_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/replay_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/replay_test.cpp.o.d"
  "/root/repo/tests/trace/trace_io_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

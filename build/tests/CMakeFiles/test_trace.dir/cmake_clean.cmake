file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/analyzer_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/analyzer_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/app_scaling_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/app_scaling_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/apps_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/apps_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/record_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/record_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/replay_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/replay_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/trace_io_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bits_test.cpp" "tests/CMakeFiles/test_util.dir/util/bits_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/bits_test.cpp.o.d"
  "/root/repo/tests/util/hash_test.cpp" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/hash_test.cpp.o.d"
  "/root/repo/tests/util/prefix_scan_test.cpp" "tests/CMakeFiles/test_util.dir/util/prefix_scan_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/prefix_scan_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simtmsg_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simtmsg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

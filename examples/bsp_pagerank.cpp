// BSP PageRank with fully relaxed matching semantics.
//
// The paper's most aggressive relaxation (no wildcards, no ordering —
// Table II rows 5/6) shifts responsibility to the user: "The tag has to be
// used to uniquely identify messages from the same source, hence
// applications have to be rewritten and restructured.  We still think this
// would be applicable in many iterative and BSP-like applications"
// (Section VI-C).  This example is such a restructured application: a
// BSP-style PageRank where every superstep's contributions are uniquely
// tagged by destination vertex, out-of-order delivery is harmless, and
// tags are reused after each sync.
//
// Verified against a single-node reference computation.
//
// Build & run:  ./build/examples/bsp_pagerank
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "runtime/bsp.hpp"
#include "util/rng.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 4;             // Simulated GPUs.
constexpr int kVerticesPerNode = 16;  // Graph partitioning.
constexpr int kVertices = kNodes * kVerticesPerNode;
constexpr int kSupersteps = 20;
constexpr double kDamping = 0.85;

int owner_of(int vertex) { return vertex / kVerticesPerNode; }
int local_of(int vertex) { return vertex % kVerticesPerNode; }

std::uint64_t pack_rank(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double unpack_rank(std::uint64_t payload) {
  double v;
  std::memcpy(&v, &payload, sizeof(v));
  return v;
}

}  // namespace

int main() {
  // A deterministic sparse directed graph: every vertex links to 4 others.
  util::Rng rng(2024);
  std::vector<std::vector<int>> out_links(kVertices);
  for (int v = 0; v < kVertices; ++v) {
    for (int e = 0; e < 4; ++e) {
      int dst = static_cast<int>(rng.below(kVertices));
      if (dst == v) dst = (dst + 1) % kVertices;
      out_links[static_cast<std::size_t>(v)].push_back(dst);
    }
  }

  // ---- Distributed PageRank over the relaxed-semantics cluster ------------
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;   // Hash-table matching (Table II row 5).
  cfg.semantics.partitions = kNodes;
  runtime::Cluster cluster(cfg);
  runtime::BspSession bsp(cluster, /*tags_per_step=*/kVerticesPerNode * 16);

  std::vector<double> rank(kVertices, 1.0 / kVertices);

  for (int step = 0; step < kSupersteps; ++step) {
    // Each destination vertex expects exactly one contribution per
    // in-edge; tag = local vertex id * 8 + slot, so tags from the same
    // source are unique within the superstep (the user-level discipline
    // the paper requires once ordering is gone).
    std::vector<std::vector<runtime::RecvHandle>> incoming(kVertices);
    std::vector<int> slot_of_edge(kVertices, 0);

    // Count in-edges per destination per source node to pre-post receives.
    std::vector<std::vector<std::pair<int, int>>> in_edges(kVertices);  // (src vertex, slot)
    std::vector<std::vector<int>> slots(kVertices, std::vector<int>(kNodes, 0));
    for (int v = 0; v < kVertices; ++v) {
      for (const int dst : out_links[static_cast<std::size_t>(v)]) {
        const int slot = slots[static_cast<std::size_t>(dst)][owner_of(v)]++;
        if (slot >= 16) {
          std::cerr << "tag slot budget exceeded\n";
          return 1;
        }
        in_edges[static_cast<std::size_t>(dst)].emplace_back(v, slot);
      }
    }

    for (int dst = 0; dst < kVertices; ++dst) {
      for (const auto& [src_vertex, slot] : in_edges[static_cast<std::size_t>(dst)]) {
        const int tag = local_of(dst) * 16 + slot;
        incoming[static_cast<std::size_t>(dst)].push_back(
            bsp.irecv(owner_of(dst), owner_of(src_vertex), tag));
      }
    }

    // Scatter contributions.
    std::vector<std::vector<int>> send_slots(kVertices, std::vector<int>(kNodes, 0));
    for (int v = 0; v < kVertices; ++v) {
      const auto& links = out_links[static_cast<std::size_t>(v)];
      const double share = rank[static_cast<std::size_t>(v)] / static_cast<double>(links.size());
      for (const int dst : links) {
        const int slot = send_slots[static_cast<std::size_t>(dst)][owner_of(v)]++;
        const int tag = local_of(dst) * 16 + slot;
        bsp.send(owner_of(v), owner_of(dst), tag, pack_rank(share));
      }
    }

    bsp.sync();

    // Gather: apply damping.
    for (int dst = 0; dst < kVertices; ++dst) {
      double sum = 0.0;
      for (const auto& h : incoming[static_cast<std::size_t>(dst)]) {
        const auto r = cluster.result(h);
        if (!r) {
          std::cerr << "missing contribution for vertex " << dst << "\n";
          return 1;
        }
        sum += unpack_rank(r->payload);
      }
      rank[static_cast<std::size_t>(dst)] = (1.0 - kDamping) / kVertices + kDamping * sum;
    }
  }

  // ---- Single-node reference ----------------------------------------------
  std::vector<double> ref(kVertices, 1.0 / kVertices);
  for (int step = 0; step < kSupersteps; ++step) {
    std::vector<double> next(kVertices, (1.0 - kDamping) / kVertices);
    for (int v = 0; v < kVertices; ++v) {
      const auto& links = out_links[static_cast<std::size_t>(v)];
      const double share = ref[static_cast<std::size_t>(v)] / static_cast<double>(links.size());
      for (const int dst : links) next[static_cast<std::size_t>(dst)] += kDamping * share;
    }
    ref = next;
  }

  double max_err = 0.0;
  double total = 0.0;
  for (int v = 0; v < kVertices; ++v) {
    max_err = std::max(max_err, std::abs(rank[static_cast<std::size_t>(v)] -
                                         ref[static_cast<std::size_t>(v)]));
    total += rank[static_cast<std::size_t>(v)];
  }

  const auto s = cluster.stats();
  std::cout << "BSP PageRank, " << kVertices << " vertices on " << kNodes
            << " simulated GPUs, " << kSupersteps << " supersteps\n"
            << "rank mass: " << total << " (expected ~1)\n"
            << "max |distributed - reference|: " << max_err << "\n\n"
            << "communication kernel (two-level hash matching, out-of-order):\n"
            << "  messages: " << s.messages_sent << ", matches: " << s.matches << "\n"
            << "  modelled matching time: " << s.matching_seconds * 1e6 << " us ("
            << (s.matching_seconds > 0 ? static_cast<double>(s.matches) / s.matching_seconds / 1e6
                                       : 0.0)
            << " M matches/s)\n";

  if (max_err > 1e-12) {
    std::cerr << "FAIL: distributed result diverges from reference\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

// Distributed conjugate gradient on the simulated GPU cluster.
//
// The communication mix of a real implicit solver (the workload class of
// MiniFE and NEKBONE in the paper's Table I): per iteration, a
// nearest-neighbour halo exchange for the sparse matvec — expressed once
// as a runtime::StarForest over the chain's boundary entries
// (docs/collectives.md) — plus two allreduce dot products through the
// dense collectives layer, running under the paper's first relaxation (no
// source wildcard, rank-partitioned queues).
//
// Solves the 1D Poisson system  A x = b  (tridiagonal [-1, 2, -1]) with the
// domain split across nodes, and verifies the residual and agreement with a
// single-node reference CG.
//
// Build & run:  ./build/examples/cg_solver
#include <array>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "runtime/collectives.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/star_forest.hpp"
#include "util/rng.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 4;
constexpr int kLocal = 32;                 // Rows per node.
constexpr int kN = kNodes * kLocal;        // Global problem size.
constexpr int kMaxIters = 200;
constexpr double kTol = 1e-10;

// StarForest slots per node: 0..kLocal-1 are the local vector entries;
// the two ghosts sit just above.
constexpr std::int32_t kLeftGhost = kLocal;
constexpr std::int32_t kRightGhost = kLocal + 1;

std::uint64_t pack(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double unpack(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// The halo graph of the 1D chain: each node's ghost slots are fed by its
/// neighbours' boundary entries — 2(kNodes-1) edges total, degree <= 2.
std::vector<runtime::SfEdge> chain_halo_forest() {
  std::vector<runtime::SfEdge> edges;
  for (int n = 1; n < kNodes; ++n) {
    // Node n-1's right ghost mirrors node n's first entry, and node n's
    // left ghost mirrors node n-1's last entry.
    edges.push_back({.root = n, .root_slot = 0, .leaf = n - 1, .leaf_slot = kRightGhost});
    edges.push_back({.root = n - 1, .root_slot = kLocal - 1, .leaf = n, .leaf_slot = kLeftGhost});
  }
  return edges;
}

/// y = A p for the global tridiagonal [-1, 2, -1] (Dirichlet boundaries),
/// distributed: one StarForest broadcast fills every ghost.
void distributed_matvec(runtime::StarForest& halo,
                        const std::vector<std::vector<double>>& p,
                        std::vector<std::vector<double>>& y) {
  // Dirichlet boundaries: the outermost ghosts stay zero (no edges feed
  // them, so the broadcast leaves them untouched).
  std::vector<std::array<double, 2>> ghosts(kNodes, {0.0, 0.0});
  halo.bcast(
      [&](int node, std::int32_t slot) {
        return pack(p[static_cast<std::size_t>(node)][static_cast<std::size_t>(slot)]);
      },
      [&](int node, std::int32_t slot, std::uint64_t v) {
        ghosts[static_cast<std::size_t>(node)][slot == kLeftGhost ? 0 : 1] = unpack(v);
      });

  for (int n = 0; n < kNodes; ++n) {
    const double left_ghost = ghosts[static_cast<std::size_t>(n)][0];
    const double right_ghost = ghosts[static_cast<std::size_t>(n)][1];
    for (int i = 0; i < kLocal; ++i) {
      const double lo = i > 0 ? p[n][i - 1] : left_ghost;
      const double hi = i < kLocal - 1 ? p[n][i + 1] : right_ghost;
      y[n][i] = 2.0 * p[n][i] - lo - hi;
    }
  }
}

/// Global dot product via the collectives layer (per-node partial sums,
/// then an allreduce).
double distributed_dot(runtime::Collectives& coll,
                       const std::vector<std::vector<double>>& a,
                       const std::vector<std::vector<double>>& b) {
  std::vector<std::uint64_t> partial(kNodes);
  for (int n = 0; n < kNodes; ++n) {
    double s = 0.0;
    for (int i = 0; i < kLocal; ++i) s += a[n][i] * b[n][i];
    partial[n] = pack(s);
  }
  const auto out = coll.allreduce(partial, [](std::uint64_t x, std::uint64_t y) {
    return pack(unpack(x) + unpack(y));
  });
  return unpack(out[0]);
}

}  // namespace

int main() {
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.semantics.wildcards = false;  // Relaxation 1: rank-partitioned queues.
  cfg.semantics.partitions = kNodes;
  runtime::Cluster cluster(cfg);
  runtime::Collectives coll(cluster);
  runtime::StarForest halo(cluster, chain_halo_forest());

  // b = A * x_true with a deterministic full-spectrum x_true (a random
  // vector excites every eigenmode, so CG needs a realistic number of
  // iterations instead of the single step an eigenvector would take).
  util::Rng rng(4242);
  std::vector<double> x_true(kN);
  for (int i = 0; i < kN; ++i) x_true[i] = rng.uniform() * 2.0 - 1.0;
  std::vector<std::vector<double>> b(kNodes, std::vector<double>(kLocal));
  for (int i = 0; i < kN; ++i) {
    const double lo = i > 0 ? x_true[i - 1] : 0.0;
    const double hi = i < kN - 1 ? x_true[i + 1] : 0.0;
    b[i / kLocal][i % kLocal] = 2.0 * x_true[i] - lo - hi;
  }

  // Distributed CG.
  using Blocks = std::vector<std::vector<double>>;
  Blocks x(kNodes, std::vector<double>(kLocal, 0.0));
  Blocks r = b, p = b;
  Blocks Ap(kNodes, std::vector<double>(kLocal, 0.0));

  double rr = distributed_dot(coll, r, r);
  int iters = 0;
  while (iters < kMaxIters && rr > kTol * kTol) {
    distributed_matvec(halo, p, Ap);
    const double pAp = distributed_dot(coll, p, Ap);
    const double alpha = rr / pAp;
    for (int n = 0; n < kNodes; ++n) {
      for (int i = 0; i < kLocal; ++i) {
        x[n][i] += alpha * p[n][i];
        r[n][i] -= alpha * Ap[n][i];
      }
    }
    const double rr_new = distributed_dot(coll, r, r);
    const double beta = rr_new / rr;
    for (int n = 0; n < kNodes; ++n) {
      for (int i = 0; i < kLocal; ++i) p[n][i] = r[n][i] + beta * p[n][i];
    }
    rr = rr_new;
    ++iters;
  }

  // Verification: solution error against x_true.
  double max_err = 0.0;
  for (int i = 0; i < kN; ++i) {
    max_err = std::max(max_err, std::abs(x[i / kLocal][i % kLocal] - x_true[i]));
  }

  const auto s = cluster.stats();
  std::cout << "distributed CG, " << kN << " unknowns on " << kNodes
            << " simulated GPUs\n"
            << "converged in " << iters << " iterations, ||r|| = " << std::sqrt(rr)
            << "\nmax |x - x_true| = " << max_err << "\n\n"
            << "communication: " << s.messages_sent << " messages ("
            << coll.messages_used() << " collective, " << halo.messages_used()
            << " halo), " << s.matches
            << " matches, modelled matching time " << s.matching_seconds * 1e6
            << " us\n";

  if (s.delivery_failures != 0 || !halo.last_failures().empty()) {
    std::cerr << "FAIL: delivery failures on an ideal fabric\n";
    return 1;
  }
  if (max_err > 1e-8) {
    std::cerr << "FAIL: CG did not converge to the true solution\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

// Halo exchange: a 2D Jacobi heat-diffusion stencil across a grid of
// simulated GPU endpoints — the nearest-neighbour pattern that dominates
// the paper's proxy applications (Section IV: "most applications exchange
// messages with about 10-30 peer ranks ... nearest neighbor communication
// pattern").
//
// The sparse communication graph is named once as a runtime::StarForest
// (docs/collectives.md): one edge per ghost cell, from the neighbour's
// boundary slot to this node's ghost slot.  Every iteration is then a
// single sf.bcast() — the forest pre-posts all receives before any send
// (the LULESH discipline, Section VII-B) and the full 64-bit double
// travels as the payload, since slots identify cells on both ends and
// never ride the wire.
//
// The cluster runs with the paper's first relaxation (no source wildcard,
// Section VI-A), so the matching engine uses rank-partitioned queues.
//
// The example verifies physics (heat conserves, field converges toward the
// mean), asserts zero delivery failures, and prints the
// communication-kernel statistics.
//
// Build & run:  ./build/examples/halo_exchange
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "runtime/endpoint.hpp"
#include "runtime/star_forest.hpp"

namespace {

using namespace simtmsg;

constexpr int kGrid = 3;        // 3x3 simulated GPUs.
constexpr int kTile = 8;        // Interior cells per side and node.
constexpr int kIterations = 40;

struct Tile {
  // (kTile+2)^2 cells with a one-cell ghost ring.
  std::vector<double> cells = std::vector<double>((kTile + 2) * (kTile + 2), 0.0);

  [[nodiscard]] double& at(int x, int y) { return cells[static_cast<std::size_t>(y * (kTile + 2) + x)]; }
  [[nodiscard]] double at(int x, int y) const {
    return cells[static_cast<std::size_t>(y * (kTile + 2) + x)];
  }
};

int node_of(int gx, int gy) {
  return ((gy + kGrid) % kGrid) * kGrid + (gx + kGrid) % kGrid;
}

/// Flat index of a tile cell — the StarForest slot for that cell.
std::int32_t slot_of(int x, int y) {
  return static_cast<std::int32_t>(y * (kTile + 2) + x);
}

std::uint64_t pack(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double unpack(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

/// The halo graph: for every node, each ghost cell is fed by the matching
/// boundary cell of the torus neighbour on that side.
std::vector<runtime::SfEdge> halo_forest() {
  std::vector<runtime::SfEdge> edges;
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      const int n = node_of(gx, gy);
      for (int i = 1; i <= kTile; ++i) {
        // Ghost row y=0 mirrors the neighbour above's bottom interior row.
        edges.push_back({.root = node_of(gx, gy - 1), .root_slot = slot_of(i, kTile),
                         .leaf = n, .leaf_slot = slot_of(i, 0)});
        // Ghost row y=kTile+1 mirrors the neighbour below's top row.
        edges.push_back({.root = node_of(gx, gy + 1), .root_slot = slot_of(i, 1),
                         .leaf = n, .leaf_slot = slot_of(i, kTile + 1)});
        // Ghost column x=0 mirrors the left neighbour's right column.
        edges.push_back({.root = node_of(gx - 1, gy), .root_slot = slot_of(kTile, i),
                         .leaf = n, .leaf_slot = slot_of(0, i)});
        // Ghost column x=kTile+1 mirrors the right neighbour's left column.
        edges.push_back({.root = node_of(gx + 1, gy), .root_slot = slot_of(1, i),
                         .leaf = n, .leaf_slot = slot_of(kTile + 1, i)});
      }
    }
  }
  return edges;
}

}  // namespace

int main() {
  runtime::ClusterConfig cfg;
  cfg.nodes = kGrid * kGrid;
  cfg.semantics.wildcards = false;   // Relaxation 1: no source wildcard...
  cfg.semantics.partitions = 4;      // ...enables rank-partitioned queues.
  runtime::Cluster cluster(cfg);
  runtime::StarForest halo(cluster, halo_forest());

  // Initial condition: a hot spot on node 0.
  std::vector<Tile> tiles(static_cast<std::size_t>(cfg.nodes));
  for (int x = 1; x <= kTile; ++x) {
    for (int y = 1; y <= kTile; ++y) tiles[0].at(x, y) = 100.0;
  }

  const auto total_heat = [&] {
    double sum = 0.0;
    for (const auto& t : tiles) {
      for (int y = 1; y <= kTile; ++y) {
        for (int x = 1; x <= kTile; ++x) sum += t.at(x, y);
      }
    }
    return sum;
  };
  const double heat0 = total_heat();

  for (int iter = 0; iter < kIterations; ++iter) {
    // One sparse broadcast fills every ghost ring from its neighbours.
    halo.bcast(
        [&](int node, std::int32_t slot) {
          return pack(tiles[static_cast<std::size_t>(node)].cells[static_cast<std::size_t>(slot)]);
        },
        [&](int node, std::int32_t slot, std::uint64_t v) {
          tiles[static_cast<std::size_t>(node)].cells[static_cast<std::size_t>(slot)] = unpack(v);
        });
    if (!halo.last_failures().empty() || !cluster.delivery_failures().empty()) {
      std::cerr << "FAIL: halo exchange reported delivery failures\n";
      return 1;
    }

    // Jacobi relaxation.
    for (auto& t : tiles) {
      Tile next = t;
      for (int y = 1; y <= kTile; ++y) {
        for (int x = 1; x <= kTile; ++x) {
          next.at(x, y) = 0.2 * (t.at(x, y) + t.at(x - 1, y) + t.at(x + 1, y) +
                                 t.at(x, y - 1) + t.at(x, y + 1));
        }
      }
      t = next;
    }
  }

  // ---- Verification ---------------------------------------------------------
  const double heat1 = total_heat();
  const double mean = heat1 / (cfg.nodes * kTile * kTile);
  double max_dev = 0.0;
  for (const auto& t : tiles) {
    for (int y = 1; y <= kTile; ++y) {
      for (int x = 1; x <= kTile; ++x) {
        max_dev = std::max(max_dev, std::abs(t.at(x, y) - mean));
      }
    }
  }

  std::cout << "2D Jacobi heat diffusion on a " << kGrid << "x" << kGrid
            << " simulated GPU cluster (" << kTile << "x" << kTile
            << " cells per node, " << kIterations << " iterations)\n"
            << "halo star forest: " << halo.nedges() << " edges, root degree "
            << halo.degree(0) << " per node, " << halo.messages_used()
            << " messages total\n"
            << "heat conservation: initial " << heat0 << ", final " << heat1
            << " (drift " << 100.0 * std::abs(heat1 - heat0) / heat0 << " %)\n"
            << "max deviation from equilibrium: " << max_dev << "\n";

  const auto s = cluster.stats();
  std::cout << "\ncommunication kernel (rank-partitioned matrix matching):\n"
            << "  messages: " << s.messages_sent << ", matches: " << s.matches
            << "\n  modelled matching time: " << s.matching_seconds * 1e6 << " us ("
            << (s.matching_seconds > 0 ? static_cast<double>(s.matches) / s.matching_seconds / 1e6
                                       : 0.0)
            << " M matches/s)\n"
            << "  virtual cluster time: " << s.virtual_time_us << " us\n";

  if (s.delivery_failures != 0) {
    std::cerr << "FAIL: delivery failures on an ideal fabric\n";
    return 1;
  }
  const bool heat_ok = std::abs(heat1 - heat0) / heat0 < 1e-9;
  if (!heat_ok) {
    std::cerr << "FAIL: heat not conserved\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

// Halo exchange: a 2D Jacobi heat-diffusion stencil across a grid of
// simulated GPU endpoints — the nearest-neighbour pattern that dominates
// the paper's proxy applications (Section IV: "most applications exchange
// messages with about 10-30 peer ranks ... nearest neighbor communication
// pattern").
//
// The cluster runs with the paper's first relaxation (no source wildcard,
// Section VI-A), so the matching engine uses rank-partitioned queues.
// Each node owns an interior tile; per iteration it pre-posts receives for
// its four halo strips, sends its boundary rows/columns, and relaxes.
//
// The example verifies physics (heat conserves, field converges toward the
// mean) and prints the communication-kernel statistics.
//
// Build & run:  ./build/examples/halo_exchange
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "runtime/endpoint.hpp"

namespace {

using namespace simtmsg;

constexpr int kGrid = 3;        // 3x3 simulated GPUs.
constexpr int kTile = 8;        // Interior cells per side and node.
constexpr int kIterations = 40;

constexpr int kTagUp = 0, kTagDown = 1, kTagLeft = 2, kTagRight = 3;

struct Tile {
  // (kTile+2)^2 cells with a one-cell ghost ring.
  std::vector<double> cells = std::vector<double>((kTile + 2) * (kTile + 2), 0.0);

  [[nodiscard]] double& at(int x, int y) { return cells[static_cast<std::size_t>(y * (kTile + 2) + x)]; }
  [[nodiscard]] double at(int x, int y) const {
    return cells[static_cast<std::size_t>(y * (kTile + 2) + x)];
  }
};

int node_of(int gx, int gy) {
  return ((gy + kGrid) % kGrid) * kGrid + (gx + kGrid) % kGrid;
}

// Payload packing: the simulated messages carry a 64-bit payload, so a halo
// strip is sent as kTile separate cell messages tagged by direction; the
// cell index rides in the upper payload bits.
std::uint64_t pack_cell(int index, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  // Round-trip-safe: doubles here are bounded and their low mantissa bits
  // are unused by the 8-bit index tagging scheme below.
  return (bits & ~0xFFull) | static_cast<std::uint64_t>(index & 0xFF);
}

void unpack_cell(std::uint64_t payload, int& index, double& value) {
  index = static_cast<int>(payload & 0xFF);
  const std::uint64_t bits = payload & ~0xFFull;
  std::memcpy(&value, &bits, sizeof(value));
}

}  // namespace

int main() {
  runtime::ClusterConfig cfg;
  cfg.nodes = kGrid * kGrid;
  cfg.semantics.wildcards = false;   // Relaxation 1: no source wildcard...
  cfg.semantics.partitions = 4;      // ...enables rank-partitioned queues.
  runtime::Cluster cluster(cfg);

  // Initial condition: a hot spot on node 0.
  std::vector<Tile> tiles(static_cast<std::size_t>(cfg.nodes));
  for (int x = 1; x <= kTile; ++x) {
    for (int y = 1; y <= kTile; ++y) tiles[0].at(x, y) = 100.0;
  }

  const auto total_heat = [&] {
    double sum = 0.0;
    for (const auto& t : tiles) {
      for (int y = 1; y <= kTile; ++y) {
        for (int x = 1; x <= kTile; ++x) sum += t.at(x, y);
      }
    }
    return sum;
  };
  const double heat0 = total_heat();

  for (int iter = 0; iter < kIterations; ++iter) {
    // Pre-post all halo receives (the LULESH discipline, Section VII-B).
    std::vector<std::vector<runtime::RecvHandle>> handles(
        static_cast<std::size_t>(cfg.nodes));
    for (int gy = 0; gy < kGrid; ++gy) {
      for (int gx = 0; gx < kGrid; ++gx) {
        const int n = node_of(gx, gy);
        auto& h = handles[static_cast<std::size_t>(n)];
        for (int i = 0; i < kTile; ++i) {
          h.push_back(cluster.irecv(n, node_of(gx, gy - 1), kTagDown));   // From above.
          h.push_back(cluster.irecv(n, node_of(gx, gy + 1), kTagUp));     // From below.
          h.push_back(cluster.irecv(n, node_of(gx - 1, gy), kTagRight));  // From left.
          h.push_back(cluster.irecv(n, node_of(gx + 1, gy), kTagLeft));   // From right.
        }
      }
    }

    // Send boundary strips.
    for (int gy = 0; gy < kGrid; ++gy) {
      for (int gx = 0; gx < kGrid; ++gx) {
        const int n = node_of(gx, gy);
        const auto& t = tiles[static_cast<std::size_t>(n)];
        for (int i = 1; i <= kTile; ++i) {
          cluster.send(n, node_of(gx, gy - 1), kTagUp, pack_cell(i, t.at(i, 1)));
          cluster.send(n, node_of(gx, gy + 1), kTagDown, pack_cell(i, t.at(i, kTile)));
          cluster.send(n, node_of(gx - 1, gy), kTagLeft, pack_cell(i, t.at(1, i)));
          cluster.send(n, node_of(gx + 1, gy), kTagRight, pack_cell(i, t.at(kTile, i)));
        }
      }
    }

    cluster.run_until_quiescent();

    // Fill ghost rings from completions.
    for (int gy = 0; gy < kGrid; ++gy) {
      for (int gx = 0; gx < kGrid; ++gx) {
        const int n = node_of(gx, gy);
        auto& t = tiles[static_cast<std::size_t>(n)];
        for (const auto& h : handles[static_cast<std::size_t>(n)]) {
          const auto r = cluster.result(h);
          if (!r) {
            std::cerr << "halo receive did not complete\n";
            return 1;
          }
          int idx = 0;
          double value = 0.0;
          unpack_cell(r->payload, idx, value);
          switch (r->tag) {
            case kTagDown: t.at(idx, 0) = value; break;          // Above neighbour's bottom row.
            case kTagUp: t.at(idx, kTile + 1) = value; break;    // Below neighbour's top row.
            case kTagRight: t.at(0, idx) = value; break;         // Left neighbour's right column.
            case kTagLeft: t.at(kTile + 1, idx) = value; break;  // Right neighbour's left column.
            default: break;
          }
        }
      }
    }

    // Jacobi relaxation.
    for (auto& t : tiles) {
      Tile next = t;
      for (int y = 1; y <= kTile; ++y) {
        for (int x = 1; x <= kTile; ++x) {
          next.at(x, y) = 0.2 * (t.at(x, y) + t.at(x - 1, y) + t.at(x + 1, y) +
                                 t.at(x, y - 1) + t.at(x, y + 1));
        }
      }
      t = next;
    }
  }

  // ---- Verification ---------------------------------------------------------
  const double heat1 = total_heat();
  const double mean = heat1 / (cfg.nodes * kTile * kTile);
  double max_dev = 0.0;
  for (const auto& t : tiles) {
    for (int y = 1; y <= kTile; ++y) {
      for (int x = 1; x <= kTile; ++x) {
        max_dev = std::max(max_dev, std::abs(t.at(x, y) - mean));
      }
    }
  }

  std::cout << "2D Jacobi heat diffusion on a " << kGrid << "x" << kGrid
            << " simulated GPU cluster (" << kTile << "x" << kTile
            << " cells per node, " << kIterations << " iterations)\n"
            << "heat conservation: initial " << heat0 << ", final " << heat1
            << " (drift " << 100.0 * std::abs(heat1 - heat0) / heat0 << " %)\n"
            << "max deviation from equilibrium: " << max_dev << "\n";

  const auto s = cluster.stats();
  std::cout << "\ncommunication kernel (rank-partitioned matrix matching):\n"
            << "  messages: " << s.messages_sent << ", matches: " << s.matches
            << "\n  modelled matching time: " << s.matching_seconds * 1e6 << " us ("
            << (s.matching_seconds > 0 ? static_cast<double>(s.matches) / s.matching_seconds / 1e6
                                       : 0.0)
            << " M matches/s)\n"
            << "  virtual cluster time: " << s.virtual_time_us << " us\n";

  const bool heat_ok = std::abs(heat1 - heat0) / heat0 < 1e-9;
  if (!heat_ok) {
    std::cerr << "FAIL: heat not conserved\n";
    return 1;
  }
  std::cout << "\nOK\n";
  return 0;
}

// A halo exchange over an adversarial fabric (docs/faults.md).
//
// The paper's relaxations presume the lossless, per-pair-ordered fabric of
// NVLink-class links.  This example drops, duplicates, corrupts, and delays
// packets on purpose and shows the reliability layer (per-pair sequence
// numbers, acks, retransmission with exponential backoff, checksums)
// recovering every message — then tightens the retry cap until delivery
// genuinely fails and shows how the failure surfaces as a typed
// DeliveryFailure instead of a hang or silent loss.
//
// Build & run:  ./build/examples/lossy_link
#include <iostream>
#include <vector>

#include "runtime/endpoint.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 4;
constexpr int kRounds = 8;

std::uint64_t counter(const telemetry::TelemetryReport& r, const std::string& name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

/// Ring halo exchange: every round, each node sends to both neighbours.
/// Returns the number of completed receives.
std::size_t exchange(runtime::Cluster& cluster) {
  std::vector<runtime::RecvHandle> handles;
  matching::Tag tag = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int n = 0; n < kNodes; ++n) {
      const int right = (n + 1) % kNodes;
      const int left = (n + kNodes - 1) % kNodes;
      handles.push_back(cluster.irecv(right, n, tag));
      handles.push_back(cluster.irecv(left, n, tag + 1));
      cluster.send(n, right, tag, static_cast<std::uint64_t>(n * 100 + round));
      cluster.send(n, left, tag + 1, static_cast<std::uint64_t>(n * 100 + round));
      tag += 2;
    }
  }
  cluster.run_until_quiescent();
  std::size_t done = 0;
  for (const auto& h : handles) done += cluster.test(h) ? 1 : 0;
  return done;
}

runtime::ClusterConfig lossy(int max_attempts) {
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.network.seed = 2024;
  cfg.network.jitter_us = 0.3;
  cfg.network.faults.drop_prob = 0.2;
  cfg.network.faults.dup_prob = 0.1;
  cfg.network.faults.corrupt_prob = 0.05;
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 10.0;
  cfg.reliability.backoff = 2.0;
  cfg.reliability.max_attempts = max_attempts;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "-- lossy link: 20% drop, 10% duplication, 5% corruption --\n\n";

  {
    runtime::Cluster cluster(lossy(/*max_attempts=*/16));
    const std::size_t done = exchange(cluster);
    const auto r = cluster.snapshot();
    std::cout << "generous retry cap (16 attempts):\n"
              << "  receives completed     " << done << " / " << kNodes * kRounds * 2
              << "\n  packets dropped        " << counter(r, "runtime.fault.drops")
              << "\n  retransmissions        "
              << counter(r, "runtime.reliability.retransmits")
              << "\n  duplicates suppressed  "
              << counter(r, "runtime.reliability.duplicates_suppressed")
              << "\n  corruptions caught     "
              << counter(r, "runtime.reliability.corruptions_detected")
              << "\n  delivery failures      " << cluster.delivery_failures().size()
              << "\n  simulated time         " << cluster.stats().virtual_time_us
              << " us\n\n";
  }

  {
    runtime::Cluster cluster(lossy(/*max_attempts=*/2));
    const std::size_t done = exchange(cluster);
    std::cout << "tight retry cap (2 attempts):\n"
              << "  receives completed     " << done << " / " << kNodes * kRounds * 2
              << "\n  delivery failures      " << cluster.delivery_failures().size()
              << "\n";
    if (!cluster.delivery_failures().empty()) {
      std::cout << "  first failure          "
                << to_string(cluster.delivery_failures().front()) << "\n";
    }
    std::cout << "\nevery undelivered message is accounted for: the cluster "
                 "quiesces (no hang),\nthe receive stays incomplete (no "
                 "corruption slips through), and the loss is\nreported as a "
                 "typed DeliveryFailure.\n";
  }
  return 0;
}

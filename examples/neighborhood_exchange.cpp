// Sparse neighborhood exchange: the paper's Table I communication shape.
//
// Real MPI applications talk to only 4-79 peer ranks out of thousands
// (LULESH ~13, NEKBONE ~23, CESM up to 79) — a sparse all-to-all, not a
// dense collective.  This example builds that shape directly as a
// runtime::StarForest (docs/collectives.md): every node roots `degree`
// edges to an irregular neighbor set, then drives the three sparse
// operations and verifies each against locally computed expectations:
//
//   bcast         push one value to every neighbor,
//   reduce        combine the neighbors' contributions (sum, edge order),
//   fetch_and_op  atomically increment a counter slot at each neighbor and
//                 fetch the pre-increment value (ticket locks, Section II).
//
// Everything flows through the configured matching engine and both
// scheduler policies as ordinary point-to-point traffic.
//
// Build & run:  ./build/examples/neighborhood_exchange
#include <cstdint>
#include <iostream>
#include <map>
#include <vector>

#include "runtime/endpoint.hpp"
#include "runtime/star_forest.hpp"

namespace {

using namespace simtmsg;

constexpr int kNodes = 24;
constexpr int kDegree = 13;  // LULESH's neighborhood size (Table I).

/// Irregular but deterministic neighbor choice: node n's k-th neighbor.
int neighbor_of(int n, int k) {
  return (n + 1 + (k * k + 3 * k) / 2) % kNodes;
}

}  // namespace

int main() {
  runtime::ClusterConfig cfg;
  cfg.nodes = kNodes;
  runtime::Cluster cluster(cfg);

  // Slot convention: slot k on a root is its k-th outgoing edge; a leaf's
  // mailbox slot encodes the sending edge (n * kDegree + k) — some nodes
  // pick the same neighbor twice, and parallel edges must not collide.
  std::vector<runtime::SfEdge> edges;
  for (int n = 0; n < kNodes; ++n) {
    for (int k = 0; k < kDegree; ++k) {
      edges.push_back({.root = n, .root_slot = k, .leaf = neighbor_of(n, k),
                       .leaf_slot = static_cast<std::int32_t>(n * kDegree + k)});
    }
  }
  runtime::StarForest forest(cluster, edges);

  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "FAIL: " << what << "\n";
      ++failures;
    }
  };

  // ---- bcast: push a distinct value down every edge -------------------------
  // Root n sends n*100+k on its k-th edge; the leaf files it under the
  // edge's mailbox slot, so expectations are directly recomputable.
  std::map<std::pair<int, std::int32_t>, std::uint64_t> inbox;
  forest.bcast(
      [](int n, std::int32_t k) {
        return static_cast<std::uint64_t>(n) * 100 + static_cast<std::uint64_t>(k);
      },
      [&](int n, std::int32_t slot, std::uint64_t v) { inbox[{n, slot}] = v; });
  check(forest.last_failures().empty(), "bcast reported failures");
  for (int n = 0; n < kNodes; ++n) {
    for (int k = 0; k < kDegree; ++k) {
      const int leaf = neighbor_of(n, k);
      const auto it = inbox.find({leaf, static_cast<std::int32_t>(n * kDegree + k)});
      check(it != inbox.end() &&
                it->second == static_cast<std::uint64_t>(n) * 100 +
                                  static_cast<std::uint64_t>(k),
            "bcast value mismatch");
    }
  }

  // ---- reduce: sum each node's incoming contributions -----------------------
  // Every edge contributes its leaf id + 1; root slot k accumulates just
  // its own edge, so the expectation is neighbor_of(n, k) + 1.
  std::map<std::pair<int, std::int32_t>, std::uint64_t> sums;
  forest.reduce(
      [](int leaf, std::int32_t) { return static_cast<std::uint64_t>(leaf) + 1; },
      [&](int n, std::int32_t k) {
        const auto it = sums.find({n, k});
        return it != sums.end() ? it->second : 0ull;
      },
      [&](int n, std::int32_t k, std::uint64_t v) { sums[{n, k}] = v; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  check(forest.last_failures().empty(), "reduce reported failures");
  for (int n = 0; n < kNodes; ++n) {
    for (int k = 0; k < kDegree; ++k) {
      check(sums.at({n, k}) ==
                static_cast<std::uint64_t>(neighbor_of(n, k)) + 1,
            "reduce sum mismatch");
    }
  }

  // ---- fetch_and_op: distributed ticket counters ----------------------------
  // Invert the forest so each node's single counter slot is the root and
  // its in-neighbors take tickets: every leaf atomically adds 1 and
  // fetches the ticket number it got.  Tickets at each counter must come
  // out dense: {0, 1, ..., in_degree-1}.
  std::vector<runtime::SfEdge> inverse;
  for (const runtime::SfEdge& e : edges) {
    inverse.push_back({.root = e.leaf, .root_slot = 0, .leaf = e.root, .leaf_slot = e.leaf_slot});
  }
  runtime::StarForest tickets(cluster, inverse);
  std::vector<std::uint64_t> counter(kNodes, 0);
  std::map<std::pair<int, std::int32_t>, std::uint64_t> ticket_of;
  tickets.fetch_and_op(
      [](int, std::int32_t) { return 1ull; },
      [&](int n, std::int32_t) { return counter[static_cast<std::size_t>(n)]; },
      [&](int n, std::int32_t, std::uint64_t v) { counter[static_cast<std::size_t>(n)] = v; },
      [&](int n, std::int32_t slot, std::uint64_t v) { ticket_of[{n, slot}] = v; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  check(tickets.last_failures().empty(), "fetch_and_op reported failures");
  for (int n = 0; n < kNodes; ++n) {
    const auto in_degree = static_cast<std::uint64_t>(tickets.degree(n));
    check(counter[static_cast<std::size_t>(n)] == in_degree,
          "counter did not reach its in-degree");
  }
  // Each counter's issued tickets are a permutation of 0..in_degree-1.
  std::map<int, std::vector<bool>> seen;
  for (int n = 0; n < kNodes; ++n) {
    seen[n] = std::vector<bool>(static_cast<std::size_t>(tickets.degree(n)), false);
  }
  for (const runtime::SfEdge& e : inverse) {
    const auto it = ticket_of.find({e.leaf, e.leaf_slot});
    if (it == ticket_of.end() || it->second >= seen[e.root].size() ||
        seen[e.root][static_cast<std::size_t>(it->second)]) {
      check(false, "tickets not a dense permutation");
      break;
    }
    seen[e.root][static_cast<std::size_t>(it->second)] = true;
  }

  // ---- Report ---------------------------------------------------------------
  const auto s = cluster.stats();
  std::cout << "sparse neighborhood exchange: " << kNodes << " nodes, degree "
            << kDegree << " (Table I), " << forest.nedges() + tickets.nedges()
            << " forest edges\n"
            << "bcast + reduce + fetch_and_op: "
            << forest.messages_used() + tickets.messages_used()
            << " messages vs " << 3 * kNodes * (kNodes - 1)
            << " for dense all-to-all\n"
            << "matches: " << s.matches << ", modelled matching time "
            << s.matching_seconds * 1e6 << " us, virtual cluster time "
            << s.virtual_time_us << " us\n";

  check(s.delivery_failures == 0, "delivery failures on an ideal fabric");
  if (failures != 0) return 1;
  std::cout << "\nOK\n";
  return 0;
}

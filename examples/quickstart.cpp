// Quickstart: the two halves of the library in ~60 lines.
//
//  1. The matching engine directly: pick a Table II semantics row, match a
//     batch of messages against receive requests, read the modelled rate.
//  2. The cluster runtime: simulated GPU endpoints exchanging messages
//     through the GAS, with the communication kernel doing the matching.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "matching/engine.hpp"
#include "matching/workload.hpp"
#include "runtime/endpoint.hpp"

int main() {
  using namespace simtmsg;

  // ---- 1. Direct matching -------------------------------------------------
  // Fully MPI-compliant semantics (wildcards + ordering + unexpected
  // messages) on the Pascal GTX 1080 model.
  const matching::MatchEngine engine(simt::pascal_gtx1080(), matching::SemanticsConfig{});

  // A fully matching 512-element workload, like the paper's Figure 4 setup.
  matching::WorkloadSpec spec;
  spec.pairs = 512;
  const auto workload = matching::make_workload(spec);

  const auto stats = engine.match(workload.messages, workload.requests);
  std::cout << "matched " << stats.result.matched() << "/512 messages with the '"
            << to_string(engine.algorithm_kind()) << "' algorithm\n"
            << "modelled rate: " << stats.matches_per_second() / 1e6
            << " M matches/s (paper, Figure 4: ~6 M matches/s)\n\n";

  // ---- 2. The cluster runtime ---------------------------------------------
  runtime::ClusterConfig cfg;
  cfg.nodes = 2;
  runtime::Cluster cluster(cfg);

  // Node 1 posts a wildcard receive; node 0 sends.
  const auto handle = cluster.irecv(/*node=*/1, matching::kAnySource, /*tag=*/7);
  cluster.send(/*from=*/0, /*to=*/1, /*tag=*/7, /*payload=*/0xC0FFEE);

  const auto r = cluster.wait(handle);
  std::cout << "node 1 received payload 0x" << std::hex << r.payload << std::dec
            << " from node " << r.src << " (tag " << r.tag << ")\n";

  const auto cs = cluster.stats();
  std::cout << "cluster: " << cs.messages_sent << " message(s), " << cs.matches
            << " match(es), " << cs.virtual_time_us << " us virtual time\n";
  return 0;
}

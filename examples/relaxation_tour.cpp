// Relaxation tour: walk the paper's Table II ladder on one workload and
// watch the matching rate climb as guarantees are dropped — the paper's
// core story in one runnable program.
//
// Build & run:  ./build/examples/relaxation_tour [elements]
#include <cstdlib>
#include <iostream>

#include "matching/engine.hpp"
#include "matching/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace simtmsg;

  std::size_t elements = 1024;
  if (argc > 1) elements = std::strtoull(argv[1], nullptr, 10);

  matching::WorkloadSpec spec;
  spec.pairs = elements;
  spec.unique_tuples = true;
  spec.sources = static_cast<int>(std::max<std::size_t>(64, elements / 8));
  spec.tags = spec.sources;
  spec.seed = 123;
  const auto w = matching::make_workload(spec);

  const char* stories[6] = {
      "full MPI semantics: the matrix scan/reduce, sequential reduce bound",
      "pre-posted receives: the compaction pass disappears",
      "no src wildcard: the rank space splits into parallel queues",
      "both relaxations: partitioned and compaction-free",
      "no ordering: the two-level hash table takes over",
      "everything relaxed: the paper's ~80x headline",
  };

  std::cout << "Relaxation tour -- " << elements
            << " fully matching unique tuples, GTX 1080 model\n\n";

  util::AsciiTable table({"row", "semantics", "algorithm", "rate", "speedup", "note"});
  double baseline = 0.0;
  int row_no = 1;
  for (const auto& row : matching::table2_rows()) {
    const matching::MatchEngine engine(simt::pascal_gtx1080(), row);
    const auto stats = engine.match(w.messages, w.requests);
    if (stats.result.matched() != elements) {
      std::cerr << "row " << row_no << " failed to match everything\n";
      return 1;
    }
    const double rate = stats.matches_per_second();
    if (row_no == 1) baseline = rate;
    table.add_row({std::to_string(row_no), matching::describe(row),
                   std::string(to_string(engine.algorithm_kind())),
                   util::AsciiTable::rate_mps(rate),
                   util::AsciiTable::num(rate / baseline, 1) + "x",
                   stories[row_no - 1]});
    ++row_no;
  }
  table.print(std::cout);

  std::cout << "\npaper (conclusion): 10x from prohibiting wildcards, 80x from\n"
               "out-of-order delivery; most proxy applications never use the\n"
               "wildcards these rows give up (Table I).\n";
  return 0;
}

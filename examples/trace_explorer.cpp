// Trace explorer: generate, save, load, and analyze proxy-application
// traces — the Section IV methodology as a command-line tool.
//
//   ./build/examples/trace_explorer                 # list applications
//   ./build/examples/trace_explorer NEKBONE         # analyze one app
//   ./build/examples/trace_explorer LULESH 128 4    # ranks, iterations
//   ./build/examples/trace_explorer AMG --save t.smtr   # write binary trace
//   ./build/examples/trace_explorer --load t.smtr       # analyze a file
#include <cstring>
#include <iostream>
#include <string>

#include "trace/analyzer.hpp"
#include "trace/apps/apps.hpp"
#include "trace/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

namespace {

using namespace simtmsg;

void list_apps() {
  util::AsciiTable table({"app", "suite", "paper ranks", "skeleton"});
  for (const auto& app : trace::apps::all_apps()) {
    table.add_row({std::string(app.name), std::string(app.suite),
                   std::to_string(app.paper_ranks), std::string(app.skeleton)});
  }
  table.print(std::cout);
  std::cout << "\nusage: trace_explorer <app> [ranks] [iterations] [--save file]\n"
               "       trace_explorer --load <file>\n";
}

void report(const trace::Trace& t) {
  const auto c = trace::analyze(t);
  const auto r = trace::replay_queues(t);
  const auto umq = r.umq_max_summary();
  const auto prq = r.prq_max_summary();

  std::cout << "app: " << t.app_name << " (" << t.suite << "), ranks " << t.ranks
            << ", events " << t.events.size() << "\n\n";

  util::AsciiTable table({"metric", "value"});
  table.add_row({"sends", std::to_string(c.sends)});
  table.add_row({"receives", std::to_string(c.recvs)});
  table.add_row({"src wildcards", std::to_string(c.src_wildcards)});
  table.add_row({"tag wildcards", std::to_string(c.tag_wildcards)});
  table.add_row({"communicators", std::to_string(c.communicators)});
  table.add_row({"avg peers/rank", util::AsciiTable::num(c.avg_peers, 1)});
  table.add_row({"max peers", std::to_string(c.max_peers)});
  table.add_row({"distinct tags", std::to_string(c.distinct_tags)});
  table.add_row({"tags fit 16 bits", c.tags_fit_16bit() ? "yes" : "no"});
  table.add_row({"UMQ max depth (mean/median/max)",
                 util::AsciiTable::num(umq.mean, 0) + " / " +
                     util::AsciiTable::num(umq.median, 0) + " / " +
                     util::AsciiTable::num(umq.max, 0)});
  table.add_row({"PRQ max depth (mean/median/max)",
                 util::AsciiTable::num(prq.mean, 0) + " / " +
                     util::AsciiTable::num(prq.median, 0) + " / " +
                     util::AsciiTable::num(prq.max, 0)});
  table.add_row({"dominant tuple share (avg %)",
                 util::AsciiTable::num(c.tuple_max_share_avg, 1)});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      list_apps();
      return 0;
    }

    if (std::strcmp(argv[1], "--load") == 0) {
      if (argc < 3) {
        std::cerr << "--load needs a file\n";
        return 1;
      }
      report(trace::read_binary_file(argv[2]));
      return 0;
    }

    const auto* app = trace::apps::find_app(argv[1]);
    if (app == nullptr) {
      std::cerr << "unknown app: " << argv[1] << "\n\n";
      list_apps();
      return 1;
    }

    trace::apps::AppParams params;
    std::string save_path;
    int positional = 0;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
        save_path = argv[++i];
      } else if (positional == 0) {
        params.ranks = static_cast<std::uint32_t>(std::stoul(argv[i]));
        ++positional;
      } else {
        params.iterations = std::stoi(argv[i]);
        ++positional;
      }
    }

    const auto t = app->generate(params);
    if (!save_path.empty()) {
      trace::write_binary_file(t, save_path);
      std::cout << "wrote " << t.events.size() << " events to " << save_path << "\n\n";
    }
    report(t);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

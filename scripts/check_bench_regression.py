#!/usr/bin/env python3
"""Compare a fresh BENCH_matching.json against the committed baseline.

Every row of every bench is keyed by its non-rate fields (device, length,
queues, ctas, ...) and the fresh ``matches_per_second`` must not fall more
than ``--tolerance`` (default 15%) below the baseline's.  The modelled rates
are deterministic, so the tolerance only absorbs deliberate model retunes —
an accidental slowdown of the modelled pipeline trips the gate.

Rows present in the baseline but absent from the fresh run are reported and
skipped, not failed: the CI job runs the benches with SIMTMSG_BENCH_FAST=1,
which sweeps a subset of configurations (fig_cluster_scale, for example,
drops its 1k/10k-node fleets and the 128-messages-per-node load in fast
mode, keeping the small-fleet rows value-identical to a full run).
Headlines are derived from rows and are ignored here.

Exit codes: 0 ok, 1 regression found, 2 malformed input/usage.

``--selftest`` verifies the gate itself: the baseline must pass against an
identical copy and must FAIL against a copy with every rate degraded 20%.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

RATE_FIELD = "matches_per_second"


def row_key(row: dict) -> tuple:
    """Identity of a row: every field except the measured rate."""
    return tuple(sorted((k, v) for k, v in row.items() if k != RATE_FIELD))


def index_rows(report: dict, bench: str) -> dict:
    indexed = {}
    for row in report.get("rows", []):
        if RATE_FIELD not in row:
            raise ValueError(f"{bench}: row without {RATE_FIELD}: {row}")
        key = row_key(row)
        if key in indexed:
            raise ValueError(f"{bench}: duplicate row key {key}")
        indexed[key] = float(row[RATE_FIELD])
    return indexed


def describe(key: tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def compare(baseline: dict, fresh: dict, tolerance: float, out=sys.stdout) -> bool:
    """Print the per-row delta table; return True when no row regressed."""
    if baseline.get("schema_version") != 1 or fresh.get("schema_version") != 1:
        raise ValueError("expected schema_version 1 in both reports")

    ok = True
    compared = skipped = 0
    header = f"{'status':<8} {'baseline':>14} {'fresh':>14} {'delta':>8}  row"
    for bench, base_report in sorted(baseline["benches"].items()):
        fresh_report = fresh.get("benches", {}).get(bench)
        if fresh_report is None:
            print(f"-- {bench}: missing from fresh run (skipped)", file=out)
            continue
        base_rows = index_rows(base_report, bench)
        fresh_rows = index_rows(fresh_report, bench)

        print(f"-- {bench}", file=out)
        print(header, file=out)
        for key, base_rate in base_rows.items():
            if key not in fresh_rows:
                skipped += 1
                print(f"{'skip':<8} {base_rate:>14.3e} {'—':>14} {'—':>8}  "
                      f"{describe(key)} (not in fresh run)", file=out)
                continue
            compared += 1
            fresh_rate = fresh_rows[key]
            delta = (fresh_rate - base_rate) / base_rate if base_rate != 0.0 else 0.0
            regressed = delta < -tolerance
            ok &= not regressed
            status = "FAIL" if regressed else "ok"
            print(f"{status:<8} {base_rate:>14.3e} {fresh_rate:>14.3e} "
                  f"{delta:>+7.1%}  {describe(key)}", file=out)
        for key in fresh_rows:
            if key not in base_rows:
                print(f"{'new':<8} {'—':>14} {fresh_rows[key]:>14.3e} {'—':>8}  "
                      f"{describe(key)} (not in baseline)", file=out)

    print(f"\ncompared {compared} rows, skipped {skipped}; "
          f"tolerance {tolerance:.0%} -> {'OK' if ok else 'REGRESSION'}", file=out)
    if compared == 0:
        raise ValueError("no rows compared — fresh report shares no rows with baseline")
    return ok


def selftest(baseline: dict, tolerance: float) -> int:
    import io

    if not compare(baseline, copy.deepcopy(baseline), tolerance, out=io.StringIO()):
        print("selftest FAILED: baseline does not pass against itself")
        return 1

    degraded = copy.deepcopy(baseline)
    for report in degraded["benches"].values():
        for row in report.get("rows", []):
            row[RATE_FIELD] = float(row[RATE_FIELD]) * 0.8
    if compare(baseline, degraded, tolerance, out=io.StringIO()):
        print("selftest FAILED: 20% degradation not caught")
        return 1

    print("selftest ok: identical report passes, 20% degradation is caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_matching.json")
    parser.add_argument("--fresh", help="freshly generated report to check")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional rate drop per row (default 0.15)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the gate catches a synthetic 20%% regression")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        if args.selftest:
            return selftest(baseline, args.tolerance)
        if args.fresh is None:
            parser.error("--fresh is required unless --selftest")
        with open(args.fresh) as f:
            fresh = json.load(f)
        return 0 if compare(baseline, fresh, args.tolerance) else 1
    except (OSError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

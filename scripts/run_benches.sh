#!/usr/bin/env bash
# Build Release, run the headline reproduction benches with --json, and
# merge the per-bench reports into BENCH_matching.json at the repo root
# (schema: docs/telemetry.md).
#
# --threads N (or THREADS=N) runs the emulation on N host threads (0 = all
# cores).  This only changes host wall-clock time, reported in each bench's
# log: the modelled numbers, and therefore BENCH_matching.json, are
# bit-identical for every thread count.
#
# OUT_JSON=<path> writes the merged report somewhere other than the repo
# root (used by the CI bench-regression job, which compares a fresh run
# against the committed baseline).  SIMTMSG_BENCH_FAST=1 makes the sweep
# benches run a reduced subset of configurations whose rows are
# value-identical to the same rows of a full run.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-release}"
out_json="${OUT_JSON:-${repo_root}/BENCH_matching.json}"
threads="${THREADS:-1}"
if [[ "${1:-}" == "--threads" && -n "${2:-}" ]]; then
  threads="$2"
  shift 2
fi
json_dir="$(mktemp -d)"
trap 'rm -rf "${json_dir}"' EXIT

benches=(fig4_matrix_rate fig5_partitioned fig5_runtime_shards fig_streams fig6b_hash_rate table2_summary fig_cluster_scale fig_wildcard_mix fig_neighborhood)

echo "== configuring ${build_dir} (Release)"
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release > /dev/null
echo "== building benches"
cmake --build "${build_dir}" -j --target "${benches[@]}" > /dev/null

for b in "${benches[@]}"; do
  echo "== running ${b} (${threads} host thread(s))"
  "${build_dir}/bench/${b}" --json "${json_dir}/${b}.json" --threads "${threads}" \
    > "${json_dir}/${b}.log"
  grep "^host wall time:" "${json_dir}/${b}.log" || true
done

echo "== merging into ${out_json}"
python3 - "${json_dir}" "${out_json}" "${benches[@]}" <<'PY'
import json, sys
json_dir, out_path, *benches = sys.argv[1:]
merged = {"schema_version": 1, "benches": {}}
for b in benches:
    with open(f"{json_dir}/{b}.json") as f:
        report = json.load(f)
    assert report["schema_version"] == 1, f"{b}: unexpected schema"
    assert report["bench"] == b, f"{b}: bench name mismatch"
    merged["benches"][b] = report
# The headline of headlines: matches/s for all six Table II rows.
t2 = merged["benches"]["table2_summary"]["headline"]
merged["table2_matches_per_second"] = {
    k: v for k, v in t2.items() if k.endswith("_matches_per_second")
}
assert len(merged["table2_matches_per_second"]) == 6, "expected six Table II rows"
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY

#include "matching/compaction.hpp"

#include <algorithm>

namespace simtmsg::matching {

Compactor::Stats Compactor::cost(std::size_t n_elements, std::size_t n_removed) const {
  Stats stats;
  if (n_elements == 0 || n_removed == 0) return stats;
  stats.removed = n_removed;

  if (n_removed == n_elements) {
    // Fully drained queue: nothing survives, so compaction degenerates to a
    // head-pointer reset ("the bubbles can be tolerated" case is moot).
    stats.events.alu_instructions = 4;
    stats.events.global_store_requests = 1;
    stats.events.global_transactions = 1;
    const simt::TimingModel model(*spec_);
    stats.cycles = model.cycles(stats.events, 1);
    return stats;
  }

  const std::size_t groups = (n_elements + 31) / 32;
  auto& e = stats.events;

  // Inter-group carry of the exclusive prefix scan: groups serialize on a
  // partial sum propagated through memory (a multi-warp scan with a global
  // round trip per group).  This term carries Section VI-B's observation
  // that compaction costs about 10% of the matching rate.
  e.stall_cycles += groups * 650;

  // Prefix scan over the match flags: one coalesced flag load per group and
  // a 5-step warp shuffle-scan, plus one cross-group partial-sum pass.
  e.global_load_requests += groups;
  e.global_transactions += groups;  // 32 x 1B flags per 128B segment.
  e.shuffle_instructions += groups * 5;
  e.alu_instructions += groups * 8;

  // Memory moves: every survivor behind the first removed element moves.
  // Elements are a 64-bit header plus a 64-bit payload handle (16 B), so a
  // 32-element group spans four 128-byte segments each way.
  const std::size_t movers = n_elements - n_removed;
  const std::size_t mover_groups = (movers + 31) / 32;
  e.global_load_requests += mover_groups * 2;
  e.global_store_requests += mover_groups * 2;
  e.global_transactions += mover_groups * 8;
  e.alu_instructions += mover_groups * 4;

  const simt::TimingModel model(*spec_);
  const int warps = static_cast<int>(std::min<std::size_t>(32, groups));
  stats.cycles = model.cycles(e, warps);
  stats.removed = n_removed;
  return stats;
}

}  // namespace simtmsg::matching

// Queue compaction (Section V-A): after a matching pass, matched elements
// are removed and the head pointer advanced — "composed of a prefix scan
// and memory move operations".  Section VI-B quantifies the cost at about
// 10 % of the matching rate; bench/ablation_unexpected reproduces that.
//
// The cost model charges, per 32-element group: one coalesced flag load, a
// warp shuffle-scan (log2(32) steps), and — for groups containing movers —
// coalesced header+payload loads and stores.
#pragma once

#include <cstdint>
#include <span>

#include "matching/queue.hpp"
#include "simt/device_spec.hpp"
#include "simt/event_counters.hpp"
#include "simt/timing_model.hpp"

namespace simtmsg::matching {

class Compactor {
 public:
  explicit Compactor(const simt::DeviceSpec& spec) noexcept : spec_(&spec) {}

  struct Stats {
    simt::EventCounters events;
    double cycles = 0.0;
    std::size_t removed = 0;
  };

  /// Event/cycle cost of compacting a queue of `n_elements` from which
  /// `n_removed` are being dropped (the survivors move).
  [[nodiscard]] Stats cost(std::size_t n_elements, std::size_t n_removed) const;

  /// Compact `q` (drop every element whose flag is non-zero) and return the
  /// modelled device cost of doing so.
  template <typename T>
  Stats compact(MatchQueue<T>& q, std::span<const std::uint8_t> matched) const {
    std::size_t removed = 0;
    for (const auto f : matched) removed += (f != 0);
    Stats stats = cost(q.size(), removed);
    const std::size_t actually_removed = q.compact(matched);
    stats.removed = actually_removed;
    return stats;
  }

 private:
  const simt::DeviceSpec* spec_;
};

}  // namespace simtmsg::matching

#include "matching/device_hash_table.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace simtmsg::matching {

DeviceHashTable::DeviceHashTable(std::size_t expected_elements, double table_ratio,
                                 util::HashKind hash) {
  prepare(expected_elements, table_ratio, hash);
}

void DeviceHashTable::prepare(std::size_t expected_elements, double table_ratio,
                              util::HashKind hash) {
  hash_ = hash;
  // Secondary sized to half the expected batch (it only absorbs primary
  // collisions); primary = ratio x secondary, giving ~2.5x headroom over
  // the batch for the paper's ratio of 5.
  const std::size_t secondary =
      util::next_pow2(std::max<std::size_t>(16, expected_elements / 2));
  const auto primary = static_cast<std::size_t>(
      static_cast<double>(secondary) * std::max(1.0, table_ratio));
  // assign() reuses capacity, so recycled tables stay allocation-free.
  primary_.assign(primary, 0);
  secondary_.assign(secondary, 0);
}

std::size_t DeviceHashTable::primary_slot(std::uint32_t key) const noexcept {
  return util::hash32(hash_, key) % primary_.size();
}

std::size_t DeviceHashTable::secondary_slot(std::uint32_t key) const noexcept {
  // Decorrelate the two levels by salting the key before hashing.
  return util::hash32(hash_, key ^ 0x9e3779b9u) % secondary_.size();
}

int DeviceHashTable::hash_cost(util::HashKind kind) noexcept {
  switch (kind) {
    case util::HashKind::kJenkins: return 12;      // 6 shift/add/xor pairs.
    case util::HashKind::kFnv1a: return 10;
    case util::HashKind::kMurmur3Fmix: return 6;
    case util::HashKind::kIdentity: return 1;
  }
  return 12;
}

DeviceHashTable::InsertOutcome DeviceHashTable::insert_resolve(const simt::LaneU32& keys,
                                                               const simt::LaneU32& values,
                                                               simt::LaneMask active) {
  InsertOutcome o;
  o.attempted = active;

  // Level 1: CAS into the primary table.  Lane order is the CAS priority
  // rule: when two lanes hash to the same slot, the lower lane wins and the
  // higher lane sees its entry (exactly the functional behaviour of
  // WarpContext::atomic_cas).
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (!util::test_bit(active, lane)) continue;
    auto& slot = primary_[primary_slot(keys[lane])];
    if (slot == 0) {
      slot = pack_entry(keys[lane], values[lane]);
      o.inserted = util::set_bit(o.inserted, lane);
    } else {
      o.collided = util::set_bit(o.collided, lane);
    }
  }

  // Level 2: colliding lanes retry in the secondary table.
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (!util::test_bit(o.collided, lane)) continue;
    auto& slot = secondary_[secondary_slot(keys[lane])];
    if (slot == 0) {
      slot = pack_entry(keys[lane], values[lane]);
      o.inserted = util::set_bit(o.inserted, lane);
    }
  }
  return o;
}

void DeviceHashTable::insert_charge(simt::WarpContext& warp, const simt::LaneU32& keys,
                                    const InsertOutcome& o) const {
  // Mirrors the fused operation's counter stream: hash + slot compute,
  // entry packing, level-1 CAS; then for the colliding subset a second hash
  // and CAS in the secondary table.
  simt::LaneSize slots;
  warp.lanes([&](int lane) { slots[lane] = primary_slot(keys[lane]); },
             hash_cost(hash_) + 1);
  warp.count_alu(2);  // pack_entry of the desired words.
  warp.count_atomic_cas(slots);

  warp.count_branch(o.collided != 0 && o.collided != o.attempted);
  if (o.collided == 0) return;

  warp.set_active(o.collided);
  warp.lanes([&](int lane) { slots[lane] = secondary_slot(keys[lane]); },
             hash_cost(hash_) + 1);
  warp.count_atomic_cas(slots);
  warp.set_active(o.attempted);
}

void DeviceHashTable::insert(simt::WarpContext& warp, const simt::LaneU32& keys,
                             const simt::LaneU32& values, simt::LaneBool& inserted) {
  const InsertOutcome o = insert_resolve(keys, values, warp.active());
  insert_charge(warp, keys, o);
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (!util::test_bit(o.attempted, lane)) continue;
    inserted[lane] = util::test_bit(o.inserted, lane);
  }
}

DeviceHashTable::ProbeOutcome DeviceHashTable::probe_resolve(const simt::LaneU32& keys,
                                                             simt::LaneMask active,
                                                             Verifier verify) {
  ProbeOutcome o;
  o.attempted = active;

  const auto try_level = [&](std::vector<std::uint64_t>& table, bool primary_level,
                             simt::LaneMask lvl_active, int level) {
    auto& lv = o.levels[level];
    lv.reached = true;
    lv.active = lvl_active;

    std::size_t slots[simt::kWarpSize];
    std::uint64_t seen[simt::kWarpSize];
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!util::test_bit(lvl_active, lane)) continue;
      slots[lane] = primary_level ? primary_slot(keys[lane]) : secondary_slot(keys[lane]);
      seen[lane] = table[slots[lane]];
    }

    // Lanes whose slot holds their key attempt to claim it by CAS-to-empty.
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!util::test_bit(lvl_active, lane)) continue;
      if (seen[lane] != 0 &&
          static_cast<std::uint32_t>(seen[lane] >> 32) == keys[lane]) {
        lv.want = util::set_bit(lv.want, lane);
      }
    }
    if (lv.want == 0) return;

    // Full-entry verification before claiming: aliased keys must not evict
    // the genuine owner's entry.
    lv.verified = lv.want;
    if (verify) {
      lv.verify_ran = true;
      for (int lane = 0; lane < simt::kWarpSize; ++lane) {
        if (!util::test_bit(lv.want, lane)) continue;
        const auto value = static_cast<std::uint32_t>(seen[lane] & 0xFFFF'FFFFu) - 1;
        if (!verify(lane, value)) lv.verified = util::clear_bit(lv.verified, lane);
      }
      if (lv.verified == 0) return;
    }

    // CAS-to-empty claims in lane order: if two lanes race for the same
    // entry, the lower lane claims it and the higher lane's CAS fails.
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!util::test_bit(lv.verified, lane)) continue;
      if (table[slots[lane]] == seen[lane]) {
        table[slots[lane]] = 0;
        o.found = util::set_bit(o.found, lane);
        o.values[lane] = static_cast<std::uint32_t>(seen[lane] & 0xFFFF'FFFFu) - 1;
      }
    }
  };

  try_level(primary_, /*primary_level=*/true, active, 0);

  // Unresolved lanes fall through to the secondary table.
  const simt::LaneMask unresolved = active & ~o.found;
  if (unresolved != 0) try_level(secondary_, /*primary_level=*/false, unresolved, 1);
  return o;
}

void DeviceHashTable::probe_charge(simt::WarpContext& warp, const simt::LaneU32& keys,
                                   const ProbeOutcome& o) const {
  const auto charge_level = [&](bool primary_level, const ProbeOutcome::Level& lv) {
    warp.set_active(lv.active);
    simt::LaneSize slots;
    warp.lanes(
        [&](int lane) {
          slots[lane] = primary_level ? primary_slot(keys[lane]) : secondary_slot(keys[lane]);
        },
        hash_cost(hash_) + 1);
    warp.count_global_load<std::uint64_t>(slots);  // The `seen` snapshot.
    warp.count_alu(2);
    warp.count_branch(lv.want != 0 && lv.want != lv.active);
    if (lv.want == 0) return;

    if (lv.verify_ran) {
      warp.counters().global_load_requests += 1;
      warp.counters().global_transactions +=
          static_cast<std::uint64_t>(util::popc(lv.want));
      warp.count_alu(2);
      if (lv.verified == 0) return;
    }

    warp.set_active(lv.verified);
    warp.count_atomic_cas(slots);
    warp.set_active(lv.active);
  };

  charge_level(/*primary_level=*/true, o.levels[0]);
  if (o.levels[1].reached) charge_level(/*primary_level=*/false, o.levels[1]);
  warp.set_active(o.attempted);
}

void DeviceHashTable::probe_claim(simt::WarpContext& warp, const simt::LaneU32& keys,
                                  simt::LaneU32& values, simt::LaneBool& found,
                                  Verifier verify) {
  const ProbeOutcome o = probe_resolve(keys, warp.active(), verify);
  probe_charge(warp, keys, o);
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    found[lane] = util::test_bit(o.found, lane);
    if (found[lane]) values[lane] = o.values[lane];
  }
}

bool DeviceHashTable::reinsert_host(std::uint32_t key, std::uint32_t value) {
  const std::uint64_t entry = pack_entry(key, value);
  auto& p = primary_[primary_slot(key)];
  if (p == 0) {
    p = entry;
    return true;
  }
  auto& s = secondary_[secondary_slot(key)];
  if (s == 0) {
    s = entry;
    return true;
  }
  return false;
}

std::size_t DeviceHashTable::occupancy() const noexcept {
  std::size_t n = 0;
  for (const auto e : primary_) n += (e != 0);
  for (const auto e : secondary_) n += (e != 0);
  return n;
}

void DeviceHashTable::clear() {
  std::fill(primary_.begin(), primary_.end(), 0);
  std::fill(secondary_.begin(), secondary_.end(), 0);
}

}  // namespace simtmsg::matching

#include "matching/device_hash_table.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace simtmsg::matching {

DeviceHashTable::DeviceHashTable(std::size_t expected_elements, double table_ratio,
                                 util::HashKind hash)
    : hash_(hash) {
  // Secondary sized to half the expected batch (it only absorbs primary
  // collisions); primary = ratio x secondary, giving ~2.5x headroom over
  // the batch for the paper's ratio of 5.
  const std::size_t secondary =
      util::next_pow2(std::max<std::size_t>(16, expected_elements / 2));
  const auto primary = static_cast<std::size_t>(
      static_cast<double>(secondary) * std::max(1.0, table_ratio));
  primary_.assign(primary, 0);
  secondary_.assign(secondary, 0);
}

std::size_t DeviceHashTable::primary_slot(std::uint32_t key) const noexcept {
  return util::hash32(hash_, key) % primary_.size();
}

std::size_t DeviceHashTable::secondary_slot(std::uint32_t key) const noexcept {
  // Decorrelate the two levels by salting the key before hashing.
  return util::hash32(hash_, key ^ 0x9e3779b9u) % secondary_.size();
}

int DeviceHashTable::hash_cost(util::HashKind kind) noexcept {
  switch (kind) {
    case util::HashKind::kJenkins: return 12;      // 6 shift/add/xor pairs.
    case util::HashKind::kFnv1a: return 10;
    case util::HashKind::kMurmur3Fmix: return 6;
    case util::HashKind::kIdentity: return 1;
  }
  return 12;
}

void DeviceHashTable::insert(simt::WarpContext& warp, const simt::LaneU32& keys,
                             const simt::LaneU32& values, simt::LaneBool& inserted) {
  const simt::LaneMask entry_mask = warp.active();

  // Level 1: hash + CAS into the primary table.
  simt::LaneSize slots;
  warp.lanes([&](int lane) { slots[lane] = primary_slot(keys[lane]); },
             hash_cost(hash_) + 1);
  simt::LaneU64 desired;
  warp.lanes([&](int lane) { desired[lane] = pack_entry(keys[lane], values[lane]); }, 2);
  const auto prev1 =
      warp.atomic_cas(std::span<std::uint64_t>(primary_), slots, simt::LaneU64(0), desired);

  simt::LaneMask collided = 0;
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (!warp.lane_active(lane)) continue;
    inserted[lane] = (prev1[lane] == 0);
    if (!inserted[lane]) collided = util::set_bit(collided, lane);
  }
  warp.count_branch(collided != 0 && collided != entry_mask);
  if (collided == 0) return;

  // Level 2: colliding lanes retry in the secondary table.
  warp.set_active(collided);
  warp.lanes([&](int lane) { slots[lane] = secondary_slot(keys[lane]); },
             hash_cost(hash_) + 1);
  const auto prev2 =
      warp.atomic_cas(std::span<std::uint64_t>(secondary_), slots, simt::LaneU64(0), desired);
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (!util::test_bit(collided, lane)) continue;
    inserted[lane] = (prev2[lane] == 0);
  }
  warp.set_active(entry_mask);
}

void DeviceHashTable::probe_claim(simt::WarpContext& warp, const simt::LaneU32& keys,
                                  simt::LaneU32& values, simt::LaneBool& found,
                                  const Verifier& verify) {
  const simt::LaneMask entry_mask = warp.active();

  const auto try_level = [&](std::vector<std::uint64_t>& table, bool primary_level) {
    simt::LaneSize slots;
    warp.lanes(
        [&](int lane) {
          slots[lane] = primary_level ? primary_slot(keys[lane]) : secondary_slot(keys[lane]);
        },
        hash_cost(hash_) + 1);
    const auto seen = warp.load_global(std::span<const std::uint64_t>(table), slots);

    // Lanes whose slot holds their key attempt to claim it by CAS-to-empty.
    simt::LaneMask want = 0;
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!warp.lane_active(lane)) continue;
      if (seen[lane] != 0 &&
          static_cast<std::uint32_t>(seen[lane] >> 32) == keys[lane]) {
        want = util::set_bit(want, lane);
      }
    }
    warp.count_alu(2);
    warp.count_branch(want != 0 && want != warp.active());
    if (want == 0) return;

    // Full-entry verification before claiming: aliased keys must not evict
    // the genuine owner's entry.
    if (verify) {
      warp.counters().global_load_requests += 1;
      warp.counters().global_transactions += static_cast<std::uint64_t>(
          util::popc(want));
      warp.count_alu(2);
      for (int lane = 0; lane < simt::kWarpSize; ++lane) {
        if (!util::test_bit(want, lane)) continue;
        const auto value =
            static_cast<std::uint32_t>(seen[lane] & 0xFFFF'FFFFu) - 1;
        if (!verify(lane, value)) want = util::clear_bit(want, lane);
      }
      if (want == 0) return;
    }

    const simt::LaneMask prev_active = warp.set_active(want);
    const auto prev =
        warp.atomic_cas(std::span<std::uint64_t>(table), slots, seen, simt::LaneU64(0));
    for (int lane = 0; lane < simt::kWarpSize; ++lane) {
      if (!util::test_bit(want, lane)) continue;
      if (prev[lane] == seen[lane]) {
        found[lane] = true;
        values[lane] = static_cast<std::uint32_t>(seen[lane] & 0xFFFF'FFFFu) - 1;
      }
    }
    warp.set_active(prev_active);
  };

  for (int lane = 0; lane < simt::kWarpSize; ++lane) found[lane] = false;

  try_level(primary_, /*primary_level=*/true);

  // Unresolved lanes fall through to the secondary table.
  simt::LaneMask unresolved = 0;
  for (int lane = 0; lane < simt::kWarpSize; ++lane) {
    if (warp.lane_active(lane) && !found[lane]) unresolved = util::set_bit(unresolved, lane);
  }
  if (unresolved != 0) {
    warp.set_active(unresolved);
    try_level(secondary_, /*primary_level=*/false);
  }
  warp.set_active(entry_mask);
}

bool DeviceHashTable::reinsert_host(std::uint32_t key, std::uint32_t value) {
  const std::uint64_t entry = pack_entry(key, value);
  auto& p = primary_[primary_slot(key)];
  if (p == 0) {
    p = entry;
    return true;
  }
  auto& s = secondary_[secondary_slot(key)];
  if (s == 0) {
    s = entry;
    return true;
  }
  return false;
}

std::size_t DeviceHashTable::occupancy() const noexcept {
  std::size_t n = 0;
  for (const auto e : primary_) n += (e != 0);
  for (const auto e : secondary_) n += (e != 0);
  return n;
}

void DeviceHashTable::clear() {
  std::fill(primary_.begin(), primary_.end(), 0);
  std::fill(secondary_.begin(), secondary_.end(), 0);
}

}  // namespace simtmsg::matching

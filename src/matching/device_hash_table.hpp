// Two-level device hash table (Section VI-C).
//
// "We implemented a two-level hash table with the primary table being five
// times larger than the secondary table."  Receive requests are inserted
// with a warp-wide CAS; on a primary collision the entry goes to the
// secondary table; on a second collision the owning thread holds the
// request for the next iteration.  Probes try primary then secondary and
// *claim* a matching entry by CAS-ing it back to empty, which is what makes
// concurrent matching race-free.
//
// Entries are single 64-bit words: (key << 32) | (value + 1); 0 = empty.
// The default hash is Robert Jenkins' 32-bit 6-shift function — the paper's
// choice — selectable for the ablation study the paper defers to future
// work.
#pragma once

#include <cstdint>
#include <vector>

#include "simt/warp.hpp"
#include "util/function_ref.hpp"
#include "util/hash.hpp"

namespace simtmsg::matching {

class DeviceHashTable {
 public:
  /// An empty table; size it with prepare() before use.
  DeviceHashTable() = default;

  /// A table able to hold about `expected_elements` entries. `table_ratio`
  /// is the primary:secondary size ratio (paper: 5).
  DeviceHashTable(std::size_t expected_elements, double table_ratio = 5.0,
                  util::HashKind hash = util::HashKind::kJenkins);

  /// (Re)size and zero the table for a batch of about `expected_elements`.
  /// Grow-only storage: repreparing a recycled table at or below its
  /// high-water size performs no allocation.
  void prepare(std::size_t expected_elements, double table_ratio = 5.0,
               util::HashKind hash = util::HashKind::kJenkins);

  /// Warp-cooperative insert of (key, value) per active lane.
  /// inserted[lane] = false means both levels collided and the lane must
  /// retry next iteration.
  void insert(simt::WarpContext& warp, const simt::LaneU32& keys,
              const simt::LaneU32& values, simt::LaneBool& inserted);

  /// Full-entry verification callback: given the probing lane and the
  /// candidate entry's value, decide whether the entry really matches.
  /// Guards against 32-bit key aliasing *before* the claim, so an aliased
  /// entry is never removed (removing and re-inserting would starve the
  /// genuine owner).  Charged as one extra global load per verified group.
  /// Non-owning: the callable only needs to outlive the probe call.
  using Verifier = util::FunctionRef<bool(int lane, std::uint32_t value)>;

  /// Warp-cooperative probe-and-claim per active lane.  When found[lane],
  /// values[lane] holds the claimed entry's value and the entry has been
  /// removed from the table.  Entries failing `verify` are left in place.
  void probe_claim(simt::WarpContext& warp, const simt::LaneU32& keys,
                   simt::LaneU32& values, simt::LaneBool& found,
                   Verifier verify = nullptr);

  // --- Resolve / charge split --------------------------------------------
  //
  // insert() and probe_claim() above execute functionally and charge costs
  // in one pass.  The parallel execution path of the HashMatcher needs the
  // two concerns separated: the *resolve* step computes the functional
  // outcome (and mutates the table) serially in warp-group order — cheap
  // scalar work — while the *charge* step replays only the modelled cost of
  // the operation against const table metadata, so the charges for
  // different CTAs can run concurrently on a thread pool.  For any given
  // outcome, charge emits a counter stream bit-identical to the fused
  // operation; insert()/probe_claim() are implemented as resolve + charge,
  // which is what guarantees the serial and parallel paths agree.

  /// Functional outcome of one warp-wide insert.
  struct InsertOutcome {
    simt::LaneMask attempted = 0;  ///< Lanes that participated.
    simt::LaneMask collided = 0;   ///< Level-1 losers that retried in the secondary.
    simt::LaneMask inserted = 0;   ///< Lanes whose entry landed (either level).
  };

  /// Resolve a warp-wide insert in lane order (the CAS priority rule).
  /// Mutates the table; performs no event counting.
  [[nodiscard]] InsertOutcome insert_resolve(const simt::LaneU32& keys,
                                             const simt::LaneU32& values,
                                             simt::LaneMask active);

  /// Charge the modelled cost of an insert with outcome `o`.  Const: safe
  /// to call concurrently from multiple warps/CTAs.
  void insert_charge(simt::WarpContext& warp, const simt::LaneU32& keys,
                     const InsertOutcome& o) const;

  /// Functional outcome of one warp-wide probe-and-claim.
  struct ProbeOutcome {
    simt::LaneMask attempted = 0;
    simt::LaneMask found = 0;  ///< Lanes that claimed an entry.
    simt::LaneU32 values;      ///< Claimed values (found lanes only).
    struct Level {
      simt::LaneMask active = 0;    ///< Lanes probing this level.
      simt::LaneMask want = 0;      ///< Key-matched lanes before verification.
      simt::LaneMask verified = 0;  ///< Lanes surviving verification.
      bool reached = false;
      bool verify_ran = false;      ///< Whether the verification load happened.
    } levels[2];                    ///< [0] primary, [1] secondary.
  };

  /// Resolve a warp-wide probe-and-claim in lane order.  Mutates the table
  /// (claims); performs no event counting.
  [[nodiscard]] ProbeOutcome probe_resolve(const simt::LaneU32& keys, simt::LaneMask active,
                                           Verifier verify = nullptr);

  /// Charge the modelled cost of a probe with outcome `o`.  Const: safe to
  /// call concurrently from multiple warps/CTAs.
  void probe_charge(simt::WarpContext& warp, const simt::LaneU32& keys,
                    const ProbeOutcome& o) const;

  /// Host-side (un-counted) insert used to undo an erroneous claim after a
  /// full-envelope verification failure (32-bit key aliasing).
  bool reinsert_host(std::uint32_t key, std::uint32_t value);

  [[nodiscard]] std::size_t primary_size() const noexcept { return primary_.size(); }
  [[nodiscard]] std::size_t secondary_size() const noexcept { return secondary_.size(); }
  [[nodiscard]] std::size_t occupancy() const noexcept;  ///< Live entries.
  [[nodiscard]] util::HashKind hash_kind() const noexcept { return hash_; }

  void clear();

  /// Approximate warp-instruction cost of evaluating the selected hash
  /// function once (charged by insert/probe for each level probed).
  [[nodiscard]] static int hash_cost(util::HashKind kind) noexcept;

 private:
  [[nodiscard]] std::size_t primary_slot(std::uint32_t key) const noexcept;
  [[nodiscard]] std::size_t secondary_slot(std::uint32_t key) const noexcept;

  static constexpr std::uint64_t pack_entry(std::uint32_t key, std::uint32_t value) noexcept {
    return (static_cast<std::uint64_t>(key) << 32) |
           (static_cast<std::uint64_t>(value) + 1);
  }

  std::vector<std::uint64_t> primary_;
  std::vector<std::uint64_t> secondary_;
  util::HashKind hash_ = util::HashKind::kJenkins;
};

}  // namespace simtmsg::matching

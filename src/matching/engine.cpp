#include "matching/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/hash_matcher.hpp"
#include "matching/matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/pattern_table_matcher.hpp"
#include "matching/queue.hpp"
#include "matching/workspace.hpp"
#include "util/bits.hpp"

namespace simtmsg::matching {

std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kMatrix: return "matrix";
    case Algorithm::kPartitionedMatrix: return "partitioned-matrix";
    case Algorithm::kHashTable: return "hash-table";
    case Algorithm::kPatternTable: return "pattern-table";
  }
  return "unknown";
}

struct MatchEngine::Impl {
  std::unique_ptr<Matcher> matcher;
  Algorithm algorithm = Algorithm::kMatrix;

  /// Steady-state scratch for every match()/match_queues() call on this
  /// engine (engines are per-thread; the workspace is not locked).
  MatchWorkspace ws;

  // Totals behind snapshot() — accumulated once per public call.
  std::uint64_t calls = 0;
  std::uint64_t matches = 0;
  double cycles = 0.0;
  double seconds = 0.0;
  std::uint64_t iterations = 0;
  simt::EventCounters scan_events;
  simt::EventCounters reduce_events;
  simt::EventCounters compact_events;

  void accumulate(const SimtMatchStats& s) noexcept {
    ++calls;
    matches += s.result.matched();
    cycles += s.cycles;
    seconds += s.seconds;
    iterations += static_cast<std::uint64_t>(s.iterations);
    scan_events += s.scan_events;
    reduce_events += s.reduce_events;
    compact_events += s.compact_events;
  }
};

MatchEngine::MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg)
    : MatchEngine(spec, cfg, simt::ExecutionPolicy::serial()) {}

MatchEngine::MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg,
                         const simt::ExecutionPolicy& policy)
    : spec_(&spec), cfg_(cfg), impl_(std::make_unique<Impl>()) {
  if (!valid(cfg_)) {
    throw std::invalid_argument("inconsistent semantics: " + describe(cfg_));
  }
  if (cfg_.pattern_table) {
    // The pattern-table matcher provides full MPI semantics (posted order,
    // both wildcards) at exact-probe cost, so it serves every ordering /
    // wildcard combination the config requests; wildcard rejection under
    // !wildcards still happens in match_impl_into.
    PatternTableMatcher::Options opt;
    opt.policy = policy;
    impl_->matcher = std::make_unique<PatternTableMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kPatternTable;
  } else if (hashable(cfg_)) {
    HashMatcher::Options opt;
    // Partitioning the rank space across CTAs is the hash analogue of the
    // multi-queue layout.
    opt.ctas = std::max(1, cfg_.partitions > 1 ? cfg_.partitions / 4 : 1);
    opt.policy = policy;
    impl_->matcher = std::make_unique<HashMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kHashTable;
  } else if (cfg_.partitions > 1) {
    PartitionedMatcher::Options opt;
    opt.partitions = cfg_.partitions;
    opt.matrix.compact = cfg_.unexpected;
    opt.policy = policy;
    impl_->matcher = std::make_unique<PartitionedMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kPartitionedMatrix;
  } else {
    MatrixMatcher::Options opt;
    opt.compact = cfg_.unexpected;
    opt.policy = policy;
    impl_->matcher = std::make_unique<MatrixMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kMatrix;
  }
}

MatchEngine::~MatchEngine() = default;
MatchEngine::MatchEngine(MatchEngine&&) noexcept = default;
MatchEngine& MatchEngine::operator=(MatchEngine&&) noexcept = default;

Algorithm MatchEngine::algorithm_kind() const noexcept { return impl_->algorithm; }

telemetry::TelemetryReport MatchEngine::snapshot() const {
  telemetry::TelemetryReport r;
  r.calls = impl_->calls;
  r.matches = impl_->matches;
  r.cycles = impl_->cycles;
  r.seconds = impl_->seconds;
  r.iterations = impl_->iterations;
  r.scan_events = impl_->scan_events;
  r.reduce_events = impl_->reduce_events;
  r.compact_events = impl_->compact_events;
  return r;
}

namespace {

/// The engine's bucket key: stream id in the high 32 bits, communicator in
/// the low 32.  Default-stream traffic keys as the bare 32-bit comm, so the
/// hash and first-appearance order below reproduce the pre-stream comm
/// split exactly — bucketing is observably unchanged until a non-default
/// stream shows up in a batch.
[[nodiscard]] constexpr std::uint64_t bucket_key(CommId comm, StreamId stream) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(stream)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm));
}

/// Index the distinct (comm, stream) buckets of both inputs in first-
/// appearance order: fills ew.keys and the per-element dense bucket arrays.
/// One pass over each input against an open-addressed table sized O(M + R),
/// so the whole operation is O(M + R) — the old per-comm rescan was
/// O(C * (M + R)).  The key getters abstract the element layout: the
/// span-based overload strides over AoS elements, the queue path feeds the
/// contiguous comm/stream lanes (two ints per element, no payload-adjacent
/// bytes).
template <typename MsgKey, typename ReqKey>
void index_comms_impl(EngineWorkspace& ew, std::size_t n_msgs, std::size_t n_reqs,
                      MsgKey msg_key, ReqKey req_key) {
  const std::size_t slots =
      util::next_pow2(std::max<std::size_t>(16, 2 * (n_msgs + n_reqs)));
  ew.slot_key.assign(slots, 0);
  ew.slot_index.assign(slots, -1);
  ew.keys.clear();

  const std::size_t mask = slots - 1;
  const auto index_of = [&](std::uint64_t k) -> std::uint32_t {
    std::uint64_t x = k;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    std::size_t s = static_cast<std::size_t>(x) & mask;
    while (true) {
      if (ew.slot_index[s] < 0) {
        ew.slot_key[s] = k;
        ew.slot_index[s] = static_cast<std::int32_t>(ew.keys.size());
        ew.keys.push_back(k);
        return static_cast<std::uint32_t>(ew.slot_index[s]);
      }
      if (ew.slot_key[s] == k) return static_cast<std::uint32_t>(ew.slot_index[s]);
      s = (s + 1) & mask;
    }
  };

  ew.msg_bucket.resize(n_msgs);
  for (std::size_t i = 0; i < n_msgs; ++i) {
    ew.msg_bucket[i] = index_of(msg_key(i));
  }
  ew.req_bucket.resize(n_reqs);
  for (std::size_t i = 0; i < n_reqs; ++i) {
    ew.req_bucket[i] = index_of(req_key(i));
  }
}

void index_comms(EngineWorkspace& ew, std::span<const Message> msgs,
                 std::span<const RecvRequest> reqs) {
  index_comms_impl(
      ew, msgs.size(), reqs.size(),
      [&](std::size_t i) { return bucket_key(msgs[i].env.comm, msgs[i].env.stream); },
      [&](std::size_t i) { return bucket_key(reqs[i].env.comm, reqs[i].env.stream); });
}

void index_comms(EngineWorkspace& ew, std::span<const CommId> msg_comms,
                 std::span<const StreamId> msg_streams, std::span<const CommId> req_comms,
                 std::span<const StreamId> req_streams) {
  index_comms_impl(
      ew, msg_comms.size(), req_comms.size(),
      [&](std::size_t i) { return bucket_key(msg_comms[i], msg_streams[i]); },
      [&](std::size_t i) { return bucket_key(req_comms[i], req_streams[i]); });
}

/// Stable counting-sort scatter of both spans into bucket-contiguous order
/// (requires index_comms first).  Afterwards bucket b of the messages is
/// sub_msgs[start .. msg_offset[b]) with start = (b == 0 ? 0 :
/// msg_offset[b - 1]); msg_map carries the original indices in the same
/// layout.  Likewise for the requests.
void scatter_comms(EngineWorkspace& ew, std::span<const Message> msgs,
                   std::span<const RecvRequest> reqs) {
  const std::size_t n_comms = ew.keys.size();

  // Counts at [b + 1], then prefix-summed so msg_offset[b] = start of b.
  ew.msg_offset.assign(n_comms + 1, 0);
  for (const auto b : ew.msg_bucket) ++ew.msg_offset[b + 1];
  for (std::size_t b = 1; b <= n_comms; ++b) ew.msg_offset[b] += ew.msg_offset[b - 1];
  ew.req_offset.assign(n_comms + 1, 0);
  for (const auto b : ew.req_bucket) ++ew.req_offset[b + 1];
  for (std::size_t b = 1; b <= n_comms; ++b) ew.req_offset[b] += ew.req_offset[b - 1];

  // Scatter, bumping each bucket's cursor: afterwards msg_offset[b] has
  // moved from start-of-b to end-of-b.
  ew.sub_msgs.resize(msgs.size());
  ew.msg_map.resize(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto pos = ew.msg_offset[ew.msg_bucket[i]]++;
    ew.sub_msgs[pos] = msgs[i];
    ew.msg_map[pos] = static_cast<std::uint32_t>(i);
  }
  ew.sub_reqs.resize(reqs.size());
  ew.req_map.resize(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto pos = ew.req_offset[ew.req_bucket[i]]++;
    ew.sub_reqs[pos] = reqs[i];
    ew.req_map[pos] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace

void MatchEngine::match_single_comm_into(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs,
                                         SimtMatchStats& out) const {
  impl_->matcher->match_into(msgs, reqs, impl_->ws, out);
}

void MatchEngine::match_impl_into(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs,
                                  SimtMatchStats& out) const {
  if (!cfg_.wildcards) {
    for (const auto& r : reqs) {
      if (has_wildcard(r.env)) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  // "The top level partitions among communicators, as there exist no
  // dependencies" (Section VI): one matching engine per communicator.
  // Streams extend the same argument — matches never cross an ordering
  // domain — so the split is per (comm, stream) bucket.  Multi-bucket
  // batches are split exactly; the per-bucket engines would run
  // concurrently on distinct SMs, but we charge them serialized on one SM
  // (conservative).
  auto& ew = impl_->ws.engine;
  index_comms(ew, msgs, reqs);
  if (ew.keys.size() <= 1) {
    match_single_comm_into(msgs, reqs, out);
  } else {
    scatter_comms(ew, msgs, reqs);
    out.reset(reqs.size());
    std::size_t m_begin = 0;
    std::size_t r_begin = 0;
    for (std::size_t b = 0; b < ew.keys.size(); ++b) {
      const std::size_t m_end = ew.msg_offset[b];
      const std::size_t r_end = ew.req_offset[b];
      const auto sub_msgs =
          std::span<const Message>(ew.sub_msgs).subspan(m_begin, m_end - m_begin);
      const auto sub_reqs =
          std::span<const RecvRequest>(ew.sub_reqs).subspan(r_begin, r_end - r_begin);

      SimtMatchStats& sub = ew.sub;
      match_single_comm_into(sub_msgs, sub_reqs, sub);
      for (std::size_t r = 0; r < sub.result.request_match.size(); ++r) {
        const auto m = sub.result.request_match[r];
        if (m == kNoMatch) continue;
        out.result.request_match[ew.req_map[r_begin + r]] = static_cast<std::int32_t>(
            ew.msg_map[m_begin + static_cast<std::size_t>(m)]);
      }
      out.scan_events += sub.scan_events;
      out.reduce_events += sub.reduce_events;
      out.compact_events += sub.compact_events;
      out.cycles += sub.cycles;
      out.seconds += sub.seconds;
      out.iterations += sub.iterations;
      out.warps_used = std::max(out.warps_used, sub.warps_used);
      out.ctas_used = std::max(out.ctas_used, sub.ctas_used);
      m_begin = m_end;
      r_begin = r_end;
    }
  }

  if (!cfg_.unexpected && out.result.matched() != msgs.size()) {
    throw std::runtime_error(
        "unexpected message encountered, but the configured semantics prohibit "
        "unexpected messages (pre-post all receives or enable `unexpected`)");
  }
}

SimtMatchStats MatchEngine::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  SimtMatchStats stats;
  match(msgs, reqs, stats);
  return stats;
}

void MatchEngine::match(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                        SimtMatchStats& out) const {
  match_impl_into(msgs, reqs, out);
  impl_->accumulate(out);
}

SimtMatchStats MatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats;
  match_queues(mq, rq, stats);
  return stats;
}

void MatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq, SimtMatchStats& out) const {
  if (!cfg_.wildcards) {
    // Lane scan: two contiguous int arrays instead of striding AoS structs.
    const EnvelopeLanes lanes = rq.lanes();
    for (std::size_t i = 0; i < lanes.src.size(); ++i) {
      if (lanes.src[i] == kAnySource || lanes.tag[i] == kAnyTag) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  auto& ws = impl_->ws;
  index_comms(ws.engine, mq.lanes().comm, mq.lanes().stream, rq.lanes().comm,
              rq.lanes().stream);

  if (ws.engine.keys.size() <= 1) {
    // Single (comm, stream) bucket: every matcher drains live queues
    // natively (or through the interface's default match-and-compact).
    impl_->matcher->match_queues_into(mq, rq, ws, out);
    impl_->accumulate(out);
    return;
  }

  // Multi-bucket: batch-match (match_impl_into splits buckets), then
  // compact both queues through the workspace flag vectors.
  match_impl_into(mq.view(), rq.view(), out);
  ws.msg_flags.assign(mq.size(), 0);
  ws.req_flags.assign(rq.size(), 0);
  for (std::size_t r = 0; r < out.result.request_match.size(); ++r) {
    const auto m = out.result.request_match[r];
    if (m == kNoMatch) continue;
    ws.req_flags[r] = 1;
    ws.msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(ws.msg_flags);
  (void)rq.compact(ws.req_flags);
  impl_->accumulate(out);
}

void MatchEngine::match_batch(std::span<const Message> msg_arrivals,
                              std::span<const RecvRequest> req_arrivals, MessageQueue& mq,
                              RecvQueue& rq, SimtMatchStats& out) const {
  mq.push_n(msg_arrivals);
  rq.push_n(req_arrivals);
  match_queues(mq, rq, out);
}

SimtMatchStats MatchEngine::match_batch(std::span<const Message> msg_arrivals,
                                        std::span<const RecvRequest> req_arrivals,
                                        MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats;
  match_batch(msg_arrivals, req_arrivals, mq, rq, stats);
  return stats;
}

}  // namespace simtmsg::matching

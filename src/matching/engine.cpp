#include "matching/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/hash_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/queue.hpp"

namespace simtmsg::matching {

struct MatchEngine::Impl {
  std::unique_ptr<MatrixMatcher> matrix;
  std::unique_ptr<PartitionedMatcher> partitioned;
  std::unique_ptr<HashMatcher> hash;
};

MatchEngine::MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg)
    : spec_(&spec), cfg_(cfg), impl_(std::make_unique<Impl>()) {
  if (!valid(cfg_)) {
    throw std::invalid_argument("inconsistent semantics: " + describe(cfg_));
  }
  if (hashable(cfg_)) {
    HashMatcher::Options opt;
    // Partitioning the rank space across CTAs is the hash analogue of the
    // multi-queue layout.
    opt.ctas = std::max(1, cfg_.partitions > 1 ? cfg_.partitions / 4 : 1);
    impl_->hash = std::make_unique<HashMatcher>(spec, opt);
  } else if (cfg_.partitions > 1) {
    PartitionedMatcher::Options opt;
    opt.partitions = cfg_.partitions;
    opt.matrix.compact = cfg_.unexpected;
    impl_->partitioned = std::make_unique<PartitionedMatcher>(spec, opt);
  } else {
    MatrixMatcher::Options opt;
    opt.compact = cfg_.unexpected;
    impl_->matrix = std::make_unique<MatrixMatcher>(spec, opt);
  }
}

MatchEngine::~MatchEngine() = default;
MatchEngine::MatchEngine(MatchEngine&&) noexcept = default;
MatchEngine& MatchEngine::operator=(MatchEngine&&) noexcept = default;

std::string_view MatchEngine::algorithm() const noexcept {
  if (impl_->hash) return "hash-table";
  if (impl_->partitioned) return "partitioned-matrix";
  return "matrix";
}

namespace {

/// Distinct communicators in first-appearance order.
std::vector<CommId> comms_of(std::span<const Message> msgs,
                             std::span<const RecvRequest> reqs) {
  std::vector<CommId> comms;
  const auto note = [&comms](CommId c) {
    for (const auto seen : comms) {
      if (seen == c) return;
    }
    comms.push_back(c);
  };
  for (const auto& m : msgs) note(m.env.comm);
  for (const auto& r : reqs) note(r.env.comm);
  return comms;
}

}  // namespace

SimtMatchStats MatchEngine::match_single_comm(std::span<const Message> msgs,
                                              std::span<const RecvRequest> reqs) const {
  if (impl_->hash) return impl_->hash->match(msgs, reqs);
  if (impl_->partitioned) return impl_->partitioned->match(msgs, reqs);
  MessageQueue mq;
  RecvQueue rq;
  for (const auto& m : msgs) mq.push_raw(m);
  for (const auto& r : reqs) rq.push_raw(r);
  return impl_->matrix->match_queues(mq, rq);
}

SimtMatchStats MatchEngine::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  if (!cfg_.wildcards) {
    for (const auto& r : reqs) {
      if (has_wildcard(r.env)) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  // "The top level partitions among communicators, as there exist no
  // dependencies" (Section VI): one matching engine per communicator.
  // Multi-comm batches are split exactly; the per-comm engines would run
  // concurrently on distinct SMs, but we charge them serialized on one SM
  // (conservative).
  const auto comms = comms_of(msgs, reqs);
  SimtMatchStats stats;
  if (comms.size() <= 1) {
    stats = match_single_comm(msgs, reqs);
  } else {
    stats.result.request_match.assign(reqs.size(), kNoMatch);
    for (const auto comm : comms) {
      std::vector<Message> sub_msgs;
      std::vector<std::uint32_t> msg_map;
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (msgs[i].env.comm == comm) {
          sub_msgs.push_back(msgs[i]);
          msg_map.push_back(static_cast<std::uint32_t>(i));
        }
      }
      std::vector<RecvRequest> sub_reqs;
      std::vector<std::uint32_t> req_map;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].env.comm == comm) {
          sub_reqs.push_back(reqs[i]);
          req_map.push_back(static_cast<std::uint32_t>(i));
        }
      }
      const auto sub = match_single_comm(sub_msgs, sub_reqs);
      for (std::size_t r = 0; r < sub.result.request_match.size(); ++r) {
        const auto m = sub.result.request_match[r];
        if (m == kNoMatch) continue;
        stats.result.request_match[req_map[r]] =
            static_cast<std::int32_t>(msg_map[static_cast<std::size_t>(m)]);
      }
      stats.scan_events += sub.scan_events;
      stats.reduce_events += sub.reduce_events;
      stats.compact_events += sub.compact_events;
      stats.cycles += sub.cycles;
      stats.seconds += sub.seconds;
      stats.iterations += sub.iterations;
      stats.warps_used = std::max(stats.warps_used, sub.warps_used);
      stats.ctas_used = std::max(stats.ctas_used, sub.ctas_used);
    }
  }

  if (!cfg_.unexpected && stats.result.matched() != msgs.size()) {
    throw std::runtime_error(
        "unexpected message encountered, but the configured semantics prohibit "
        "unexpected messages (pre-post all receives or enable `unexpected`)");
  }
  return stats;
}

SimtMatchStats MatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  if (!cfg_.wildcards) {
    for (const auto& r : rq.view()) {
      if (has_wildcard(r.env)) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  const auto comms = comms_of(mq.view(), rq.view());
  const bool single_comm = comms.size() <= 1;

  if (single_comm && impl_->matrix) return impl_->matrix->match_queues(mq, rq);
  if (single_comm && impl_->hash) return impl_->hash->match_queues(mq, rq);

  // Multi-comm or partitioned: batch-match (match() splits communicators),
  // then compact both queues.
  SimtMatchStats stats;
  if (single_comm && impl_->partitioned) {
    stats = impl_->partitioned->match(mq.view(), rq.view());
  } else {
    stats = match(mq.view(), rq.view());
  }
  std::vector<std::uint8_t> msg_flags(mq.size(), 0);
  std::vector<std::uint8_t> req_flags(rq.size(), 0);
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    if (m == kNoMatch) continue;
    req_flags[r] = 1;
    msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(msg_flags);
  (void)rq.compact(req_flags);
  return stats;
}

}  // namespace simtmsg::matching

#include "matching/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/hash_matcher.hpp"
#include "matching/matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/queue.hpp"

namespace simtmsg::matching {

std::string_view to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kMatrix: return "matrix";
    case Algorithm::kPartitionedMatrix: return "partitioned-matrix";
    case Algorithm::kHashTable: return "hash-table";
  }
  return "unknown";
}

struct MatchEngine::Impl {
  std::unique_ptr<Matcher> matcher;
  Algorithm algorithm = Algorithm::kMatrix;

  // Totals behind snapshot() — accumulated once per public call.
  std::uint64_t calls = 0;
  std::uint64_t matches = 0;
  double cycles = 0.0;
  double seconds = 0.0;
  std::uint64_t iterations = 0;
  simt::EventCounters scan_events;
  simt::EventCounters reduce_events;
  simt::EventCounters compact_events;

  void accumulate(const SimtMatchStats& s) noexcept {
    ++calls;
    matches += s.result.matched();
    cycles += s.cycles;
    seconds += s.seconds;
    iterations += static_cast<std::uint64_t>(s.iterations);
    scan_events += s.scan_events;
    reduce_events += s.reduce_events;
    compact_events += s.compact_events;
  }
};

MatchEngine::MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg)
    : MatchEngine(spec, cfg, simt::ExecutionPolicy::serial()) {}

MatchEngine::MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg,
                         const simt::ExecutionPolicy& policy)
    : spec_(&spec), cfg_(cfg), impl_(std::make_unique<Impl>()) {
  if (!valid(cfg_)) {
    throw std::invalid_argument("inconsistent semantics: " + describe(cfg_));
  }
  if (hashable(cfg_)) {
    HashMatcher::Options opt;
    // Partitioning the rank space across CTAs is the hash analogue of the
    // multi-queue layout.
    opt.ctas = std::max(1, cfg_.partitions > 1 ? cfg_.partitions / 4 : 1);
    opt.policy = policy;
    impl_->matcher = std::make_unique<HashMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kHashTable;
  } else if (cfg_.partitions > 1) {
    PartitionedMatcher::Options opt;
    opt.partitions = cfg_.partitions;
    opt.matrix.compact = cfg_.unexpected;
    opt.policy = policy;
    impl_->matcher = std::make_unique<PartitionedMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kPartitionedMatrix;
  } else {
    MatrixMatcher::Options opt;
    opt.compact = cfg_.unexpected;
    opt.policy = policy;
    impl_->matcher = std::make_unique<MatrixMatcher>(spec, opt);
    impl_->algorithm = Algorithm::kMatrix;
  }
}

MatchEngine::~MatchEngine() = default;
MatchEngine::MatchEngine(MatchEngine&&) noexcept = default;
MatchEngine& MatchEngine::operator=(MatchEngine&&) noexcept = default;

Algorithm MatchEngine::algorithm_kind() const noexcept { return impl_->algorithm; }

std::string_view MatchEngine::algorithm() const noexcept {
  return to_string(impl_->algorithm);
}

telemetry::TelemetryReport MatchEngine::snapshot() const {
  telemetry::TelemetryReport r;
  r.calls = impl_->calls;
  r.matches = impl_->matches;
  r.cycles = impl_->cycles;
  r.seconds = impl_->seconds;
  r.iterations = impl_->iterations;
  r.scan_events = impl_->scan_events;
  r.reduce_events = impl_->reduce_events;
  r.compact_events = impl_->compact_events;
  return r;
}

namespace {

/// Distinct communicators in first-appearance order.
std::vector<CommId> comms_of(std::span<const Message> msgs,
                             std::span<const RecvRequest> reqs) {
  std::vector<CommId> comms;
  const auto note = [&comms](CommId c) {
    for (const auto seen : comms) {
      if (seen == c) return;
    }
    comms.push_back(c);
  };
  for (const auto& m : msgs) note(m.env.comm);
  for (const auto& r : reqs) note(r.env.comm);
  return comms;
}

}  // namespace

SimtMatchStats MatchEngine::match_single_comm(std::span<const Message> msgs,
                                              std::span<const RecvRequest> reqs) const {
  return impl_->matcher->match(msgs, reqs);
}

SimtMatchStats MatchEngine::match_impl(std::span<const Message> msgs,
                                       std::span<const RecvRequest> reqs) const {
  if (!cfg_.wildcards) {
    for (const auto& r : reqs) {
      if (has_wildcard(r.env)) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  // "The top level partitions among communicators, as there exist no
  // dependencies" (Section VI): one matching engine per communicator.
  // Multi-comm batches are split exactly; the per-comm engines would run
  // concurrently on distinct SMs, but we charge them serialized on one SM
  // (conservative).
  const auto comms = comms_of(msgs, reqs);
  SimtMatchStats stats;
  if (comms.size() <= 1) {
    stats = match_single_comm(msgs, reqs);
  } else {
    stats.result.request_match.assign(reqs.size(), kNoMatch);
    for (const auto comm : comms) {
      std::vector<Message> sub_msgs;
      std::vector<std::uint32_t> msg_map;
      for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (msgs[i].env.comm == comm) {
          sub_msgs.push_back(msgs[i]);
          msg_map.push_back(static_cast<std::uint32_t>(i));
        }
      }
      std::vector<RecvRequest> sub_reqs;
      std::vector<std::uint32_t> req_map;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].env.comm == comm) {
          sub_reqs.push_back(reqs[i]);
          req_map.push_back(static_cast<std::uint32_t>(i));
        }
      }
      const auto sub = match_single_comm(sub_msgs, sub_reqs);
      for (std::size_t r = 0; r < sub.result.request_match.size(); ++r) {
        const auto m = sub.result.request_match[r];
        if (m == kNoMatch) continue;
        stats.result.request_match[req_map[r]] =
            static_cast<std::int32_t>(msg_map[static_cast<std::size_t>(m)]);
      }
      stats.scan_events += sub.scan_events;
      stats.reduce_events += sub.reduce_events;
      stats.compact_events += sub.compact_events;
      stats.cycles += sub.cycles;
      stats.seconds += sub.seconds;
      stats.iterations += sub.iterations;
      stats.warps_used = std::max(stats.warps_used, sub.warps_used);
      stats.ctas_used = std::max(stats.ctas_used, sub.ctas_used);
    }
  }

  if (!cfg_.unexpected && stats.result.matched() != msgs.size()) {
    throw std::runtime_error(
        "unexpected message encountered, but the configured semantics prohibit "
        "unexpected messages (pre-post all receives or enable `unexpected`)");
  }
  return stats;
}

SimtMatchStats MatchEngine::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  SimtMatchStats stats = match_impl(msgs, reqs);
  impl_->accumulate(stats);
  return stats;
}

SimtMatchStats MatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  if (!cfg_.wildcards) {
    for (const auto& r : rq.view()) {
      if (has_wildcard(r.env)) {
        throw std::invalid_argument("wildcards are prohibited by the configured semantics");
      }
    }
  }

  const auto comms = comms_of(mq.view(), rq.view());

  if (comms.size() <= 1) {
    // Single communicator: every matcher drains live queues natively (or
    // through the interface's default match-and-compact).
    SimtMatchStats stats = impl_->matcher->match_queues(mq, rq);
    impl_->accumulate(stats);
    return stats;
  }

  // Multi-comm: batch-match (match_impl splits communicators), then compact
  // both queues.
  SimtMatchStats stats = match_impl(mq.view(), rq.view());
  std::vector<std::uint8_t> msg_flags(mq.size(), 0);
  std::vector<std::uint8_t> req_flags(rq.size(), 0);
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    if (m == kNoMatch) continue;
    req_flags[r] = 1;
    msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(msg_flags);
  (void)rq.compact(req_flags);
  impl_->accumulate(stats);
  return stats;
}

}  // namespace simtmsg::matching

// MatchEngine: the public facade.  Given a SemanticsConfig (a row of
// Table II), it selects the appropriate algorithm and data structure:
//
//   wildcards  ordering  unexpected  -> algorithm          (Table II)
//   yes        yes       yes/no      -> matrix, single queue
//   no         yes       yes/no      -> matrix, rank-partitioned queues
//   no         no        yes/no      -> two-level hash table
//
// Prohibiting unexpected messages removes the compaction pass (Section
// VI-B) — with every message guaranteed to match, queues drain completely
// and head pointers simply reset.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "matching/envelope.hpp"
#include "matching/queue.hpp"
#include "matching/semantics.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"
#include "telemetry/report.hpp"

namespace simtmsg::matching {

/// The three data-structure regimes of Table II, plus the wildcard-capable
/// pattern-table matcher (beyond the paper; SemanticsConfig::pattern_table).
enum class Algorithm {
  kMatrix,             ///< Fully compliant vote-matrix matcher (rows 1-2).
  kPartitionedMatrix,  ///< Rank-partitioned matrix queues (rows 3-4).
  kHashTable,          ///< Two-level device hash table (rows 5-6).
  kPatternTable,       ///< Wildcard-class exact-probe tables (docs/wildcards.md).
};

[[nodiscard]] std::string_view to_string(Algorithm a) noexcept;

class MatchEngine {
 public:
  MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg);
  /// As above, with an explicit host execution policy for the selected
  /// matcher (CTAs / partitions scheduled onto host threads).  Modelled
  /// results are policy-invariant; only host wall-clock time changes.
  MatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg,
              const simt::ExecutionPolicy& policy);
  ~MatchEngine();

  MatchEngine(MatchEngine&&) noexcept;
  MatchEngine& operator=(MatchEngine&&) noexcept;
  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Batch-match.  Enforces the configured semantics: wildcard receives are
  /// rejected (std::invalid_argument) when wildcards are prohibited, and
  /// unmatched messages are rejected when unexpected messages are
  /// prohibited (every message must find a request).
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const;

  /// Out-parameter form of match(): the result lands in `out` (fully
  /// re-initialized).  This is the steady-state entry point — all scratch
  /// comes from the engine's internal workspace, so repeated calls with a
  /// stable workload shape perform zero heap allocations.  Engines are
  /// per-thread (the workspace is not locked).
  void match(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
             SimtMatchStats& out) const;

  /// Drain two live queues: match as much as possible and remove matched
  /// elements.  Result indices refer to the queues' contents *before* the
  /// call.  Unlike match(), leftovers are not an error — the caller (the
  /// runtime's progress engine) decides how to treat unexpected messages.
  [[nodiscard]] SimtMatchStats match_queues(MessageQueue& mq, RecvQueue& rq) const;

  /// Out-parameter form of match_queues(); allocation-free in steady state
  /// like match() above.
  void match_queues(MessageQueue& mq, RecvQueue& rq, SimtMatchStats& out) const;

  /// Batched ingestion: append `msg_arrivals` / `req_arrivals` to the live
  /// queues (bulk sequence stamping, identical to pushing them one at a
  /// time), then run ONE match_queues pass.  Engine dispatch, the wildcard
  /// scan, comm bucketing, and telemetry accumulation are paid once per
  /// batch instead of once per message — the amortization lever behind the
  /// fig5 batch-size axis (docs/perf.md).  Either span may be empty; with
  /// both empty this is exactly match_queues on the current queue contents.
  /// Result indices refer to the queues *after* the appends.
  void match_batch(std::span<const Message> msg_arrivals,
                   std::span<const RecvRequest> req_arrivals, MessageQueue& mq,
                   RecvQueue& rq, SimtMatchStats& out) const;

  [[nodiscard]] SimtMatchStats match_batch(std::span<const Message> msg_arrivals,
                                           std::span<const RecvRequest> req_arrivals,
                                           MessageQueue& mq, RecvQueue& rq) const;

  [[nodiscard]] const SemanticsConfig& semantics() const noexcept { return cfg_; }

  [[nodiscard]] Algorithm algorithm_kind() const noexcept;

  /// Telemetry totals accumulated over every match()/match_queues() call on
  /// this engine: calls, matches, modelled cycles/seconds, iterations, and
  /// the per-phase event counters.  Replaces per-metric accessors.
  [[nodiscard]] telemetry::TelemetryReport snapshot() const;

 private:
  void match_impl_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                       SimtMatchStats& out) const;
  void match_single_comm_into(std::span<const Message> msgs,
                              std::span<const RecvRequest> reqs,
                              SimtMatchStats& out) const;

  struct Impl;
  const simt::DeviceSpec* spec_;
  SemanticsConfig cfg_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simtmsg::matching

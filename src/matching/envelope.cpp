#include "matching/envelope.hpp"

#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace simtmsg::matching {

std::uint64_t pack(const Envelope& e) {
  if (e.src < 0 || e.tag < 0 || e.tag > 0xFFFF || e.comm < 0 || e.comm > 0xFFFF ||
      e.stream != kDefaultStream) {
    throw std::invalid_argument("envelope not packable: " + to_string(e));
  }
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.comm)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.src)) << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.tag));
}

Envelope unpack(std::uint64_t word) noexcept {
  Envelope e;
  e.tag = static_cast<Tag>(word & 0xFFFFu);
  e.src = static_cast<Rank>((word >> 16) & 0xFFFF'FFFFu);
  e.comm = static_cast<CommId>((word >> 48) & 0xFFFFu);
  return e;
}

std::uint32_t match_key(const Envelope& e) noexcept {
  return (static_cast<std::uint32_t>(e.src) << 16) ^
         static_cast<std::uint32_t>(static_cast<std::uint16_t>(e.tag));
}

std::string to_string(const Envelope& e) {
  std::ostringstream ss;
  ss << "{src=";
  if (e.src == kAnySource) {
    ss << "ANY";
  } else {
    ss << e.src;
  }
  ss << ", tag=";
  if (e.tag == kAnyTag) {
    ss << "ANY";
  } else {
    ss << e.tag;
  }
  ss << ", comm=" << e.comm;
  // Appended only off the default stream so default-domain labels (and the
  // diagnostics built on them) read exactly as they did before streams.
  if (e.stream != kDefaultStream) ss << ", stream=" << e.stream;
  ss << "}";
  return ss.str();
}

}  // namespace simtmsg::matching

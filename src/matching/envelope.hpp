// Message envelopes and the MPI matching rule.
//
// Matching is based on the tuple {source, tag, communicator} (paper
// Section II-B).  Receive requests may wildcard the source
// (MPI_ANY_SOURCE) and/or the tag (MPI_ANY_TAG); messages never carry
// wildcards.  Section IV observes that no analyzed application needs tags
// wider than 16 bits, so "the entire header could fit into a single 64-bit
// word" — pack()/unpack() implement exactly that layout.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace simtmsg::matching {

using Rank = std::int32_t;
using Tag = std::int32_t;
using CommId = std::int32_t;
/// Ordering-domain id (MPIX Streams, docs/streams.md).  Stream 0 is the
/// default domain and reproduces the pre-stream behaviour bit-for-bit;
/// distinct streams carry independent sequence spaces and may be matched
/// and delivered relative to each other in any order.
using StreamId = std::int32_t;

/// MPI_ANY_SOURCE analogue.
inline constexpr Rank kAnySource = -1;
/// MPI_ANY_TAG analogue.
inline constexpr Tag kAnyTag = -1;
/// The default ordering domain (today's single-sequence-space behaviour).
inline constexpr StreamId kDefaultStream = 0;

struct Envelope {
  Rank src = 0;
  Tag tag = 0;
  CommId comm = 0;
  /// Ordering domain the element belongs to.  Part of the match tuple: a
  /// receive posted on stream s accepts only messages sent on stream s, so
  /// per-stream FIFO survives stream-affinity shard routing.  Not
  /// wildcardable.
  StreamId stream = kDefaultStream;

  friend auto operator<=>(const Envelope&, const Envelope&) = default;
};

/// True if the envelope contains any wildcard (only meaningful on receives).
[[nodiscard]] constexpr bool has_wildcard(const Envelope& e) noexcept {
  return e.src == kAnySource || e.tag == kAnyTag;
}

/// The MPI matching rule, extended with the stream (ordering-domain) axis:
/// does receive request `recv` accept message `msg`?  Streams compare by
/// equality only — there is no stream wildcard — so stream-0-only traffic
/// matches exactly as it did before streams existed.
[[nodiscard]] constexpr bool matches(const Envelope& recv, const Envelope& msg) noexcept {
  return recv.comm == msg.comm && recv.stream == msg.stream &&
         (recv.src == kAnySource || recv.src == msg.src) &&
         (recv.tag == kAnyTag || recv.tag == msg.tag);
}

/// 64-bit packed header: [63:48] comm (16 bits) | [47:16] src (32 bits) |
/// [15:0] tag (16 bits).  Wildcards are not packable (headers describe
/// messages on the wire, which never carry wildcards).  The stream id has
/// no room in this layout; packed headers describe default-stream traffic
/// only (pack() rejects anything else), matching Section IV's observation
/// that the compact header targets the common case.
[[nodiscard]] std::uint64_t pack(const Envelope& e);
[[nodiscard]] Envelope unpack(std::uint64_t word) noexcept;

/// 32-bit key for hash-based matching: mixes src and tag (the communicator
/// is implicit — "we presume one matching engine per communicator", §V-A).
[[nodiscard]] std::uint32_t match_key(const Envelope& e) noexcept;

/// Packed (src << 32 | tag) scan word — the single 64-bit load per element
/// the warp ballot scan performs ("Instead of reading the entire message or
/// receive request, only src and tag are being read", Algorithm 1).  Sign
/// bits are preserved, so wildcards (-1) remain representable; the
/// communicator is compared separately by the engine's comm bucketing.
/// MatchQueue maintains a contiguous lane of these words per queue.
[[nodiscard]] constexpr std::uint64_t scan_word(Rank src, Tag tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

[[nodiscard]] constexpr std::uint64_t scan_word(const Envelope& e) noexcept {
  return scan_word(e.src, e.tag);
}

[[nodiscard]] std::string to_string(const Envelope& e);

/// A message sitting in the (unified) message queue.  `seq` is the arrival
/// sequence number, which encodes the per-pair ordering MPI guarantees.
struct Message {
  Envelope env;
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;  ///< Opaque user data (pointer/handle stand-in).

  friend bool operator==(const Message&, const Message&) = default;
};

/// A posted receive request in the receive request queue.
struct RecvRequest {
  Envelope env;  ///< May contain kAnySource / kAnyTag.
  std::uint64_t seq = 0;
  std::uint64_t user_data = 0;

  friend bool operator==(const RecvRequest&, const RecvRequest&) = default;
};

}  // namespace simtmsg::matching

#include "matching/hash_matcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/device_hash_table.hpp"
#include "simt/cta.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"

namespace simtmsg::matching {
namespace {

[[nodiscard]] std::uint64_t raw_word(const Envelope& e) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.src)) << 32) |
         static_cast<std::uint32_t>(e.tag);
}

}  // namespace

HashMatcher::HashMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt) {
  opt_.ctas = std::max(1, opt_.ctas);
  opt_.max_warps = std::clamp(opt_.max_warps, 1, spec.max_warps_per_cta);
  opt_.max_iterations = std::max(1, opt_.max_iterations);
}

SimtMatchStats HashMatcher::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  for (const auto& r : reqs) {
    if (has_wildcard(r.env)) {
      throw std::invalid_argument("HashMatcher requires wildcard-free receives");
    }
  }

  SimtMatchStats stats;
  stats.result.request_match.assign(reqs.size(), kNoMatch);
  stats.ctas_used = opt_.ctas;
  if (msgs.empty() || reqs.empty()) return stats;

  // Device-resident words (only src and tag are read, as in the matrix
  // matcher; the communicator is implicit).
  std::vector<std::uint64_t> msg_words(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) msg_words[i] = raw_word(msgs[i].env);
  std::vector<std::uint64_t> req_words(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) req_words[i] = raw_word(reqs[i].env);

  DeviceHashTable table(std::max(msgs.size(), reqs.size()), opt_.table_ratio, opt_.hash);

  std::vector<std::uint32_t> pending_reqs(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) pending_reqs[i] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> pending_msgs(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) pending_msgs[i] = static_cast<std::uint32_t>(i);

  const simt::TimingModel model(*spec_);
  double total_cycles = 0.0;

  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    if (pending_msgs.empty() || (pending_reqs.empty() && table.occupancy() == 0)) break;
    stats.iterations = iter + 1;

    // Slice the pending work across CTAs.
    const std::size_t work = std::max(pending_reqs.size(), pending_msgs.size());
    const auto ctas = static_cast<std::size_t>(opt_.ctas);
    const std::size_t per_cta = util::ceil_div(work, ctas);
    const int warps_per_cta = static_cast<int>(std::clamp<std::size_t>(
        util::ceil_div(per_cta, simt::kWarpSize), 1, static_cast<std::size_t>(opt_.max_warps)));

    std::vector<simt::EventCounters> per_cta_events;
    per_cta_events.reserve(ctas);

    std::vector<std::uint32_t> deferred_reqs;
    std::vector<std::uint32_t> deferred_msgs;
    std::size_t inserted_total = 0;
    std::size_t matched_total = 0;

    for (std::size_t cta_id = 0; cta_id < ctas; ++cta_id) {
      simt::CtaContext cta(static_cast<int>(cta_id), warps_per_cta, spec_->shared_mem_per_sm);

      // ---- Phase 1: insert this CTA's slice of pending receive requests.
      const std::size_t rq_begin = std::min(cta_id * per_cta, pending_reqs.size());
      const std::size_t rq_end = std::min(rq_begin + per_cta, pending_reqs.size());
      for (std::size_t g = rq_begin; g < rq_end; g += simt::kWarpSize) {
        const int live = static_cast<int>(
            std::min<std::size_t>(simt::kWarpSize, rq_end - g));
        auto& warp = cta.warp(static_cast<int>((g / simt::kWarpSize) %
                                               static_cast<std::size_t>(warps_per_cta)));
        warp.set_active(util::low_mask(live));

        simt::LaneSize idx;
        for (int lane = 0; lane < live; ++lane) idx[lane] = pending_reqs[g + lane];
        const auto words =
            warp.load_global(std::span<const std::uint64_t>(req_words), idx);

        // Key = (src << 16) ^ tag, the raw packed tuple: srcs and tags are
        // 16-bit-scale in practice (Section IV), so the fold is injective
        // on the trace-realistic domain; a full-envelope check after each
        // claim guards the general case.
        simt::LaneU32 keys, values;
        warp.lanes(
            [&](int lane) {
              keys[lane] = (static_cast<std::uint32_t>(words[lane] >> 32) << 16) ^
                           static_cast<std::uint32_t>(words[lane] & 0xFFFF'FFFFu);
              values[lane] = static_cast<std::uint32_t>(idx[lane]);
            },
            3);

        simt::LaneBool inserted;
        table.insert(warp, keys, values, inserted);
        for (int lane = 0; lane < live; ++lane) {
          if (inserted[lane]) {
            ++inserted_total;
          } else {
            deferred_reqs.push_back(pending_reqs[g + lane]);
          }
        }
      }

      // ---- Phase 2: probe with this CTA's slice of pending messages.
      const std::size_t mq_begin = std::min(cta_id * per_cta, pending_msgs.size());
      const std::size_t mq_end = std::min(mq_begin + per_cta, pending_msgs.size());
      for (std::size_t g = mq_begin; g < mq_end; g += simt::kWarpSize) {
        const int live = static_cast<int>(
            std::min<std::size_t>(simt::kWarpSize, mq_end - g));
        auto& warp = cta.warp(static_cast<int>((g / simt::kWarpSize) %
                                               static_cast<std::size_t>(warps_per_cta)));
        warp.set_active(util::low_mask(live));

        simt::LaneSize idx;
        for (int lane = 0; lane < live; ++lane) idx[lane] = pending_msgs[g + lane];
        const auto words =
            warp.load_global(std::span<const std::uint64_t>(msg_words), idx);

        simt::LaneU32 keys, values;
        warp.lanes(
            [&](int lane) {
              keys[lane] = (static_cast<std::uint32_t>(words[lane] >> 32) << 16) ^
                           static_cast<std::uint32_t>(words[lane] & 0xFFFF'FFFFu);
            },
            2);

        // Pre-claim verification: aliased 32-bit keys must not evict the
        // genuine owner's entry (claim-then-reinsert would starve it).
        const auto verify = [&](int lane, std::uint32_t req_idx) {
          return matches(reqs[req_idx].env, msgs[pending_msgs[g + lane]].env);
        };
        simt::LaneBool found;
        table.probe_claim(warp, keys, values, found, verify);

        for (int lane = 0; lane < live; ++lane) {
          const std::uint32_t msg_idx = pending_msgs[g + lane];
          if (!found[lane]) {
            deferred_msgs.push_back(msg_idx);
            continue;
          }
          const std::uint32_t req_idx = values[lane];
          stats.result.request_match[req_idx] = static_cast<std::int32_t>(msg_idx);
          ++matched_total;
        }
      }

      per_cta_events.push_back(cta.counters());
      stats.scan_events += cta.counters();
    }

    simt::LaunchConfig launch;
    launch.ctas = opt_.ctas;
    launch.warps_per_cta = warps_per_cta;
    launch.mlp_per_warp = opt_.kernel_mlp;
    const auto est = model.estimate(per_cta_events, launch);
    total_cycles += est.cycles + opt_.iteration_overhead_cycles;
    stats.warps_used = std::max(stats.warps_used, warps_per_cta);

    pending_reqs.swap(deferred_reqs);
    pending_msgs.swap(deferred_msgs);

    if (inserted_total == 0 && matched_total == 0) break;  // No progress.
  }

  stats.cycles = total_cycles;
  stats.seconds = model.seconds_from_cycles(total_cycles);
  record_attempt(stats, msgs.size(), reqs.size());
  // Probe traffic is the hash matcher's defining cost (collisions defer
  // work); expose it alongside the generic per-attempt instruments.
  telemetry::observe("matcher.hash-table.probes",
                     stats.scan_events.global_load_requests +
                         stats.reduce_events.global_load_requests);
  return stats;
}

}  // namespace simtmsg::matching

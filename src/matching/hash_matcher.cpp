#include "matching/hash_matcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/device_hash_table.hpp"
#include "matching/workspace.hpp"
#include "simt/cta.hpp"
#include "simt/launcher.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"

namespace simtmsg::matching {

HashMatcher::HashMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt) {
  opt_.ctas = std::max(1, opt_.ctas);
  opt_.max_warps = std::clamp(opt_.max_warps, 1, spec.max_warps_per_cta);
  opt_.max_iterations = std::max(1, opt_.max_iterations);
}

SimtMatchStats HashMatcher::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  MatchWorkspace ws;
  SimtMatchStats stats;
  match_into(msgs, reqs, ws, stats);
  return stats;
}

void HashMatcher::match_into(std::span<const Message> msgs,
                             std::span<const RecvRequest> reqs, MatchWorkspace& ws,
                             SimtMatchStats& out) const {
  for (const auto& r : reqs) {
    if (has_wildcard(r.env)) {
      throw std::invalid_argument("HashMatcher requires wildcard-free receives");
    }
  }

  auto& hw = ws.hash;
  // AoS entry point: gather the scan words once into workspace scratch.
  // The queue-drain path (match_queues_into) skips this gather by feeding
  // MatchQueue's contiguous word lanes directly.
  hw.msg_words.resize(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) hw.msg_words[i] = scan_word(msgs[i].env);
  hw.req_words.resize(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) hw.req_words[i] = scan_word(reqs[i].env);

  match_words_into(msgs, reqs, hw.msg_words, hw.req_words, ws, out);
}

void HashMatcher::match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                                    SimtMatchStats& out) const {
  // Lane scan: two contiguous int arrays instead of striding AoS structs.
  const EnvelopeLanes lanes = rq.lanes();
  for (std::size_t i = 0; i < lanes.src.size(); ++i) {
    if (lanes.src[i] == kAnySource || lanes.tag[i] == kAnyTag) {
      throw std::invalid_argument("HashMatcher requires wildcard-free receives");
    }
  }

  // Borrow the queues' SoA word lanes (valid for the whole call: the queues
  // are not mutated until the compaction below), then compact both queues —
  // the same shape as the inherited default drain.
  match_words_into(mq.view(), rq.view(), mq.words(), rq.words(), ws, out);
  ws.msg_flags.assign(mq.size(), 0);
  ws.req_flags.assign(rq.size(), 0);
  for (std::size_t r = 0; r < out.result.request_match.size(); ++r) {
    const auto m = out.result.request_match[r];
    if (m == kNoMatch) continue;
    ws.req_flags[r] = 1;
    ws.msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(ws.msg_flags);
  (void)rq.compact(ws.req_flags);
}

void HashMatcher::match_words_into(std::span<const Message> msgs,
                                   std::span<const RecvRequest> reqs,
                                   std::span<const std::uint64_t> msg_words,
                                   std::span<const std::uint64_t> req_words,
                                   MatchWorkspace& ws, SimtMatchStats& out) const {
  out.reset(reqs.size());
  out.ctas_used = opt_.ctas;
  if (msgs.empty() || reqs.empty()) return;

  auto& hw = ws.hash;
  DeviceHashTable& table = hw.table;
  table.prepare(std::max(msgs.size(), reqs.size()), opt_.table_ratio, opt_.hash);

  auto& pending_reqs = hw.pending_reqs;
  pending_reqs.resize(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) pending_reqs[i] = static_cast<std::uint32_t>(i);
  auto& pending_msgs = hw.pending_msgs;
  pending_msgs.resize(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) pending_msgs[i] = static_cast<std::uint32_t>(i);

  const simt::TimingModel model(*spec_);
  double total_cycles = 0.0;

  for (int iter = 0; iter < opt_.max_iterations; ++iter) {
    if (pending_msgs.empty() || (pending_reqs.empty() && table.occupancy() == 0)) break;
    out.iterations = iter + 1;

    // Slice the pending work across CTAs.
    const std::size_t work = std::max(pending_reqs.size(), pending_msgs.size());
    const auto ctas = static_cast<std::size_t>(opt_.ctas);
    const std::size_t per_cta = util::ceil_div(work, ctas);
    const int warps_per_cta = static_cast<int>(std::clamp<std::size_t>(
        util::ceil_div(per_cta, simt::kWarpSize), 1, static_cast<std::size_t>(opt_.max_warps)));

    auto& deferred_reqs = hw.deferred_reqs;
    auto& deferred_msgs = hw.deferred_msgs;
    deferred_reqs.clear();
    deferred_msgs.clear();
    std::size_t inserted_total = 0;
    std::size_t matched_total = 0;

    // ---- Plan pass: resolve every hash-table operation serially, in the
    // exact CTA/warp-group order the fused kernel used.  Lane order is the
    // CAS priority rule, so resolving serially is what keeps the functional
    // outcome (and the table state it leaves behind) identical for every
    // execution policy.  The recorded outcomes drive the replay below.
    auto& plan = hw.plan;
    if (plan.size() < ctas) plan.resize(ctas);
    for (std::size_t cta_id = 0; cta_id < ctas; ++cta_id) plan[cta_id].clear();
    for (std::size_t cta_id = 0; cta_id < ctas; ++cta_id) {
      // ---- Phase 1: insert this CTA's slice of pending receive requests.
      const std::size_t rq_begin = std::min(cta_id * per_cta, pending_reqs.size());
      const std::size_t rq_end = std::min(rq_begin + per_cta, pending_reqs.size());
      for (std::size_t g = rq_begin; g < rq_end; g += simt::kWarpSize) {
        const int live = static_cast<int>(
            std::min<std::size_t>(simt::kWarpSize, rq_end - g));
        HashGroupPlan gp;
        gp.is_insert = true;
        gp.live = live;
        gp.warp = static_cast<int>((g / simt::kWarpSize) %
                                   static_cast<std::size_t>(warps_per_cta));
        for (int lane = 0; lane < live; ++lane) gp.idx[lane] = pending_reqs[g + lane];

        // Key = (src << 16) ^ tag, the raw packed tuple: srcs and tags are
        // 16-bit-scale in practice (Section IV), so the fold is injective
        // on the trace-realistic domain; a full-envelope check after each
        // claim guards the general case.
        simt::LaneU32 values;
        for (int lane = 0; lane < live; ++lane) {
          const std::uint64_t w = req_words[gp.idx[lane]];
          gp.keys[lane] = (static_cast<std::uint32_t>(w >> 32) << 16) ^
                          static_cast<std::uint32_t>(w & 0xFFFF'FFFFu);
          values[lane] = static_cast<std::uint32_t>(gp.idx[lane]);
        }

        gp.ins = table.insert_resolve(gp.keys, values, util::low_mask(live));
        for (int lane = 0; lane < live; ++lane) {
          if (util::test_bit(gp.ins.inserted, lane)) {
            ++inserted_total;
          } else {
            deferred_reqs.push_back(pending_reqs[g + lane]);
          }
        }
        plan[cta_id].push_back(gp);
      }

      // ---- Phase 2: probe with this CTA's slice of pending messages.
      const std::size_t mq_begin = std::min(cta_id * per_cta, pending_msgs.size());
      const std::size_t mq_end = std::min(mq_begin + per_cta, pending_msgs.size());
      for (std::size_t g = mq_begin; g < mq_end; g += simt::kWarpSize) {
        const int live = static_cast<int>(
            std::min<std::size_t>(simt::kWarpSize, mq_end - g));
        HashGroupPlan gp;
        gp.is_insert = false;
        gp.live = live;
        gp.warp = static_cast<int>((g / simt::kWarpSize) %
                                   static_cast<std::size_t>(warps_per_cta));
        for (int lane = 0; lane < live; ++lane) gp.idx[lane] = pending_msgs[g + lane];
        for (int lane = 0; lane < live; ++lane) {
          const std::uint64_t w = msg_words[gp.idx[lane]];
          gp.keys[lane] = (static_cast<std::uint32_t>(w >> 32) << 16) ^
                          static_cast<std::uint32_t>(w & 0xFFFF'FFFFu);
        }

        // Pre-claim verification: aliased 32-bit keys must not evict the
        // genuine owner's entry (claim-then-reinsert would starve it).
        const auto verify = [&](int lane, std::uint32_t req_idx) {
          return matches(reqs[req_idx].env, msgs[pending_msgs[g + lane]].env);
        };
        gp.probe = table.probe_resolve(gp.keys, util::low_mask(live), verify);

        for (int lane = 0; lane < live; ++lane) {
          const std::uint32_t msg_idx = pending_msgs[g + lane];
          if (!util::test_bit(gp.probe.found, lane)) {
            deferred_msgs.push_back(msg_idx);
            continue;
          }
          const std::uint32_t req_idx = gp.probe.values[lane];
          out.result.request_match[req_idx] = static_cast<std::int32_t>(msg_idx);
          ++matched_total;
        }
        plan[cta_id].push_back(gp);
      }
    }

    // ---- Replay pass: charge the modelled cost of each CTA's operations
    // through the launcher.  Each CTA reads only its own plan entries and
    // const table metadata, so the CTAs can execute concurrently under the
    // configured policy; the counter stream per CTA is bit-identical to the
    // fused kernel's.
    simt::LaunchConfig launch;
    launch.ctas = opt_.ctas;
    launch.warps_per_cta = warps_per_cta;
    launch.mlp_per_warp = opt_.kernel_mlp;
    const auto kernel = [&](simt::CtaContext& cta) {
      for (const HashGroupPlan& gp : plan[static_cast<std::size_t>(cta.cta_id())]) {
        auto& warp = cta.warp(gp.warp);
        warp.set_active(util::low_mask(gp.live));
        warp.count_global_load<std::uint64_t>(gp.idx);
        if (gp.is_insert) {
          warp.lanes([](int) {}, 3);  // Key fold + value materialisation.
          table.insert_charge(warp, gp.keys, gp.ins);
        } else {
          warp.lanes([](int) {}, 2);  // Key fold.
          table.probe_charge(warp, gp.keys, gp.probe);
        }
      }
    };
    const simt::KernelRun run =
        simt::launch(*spec_, launch, simt::KernelRef(kernel), opt_.policy, hw.launch);

    out.scan_events += run.counters;
    total_cycles += run.timing.cycles + opt_.iteration_overhead_cycles;
    out.warps_used = std::max(out.warps_used, warps_per_cta);

    pending_reqs.swap(deferred_reqs);
    pending_msgs.swap(deferred_msgs);

    if (inserted_total == 0 && matched_total == 0) break;  // No progress.
  }

  out.cycles = total_cycles;
  out.seconds = model.seconds_from_cycles(total_cycles);
  record_attempt(out, msgs.size(), reqs.size());
  // Probe traffic is the hash matcher's defining cost (collisions defer
  // work); expose it alongside the generic per-attempt instruments.
  telemetry::observe("matcher.hash-table.probes",
                     out.scan_events.global_load_requests +
                         out.reduce_events.global_load_requests);
}

}  // namespace simtmsg::matching

// HashMatcher: out-of-order matching via the two-level device hash table
// (Section VI-C, Figure 6b) — the paper's most aggressive relaxation.
//
// Preconditions (Table II rows 5/6): no wildcards, no ordering guarantee.
// Each iteration has two phases: (1) every thread inserts one pending
// receive request into the table, (2) every thread probes the table with
// one pending message's key and claims the matching entry.  Collisions
// defer work to the next iteration ("The more collisions occur, the more
// iterations are required to match all elements").
#pragma once

#include <span>

#include "matching/envelope.hpp"
#include "matching/matcher.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"
#include "util/hash.hpp"

namespace simtmsg::matching {

class HashMatcher : public Matcher {
 public:
  struct Options {
    double table_ratio = 5.0;  ///< Primary:secondary size ratio (paper: 5).
    util::HashKind hash = util::HashKind::kJenkins;
    int ctas = 1;              ///< Elements are split across CTAs (Fig. 6b series).
    int max_warps = 32;
    int max_iterations = 128;  ///< Safety valve for pathological hashes.
    double iteration_overhead_cycles = 400.0;
    /// Hash probes are independent per-thread accesses: one warp keeps many
    /// requests in flight, unlike the matrix scan's serialized loop.
    double kernel_mlp = 8.0;
    /// Host scheduling of the emulated CTAs.  Each iteration resolves the
    /// hash-table outcomes serially (preserving the CAS priority order) and
    /// replays the per-CTA cost model through simt::launch under this
    /// policy; modelled results are bit-identical for every thread count.
    simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  };

  explicit HashMatcher(const simt::DeviceSpec& spec) : HashMatcher(spec, Options{}) {}
  HashMatcher(const simt::DeviceSpec& spec, Options opt);

  /// Match messages against receive requests with unordered semantics.
  /// The pairing is arbitrary among equal tuples (this is the point of the
  /// relaxation); the multiset of matched tuples is maximal for the given
  /// iteration budget.  Throws std::invalid_argument on wildcard requests.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  /// Workspace form: element words, worklists, the operation plans, the
  /// device hash table, and the launch scratch all come from `ws.hash`.
  void match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                  MatchWorkspace& ws, SimtMatchStats& out) const override;

  /// Queue drain fed straight from the queues' SoA word lanes: the AoS
  /// gather of match_into() is skipped entirely — the key folds read the
  /// contiguous word[] arrays MatchQueue maintains (same lanes the matrix
  /// scan consumes).  Functionally identical to the inherited default.
  void match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                         SimtMatchStats& out) const override;

  [[nodiscard]] std::string_view name() const noexcept override { return "hash-table"; }

  [[nodiscard]] Traits traits() const noexcept override {
    return Traits{.ordered = false, .tag_wildcards = false, .source_wildcards = false};
  }

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  /// Shared core: the iterate/insert/probe/replay loop over pre-gathered
  /// (or lane-borrowed) scan words.  `msg_words`/`req_words` are index-
  /// aligned with the element spans; only claim verification touches the
  /// AoS elements (rare — one envelope compare per claimed match).
  void match_words_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                        std::span<const std::uint64_t> msg_words,
                        std::span<const std::uint64_t> req_words, MatchWorkspace& ws,
                        SimtMatchStats& out) const;

  const simt::DeviceSpec* spec_;
  Options opt_;
};

}  // namespace simtmsg::matching

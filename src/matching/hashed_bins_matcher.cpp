#include "matching/hashed_bins_matcher.hpp"

#include <limits>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

HashedBinsMatcher::HashedBinsMatcher(int bins, util::HashKind hash) : hash_(hash) {
  if (bins < 1) throw std::invalid_argument("bins must be >= 1");
  umq_.resize(static_cast<std::size_t>(bins));
  prq_.resize(static_cast<std::size_t>(bins));
}

std::optional<RecvRequest> HashedBinsMatcher::arrive(const Message& msg) {
  auto& bin = prq_[bin_of(msg.env)];

  auto bin_it = bin.end();
  for (auto it = bin.begin(); it != bin.end(); ++it) {
    ++search_steps_;
    if (matches(it->req.env, msg.env)) {
      bin_it = it;
      break;
    }
  }
  auto wild_it = wildcard_prq_.end();
  for (auto it = wildcard_prq_.begin(); it != wildcard_prq_.end(); ++it) {
    ++search_steps_;
    if (matches(it->req.env, msg.env)) {
      wild_it = it;
      break;
    }
  }

  const std::uint64_t bin_seq =
      bin_it == bin.end() ? std::numeric_limits<std::uint64_t>::max() : bin_it->seq;
  const std::uint64_t wild_seq = wild_it == wildcard_prq_.end()
                                     ? std::numeric_limits<std::uint64_t>::max()
                                     : wild_it->seq;

  if (bin_it != bin.end() && bin_seq < wild_seq) {
    RecvRequest hit = bin_it->req;
    bin.erase(bin_it);
    return hit;
  }
  if (wild_it != wildcard_prq_.end()) {
    RecvRequest hit = wild_it->req;
    wildcard_prq_.erase(wild_it);
    return hit;
  }

  umq_[bin_of(msg.env)].push_back({msg, next_seq_++, next_msg_index_++});
  return std::nullopt;
}

std::optional<Message> HashedBinsMatcher::post(const RecvRequest& req) {
  std::uint32_t index_unused = 0;
  return post_indexed(req, index_unused);
}

std::optional<Message> HashedBinsMatcher::post_indexed(const RecvRequest& req,
                                                       std::uint32_t& index) {
  if (!has_wildcard(req.env)) {
    auto& bin = umq_[bin_of(req.env)];
    for (auto it = bin.begin(); it != bin.end(); ++it) {
      ++search_steps_;
      if (matches(req.env, it->msg.env)) {
        Message hit = it->msg;
        index = it->index;
        bin.erase(it);
        return hit;
      }
    }
    prq_[bin_of(req.env)].push_back({req, next_seq_++});
    return std::nullopt;
  }

  // Any wildcard (src or tag): the bin address is unknown, so every bin is
  // scanned for the earliest matching arrival (the marker-restored global
  // order).
  std::list<UmqEntry>* best_list = nullptr;
  std::list<UmqEntry>::iterator best_it;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (auto& bin : umq_) {
    for (auto it = bin.begin(); it != bin.end(); ++it) {
      ++search_steps_;
      if (matches(req.env, it->msg.env) && it->seq < best_seq) {
        best_seq = it->seq;
        best_list = &bin;
        best_it = it;
      }
    }
  }
  if (best_list != nullptr) {
    Message hit = best_it->msg;
    index = best_it->index;
    best_list->erase(best_it);
    return hit;
  }
  wildcard_prq_.push_back({req, next_seq_++});
  return std::nullopt;
}

std::size_t HashedBinsMatcher::umq_depth() const noexcept {
  std::size_t n = 0;
  for (const auto& bin : umq_) n += bin.size();
  return n;
}

std::size_t HashedBinsMatcher::prq_depth() const noexcept {
  std::size_t n = wildcard_prq_.size();
  for (const auto& bin : prq_) n += bin.size();
  return n;
}

void HashedBinsMatcher::clear() {
  for (auto& bin : umq_) bin.clear();
  for (auto& bin : prq_) bin.clear();
  wildcard_prq_.clear();
  next_seq_ = 0;
  search_steps_ = 0;
  next_msg_index_ = 0;
}

SimtMatchStats HashedBinsMatcher::match(std::span<const Message> msgs,
                                        std::span<const RecvRequest> reqs) const {
  HashedBinsMatcher m(bins(), hash_);
  for (const auto& msg : msgs) (void)m.arrive(msg);

  SimtMatchStats stats;
  stats.iterations = 1;
  stats.result.request_match.assign(reqs.size(), kNoMatch);
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    std::uint32_t index = 0;
    const auto hit = m.post_indexed(reqs[r], index);
    if (hit.has_value()) stats.result.request_match[r] = static_cast<std::int32_t>(index);
  }
  record_attempt(stats, msgs.size(), reqs.size());
  telemetry::observe("matcher.hashed-bins.search_steps", m.search_steps());
  return stats;
}

}  // namespace simtmsg::matching

// HashedBinsMatcher: the Flajslik et al. approach from the paper's related
// work (Section III): "use hashes to address multiple queues and insert
// so-called marker entries to restore order and support wildcards.  Their
// approach yields 3.5x better performance than traditional, list-based
// matching algorithms for the Fire Dynamics Simulator."
//
// Host-side CPU matcher: UMQ and PRQ are split into K bins addressed by
// hash{src, tag}; concrete lookups touch exactly one bin.  Wildcard
// receives live in a side list, ordered against binned entries by global
// sequence numbers (the role Flajslik's markers play).  Unlike the
// rank-partitioned scheme, bins also spread load for applications whose
// traffic concentrates on few sources but many tags (PARTISN, MOCFE).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <vector>

#include "matching/envelope.hpp"
#include "matching/match_result.hpp"
#include "matching/matcher.hpp"
#include "util/hash.hpp"

namespace simtmsg::matching {

class HashedBinsMatcher : public Matcher {
 public:
  explicit HashedBinsMatcher(int bins = 64,
                             util::HashKind hash = util::HashKind::kJenkins);

  /// Incoming message: consult its {src, tag} bin's PRQ and the wildcard
  /// list; the earlier-posted request wins.
  std::optional<RecvRequest> arrive(const Message& msg);

  /// Posted receive: a concrete receive searches one UMQ bin; a receive
  /// with any wildcard must scan all bins for the earliest arrival.
  std::optional<Message> post(const RecvRequest& req);

  [[nodiscard]] int bins() const noexcept { return static_cast<int>(umq_.size()); }
  [[nodiscard]] std::size_t umq_depth() const noexcept;
  [[nodiscard]] std::size_t prq_depth() const noexcept;
  [[nodiscard]] std::uint64_t search_steps() const noexcept { return search_steps_; }

  void clear();

  /// Batch interface (Matcher) mirroring ListMatcher::match for
  /// cross-validation; uses this instance's bin count on a scratch instance.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  [[nodiscard]] std::string_view name() const noexcept override { return "hashed-bins"; }

 private:
  struct UmqEntry {
    Message msg;
    std::uint64_t seq;
    std::uint32_t index;
  };
  struct PrqEntry {
    RecvRequest req;
    std::uint64_t seq;
  };

  std::optional<Message> post_indexed(const RecvRequest& req, std::uint32_t& index);

  [[nodiscard]] std::size_t bin_of(const Envelope& e) const noexcept {
    return util::hash32(hash_, match_key(e)) % umq_.size();
  }

  std::vector<std::list<UmqEntry>> umq_;
  std::vector<std::list<PrqEntry>> prq_;
  std::list<PrqEntry> wildcard_prq_;
  util::HashKind hash_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t search_steps_ = 0;
  std::uint32_t next_msg_index_ = 0;
};

}  // namespace simtmsg::matching

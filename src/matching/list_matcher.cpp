#include "matching/list_matcher.hpp"

#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

std::optional<RecvRequest> ListMatcher::arrive(const Message& msg) {
  for (auto it = prq_.begin(); it != prq_.end(); ++it) {
    ++search_steps_;
    if (matches(it->env, msg.env)) {
      RecvRequest hit = *it;
      prq_.erase(it);
      return hit;
    }
  }
  umq_.push_back({msg, next_msg_index_++});
  return std::nullopt;
}

std::optional<Message> ListMatcher::post(const RecvRequest& req) {
  for (auto it = umq_.begin(); it != umq_.end(); ++it) {
    ++search_steps_;
    if (matches(req.env, it->msg.env)) {
      Message hit = it->msg;
      umq_.erase(it);
      return hit;
    }
  }
  prq_.push_back(req);
  return std::nullopt;
}

void ListMatcher::clear() {
  umq_.clear();
  prq_.clear();
  search_steps_ = 0;
  next_msg_index_ = 0;
}

SimtMatchStats ListMatcher::match(std::span<const Message> msgs,
                                  std::span<const RecvRequest> reqs) const {
  ListMatcher lm;
  for (const auto& m : msgs) (void)lm.arrive(m);

  SimtMatchStats stats;
  stats.iterations = 1;
  stats.result.request_match.assign(reqs.size(), kNoMatch);
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    for (auto it = lm.umq_.begin(); it != lm.umq_.end(); ++it) {
      ++lm.search_steps_;
      if (matches(reqs[r].env, it->msg.env)) {
        stats.result.request_match[r] = static_cast<std::int32_t>(it->index);
        lm.umq_.erase(it);
        break;
      }
    }
  }
  record_attempt(stats, msgs.size(), reqs.size());
  telemetry::observe("matcher.list.search_steps", lm.search_steps_);
  return stats;
}

}  // namespace simtmsg::matching

// ListMatcher: the CPU baseline.
//
// "Common MPI implementations implement UMQ and PRQ as lists since elements
// can be easily removed without reordering other elements" (Section II-B).
// This matcher is the incremental protocol every MPI library runs on the
// host: an incoming message first searches the Posted Receive Queue; a
// newly posted receive first searches the Unexpected Message Queue.  It
// backs the paper's Section II-C CPU claim (~30 M matches/s for short
// queues, below 5 M beyond 512 entries) via bench/cpu_baseline.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>

#include "matching/envelope.hpp"
#include "matching/match_result.hpp"
#include "matching/matcher.hpp"

namespace simtmsg::matching {

class ListMatcher : public Matcher {
 public:
  /// An incoming message searches the PRQ (posted order).  On a match the
  /// satisfied request is removed and returned; otherwise the message is
  /// appended to the UMQ.
  std::optional<RecvRequest> arrive(const Message& msg);

  /// A newly posted receive searches the UMQ (arrival order).  On a match
  /// the consumed message is removed and returned; otherwise the request is
  /// appended to the PRQ.
  std::optional<Message> post(const RecvRequest& req);

  [[nodiscard]] std::size_t umq_depth() const noexcept { return umq_.size(); }
  [[nodiscard]] std::size_t prq_depth() const noexcept { return prq_.size(); }

  /// Total list elements traversed so far — the paper-relevant cost metric
  /// ("lists ... have to be traversed for every incoming message or receive
  /// request").
  [[nodiscard]] std::uint64_t search_steps() const noexcept { return search_steps_; }

  void clear();

  /// Batch interface (Matcher) with the same observable semantics as the
  /// SIMT matchers: enqueue all messages first, then post all requests.
  /// Runs on a scratch instance; this matcher's incremental state is
  /// untouched.  Host-side baseline: no modelled device time is charged
  /// (cycles/seconds stay 0); traversal cost lands in the
  /// `matcher.list.search_steps` telemetry histogram.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  [[nodiscard]] std::string_view name() const noexcept override { return "list"; }

 private:
  struct UmqEntry {
    Message msg;
    std::uint32_t index;  ///< Position in the batch input (for MatchResult).
  };

  std::list<UmqEntry> umq_;
  std::list<RecvRequest> prq_;
  std::uint64_t search_steps_ = 0;
  std::uint32_t next_msg_index_ = 0;
};

}  // namespace simtmsg::matching

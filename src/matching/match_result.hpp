// The result of one matching pass: for every receive request, the index of
// the message it matched (or kNoMatch).  This mirrors the paper's
// description: "The result of the matching algorithm is a vector that
// indicates the position of the matched message for every receive request"
// (Section V-A), possibly containing no-matches.
#pragma once

#include <cstdint>
#include <vector>

namespace simtmsg::matching {

inline constexpr std::int32_t kNoMatch = -1;

struct MatchPair {
  std::uint32_t msg_index;
  std::uint32_t req_index;

  friend bool operator==(const MatchPair&, const MatchPair&) = default;
  friend auto operator<=>(const MatchPair&, const MatchPair&) = default;
};

struct MatchResult {
  /// request_match[i] = index of the message matched by receive request i,
  /// or kNoMatch.
  std::vector<std::int32_t> request_match;

  [[nodiscard]] std::size_t matched() const noexcept {
    std::size_t n = 0;
    for (const auto m : request_match) n += (m != kNoMatch);
    return n;
  }

  [[nodiscard]] std::vector<MatchPair> pairs() const {
    std::vector<MatchPair> out;
    out.reserve(request_match.size());
    for (std::size_t i = 0; i < request_match.size(); ++i) {
      if (request_match[i] != kNoMatch) {
        out.push_back({static_cast<std::uint32_t>(request_match[i]),
                       static_cast<std::uint32_t>(i)});
      }
    }
    return out;
  }
};

}  // namespace simtmsg::matching

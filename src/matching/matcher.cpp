#include "matching/matcher.hpp"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

Matcher::~Matcher() = default;

SimtMatchStats Matcher::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats = match(mq.view(), rq.view());
  std::vector<std::uint8_t> msg_flags(mq.size(), 0);
  std::vector<std::uint8_t> req_flags(rq.size(), 0);
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    if (m == kNoMatch) continue;
    req_flags[r] = 1;
    msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(msg_flags);
  (void)rq.compact(req_flags);
  return stats;
}

void Matcher::record_attempt(const SimtMatchStats& stats, std::size_t msgs,
                             std::size_t reqs) const {
  if constexpr (telemetry::kEnabled) {
    const std::string prefix = "matcher." + std::string(name());
    auto& reg = telemetry::sink();
    reg.counter(prefix + ".calls").add(1);
    reg.counter(prefix + ".matches").add(stats.result.matched());
    reg.histogram(prefix + ".queue_depth").record(std::max(msgs, reqs));
    reg.histogram(prefix + ".iterations")
        .record(static_cast<std::uint64_t>(stats.iterations));
    reg.histogram(prefix + ".divergent_branches")
        .record(stats.scan_events.divergent_branches +
                stats.reduce_events.divergent_branches +
                stats.compact_events.divergent_branches);
    auto& phase = reg.phase(prefix);
    ++phase.calls;
    phase.device_cycles += stats.cycles;
  } else {
    (void)stats;
    (void)msgs;
    (void)reqs;
  }
}

}  // namespace simtmsg::matching

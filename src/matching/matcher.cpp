#include "matching/matcher.hpp"

#include <algorithm>

#include "matching/workspace.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

Matcher::~Matcher() = default;

void Matcher::match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                         MatchWorkspace& ws, SimtMatchStats& out) const {
  (void)ws;
  out = match(msgs, reqs);
}

SimtMatchStats Matcher::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  MatchWorkspace ws;
  SimtMatchStats stats;
  match_queues_into(mq, rq, ws, stats);
  return stats;
}

void Matcher::match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                                SimtMatchStats& out) const {
  match_into(mq.view(), rq.view(), ws, out);
  ws.msg_flags.assign(mq.size(), 0);
  ws.req_flags.assign(rq.size(), 0);
  for (std::size_t r = 0; r < out.result.request_match.size(); ++r) {
    const auto m = out.result.request_match[r];
    if (m == kNoMatch) continue;
    ws.req_flags[r] = 1;
    ws.msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(ws.msg_flags);
  (void)rq.compact(ws.req_flags);
}

void Matcher::record_attempt(const SimtMatchStats& stats, std::size_t msgs,
                             std::size_t reqs) const {
  if constexpr (telemetry::kEnabled) {
    std::call_once(keys_once_, [this] {
      const std::string prefix = "matcher." + std::string(name());
      keys_.phase = prefix;
      keys_.calls = prefix + ".calls";
      keys_.matches = prefix + ".matches";
      keys_.queue_depth = prefix + ".queue_depth";
      keys_.iterations = prefix + ".iterations";
      keys_.divergent_branches = prefix + ".divergent_branches";
    });
    auto& reg = telemetry::sink();
    reg.counter(keys_.calls).add(1);
    reg.counter(keys_.matches).add(stats.result.matched());
    reg.histogram(keys_.queue_depth).record(std::max(msgs, reqs));
    reg.histogram(keys_.iterations)
        .record(static_cast<std::uint64_t>(stats.iterations));
    reg.histogram(keys_.divergent_branches)
        .record(stats.scan_events.divergent_branches +
                stats.reduce_events.divergent_branches +
                stats.compact_events.divergent_branches);
    auto& phase = reg.phase(keys_.phase);
    ++phase.calls;
    phase.device_cycles += stats.cycles;
  } else {
    (void)stats;
    (void)msgs;
    (void)reqs;
  }
}

}  // namespace simtmsg::matching

// Matcher: the common interface every matching algorithm in this repo
// implements — the three SIMT matchers the paper proposes (matrix,
// partitioned matrix, two-level hash table) and the three host-side
// baselines from its related-work section (single list, rank-partitioned
// lists, hashed bins).  MatchEngine::Impl, the benches, and the conformance
// tests program against this interface instead of special-casing each
// concrete type.
#pragma once

#include <span>
#include <string_view>

#include "matching/envelope.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"

namespace simtmsg::matching {

class Matcher {
 public:
  /// What a matcher guarantees / tolerates; drives workload generation and
  /// result comparison in the generic conformance sweep.
  struct Traits {
    bool ordered = true;           ///< MPI posted-order matching preserved.
    bool tag_wildcards = true;     ///< MPI_ANY_TAG receives accepted.
    bool source_wildcards = true;  ///< MPI_ANY_SOURCE receives accepted.
  };

  virtual ~Matcher();

  /// Batch-match `reqs` (posted order) against `msgs` (arrival order).
  /// Indices in the result refer to the spans passed in.
  [[nodiscard]] virtual SimtMatchStats match(std::span<const Message> msgs,
                                             std::span<const RecvRequest> reqs) const = 0;

  /// Stable identifier ("matrix", "hash-table", "list", ...), used as the
  /// telemetry key prefix `matcher.<name>.*`.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual Traits traits() const noexcept { return Traits{}; }

  /// Drain two live queues: match as much as possible and remove matched
  /// elements from both.  Result indices refer to the queues' contents
  /// *before* the call.  The default implementation batch-matches the queue
  /// views and compacts; matchers with a native incremental drain (matrix,
  /// hash table) override it.
  [[nodiscard]] virtual SimtMatchStats match_queues(MessageQueue& mq, RecvQueue& rq) const;

 protected:
  /// Record the per-attempt telemetry every matcher emits:
  ///   matcher.<name>.calls / .matches            (counters)
  ///   matcher.<name>.queue_depth / .iterations
  ///     / .divergent_branches                    (histograms)
  ///   matcher.<name>                             (phase, modelled cycles)
  /// Compiles to nothing when telemetry is off.
  void record_attempt(const SimtMatchStats& stats, std::size_t msgs,
                      std::size_t reqs) const;
};

}  // namespace simtmsg::matching

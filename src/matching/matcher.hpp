// Matcher: the common interface every matching algorithm in this repo
// implements — the three SIMT matchers the paper proposes (matrix,
// partitioned matrix, two-level hash table) and the three host-side
// baselines from its related-work section (single list, rank-partitioned
// lists, hashed bins).  MatchEngine::Impl, the benches, and the conformance
// tests program against this interface instead of special-casing each
// concrete type.
//
// Two call styles per operation:
//
//  * `match()` / `match_queues()` — by-value convenience API.  Allocates a
//    transient MatchWorkspace per call; fine for tests and one-shot use.
//  * `match_into()` / `match_queues_into()` — workspace API.  The caller
//    owns a MatchWorkspace and a stats slot, both recycled across calls;
//    this is the steady-state path (MatchEngine) and it performs zero heap
//    allocations once the workspace is warm (see workspace.hpp).
//
// A concrete matcher overrides whichever side is its primary: the SIMT
// matchers implement the `_into` virtuals (their scratch lives in the
// workspace) and inherit the wrappers; the CPU baselines implement `match()`
// and inherit `match_into`'s fallback, which simply forwards.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "matching/envelope.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"

namespace simtmsg::matching {

class MatchWorkspace;

class Matcher {
 public:
  /// What a matcher guarantees / tolerates; drives workload generation and
  /// result comparison in the generic conformance sweep.
  struct Traits {
    bool ordered = true;           ///< MPI posted-order matching preserved.
    bool tag_wildcards = true;     ///< MPI_ANY_TAG receives accepted.
    bool source_wildcards = true;  ///< MPI_ANY_SOURCE receives accepted.
  };

  virtual ~Matcher();

  /// Batch-match `reqs` (posted order) against `msgs` (arrival order).
  /// Indices in the result refer to the spans passed in.
  [[nodiscard]] virtual SimtMatchStats match(std::span<const Message> msgs,
                                             std::span<const RecvRequest> reqs) const = 0;

  /// Workspace form of match(): scratch comes from `ws`, the result lands
  /// in `out` (fully re-initialized; no stale state survives).  The default
  /// forwards to match() — correct for the CPU baselines, whose per-call
  /// allocations are not part of the steady-state guarantee.
  virtual void match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                          MatchWorkspace& ws, SimtMatchStats& out) const;

  /// Stable identifier ("matrix", "hash-table", "list", ...), used as the
  /// telemetry key prefix `matcher.<name>.*`.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual Traits traits() const noexcept { return Traits{}; }

  /// Drain two live queues: match as much as possible and remove matched
  /// elements from both.  Result indices refer to the queues' contents
  /// *before* the call.  Convenience wrapper over match_queues_into() with a
  /// transient workspace.
  [[nodiscard]] SimtMatchStats match_queues(MessageQueue& mq, RecvQueue& rq) const;

  /// Workspace form of match_queues().  The default implementation
  /// batch-matches the queue views via match_into() and compacts through the
  /// workspace's flag vectors; matchers with a native incremental drain
  /// (matrix) override it.
  virtual void match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                                 SimtMatchStats& out) const;

 protected:
  /// Record the per-attempt telemetry every matcher emits:
  ///   matcher.<name>.calls / .matches            (counters)
  ///   matcher.<name>.queue_depth / .iterations
  ///     / .divergent_branches                    (histograms)
  ///   matcher.<name>                             (phase, modelled cycles)
  /// Compiles to nothing when telemetry is off.
  void record_attempt(const SimtMatchStats& stats, std::size_t msgs,
                      std::size_t reqs) const;

 private:
  /// The telemetry key strings above, built once per matcher instance on the
  /// first record_attempt (lazily, because name() is virtual and not callable
  /// from the base constructor).  call_once because record_attempt runs
  /// concurrently when a matcher instance is shared across partition
  /// fan-out threads.  Caching them keeps steady-state calls allocation-free.
  struct TelemetryKeys {
    std::string phase;
    std::string calls;
    std::string matches;
    std::string queue_depth;
    std::string iterations;
    std::string divergent_branches;
  };
  mutable TelemetryKeys keys_;
  mutable std::once_flag keys_once_;
};

}  // namespace simtmsg::matching

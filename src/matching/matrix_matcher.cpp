#include "matching/matrix_matcher.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "matching/compaction.hpp"
#include "matching/workspace.hpp"
#include "simt/cta.hpp"
#include "simt/timing_model.hpp"
#include "util/bits.hpp"

namespace simtmsg::matching {
namespace {

// The kernels read only src and tag of each element ("Instead of reading
// the entire message or receive request, only src and tag are being read",
// Algorithm 1): one 64-bit scan_word() per element (envelope.hpp),
// wildcards representable as 0xFFFFFFFF halves.
[[nodiscard]] Rank word_src(std::uint64_t w) noexcept {
  return static_cast<Rank>(static_cast<std::uint32_t>(w >> 32));
}

[[nodiscard]] Tag word_tag(std::uint64_t w) noexcept {
  return static_cast<Tag>(static_cast<std::uint32_t>(w));
}

/// Does the receive word accept the message word (wildcards on the receive
/// side only)?
[[nodiscard]] bool word_matches(std::uint64_t recv, std::uint64_t msg) noexcept {
  const Rank rsrc = word_src(recv);
  const Tag rtag = word_tag(recv);
  return (rsrc == kAnySource || rsrc == word_src(msg)) &&
         (rtag == kAnyTag || rtag == word_tag(msg));
}

/// Host-side prefetch distance (elements) for the streaming reads over the
/// queues' contiguous 64-bit word lanes.  The scan loops walk the lane
/// strictly forward in column-chunked blocks, so pulling the line a few
/// iterations ahead hides the miss latency of the next block.  Purely a
/// host cache hint: the modelled EventCounters never change, so stats,
/// telemetry, and BENCH rows stay bit-identical (ROADMAP follow-on from
/// the SoA-lane PR).
constexpr std::size_t kWordPrefetchDistance = 16;

inline void prefetch_word(std::span<const std::uint64_t> words, std::size_t at) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  if (at < words.size()) __builtin_prefetch(words.data() + at, /*rw=*/0, /*locality=*/1);
#else
  (void)words;
  (void)at;
#endif
}

[[nodiscard]] simt::EventCounters delta(const simt::EventCounters& now,
                                        const simt::EventCounters& before) noexcept {
  simt::EventCounters d = now;
  d.alu_instructions -= before.alu_instructions;
  d.ballot_instructions -= before.ballot_instructions;
  d.shuffle_instructions -= before.shuffle_instructions;
  d.branch_instructions -= before.branch_instructions;
  d.divergent_branches -= before.divergent_branches;
  d.shared_transactions -= before.shared_transactions;
  d.global_transactions -= before.global_transactions;
  d.global_load_requests -= before.global_load_requests;
  d.global_store_requests -= before.global_store_requests;
  d.atomic_operations -= before.atomic_operations;
  d.stall_cycles -= before.stall_cycles;
  d.warp_syncs -= before.warp_syncs;
  d.cta_barriers -= before.cta_barriers;
  return d;
}

}  // namespace

MatrixMatcher::MatrixMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt) {
  opt_.max_warps = std::clamp(opt_.max_warps, 1, spec.max_warps_per_cta);
  opt_.column_chunk = std::max(1, opt_.column_chunk);
  opt_.request_window = std::max(1, opt_.request_window);
  opt_.warp_width = std::clamp(opt_.warp_width, 1, simt::kWarpSize);
}

SimtMatchStats MatrixMatcher::match_window(std::span<const Message> msgs,
                                           std::span<const RecvRequest> reqs) const {
  MatrixWorkspace mws;
  SimtMatchStats stats;
  match_window_into(msgs, reqs, mws, stats);
  return stats;
}

void MatrixMatcher::match_window_into(std::span<const Message> msgs,
                                      std::span<const RecvRequest> reqs,
                                      MatrixWorkspace& mws, SimtMatchStats& out) const {
  // AoS entry point: gather the scan words once, then run the lane-fed
  // kernel.  The queue-drain path skips this gather entirely by feeding
  // MatchQueue's word lane into match_words_into directly.  The kernel
  // clamps to capacity()/request_window itself, so gathering beyond the
  // clamp only happens for the transient span-based callers.
  auto& msg_words = mws.msg_words;
  msg_words.resize(msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    msg_words[i] = scan_word(msgs[i].env);
  }
  auto& req_words = mws.req_words;
  req_words.resize(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    req_words[i] = scan_word(reqs[i].env);
  }
  match_words_into(msg_words, req_words, mws, out);
}

void MatrixMatcher::match_words_into(std::span<const std::uint64_t> all_msg_words,
                                     std::span<const std::uint64_t> all_req_words,
                                     MatrixWorkspace& mws, SimtMatchStats& out) const {
  out.reset(all_req_words.size());
  out.iterations = 1;

  const std::size_t n_msgs =
      std::min(all_msg_words.size(), static_cast<std::size_t>(capacity()));
  const std::size_t n_reqs =
      std::min(all_req_words.size(), static_cast<std::size_t>(opt_.request_window));
  if (n_msgs == 0 || n_reqs == 0) return;

  // Device-resident element words (global memory) — the queue's SoA lane or
  // the gather wrapper's scratch, either way one contiguous 64-bit array.
  const auto msg_words = all_msg_words.subspan(0, n_msgs);
  const auto req_words = all_req_words.subspan(0, n_reqs);

  const simt::TimingModel model(*spec_);

  const auto width = static_cast<std::size_t>(opt_.warp_width);
  if (n_msgs <= width) {
    // ----- Single-warp fast path: no vote matrix ("queues with less than
    // 64 elements are scanned by a single warp and no matrix is generated").
    simt::CtaContext& cta = detail::reuse_cta(mws.scan_cta, 0, 1, spec_->shared_mem_per_sm);
    auto& warp = cta.warp(0);
    warp.set_active(util::low_mask(static_cast<int>(n_msgs)));

    // Each lane loads its message word once (coalesced).
    const auto msg_w = warp.load_global(std::span<const std::uint64_t>(msg_words),
                                        simt::LaneSize::iota());
    std::uint32_t consumed = 0;
    for (std::size_t col = 0; col < n_reqs; ++col) {
      prefetch_word(req_words, col + kWordPrefetchDistance);
      const std::uint64_t req_w =
          warp.load_global_broadcast(std::span<const std::uint64_t>(req_words), col);
      simt::LaneBool pred;
      warp.lanes([&](int lane) { pred[lane] = word_matches(req_w, msg_w[lane]); },
                 /*instructions=*/3);
      const std::uint32_t vote = warp.ballot(pred);
      const std::uint32_t eligible = vote & ~consumed;
      warp.count_alu(1);
      warp.count_branch(eligible != 0);
      warp.count_stall(static_cast<std::uint64_t>(opt_.reduce_chain_cycles));
      if (eligible != 0) {
        const int pos = util::ffs(eligible) - 1;
        consumed = util::set_bit(consumed, pos);
        warp.count_alu(2);
        warp.counters().global_store_requests += 1;
        warp.counters().global_transactions += 1;
        out.result.request_match[col] = pos;
      }
    }
    out.scan_events = cta.counters();
    out.warps_used = 1;
    out.cycles = model.cycles(out.scan_events, /*resident_warps=*/1) +
                 opt_.iteration_overhead_cycles;
    out.seconds = model.seconds_from_cycles(out.cycles);
    return;
  }

  // ----- General path: multi-warp scan (Algorithm 1) + single-warp reduce
  // (Algorithm 2), chunked over columns so the vote matrix chunk fits in
  // shared memory and the two phases can be pipelined.
  const int warps_used = static_cast<int>(util::ceil_div(n_msgs, width));
  const std::size_t chunk_cols = static_cast<std::size_t>(opt_.column_chunk);

  simt::CtaContext& scan_cta =
      detail::reuse_cta(mws.scan_cta, 0, warps_used, spec_->shared_mem_per_sm);
  simt::CtaContext& reduce_cta =
      detail::reuse_cta(mws.reduce_cta, 1, 1, spec_->shared_mem_per_sm);
  auto vote_chunk = scan_cta.alloc_shared<std::uint32_t>(
      static_cast<std::size_t>(warps_used) * chunk_cols);

  // Per-warp message registers, loaded once per iteration.
  auto& msg_regs = mws.msg_regs;
  msg_regs.resize(static_cast<std::size_t>(warps_used));
  auto& warp_active = mws.warp_active;
  warp_active.resize(static_cast<std::size_t>(warps_used));
  for (int w = 0; w < warps_used; ++w) {
    auto& warp = scan_cta.warp(w);
    const std::size_t base = static_cast<std::size_t>(w) * width;
    const int lanes_live = static_cast<int>(std::min(width, n_msgs - base));
    warp_active[static_cast<std::size_t>(w)] = util::low_mask(lanes_live);
    warp.set_active(warp_active[static_cast<std::size_t>(w)]);
    simt::LaneSize idx;
    for (int lane = 0; lane < lanes_live; ++lane) idx[lane] = base + static_cast<std::size_t>(lane);
    msg_regs[static_cast<std::size_t>(w)] =
        warp.load_global(std::span<const std::uint64_t>(msg_words), idx);
  }

  // Reduce state persisting across chunks: thread t owns vote row t and a
  // mask of its not-yet-consumed messages (Algorithm 2 line 1).
  simt::LaneU32 row_mask(0xFFFF'FFFFu);

  double scan_finish = 0.0;
  double reduce_finish = 0.0;
  double total_scan_cycles = 0.0;
  double total_reduce_cycles = 0.0;

  const bool pipelined = opt_.pipelined && warps_used < opt_.max_warps;
  const int scan_resident = warps_used;
  const int reduce_resident = pipelined ? warps_used + 1 : 1;

  simt::EventCounters scan_before;   // zero
  simt::EventCounters reduce_before; // zero

  for (std::size_t chunk_begin = 0; chunk_begin < n_reqs; chunk_begin += chunk_cols) {
    const std::size_t cols = std::min(chunk_cols, n_reqs - chunk_begin);

    // --- Scan phase (Algorithm 1) for this chunk.
    // With variable warp sizing (warp_width < 32), logical warps sharing a
    // physical warp also share its instruction fetch and L1 access: only
    // the first slice pays the global broadcast load; the others hit the
    // slice-shared L1 (modelled at shared-memory cost).
    const int slices_per_physical = simt::kWarpSize / std::max(1, opt_.warp_width);
    for (int w = 0; w < warps_used; ++w) {
      auto& warp = scan_cta.warp(w);
      warp.set_active(warp_active[static_cast<std::size_t>(w)]);
      const auto& msg_w = msg_regs[static_cast<std::size_t>(w)];
      const bool leading_slice = (w % std::max(1, slices_per_physical)) == 0;
      for (std::size_t c = 0; c < cols; ++c) {
        // The chunk loop already cache-blocks the req lane into
        // column_chunk-sized strips; prefetch within the strip keeps the
        // next lines of the word[] lane in flight ahead of the scan.
        prefetch_word(req_words, chunk_begin + c + kWordPrefetchDistance);
        std::uint64_t req_w;
        if (leading_slice) {
          req_w = warp.load_global_broadcast(std::span<const std::uint64_t>(req_words),
                                             chunk_begin + c);
        } else {
          req_w = req_words[chunk_begin + c];
          warp.counters().shared_transactions += 1;
        }
        simt::LaneBool pred;
        warp.lanes([&](int lane) { pred[lane] = word_matches(req_w, msg_w[lane]); },
                   /*instructions=*/3);
        const std::uint32_t vote = warp.ballot(pred);
        // voteMatrix[warp_id * window + i] = vote (Algorithm 1 line 5); the
        // chunk is staged in shared memory for the reduce warp.
        vote_chunk[static_cast<std::size_t>(w) * chunk_cols + c] = vote;
        warp.count_alu(1);
        warp.counters().shared_transactions += 1;
      }
    }
    scan_cta.barrier();
    const simt::EventCounters scan_now = scan_cta.counters();
    const simt::EventCounters scan_delta = delta(scan_now, scan_before);
    scan_before = scan_now;
    const double scan_cycles = model.cycles(scan_delta, scan_resident);

    // --- Reduce phase (Algorithm 2) for this chunk: one warp, thread t
    // reads row t of the vote matrix.
    auto& rwarp = reduce_cta.warp(0);
    rwarp.set_active(util::low_mask(warps_used));
    for (std::size_t c = 0; c < cols; ++c) {
      simt::LaneU32 vote;
      {
        simt::LaneSize idx;
        for (int t = 0; t < warps_used; ++t) {
          idx[t] = static_cast<std::size_t>(t) * chunk_cols + c;
        }
        vote = rwarp.load_shared(std::span<const std::uint32_t>(vote_chunk.data(),
                                                                vote_chunk.size()),
                                 idx);
      }
      simt::LaneBool bids;
      rwarp.lanes([&](int t) { bids[t] = (vote[t] & row_mask[t]) != 0; },
                  /*instructions=*/2);
      const std::uint32_t bidders = rwarp.ballot(bids);  // Algorithm 2 line 5.
      rwarp.count_branch(bidders != 0);
      rwarp.count_stall(static_cast<std::uint64_t>(opt_.reduce_chain_cycles));
      if (bidders != 0) {
        // Lowest thread id wins ("lower IDs have higher priority due to
        // ordering", line 6), lowest set bit of its masked vote is the
        // earliest message (line 7).
        const int winner = util::ffs(bidders) - 1;
        const std::uint32_t eligible = vote[winner] & row_mask[winner];
        const int match_bit = util::ffs(eligible) - 1;
        row_mask[winner] = util::clear_bit(row_mask[winner], match_bit);
        rwarp.count_alu(3);
        rwarp.counters().global_store_requests += 1;
        rwarp.counters().global_transactions += 1;
        out.result.request_match[chunk_begin + c] =
            static_cast<std::int32_t>(winner * static_cast<int>(width) + match_bit);
      }
    }
    const simt::EventCounters reduce_now = reduce_cta.counters();
    const simt::EventCounters reduce_delta = delta(reduce_now, reduce_before);
    reduce_before = reduce_now;
    const double reduce_cycles = model.cycles(reduce_delta, reduce_resident);

    // Pipeline ledger: the reduce of chunk k can only start once its scan
    // finished and the previous reduce drained.
    scan_finish += scan_cycles;
    reduce_finish = std::max(scan_finish, reduce_finish) + reduce_cycles;
    total_scan_cycles += scan_cycles;
    total_reduce_cycles += reduce_cycles;
  }

  out.scan_events = scan_cta.counters();
  out.reduce_events = reduce_cta.counters();
  out.warps_used = warps_used;
  out.cycles = (pipelined ? reduce_finish : total_scan_cycles + total_reduce_cycles) +
               opt_.iteration_overhead_cycles;
  out.seconds = model.seconds_from_cycles(out.cycles);
}

SimtMatchStats MatrixMatcher::match(std::span<const Message> msgs,
                                    std::span<const RecvRequest> reqs) const {
  MatchWorkspace ws;
  SimtMatchStats stats;
  match_into(msgs, reqs, ws, stats);
  return stats;
}

void MatrixMatcher::match_into(std::span<const Message> msgs,
                               std::span<const RecvRequest> reqs, MatchWorkspace& ws,
                               SimtMatchStats& out) const {
  auto& mq = ws.matrix.batch_msgs;
  auto& rq = ws.matrix.batch_reqs;
  mq.clear();
  rq.clear();
  mq.push_raw_n(msgs);
  rq.push_raw_n(reqs);
  match_queues_into(mq, rq, ws, out);
}

void MatrixMatcher::match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                                      SimtMatchStats& out) const {
  const std::size_t in_msgs = mq.size();
  const std::size_t in_reqs = rq.size();
  out.reset(rq.size());

  // Track original positions through compactions.
  auto& msg_orig = ws.matrix.msg_orig;
  msg_orig.resize(mq.size());
  for (std::size_t i = 0; i < msg_orig.size(); ++i) msg_orig[i] = static_cast<std::uint32_t>(i);
  auto& req_orig = ws.matrix.req_orig;
  req_orig.resize(rq.size());
  for (std::size_t i = 0; i < req_orig.size(); ++i) req_orig[i] = static_cast<std::uint32_t>(i);

  const Compactor compactor(*spec_);
  const auto cap = static_cast<std::size_t>(capacity());
  const auto req_win = static_cast<std::size_t>(opt_.request_window);
  const simt::TimingModel model(*spec_);

  std::size_t rw = 0;
  while (rw < rq.size() && !mq.empty()) {
    // Process this request window against all message chunks, restarting
    // from the first chunk after every successful (compacted) pass so that
    // requests sliding into the window still see messages in arrival order.
    std::size_t mc = 0;
    while (mc < mq.size() && rw < rq.size()) {
      const std::size_t msg_take = std::min(cap, mq.size() - mc);
      const std::size_t req_take = std::min(req_win, rq.size() - rw);
      // Feed the queues' SoA word lanes straight into the kernel: no
      // per-window AoS gather, and the lanes stay valid across compactions
      // because MatchQueue compacts them together with the element store.
      const auto msg_words = mq.words().subspan(mc, msg_take);
      const auto req_words = rq.words().subspan(rw, req_take);

      SimtMatchStats& pass = ws.matrix.window;
      match_words_into(msg_words, req_words, ws.matrix, pass);
      out.scan_events += pass.scan_events;
      out.reduce_events += pass.reduce_events;
      out.cycles += pass.cycles;
      out.iterations += 1;
      out.warps_used = std::max(out.warps_used, pass.warps_used);

      const std::size_t matched = pass.result.matched();
      if (matched == 0) {
        mc += msg_take;
        continue;
      }

      auto& msg_flags = ws.matrix.msg_flags;
      auto& req_flags = ws.matrix.req_flags;
      msg_flags.assign(mq.size(), 0);
      req_flags.assign(rq.size(), 0);
      for (std::size_t j = 0; j < pass.result.request_match.size(); ++j) {
        const auto m = pass.result.request_match[j];
        if (m == kNoMatch) continue;
        const std::size_t msg_at = mc + static_cast<std::size_t>(m);
        const std::size_t req_at = rw + j;
        out.result.request_match[req_orig[req_at]] =
            static_cast<std::int32_t>(msg_orig[msg_at]);
        msg_flags[msg_at] = 1;
        req_flags[req_at] = 1;
      }

      const auto mstat = compactor.compact(mq, msg_flags);
      const auto rstat = compactor.compact(rq, req_flags);
      if (opt_.compact) {
        out.compact_events += mstat.events;
        out.compact_events += rstat.events;
        out.cycles += mstat.cycles + rstat.cycles;
      }
      const auto drop_flagged = [](std::vector<std::uint32_t>& v,
                                   const std::vector<std::uint8_t>& flags) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
          if (flags[i] == 0) v[kept++] = v[i];
        }
        v.resize(kept);
      };
      drop_flagged(msg_orig, msg_flags);
      drop_flagged(req_orig, req_flags);
      mc = 0;
    }
    rw += std::min(req_win, rq.size() - rw);
  }

  out.seconds = model.seconds_from_cycles(out.cycles);
  record_attempt(out, in_msgs, in_reqs);
}

}  // namespace simtmsg::matching

// MatrixMatcher: the paper's fully MPI-compliant GPU matching algorithm
// (Section V, Algorithms 1 and 2, Figure 3).
//
// Phase 1, "scan" (Algorithm 1): every thread holds one message; for each
// receive request (a *column*), each warp votes via `ballot` whether its
// messages match, and the 32-bit vote word is written to the vote matrix
// (one row per warp).  The scan is parallel across up to 32 warps = 1024
// messages per iteration.
//
// Phase 2, "reduce" (Algorithm 2): a single warp walks the columns in
// posted order.  Thread t owns vote-matrix row t and a 32-bit mask of its
// still-unconsumed messages.  A second ballot finds the rows bidding for
// the column; `ffs` picks the lowest row, and `ffs` on that row's masked
// vote picks the earliest message — preserving MPI's ordering guarantee.
// The mask update serializes columns, which is the algorithm's bottleneck.
//
// Columns are processed in shared-memory-sized chunks so scan and reduce
// can be pipelined ("both phases can be pipelined to overlap execution");
// at 1024 messages all 32 warps are needed for the scan and the overlap
// disappears — the performance drop visible at the right edge of Figure 4.
//
// Queues with at most 32 messages take a matrix-free single-warp fast path
// ("queues with less than 64 elements are scanned by a single warp and no
// matrix is generated").
#pragma once

#include <span>

#include "matching/envelope.hpp"
#include "matching/matcher.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"

namespace simtmsg::matching {

struct MatrixWorkspace;

class MatrixMatcher : public Matcher {
 public:
  struct Options {
    bool pipelined = true;   ///< Overlap scan and reduce across column chunks.
    bool compact = true;     ///< Charge the compaction pass (§VI-B: ~10 %).
    int column_chunk = 64;   ///< Receive requests buffered in shared memory.
    int max_warps = 32;      ///< Scan warps per CTA (hardware limit: 32).
    int request_window = 1024;  ///< Receive requests examined per iteration.
    /// Logical warp width in lanes (1..32).  32 is today's hardware; the
    /// narrower settings model the "variable warp sizes" architecture the
    /// paper endorses for short queues (Section VII-C): each logical warp
    /// holds warp_width messages and is scheduled independently, so short
    /// queues get more concurrent warps (better latency hiding) at the
    /// price of more issued instructions per column.
    int warp_width = 32;
    /// Serialized dependent latency per reduced column (shared-memory load +
    /// ballot + mask update chain a single warp cannot overlap).
    double reduce_chain_cycles = 40.0;
    /// Fixed per-iteration bookkeeping (head/tail pointer maintenance).
    double iteration_overhead_cycles = 600.0;
    /// Host scheduling policy, accepted for interface uniformity with the
    /// other SIMT matchers.  The matrix kernel is a dependent scan→reduce
    /// pipeline over a shared vote matrix, so its emulation runs on the
    /// calling thread regardless of the policy; host-side parallelism comes
    /// from the layers above (partitions in the PartitionedMatcher, CTAs in
    /// the HashMatcher).
    simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  };

  explicit MatrixMatcher(const simt::DeviceSpec& spec) : MatrixMatcher(spec, Options{}) {}
  MatrixMatcher(const simt::DeviceSpec& spec, Options opt);

  /// One matching iteration: up to max_warps*32 messages against up to
  /// `reqs.size()` receive requests.  Indices in the result refer to the
  /// spans passed in.  Fully MPI-compliant (wildcards + ordering).
  [[nodiscard]] SimtMatchStats match_window(std::span<const Message> msgs,
                                            std::span<const RecvRequest> reqs) const;

  /// Workspace form of match_window: words, per-warp registers, and the two
  /// CTA contexts come from `mws`; the result lands in `out`.
  void match_window_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                         MatrixWorkspace& mws, SimtMatchStats& out) const;

  /// Lane-fed form: the window kernel over pre-packed scan words (what the
  /// queue-drain path feeds straight from MatchQueue's word lane, skipping
  /// the per-window AoS gather).  Word i must be scan_word(src_i, tag_i);
  /// identical words give bit-identical stats to match_window_into.
  void match_words_into(std::span<const std::uint64_t> msg_words,
                        std::span<const std::uint64_t> req_words, MatrixWorkspace& mws,
                        SimtMatchStats& out) const;

  /// Batch interface (Matcher): drains copies of the inputs through
  /// match_queues_into (the copies live in the workspace).
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  void match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                  MatchWorkspace& ws, SimtMatchStats& out) const override;

  [[nodiscard]] std::string_view name() const noexcept override { return "matrix"; }

  /// Drain two queues: iterate match_window over message chunks and request
  /// windows (in order, preserving MPI semantics), compacting after each
  /// pass, until no further progress.  Matched elements are removed from
  /// the queues.  The result maps every *original* request index to its
  /// *original* message index.
  void match_queues_into(MessageQueue& mq, RecvQueue& rq, MatchWorkspace& ws,
                         SimtMatchStats& out) const override;

  [[nodiscard]] const Options& options() const noexcept { return opt_; }
  [[nodiscard]] const simt::DeviceSpec& device() const noexcept { return *spec_; }

  /// Messages one iteration can process (max_warps logical warps of
  /// warp_width lanes each).
  [[nodiscard]] int capacity() const noexcept { return opt_.max_warps * opt_.warp_width; }

 private:
  const simt::DeviceSpec* spec_;
  Options opt_;
};

}  // namespace simtmsg::matching

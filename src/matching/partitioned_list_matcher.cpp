#include "matching/partitioned_list_matcher.hpp"

#include <limits>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

PartitionedListMatcher::PartitionedListMatcher(int partitions) {
  if (partitions < 1) throw std::invalid_argument("partitions must be >= 1");
  umq_.resize(static_cast<std::size_t>(partitions));
  prq_.resize(static_cast<std::size_t>(partitions));
}

std::optional<RecvRequest> PartitionedListMatcher::arrive(const Message& msg) {
  // Earliest-posted matching request across the source's partition and the
  // wildcard queue (sequence numbers arbitrate, as in Zounmevo's design).
  auto& part = prq_[partition_of(msg.env.src)];

  auto part_it = part.end();
  for (auto it = part.begin(); it != part.end(); ++it) {
    ++search_steps_;
    if (matches(it->req.env, msg.env)) {
      part_it = it;
      break;
    }
  }
  auto wild_it = wildcard_prq_.end();
  for (auto it = wildcard_prq_.begin(); it != wildcard_prq_.end(); ++it) {
    ++search_steps_;
    if (matches(it->req.env, msg.env)) {
      wild_it = it;
      break;
    }
  }

  const std::uint64_t part_seq =
      part_it == part.end() ? std::numeric_limits<std::uint64_t>::max() : part_it->seq;
  const std::uint64_t wild_seq = wild_it == wildcard_prq_.end()
                                     ? std::numeric_limits<std::uint64_t>::max()
                                     : wild_it->seq;

  if (part_it != part.end() && part_seq < wild_seq) {
    RecvRequest hit = part_it->req;
    part.erase(part_it);
    return hit;
  }
  if (wild_it != wildcard_prq_.end()) {
    RecvRequest hit = wild_it->req;
    wildcard_prq_.erase(wild_it);
    return hit;
  }

  umq_[partition_of(msg.env.src)].push_back({msg, next_seq_++, next_msg_index_++});
  return std::nullopt;
}

std::optional<Message> PartitionedListMatcher::post(const RecvRequest& req) {
  std::uint32_t index_unused = 0;
  return post_indexed(req, index_unused);
}

std::optional<Message> PartitionedListMatcher::post_indexed(const RecvRequest& req,
                                                            std::uint32_t& index) {
  if (req.env.src != kAnySource) {
    auto& part = umq_[partition_of(req.env.src)];
    for (auto it = part.begin(); it != part.end(); ++it) {
      ++search_steps_;
      if (matches(req.env, it->msg.env)) {
        Message hit = it->msg;
        index = it->index;
        part.erase(it);
        return hit;
      }
    }
    prq_[partition_of(req.env.src)].push_back({req, next_seq_++});
    return std::nullopt;
  }

  // Wildcard source: every partition must be consulted; the earliest
  // arrival (smallest sequence number) wins — this is exactly the case
  // rank partitioning cannot accelerate (paper Section VI: partitioning
  // "is impossible due to wildcards").
  std::list<UmqEntry>* best_list = nullptr;
  std::list<UmqEntry>::iterator best_it;
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (auto& part : umq_) {
    for (auto it = part.begin(); it != part.end(); ++it) {
      ++search_steps_;
      if (matches(req.env, it->msg.env)) {
        if (it->seq < best_seq) {
          best_seq = it->seq;
          best_list = &part;
          best_it = it;
        }
        break;  // Within a partition, list order is arrival order.
      }
    }
  }
  if (best_list != nullptr) {
    Message hit = best_it->msg;
    index = best_it->index;
    best_list->erase(best_it);
    return hit;
  }
  wildcard_prq_.push_back({req, next_seq_++});
  return std::nullopt;
}

std::size_t PartitionedListMatcher::umq_depth() const noexcept {
  std::size_t n = 0;
  for (const auto& part : umq_) n += part.size();
  return n;
}

std::size_t PartitionedListMatcher::prq_depth() const noexcept {
  std::size_t n = wildcard_prq_.size();
  for (const auto& part : prq_) n += part.size();
  return n;
}

void PartitionedListMatcher::clear() {
  for (auto& part : umq_) part.clear();
  for (auto& part : prq_) part.clear();
  wildcard_prq_.clear();
  next_seq_ = 0;
  search_steps_ = 0;
  next_msg_index_ = 0;
}

SimtMatchStats PartitionedListMatcher::match(std::span<const Message> msgs,
                                             std::span<const RecvRequest> reqs) const {
  PartitionedListMatcher m(partitions());
  for (const auto& msg : msgs) (void)m.arrive(msg);

  SimtMatchStats stats;
  stats.iterations = 1;
  stats.result.request_match.assign(reqs.size(), kNoMatch);
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    std::uint32_t index = 0;
    const auto hit = m.post_indexed(reqs[r], index);
    if (hit.has_value()) stats.result.request_match[r] = static_cast<std::int32_t>(index);
  }
  record_attempt(stats, msgs.size(), reqs.size());
  telemetry::observe("matcher.partitioned-list.search_steps", m.search_steps());
  return stats;
}

}  // namespace simtmsg::matching

// PartitionedListMatcher: the Zounmevo & Afsahi approach the paper's
// related-work section describes (Section III): "Their approach partitions
// the rank-space such that multiple queues can be implemented.  Each entry
// is given a sequence number to comply with wildcards."
//
// Host-side CPU matcher: the rank space is split into K per-source queue
// pairs plus one dedicated wildcard queue.  Every element carries the
// global arrival/post sequence number; a lookup consults the relevant
// partition *and* the wildcard queue and takes the entry with the smaller
// sequence number, which restores exact MPI semantics while shortening the
// searched lists by ~K.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <vector>

#include "matching/envelope.hpp"
#include "matching/match_result.hpp"
#include "matching/matcher.hpp"

namespace simtmsg::matching {

class PartitionedListMatcher : public Matcher {
 public:
  explicit PartitionedListMatcher(int partitions = 8);

  /// Incoming message: search the PRQ partition for its source plus the
  /// wildcard PRQ; earlier-posted request wins.  Unmatched messages join
  /// the source's UMQ partition.
  std::optional<RecvRequest> arrive(const Message& msg);

  /// Posted receive: a concrete-source receive searches one UMQ partition;
  /// a wildcard-source receive must search all partitions and take the
  /// earliest-arrived matching message (this is the case partitioning
  /// cannot accelerate).  Unmatched receives join the partition's PRQ (or
  /// the wildcard PRQ).
  std::optional<Message> post(const RecvRequest& req);

  [[nodiscard]] int partitions() const noexcept { return static_cast<int>(umq_.size()); }
  [[nodiscard]] std::size_t umq_depth() const noexcept;
  [[nodiscard]] std::size_t prq_depth() const noexcept;
  [[nodiscard]] std::uint64_t search_steps() const noexcept { return search_steps_; }

  void clear();

  /// Batch interface (Matcher) mirroring ListMatcher::match for
  /// cross-validation; uses this instance's partition count on a scratch
  /// instance.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "partitioned-list";
  }

 private:
  struct UmqEntry {
    Message msg;
    std::uint64_t seq;
    std::uint32_t index;
  };
  struct PrqEntry {
    RecvRequest req;
    std::uint64_t seq;
  };

  /// post() with the arrival index of the consumed message reported back
  /// (batch-result bookkeeping).
  std::optional<Message> post_indexed(const RecvRequest& req, std::uint32_t& index);

  [[nodiscard]] std::size_t partition_of(Rank src) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint32_t>(src) % umq_.size());
  }

  std::vector<std::list<UmqEntry>> umq_;   ///< Per-source-partition UMQs.
  std::vector<std::list<PrqEntry>> prq_;   ///< Per-source-partition PRQs.
  std::list<PrqEntry> wildcard_prq_;       ///< ANY_SOURCE receives.
  std::uint64_t next_seq_ = 0;
  std::uint64_t search_steps_ = 0;
  std::uint32_t next_msg_index_ = 0;
};

}  // namespace simtmsg::matching

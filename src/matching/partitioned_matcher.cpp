#include "matching/partitioned_matcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/queue.hpp"
#include "matching/workspace.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::matching {

PartitionedMatcher::PartitionedMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt), inner_(spec, opt.matrix) {
  if (opt_.partitions < 1) throw std::invalid_argument("partitions must be >= 1");
  if (opt_.sms < 1 || opt_.sms > spec.sm_count) {
    throw std::invalid_argument("sms must be in [1, device SM count]");
  }
}

SimtMatchStats PartitionedMatcher::match(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs) const {
  MatchWorkspace ws;
  SimtMatchStats stats;
  match_into(msgs, reqs, ws, stats);
  return stats;
}

void PartitionedMatcher::match_into(std::span<const Message> msgs,
                                    std::span<const RecvRequest> reqs, MatchWorkspace& ws,
                                    SimtMatchStats& out) const {
  for (const auto& r : reqs) {
    if (r.env.src == kAnySource) {
      throw std::invalid_argument(
          "PartitionedMatcher requires the source wildcard to be prohibited");
    }
  }

  out.reset(reqs.size());

  const auto p_count = static_cast<std::size_t>(opt_.partitions);
  auto& pw = ws.partition;
  pw.part_msgs.resize(p_count);
  pw.part_reqs.resize(p_count);
  pw.msg_map.resize(p_count);
  pw.req_map.resize(p_count);
  for (std::size_t p = 0; p < p_count; ++p) {
    pw.part_msgs[p].clear();
    pw.part_reqs[p].clear();
    pw.msg_map[p].clear();
    pw.req_map[p].clear();
  }

  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto p = static_cast<std::size_t>(partition_of(msgs[i].env.src));
    pw.part_msgs[p].push_raw(msgs[i]);
    pw.msg_map[p].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto p = static_cast<std::size_t>(partition_of(reqs[i].env.src));
    pw.part_reqs[p].push_raw(reqs[i]);
    pw.req_map[p].push_back(static_cast<std::uint32_t>(i));
  }

  const simt::TimingModel model(*spec_);

  int max_iterations = 0;
  int busy_partitions = 0;

  // Partitions own disjoint queue pairs, so the per-partition matrix
  // matchers are independent: run them under the execution policy, staging
  // each partition's stats and telemetry in isolation.  The serial merge in
  // partition order below is what keeps results bit-identical for every
  // thread count.
  pw.runs.resize(p_count);
  for (auto& run : pw.runs) run.busy = false;
  if constexpr (telemetry::kEnabled) {
    if (pw.stages.size() < p_count) pw.stages.resize(p_count);
    for (std::size_t p = 0; p < p_count; ++p) pw.stages[p].reset_values();
  }
  // Nested workspaces are created serially up front: partition_workspace()
  // grows a vector and must not run concurrently with the fan-out.
  for (std::size_t p = 0; p < p_count; ++p) (void)pw.partition_workspace(p);

  util::ThreadPool::shared().run_indexed(
      p_count, opt_.policy.resolved_threads(), [&](std::size_t p) {
        if (pw.part_msgs[p].empty() || pw.part_reqs[p].empty()) return;
        pw.runs[p].busy = true;
        if constexpr (telemetry::kEnabled) {
          const telemetry::ScopedStage stage(pw.stages[p]);
          inner_.match_queues_into(pw.part_msgs[p], pw.part_reqs[p],
                                   pw.partition_workspace(p), pw.runs[p].stats);
        } else {
          inner_.match_queues_into(pw.part_msgs[p], pw.part_reqs[p],
                                   pw.partition_workspace(p), pw.runs[p].stats);
        }
      });
  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    // Idle partitions never touched their stage (empty when fresh, all-zero
    // when recycled), so merging only the busy ones is equivalent and keeps
    // recycled stages from materializing zero-valued keys in the sink.
    for (std::size_t p = 0; p < p_count; ++p) {
      if (pw.runs[p].busy) sink.merge_from(pw.stages[p]);
    }
  }

  pw.costs.clear();
  for (std::size_t p = 0; p < p_count; ++p) {
    if (!pw.runs[p].busy) continue;
    ++busy_partitions;

    const SimtMatchStats& part = pw.runs[p].stats;
    for (std::size_t r = 0; r < part.result.request_match.size(); ++r) {
      const auto m = part.result.request_match[r];
      if (m == kNoMatch) continue;
      out.result.request_match[pw.req_map[p][r]] =
          static_cast<std::int32_t>(pw.msg_map[p][static_cast<std::size_t>(m)]);
    }

    out.scan_events += part.scan_events;
    out.reduce_events += part.reduce_events;
    out.compact_events += part.compact_events;
    out.iterations += part.iterations;
    out.warps_used = std::max(out.warps_used, part.warps_used);
    max_iterations = std::max(max_iterations, part.iterations);
    pw.costs.push_back({part.cycles, std::max(1, part.warps_used)});
  }

  // Wave scheduling: partitions run concurrently while they fit an SM's
  // residency limits (resident warps and CTA slots); the rest serialize
  // into further waves.  With several SMs, waves spread round-robin and
  // the SMs run in parallel (the paper's linear multi-SM scaling remark).
  pw.sm_cycles.assign(static_cast<std::size_t>(opt_.sms), 0.0);
  std::size_t wave_index = 0;
  std::size_t i = 0;
  while (i < pw.costs.size()) {
    int warps_in_wave = 0;
    int ctas_in_wave = 0;
    double wave_max = 0.0;
    while (i < pw.costs.size() && ctas_in_wave < spec_->max_resident_ctas &&
           warps_in_wave + pw.costs[i].warps <= spec_->max_resident_warps) {
      warps_in_wave += pw.costs[i].warps;
      ctas_in_wave += 1;
      wave_max = std::max(wave_max, pw.costs[i].cycles);
      ++i;
    }
    if (ctas_in_wave == 0) {  // A single partition larger than the SM.
      wave_max = pw.costs[i].cycles;
      ++i;
    }
    pw.sm_cycles[wave_index % pw.sm_cycles.size()] += wave_max;
    ++wave_index;
  }
  double cycles = 0.0;
  for (const auto c : pw.sm_cycles) cycles = std::max(cycles, c);

  // Cross-queue pipelining synchronization (charged once per iteration per
  // extra active queue).
  cycles += opt_.partition_sync_cycles * static_cast<double>(max_iterations) *
            static_cast<double>(std::max(0, busy_partitions - 1));

  out.ctas_used = busy_partitions;
  out.cycles = cycles;
  out.seconds = model.seconds_from_cycles(cycles);
  record_attempt(out, msgs.size(), reqs.size());
}

}  // namespace simtmsg::matching

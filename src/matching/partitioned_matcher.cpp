#include "matching/partitioned_matcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "matching/queue.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::matching {

PartitionedMatcher::PartitionedMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt) {
  if (opt_.partitions < 1) throw std::invalid_argument("partitions must be >= 1");
  if (opt_.sms < 1 || opt_.sms > spec.sm_count) {
    throw std::invalid_argument("sms must be in [1, device SM count]");
  }
}

SimtMatchStats PartitionedMatcher::match(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs) const {
  for (const auto& r : reqs) {
    if (r.env.src == kAnySource) {
      throw std::invalid_argument(
          "PartitionedMatcher requires the source wildcard to be prohibited");
    }
  }

  SimtMatchStats total;
  total.result.request_match.assign(reqs.size(), kNoMatch);

  const auto p_count = static_cast<std::size_t>(opt_.partitions);
  std::vector<MessageQueue> part_msgs(p_count);
  std::vector<RecvQueue> part_reqs(p_count);
  std::vector<std::vector<std::uint32_t>> msg_map(p_count);
  std::vector<std::vector<std::uint32_t>> req_map(p_count);

  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto p = static_cast<std::size_t>(partition_of(msgs[i].env.src));
    part_msgs[p].push_raw(msgs[i]);
    msg_map[p].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto p = static_cast<std::size_t>(partition_of(reqs[i].env.src));
    part_reqs[p].push_raw(reqs[i]);
    req_map[p].push_back(static_cast<std::uint32_t>(i));
  }

  const MatrixMatcher matcher(*spec_, opt_.matrix);
  const simt::TimingModel model(*spec_);

  struct PartitionCost {
    double cycles = 0.0;
    int warps = 1;
  };
  std::vector<PartitionCost> costs;
  int max_iterations = 0;
  int busy_partitions = 0;

  // Partitions own disjoint queue pairs, so the per-partition matrix
  // matchers are independent: run them under the execution policy, staging
  // each partition's stats and telemetry in isolation.  The serial merge in
  // partition order below is what keeps results bit-identical for every
  // thread count.
  struct PartitionRun {
    bool busy = false;
    SimtMatchStats stats;
  };
  std::vector<PartitionRun> runs(p_count);
  std::vector<telemetry::Registry> stages(telemetry::kEnabled ? p_count : 0);
  util::ThreadPool::shared().run_indexed(
      p_count, opt_.policy.resolved_threads(), [&](std::size_t p) {
        if (part_msgs[p].empty() || part_reqs[p].empty()) return;
        runs[p].busy = true;
        if constexpr (telemetry::kEnabled) {
          const telemetry::ScopedStage stage(stages[p]);
          runs[p].stats = matcher.match_queues(part_msgs[p], part_reqs[p]);
        } else {
          runs[p].stats = matcher.match_queues(part_msgs[p], part_reqs[p]);
        }
      });
  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    for (const auto& stage : stages) sink.merge_from(stage);
  }

  for (std::size_t p = 0; p < p_count; ++p) {
    if (!runs[p].busy) continue;
    ++busy_partitions;

    const SimtMatchStats& part = runs[p].stats;
    for (std::size_t r = 0; r < part.result.request_match.size(); ++r) {
      const auto m = part.result.request_match[r];
      if (m == kNoMatch) continue;
      total.result.request_match[req_map[p][r]] =
          static_cast<std::int32_t>(msg_map[p][static_cast<std::size_t>(m)]);
    }

    total.scan_events += part.scan_events;
    total.reduce_events += part.reduce_events;
    total.compact_events += part.compact_events;
    total.iterations += part.iterations;
    total.warps_used = std::max(total.warps_used, part.warps_used);
    max_iterations = std::max(max_iterations, part.iterations);
    costs.push_back({part.cycles, std::max(1, part.warps_used)});
  }

  // Wave scheduling: partitions run concurrently while they fit an SM's
  // residency limits (resident warps and CTA slots); the rest serialize
  // into further waves.  With several SMs, waves spread round-robin and
  // the SMs run in parallel (the paper's linear multi-SM scaling remark).
  std::vector<double> sm_cycles(static_cast<std::size_t>(opt_.sms), 0.0);
  std::size_t wave_index = 0;
  std::size_t i = 0;
  while (i < costs.size()) {
    int warps_in_wave = 0;
    int ctas_in_wave = 0;
    double wave_max = 0.0;
    while (i < costs.size() && ctas_in_wave < spec_->max_resident_ctas &&
           warps_in_wave + costs[i].warps <= spec_->max_resident_warps) {
      warps_in_wave += costs[i].warps;
      ctas_in_wave += 1;
      wave_max = std::max(wave_max, costs[i].cycles);
      ++i;
    }
    if (ctas_in_wave == 0) {  // A single partition larger than the SM.
      wave_max = costs[i].cycles;
      ++i;
    }
    sm_cycles[wave_index % sm_cycles.size()] += wave_max;
    ++wave_index;
  }
  double cycles = 0.0;
  for (const auto c : sm_cycles) cycles = std::max(cycles, c);

  // Cross-queue pipelining synchronization (charged once per iteration per
  // extra active queue).
  cycles += opt_.partition_sync_cycles * static_cast<double>(max_iterations) *
            static_cast<double>(std::max(0, busy_partitions - 1));

  total.ctas_used = busy_partitions;
  total.cycles = cycles;
  total.seconds = model.seconds_from_cycles(cycles);
  record_attempt(total, msgs.size(), reqs.size());
  return total;
}

}  // namespace simtmsg::matching

// PartitionedMatcher: rank partitioning enabled by prohibiting the source
// wildcard (Section VI-A, Figure 5).
//
// "Prohibiting the src wildcard allows the rank space to be statically
// partitioned and arranged into multiple queues."  Each partition owns an
// independent message/receive-request queue pair handled by a matrix
// matcher CTA; partitions execute concurrently up to the SM's residency
// limits, after which waves serialize.  MPI's per-(src, comm) ordering is
// preserved because a given source always maps to the same partition.
//
// Cross-partition pipelining synchronization ("the synchronization required
// for pipelining applies to all warps and not only to the warps that
// process the same queue") is charged per iteration and partition, which is
// what bends the Figure 5 scaling below linear past ~4 queues.
#pragma once

#include <span>

#include "matching/envelope.hpp"
#include "matching/matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"

namespace simtmsg::matching {

class PartitionedMatcher : public Matcher {
 public:
  struct Options {
    int partitions = 4;
    MatrixMatcher::Options matrix;
    /// Cross-partition synchronization cost per iteration per extra queue.
    double partition_sync_cycles = 250.0;
    /// Streaming multiprocessors dedicated to matching.  The paper runs
    /// everything on one SM ("all CTAs run on the same SM") and remarks
    /// that "if multiple SMs were used, the performance would be increasing
    /// linearly ... however, less resources would be available to execute
    /// the application".  Waves spread round-robin across SMs.
    int sms = 1;
    /// Host scheduling of the per-partition matrix matchers.  Partitions
    /// own disjoint queues, so they execute concurrently under this policy;
    /// per-partition stats and telemetry are merged in partition order, so
    /// modelled results are bit-identical for every thread count.
    simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  };

  explicit PartitionedMatcher(const simt::DeviceSpec& spec)
      : PartitionedMatcher(spec, Options{}) {}
  PartitionedMatcher(const simt::DeviceSpec& spec, Options opt);

  /// Match with partitioned queues.  Requests must not use the source
  /// wildcard (throws std::invalid_argument); tag wildcards stay legal.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  /// Workspace form: partition queues, index maps, run slots, and the
  /// per-partition nested workspaces all come from `ws.partition`.
  void match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                  MatchWorkspace& ws, SimtMatchStats& out) const override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "partitioned-matrix";
  }

  [[nodiscard]] Traits traits() const noexcept override {
    return Traits{.ordered = true, .tag_wildcards = true, .source_wildcards = false};
  }

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  /// Partition a source rank (static rank-space partitioning).
  [[nodiscard]] int partition_of(Rank src) const noexcept {
    return static_cast<int>(static_cast<std::uint32_t>(src) %
                            static_cast<std::uint32_t>(opt_.partitions));
  }

 private:
  const simt::DeviceSpec* spec_;
  Options opt_;
  /// The matrix matcher every partition runs.  A member (not a per-call
  /// local) so its cached telemetry keys are built once per matcher
  /// instance, keeping the steady-state path allocation-free.  It holds no
  /// mutable scratch — concurrent partitions each bring their own workspace.
  MatrixMatcher inner_;
};

}  // namespace simtmsg::matching

#include "matching/pattern_table_matcher.hpp"

#include <algorithm>
#include <cstdint>

#include "matching/workspace.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bits.hpp"
#include "util/hash.hpp"

namespace simtmsg::matching {
namespace {

// The four wildcard classes: bit 0 = source wildcarded, bit 1 = tag
// wildcarded.  A receive lands in exactly one class; a message probes all
// four with its envelope projected onto each class's concrete fields.
[[nodiscard]] int class_of(const Envelope& e) noexcept {
  return (e.src == kAnySource ? 1 : 0) | (e.tag == kAnyTag ? 2 : 0);
}

[[nodiscard]] constexpr bool class_has_src(int cls) noexcept { return (cls & 1) == 0; }
[[nodiscard]] constexpr bool class_has_tag(int cls) noexcept { return (cls & 2) == 0; }

/// Slot hash over the class's concrete fields (wildcarded fields zeroed so
/// a message's projection and a receive's stored key hash identically).
/// The projected key is the same packed (src, tag) word the queue lanes
/// carry (envelope.hpp scan_word), masked down to the class's fields.
[[nodiscard]] std::uint32_t slot_hash(int cls, const Envelope& e) noexcept {
  const Rank src = class_has_src(cls) ? e.src : 0;
  const Tag tag = class_has_tag(cls) ? e.tag : 0;
  std::uint32_t h = util::mix64to32(scan_word(src, tag));
  h ^= util::mix64to32((static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.comm)) << 32) |
                       (0x9E3779B9u + static_cast<std::uint32_t>(cls)));
  // Streams are part of the class key (never wildcarded).  Mixed only off
  // the default stream so default-domain tables hash bit-identically to the
  // pre-stream layout.
  if (e.stream != kDefaultStream) {
    h ^= util::mix64to32(0xA5A5'0000'0000'0000ull |
                         static_cast<std::uint32_t>(e.stream));
  }
  return h;
}

/// Do two envelopes agree on the class's concrete fields?  For inserts both
/// sides are receives of the same class; for probes `a` is the bucket's
/// representative receive and `b` the incoming message.  The stream is a
/// concrete field of every class (no stream wildcard exists).
[[nodiscard]] bool class_key_equal(const Envelope& a, const Envelope& b, int cls) noexcept {
  return a.comm == b.comm && a.stream == b.stream &&
         (!class_has_src(cls) || a.src == b.src) &&
         (!class_has_tag(cls) || a.tag == b.tag);
}

}  // namespace

PatternTableMatcher::PatternTableMatcher(const simt::DeviceSpec& spec, Options opt)
    : spec_(&spec), opt_(opt) {
  opt_.ctas = std::max(1, opt_.ctas);
  opt_.max_warps = std::clamp(opt_.max_warps, 1, spec.max_warps_per_cta);
  opt_.table_load = std::max(1.25, opt_.table_load);
}

SimtMatchStats PatternTableMatcher::match(std::span<const Message> msgs,
                                          std::span<const RecvRequest> reqs) const {
  MatchWorkspace ws;
  SimtMatchStats stats;
  match_into(msgs, reqs, ws, stats);
  return stats;
}

void PatternTableMatcher::match_into(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs, MatchWorkspace& ws,
                                     SimtMatchStats& out) const {
  out.reset(reqs.size());
  out.ctas_used = opt_.ctas;
  out.iterations = 1;

  PatternWorkspace& pw = ws.pattern;
  std::uint64_t insert_slots = 0;  ///< Slot inspections while building tables.
  std::uint64_t probe_slots = 0;   ///< Slot inspections while resolving messages.
  std::uint64_t wildcard_posts = 0;
  std::uint64_t hits = 0;

  if (!msgs.empty() && !reqs.empty()) {
    // ---- Classify the posted receives and size one table per class.
    std::size_t class_count[4] = {0, 0, 0, 0};
    pw.req_class.resize(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const int cls = class_of(reqs[i].env);
      pw.req_class[i] = static_cast<std::uint8_t>(cls);
      ++class_count[cls];
    }
    wildcard_posts = static_cast<std::uint64_t>(reqs.size() - class_count[0]);

    for (int cls = 0; cls < 4; ++cls) {
      PatternWorkspace::Table& t = pw.tables[cls];
      t.live = 0;
      if (class_count[cls] == 0) {
        // Never probed (the live check below short-circuits), so the slot
        // arrays can stay at whatever capacity they had.
        t.mask = 0;
        continue;
      }
      const std::size_t slots = util::next_pow2(std::max<std::size_t>(
          16, static_cast<std::size_t>(opt_.table_load *
                                       static_cast<double>(class_count[cls]))));
      t.rep.assign(slots, -1);
      t.head.assign(slots, -1);
      t.tail.assign(slots, -1);
      t.mask = slots - 1;
    }

    // ---- Insert pass: append each receive to its class bucket's FIFO.
    // Posted order in, so every bucket head is the class's oldest candidate.
    pw.next.assign(reqs.size(), -1);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const int cls = pw.req_class[i];
      PatternWorkspace::Table& t = pw.tables[cls];
      std::size_t s = slot_hash(cls, reqs[i].env) & t.mask;
      while (true) {
        ++insert_slots;
        const std::int32_t rep = t.rep[s];
        if (rep < 0) {
          t.rep[s] = static_cast<std::int32_t>(i);
          t.head[s] = static_cast<std::int32_t>(i);
          t.tail[s] = static_cast<std::int32_t>(i);
          break;
        }
        if (class_key_equal(reqs[static_cast<std::size_t>(rep)].env, reqs[i].env, cls)) {
          pw.next[static_cast<std::size_t>(t.tail[s])] = static_cast<std::int32_t>(i);
          t.tail[s] = static_cast<std::int32_t>(i);
          break;
        }
        s = (s + 1) & t.mask;
      }
      ++t.live;
    }

    // ---- Probe pass, message-driven greedy: each message (arrival order)
    // probes at most the four non-empty class tables and takes the bucket
    // head with the lowest posting index — the global-sequence tiebreak.
    // docs/wildcards.md proves this reproduces the request-driven oracle.
    for (std::size_t m = 0; m < msgs.size(); ++m) {
      const Envelope& env = msgs[m].env;
      std::int32_t best = -1;
      int best_cls = 0;
      std::size_t best_slot = 0;
      for (int cls = 0; cls < 4; ++cls) {
        PatternWorkspace::Table& t = pw.tables[cls];
        if (t.live == 0) continue;
        std::size_t s = slot_hash(cls, env) & t.mask;
        std::int32_t cand = -1;
        while (true) {
          ++probe_slots;
          const std::int32_t rep = t.rep[s];
          if (rep < 0) break;  // Empty slot: this key was never inserted.
          if (class_key_equal(reqs[static_cast<std::size_t>(rep)].env, env, cls)) {
            cand = t.head[s];  // -1 when the bucket has drained.
            break;
          }
          s = (s + 1) & t.mask;
        }
        if (cand >= 0 && (best < 0 || cand < best)) {
          best = cand;
          best_cls = cls;
          best_slot = s;
        }
      }
      if (best < 0) continue;
      PatternWorkspace::Table& t = pw.tables[best_cls];
      const std::int32_t nxt = pw.next[static_cast<std::size_t>(best)];
      t.head[best_slot] = nxt;
      if (nxt < 0) t.tail[best_slot] = -1;
      --t.live;
      out.result.request_match[static_cast<std::size_t>(best)] =
          static_cast<std::int32_t>(m);
      ++hits;
    }
  }

  // ---- Cost model: the functional resolution above is host-serial; the
  // modelled device kernel is an insert phase then a probe phase, split
  // across CTAs.  Table reads are independent per-lane gathers (hash-probe
  // style MLP); the FIFO append and the head claim are global atomics.
  const simt::TimingModel model(*spec_);
  const auto ctas = static_cast<std::size_t>(opt_.ctas);
  const std::size_t per_cta_elems =
      util::ceil_div(std::max(msgs.size(), reqs.size()), ctas);
  const int warps_per_cta = static_cast<int>(std::clamp<std::size_t>(
      util::ceil_div(per_cta_elems, 32), 1, static_cast<std::size_t>(opt_.max_warps)));

  const auto per_cta = [&](std::uint64_t v) { return util::ceil_div(v, ctas); };
  const std::uint64_t req_groups = util::ceil_div(reqs.size(), std::size_t{32});
  const std::uint64_t msg_groups = util::ceil_div(msgs.size(), std::size_t{32});

  simt::EventCounters insert_ev;  // Phase 1: build the class tables.
  insert_ev.global_load_requests = per_cta(req_groups) + per_cta(insert_slots);
  insert_ev.global_transactions = 2 * per_cta(req_groups) + per_cta(insert_slots);
  insert_ev.global_store_requests = per_cta(req_groups);
  insert_ev.atomic_operations = per_cta(reqs.size());  // FIFO tail append.
  insert_ev.alu_instructions = 6 * per_cta(req_groups);
  insert_ev.branch_instructions = 2 * per_cta(req_groups);

  simt::EventCounters probe_ev;  // Phase 2: resolve the messages.
  probe_ev.global_load_requests = per_cta(msg_groups) + per_cta(probe_slots);
  probe_ev.global_transactions = 2 * per_cta(msg_groups) + per_cta(probe_slots);
  probe_ev.atomic_operations = per_cta(hits);  // Winner's bucket-head claim.
  probe_ev.alu_instructions = 10 * per_cta(msg_groups);
  probe_ev.branch_instructions = 4 * per_cta(msg_groups);

  simt::LaunchConfig launch;
  launch.ctas = opt_.ctas;
  launch.warps_per_cta = warps_per_cta;
  launch.mlp_per_warp = opt_.kernel_mlp;
  // Vector overload with workspace scratch: the scalar estimate() would
  // heap-allocate its per-CTA expansion on every call.
  pw.cta_events.assign(ctas, insert_ev);
  const auto insert_est = model.estimate(pw.cta_events, launch);
  pw.cta_events.assign(ctas, probe_ev);
  const auto probe_est = model.estimate(pw.cta_events, launch);

  out.scan_events = insert_ev;
  out.reduce_events = probe_ev;
  out.warps_used = warps_per_cta;
  out.cycles = insert_est.cycles + probe_est.cycles + opt_.launch_overhead_cycles;
  out.seconds = model.seconds_from_cycles(out.cycles);

  record_attempt(out, msgs.size(), reqs.size());
  // The per-table instruments the sharded replication path merges: probe
  // traffic (both phases' slot inspections), resolved messages, and how
  // many posts took a wildcard table.
  telemetry::count("matching.pattern.probes", insert_slots + probe_slots);
  telemetry::count("matching.pattern.hits", hits);
  telemetry::count("matching.pattern.wildcard_posts", wildcard_posts);
}

}  // namespace simtmsg::matching

// PatternTableMatcher: wildcard-capable exact-probe matching — the
// ROADMAP's "automaton/pattern-table" matcher (hybrid CUDA+MPI
// Aho-Corasick direction from PAPERS.md, specialised to the 3-field MPI
// envelope alphabet).
//
// The paper's hash relaxation (Section VI-C) forbids wildcards, so
// MiniFE/MiniDFT-style MPI_ANY_SOURCE traffic falls back to the O(M*R)
// compliant matrix path.  But a receive envelope can only wildcard two of
// its three fields, so the posted-receive set compiles into exactly four
// exact-probe tables keyed by wildcard class:
//
//   class 0  (src, tag, comm)   fully concrete
//   class 1  (ANY, tag, comm)   MPI_ANY_SOURCE
//   class 2  (src, ANY, comm)   MPI_ANY_TAG
//   class 3  (ANY, ANY, comm)   both wildcards
//
// Each receive is inserted into the one table matching its class, appended
// to a per-key FIFO list (so a bucket's head is always the class's
// oldest-posted candidate).  An incoming message projects its envelope
// onto each class's key and probes at most four buckets; the candidates'
// global posting sequence breaks the tie, and the oldest hit wins —
// exactly MPI's "first matching posted receive" rule, wildcards included.
// docs/wildcards.md has the layout diagram and the proof sketch that this
// message-driven greedy reproduces ReferenceMatcher bit-for-bit.
#pragma once

#include <span>

#include "matching/envelope.hpp"
#include "matching/matcher.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"

namespace simtmsg::matching {

class PatternTableMatcher : public Matcher {
 public:
  struct Options {
    int ctas = 1;       ///< Elements are split across CTAs, as in the hash matcher.
    int max_warps = 32;
    /// Slots per live entry in each class table (open addressing headroom).
    double table_load = 2.0;
    /// Table probes are independent per-lane accesses: one warp keeps many
    /// bucket reads in flight, like the hash matcher's probe phase.
    double kernel_mlp = 8.0;
    /// Fixed per-call launch/teardown charge.
    double launch_overhead_cycles = 400.0;
    /// Host scheduling knob (cost replay only; functional resolution is
    /// serial, so results are bit-identical for every thread count).
    simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  };

  explicit PatternTableMatcher(const simt::DeviceSpec& spec)
      : PatternTableMatcher(spec, Options{}) {}
  PatternTableMatcher(const simt::DeviceSpec& spec, Options opt);

  /// Batch-match with full MPI semantics: posted order, both wildcards.
  /// Produces exactly ReferenceMatcher's pairing.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const override;

  /// Workspace form: the four class tables, FIFO links, and classification
  /// scratch all come from `ws.pattern` — zero allocations in steady state.
  void match_into(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
                  MatchWorkspace& ws, SimtMatchStats& out) const override;

  [[nodiscard]] std::string_view name() const noexcept override { return "pattern-table"; }

  [[nodiscard]] Traits traits() const noexcept override {
    return Traits{.ordered = true, .tag_wildcards = true, .source_wildcards = true};
  }

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  const simt::DeviceSpec* spec_;
  Options opt_;
};

}  // namespace simtmsg::matching

#include "matching/queue.hpp"

// MatchQueue is a template; this TU instantiates the two queue types used
// throughout the library so their code is emitted once.

namespace simtmsg::matching {

template class MatchQueue<Message>;
template class MatchQueue<RecvRequest>;

}  // namespace simtmsg::matching

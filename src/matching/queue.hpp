// Device-side match queues.
//
// Section V: "While CPUs keep message and receive request queues separated
// from UMQ and PRQ, we unify them in our GPU implementation.  The UMQ is
// placed at the head of the message queue and the PRQ at the head of the
// receive request queue."  MatchQueue implements that unified layout: a
// contiguous buffer in (simulated) global memory whose head region holds
// the not-yet-matched elements, with new arrivals appended at the tail.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "matching/envelope.hpp"

namespace simtmsg::matching {

template <typename T>
class MatchQueue {
 public:
  MatchQueue() = default;
  explicit MatchQueue(std::vector<T> initial) : items_(std::move(initial)) {}

  /// Append a new arrival at the tail, stamping its sequence number.
  void push(T item) {
    item.seq = next_seq_++;
    items_.push_back(std::move(item));
  }

  /// Append preserving the item's existing sequence number.
  void push_raw(T item) {
    next_seq_ = std::max(next_seq_, item.seq + 1);
    items_.push_back(std::move(item));
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  [[nodiscard]] const T& operator[](std::size_t i) const { return items_[i]; }
  [[nodiscard]] T& operator[](std::size_t i) { return items_[i]; }

  /// Raw storage — this is what the SIMT kernels read as "global memory".
  [[nodiscard]] std::span<const T> view() const noexcept { return items_; }
  [[nodiscard]] std::span<T> view() noexcept { return items_; }

  /// First `n` elements (the window an iteration works on).
  [[nodiscard]] std::span<const T> window(std::size_t n) const noexcept {
    return std::span<const T>(items_).subspan(0, std::min(n, items_.size()));
  }

  /// Remove the elements whose indices have `matched[i] != 0`, preserving
  /// the relative order of survivors (the paper's compaction step:
  /// "compact the queues to advance the head pointer").  Returns the number
  /// of removed elements.
  std::size_t compact(std::span<const std::uint8_t> matched) {
    std::size_t kept = 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const bool remove = i < matched.size() && matched[i] != 0;
      if (remove) {
        ++removed;
      } else {
        if (kept != i) items_[kept] = std::move(items_[i]);
        ++kept;
      }
    }
    items_.resize(kept);
    return removed;
  }

  void clear() noexcept { items_.clear(); }

 private:
  std::vector<T> items_;
  std::uint64_t next_seq_ = 0;
};

using MessageQueue = MatchQueue<Message>;
using RecvQueue = MatchQueue<RecvRequest>;

}  // namespace simtmsg::matching

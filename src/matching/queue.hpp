// Device-side match queues.
//
// Section V: "While CPUs keep message and receive request queues separated
// from UMQ and PRQ, we unify them in our GPU implementation.  The UMQ is
// placed at the head of the message queue and the PRQ at the head of the
// receive request queue."  MatchQueue implements that unified layout: a
// contiguous buffer in (simulated) global memory whose head region holds
// the not-yet-matched elements, with new arrivals appended at the tail.
//
// Envelope lanes (struct-of-arrays).  The scan kernels read only (source,
// tag, comm) of each element ("Instead of reading the entire message or
// receive request, only src and tag are being read", Algorithm 1), so the
// queue keeps those fields mirrored in contiguous per-field lanes next to
// the element (payload) store: source[], tag[], comm[], stream[], seq[],
// and the packed (src << 32 | tag) scan word[] the warp ballot scan
// consumes.  Sequence numbers are stamped per ordering domain — each
// stream owns an independent cursor (docs/streams.md) — so in-order
// release and posted-order tiebreaks hold within a stream only.  A
// probe over the lanes streams 8-byte words instead of striding over
// whole Message/RecvRequest structs, which is exactly the coalesced
// lane-wise layout the SIMT literature prescribes (docs/perf.md).  The
// lanes are maintained by every mutation (push, push_n, push_raw,
// compact, clear) and are therefore always in sync with the element
// store; accessors are const-only so no caller can desynchronize them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <vector>

#include "matching/envelope.hpp"

namespace simtmsg::matching {

/// Const view over a queue's envelope lanes: one contiguous array per
/// envelope field, index-aligned with the element store (element i's
/// envelope is {src[i], tag[i], comm[i], stream[i]} with sequence seq[i]
/// and packed scan word word[i] == scan_word(src[i], tag[i])).
struct EnvelopeLanes {
  std::span<const Rank> src;
  std::span<const Tag> tag;
  std::span<const CommId> comm;
  std::span<const StreamId> stream;  ///< Ordering domain (docs/streams.md).
  std::span<const std::uint64_t> seq;
  std::span<const std::uint64_t> word;  ///< What the ballot scan reads.
};

template <typename T>
class MatchQueue {
 public:
  MatchQueue() = default;
  explicit MatchQueue(std::vector<T> initial) : items_(std::move(initial)) {
    rebuild_lanes();
  }

  /// Append a new arrival at the tail, stamping its sequence number from
  /// its stream's cursor.  Each ordering domain owns an independent
  /// sequence space (docs/streams.md): the default stream keeps the
  /// original scalar cursor, so stream-0-only traffic is stamped exactly
  /// as before streams existed.
  void push(T item) {
    item.seq = bump_seq(item.env.stream);
    append_lanes(item);
    items_.push_back(std::move(item));
  }

  /// Bulk append: one reserve + lane-wise sequence stamping for the whole
  /// batch.  Element and sequence-wise identical to pushing the items one
  /// at a time (tests/matching/batched_ingest_test.cpp pins this), but the
  /// per-call overhead is paid once per batch.
  void push_n(std::span<const T> items) {
    reserve_more(items.size());
    for (const T& it : items) {
      T copy = it;
      copy.seq = bump_seq(copy.env.stream);
      append_lanes(copy);
      items_.push_back(std::move(copy));
    }
  }

  /// Append preserving the item's existing sequence number.  The stamping
  /// cursor of the item's stream saturates at the maximum sequence instead
  /// of wrapping: a raw item carrying seq == 2^64-1 must not silently
  /// reset that stream's sequence space (seq + 1 would wrap to 0).
  void push_raw(T item) {
    advance_cursor(item.env.stream, item.seq);
    append_lanes(item);
    items_.push_back(std::move(item));
  }

  /// Bulk form of push_raw(): existing sequence numbers preserved, one
  /// reserve for the whole batch.
  void push_raw_n(std::span<const T> items) {
    reserve_more(items.size());
    for (const T& it : items) {
      advance_cursor(it.env.stream, it.seq);
      append_lanes(it);
      items_.push_back(it);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  [[nodiscard]] const T& operator[](std::size_t i) const { return items_[i]; }

  /// Raw element storage — what the SIMT kernels see as "global memory".
  /// Const-only: mutating an element in place would desynchronize the
  /// envelope lanes (all mutation goes through push*/compact/clear).
  [[nodiscard]] std::span<const T> view() const noexcept { return items_; }

  /// The envelope lanes (struct-of-arrays mirror of view(), see above).
  [[nodiscard]] EnvelopeLanes lanes() const noexcept {
    return EnvelopeLanes{.src = src_, .tag = tag_, .comm = comm_, .stream = stream_,
                         .seq = seq_, .word = word_};
  }

  /// The packed (src << 32 | tag) scan-word lane — the exact array the
  /// matrix/hash scan kernels load.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return word_; }

  /// First `n` elements (the window an iteration works on).
  [[nodiscard]] std::span<const T> window(std::size_t n) const noexcept {
    return std::span<const T>(items_).subspan(0, std::min(n, items_.size()));
  }

  /// Remove the elements whose indices have `matched[i] != 0`, preserving
  /// the relative order of survivors (the paper's compaction step:
  /// "compact the queues to advance the head pointer").  Lane-wise: the
  /// element store and every envelope lane compact in one pass, so the
  /// lanes stay index-aligned.  Returns the number of removed elements.
  std::size_t compact(std::span<const std::uint8_t> matched) {
    std::size_t kept = 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const bool remove = i < matched.size() && matched[i] != 0;
      if (remove) {
        ++removed;
      } else {
        if (kept != i) {
          items_[kept] = std::move(items_[i]);
          src_[kept] = src_[i];
          tag_[kept] = tag_[i];
          comm_[kept] = comm_[i];
          stream_[kept] = stream_[i];
          seq_[kept] = seq_[i];
          word_[kept] = word_[i];
        }
        ++kept;
      }
    }
    items_.resize(kept);
    src_.resize(kept);
    tag_.resize(kept);
    comm_.resize(kept);
    stream_.resize(kept);
    seq_.resize(kept);
    word_.resize(kept);
    return removed;
  }

  void clear() noexcept {
    items_.clear();
    src_.clear();
    tag_.clear();
    comm_.clear();
    stream_.clear();
    seq_.clear();
    word_.clear();
  }

 private:
  static constexpr std::uint64_t kMaxSeq = std::numeric_limits<std::uint64_t>::max();

  /// The cursor value that follows a raw element's sequence, saturating at
  /// kMaxSeq so the sequence space never wraps back to 0.
  [[nodiscard]] static constexpr std::uint64_t saturating_next(std::uint64_t seq) noexcept {
    return seq == kMaxSeq ? kMaxSeq : seq + 1;
  }

  /// The stamping cursor for one ordering domain.  The default stream uses
  /// the original scalar member (zero lookups, bit-identical stamping);
  /// other streams live in an ordered map keyed by stream id.
  [[nodiscard]] std::uint64_t& cursor(StreamId stream) {
    return stream == kDefaultStream ? next_seq_ : stream_seq_[stream];
  }

  /// Stamp-and-advance the stream's cursor, saturating at kMaxSeq (further
  /// stamps repeat it rather than wrapping — by then the ordering contract
  /// is void anyway).
  [[nodiscard]] std::uint64_t bump_seq(StreamId stream) {
    std::uint64_t& c = cursor(stream);
    const std::uint64_t s = c;
    c = saturating_next(c);
    return s;
  }

  /// Keep the stream's cursor ahead of a raw element's existing sequence.
  void advance_cursor(StreamId stream, std::uint64_t seq) {
    std::uint64_t& c = cursor(stream);
    c = std::max(c, saturating_next(seq));
  }

  void append_lanes(const T& item) {
    src_.push_back(item.env.src);
    tag_.push_back(item.env.tag);
    comm_.push_back(item.env.comm);
    stream_.push_back(item.env.stream);
    seq_.push_back(item.seq);
    word_.push_back(scan_word(item.env.src, item.env.tag));
  }

  void reserve_more(std::size_t n) {
    const std::size_t total = items_.size() + n;
    items_.reserve(total);
    src_.reserve(total);
    tag_.reserve(total);
    comm_.reserve(total);
    stream_.reserve(total);
    seq_.reserve(total);
    word_.reserve(total);
  }

  void rebuild_lanes() {
    src_.clear();
    tag_.clear();
    comm_.clear();
    stream_.clear();
    seq_.clear();
    word_.clear();
    reserve_more(0);
    for (const T& item : items_) append_lanes(item);
  }

  std::vector<T> items_;  ///< Element (payload) store; lanes mirror its envelopes.
  std::vector<Rank> src_;
  std::vector<Tag> tag_;
  std::vector<CommId> comm_;
  std::vector<StreamId> stream_;
  std::vector<std::uint64_t> seq_;
  std::vector<std::uint64_t> word_;
  std::uint64_t next_seq_ = 0;  ///< Default-stream cursor (the hot path).
  /// Non-default stream cursors; empty until a stream is first seen, so
  /// stream-0-only queues never touch the map.
  std::map<StreamId, std::uint64_t> stream_seq_;
};

using MessageQueue = MatchQueue<Message>;
using RecvQueue = MatchQueue<RecvRequest>;

}  // namespace simtmsg::matching

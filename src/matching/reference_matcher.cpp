#include "matching/reference_matcher.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace simtmsg::matching {

MatchResult ReferenceMatcher::match(std::span<const Message> msgs,
                                    std::span<const RecvRequest> reqs) {
  MatchResult result;
  result.request_match.assign(reqs.size(), kNoMatch);
  std::vector<bool> consumed(msgs.size(), false);

  for (std::size_t r = 0; r < reqs.size(); ++r) {
    for (std::size_t m = 0; m < msgs.size(); ++m) {
      if (!consumed[m] && matches(reqs[r].env, msgs[m].env)) {
        consumed[m] = true;
        result.request_match[r] = static_cast<std::int32_t>(m);
        break;
      }
    }
  }
  return result;
}

std::size_t ReferenceMatcher::pairable_count(std::span<const Message> msgs,
                                             std::span<const RecvRequest> reqs) {
  std::map<Envelope, std::size_t> msg_counts;
  for (const auto& m : msgs) ++msg_counts[m.env];

  std::map<Envelope, std::size_t> req_counts;
  for (const auto& r : reqs) {
    if (has_wildcard(r.env)) {
      throw std::invalid_argument("pairable_count requires wildcard-free requests");
    }
    ++req_counts[r.env];
  }

  std::size_t pairable = 0;
  for (const auto& [env, n_req] : req_counts) {
    const auto it = msg_counts.find(env);
    if (it != msg_counts.end()) pairable += std::min(n_req, it->second);
  }
  return pairable;
}

}  // namespace simtmsg::matching

// ReferenceMatcher: the semantic oracle.
//
// A direct, obviously-correct transcription of MPI matching semantics used
// to validate every production matcher: receive requests are processed in
// posted order; each takes the earliest-arrived message that satisfies the
// matching rule (including wildcards) and has not been consumed yet.
// Exactly-one matching is guaranteed by construction.
#pragma once

#include <cstdint>
#include <span>

#include "matching/envelope.hpp"
#include "matching/match_result.hpp"

namespace simtmsg::matching {

class ReferenceMatcher {
 public:
  /// Batch-match `reqs` (posted order) against `msgs` (arrival order).
  [[nodiscard]] static MatchResult match(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs);

  /// Maximum number of pairable (message, request) pairs when matching on
  /// exact tuple equality (no wildcards): sum over distinct envelopes of
  /// min(#messages, #requests).  This is the invariant an *unordered*
  /// matcher must reach.  Requests containing wildcards are rejected.
  [[nodiscard]] static std::size_t pairable_count(std::span<const Message> msgs,
                                                  std::span<const RecvRequest> reqs);
};

}  // namespace simtmsg::matching

#include "matching/semantics.hpp"

#include <array>
#include <sstream>

namespace simtmsg::matching {

bool valid(const SemanticsConfig& cfg) noexcept {
  if (cfg.partitions < 1) return false;
  // Rank partitioning is only sound once the source wildcard is prohibited
  // (Section VI: "The next level could partition among ranks, but this is
  // impossible due to wildcards").
  if (cfg.partitions > 1 && cfg.wildcards) return false;
  // The pattern-table matcher's class tables subsume rank partitioning;
  // combining the two would leave the partition count meaningless.
  if (cfg.pattern_table && cfg.partitions > 1) return false;
  return true;
}

bool hashable(const SemanticsConfig& cfg) noexcept {
  return !cfg.wildcards && !cfg.ordering;
}

std::span<const SemanticsConfig> table2_rows() noexcept {
  // Table II in paper order, built from the named presets so each row's
  // definition lives in exactly one place (semantics.hpp).  Partitioned
  // rows use 16 queues as a representative configuration (the paper's
  // feasibility analysis allows "roughly 20 queues" for most applications).
  static constexpr std::array<SemanticsConfig, 6> kRows = {{
      SemanticsConfig::compliant(),
      SemanticsConfig::compliant_preposted(),
      SemanticsConfig::partitioned(),
      SemanticsConfig::partitioned_preposted(),
      SemanticsConfig::relaxed_unordered(),
      SemanticsConfig::relaxed_unordered_preposted(),
  }};
  return kRows;
}

std::string describe(const SemanticsConfig& cfg) {
  std::ostringstream ss;
  ss << "wildcards=" << (cfg.wildcards ? "yes" : "no")
     << " ordering=" << (cfg.ordering ? "yes" : "no")
     << " unexpected=" << (cfg.unexpected ? "yes" : "no")
     << " partitions=" << cfg.partitions;
  // Appended only when set so the Table II row labels stay stable.
  if (cfg.pattern_table) ss << " pattern-table=yes";
  return ss.str();
}

}  // namespace simtmsg::matching

// SemanticsConfig: the three relaxation axes of the paper (Section VI and
// Table II) — wildcards, ordering, unexpected messages — plus the rank
// partitioning that prohibiting the source wildcard enables.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace simtmsg::matching {

struct SemanticsConfig {
  bool wildcards = true;    ///< src/tag wildcards permitted in receives.
  bool ordering = true;     ///< Per-(src, comm) in-order matching guaranteed.
  bool unexpected = true;   ///< Messages may arrive before their receive is posted.

  /// Number of per-source-partition queues (only legal without the source
  /// wildcard; 1 = single queue).  Section VI-A.
  int partitions = 1;

  /// Select the pattern-table matcher (beyond the paper): exact-probe class
  /// tables that keep full MPI semantics — wildcards AND posted order —
  /// at hash-style probe cost.  Incompatible with rank partitioning (the
  /// class tables are already the partition structure).  docs/wildcards.md.
  bool pattern_table = false;

  friend bool operator==(const SemanticsConfig&, const SemanticsConfig&) = default;

  // ---- Named presets: the Table II rows (and the pattern-table extension)
  // spelled once, instead of field-twiddled at every call site.  Each is a
  // plain value — tweak fields after the call if a variant is needed.

  /// Row 1: fully MPI-compliant (wildcards, ordering, unexpected; matrix).
  [[nodiscard]] static constexpr SemanticsConfig compliant() noexcept {
    return SemanticsConfig{};
  }
  /// Row 2: compliant minus unexpected messages (receives pre-posted).
  [[nodiscard]] static constexpr SemanticsConfig compliant_preposted() noexcept {
    return SemanticsConfig{.unexpected = false};
  }
  /// Row 3: no wildcards -> rank-partitioned matrix (16 queues).
  [[nodiscard]] static constexpr SemanticsConfig partitioned() noexcept {
    return SemanticsConfig{.wildcards = false, .partitions = 16};
  }
  /// Row 4: partitioned AND pre-posted.
  [[nodiscard]] static constexpr SemanticsConfig partitioned_preposted() noexcept {
    return SemanticsConfig{.wildcards = false, .unexpected = false, .partitions = 16};
  }
  /// Row 5: no wildcards, no ordering -> two-level hash table.
  [[nodiscard]] static constexpr SemanticsConfig relaxed_unordered() noexcept {
    return SemanticsConfig{.wildcards = false, .ordering = false, .partitions = 16};
  }
  /// Row 6: the most aggressive row — unordered AND pre-posted.
  [[nodiscard]] static constexpr SemanticsConfig relaxed_unordered_preposted() noexcept {
    return SemanticsConfig{
        .wildcards = false, .ordering = false, .unexpected = false, .partitions = 16};
  }
  /// Beyond the paper: full MPI semantics at exact-probe cost via the
  /// pattern-table matcher (docs/wildcards.md).
  [[nodiscard]] static constexpr SemanticsConfig pattern_tables() noexcept {
    return SemanticsConfig{.pattern_table = true};
  }
};

/// Whether the configuration is internally consistent (e.g. partitioning
/// requires prohibiting the source wildcard).
[[nodiscard]] bool valid(const SemanticsConfig& cfg) noexcept;

/// Whether a hash-table matcher may be used (requires no ordering and no
/// wildcards — Table II rows 5/6).
[[nodiscard]] bool hashable(const SemanticsConfig& cfg) noexcept;

/// The six rows of Table II, in paper order.
[[nodiscard]] std::span<const SemanticsConfig> table2_rows() noexcept;

/// Short label like "wc=yes ord=yes unexp=yes part=no".
[[nodiscard]] std::string describe(const SemanticsConfig& cfg);

}  // namespace simtmsg::matching

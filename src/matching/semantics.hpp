// SemanticsConfig: the three relaxation axes of the paper (Section VI and
// Table II) — wildcards, ordering, unexpected messages — plus the rank
// partitioning that prohibiting the source wildcard enables.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace simtmsg::matching {

struct SemanticsConfig {
  bool wildcards = true;    ///< src/tag wildcards permitted in receives.
  bool ordering = true;     ///< Per-(src, comm) in-order matching guaranteed.
  bool unexpected = true;   ///< Messages may arrive before their receive is posted.

  /// Number of per-source-partition queues (only legal without the source
  /// wildcard; 1 = single queue).  Section VI-A.
  int partitions = 1;

  /// Select the pattern-table matcher (beyond the paper): exact-probe class
  /// tables that keep full MPI semantics — wildcards AND posted order —
  /// at hash-style probe cost.  Incompatible with rank partitioning (the
  /// class tables are already the partition structure).  docs/wildcards.md.
  bool pattern_table = false;

  friend bool operator==(const SemanticsConfig&, const SemanticsConfig&) = default;
};

/// Whether the configuration is internally consistent (e.g. partitioning
/// requires prohibiting the source wildcard).
[[nodiscard]] bool valid(const SemanticsConfig& cfg) noexcept;

/// Whether a hash-table matcher may be used (requires no ordering and no
/// wildcards — Table II rows 5/6).
[[nodiscard]] bool hashable(const SemanticsConfig& cfg) noexcept;

/// The six rows of Table II, in paper order.
[[nodiscard]] std::span<const SemanticsConfig> table2_rows() noexcept;

/// Short label like "wc=yes ord=yes unexp=yes part=no".
[[nodiscard]] std::string describe(const SemanticsConfig& cfg);

}  // namespace simtmsg::matching

#include "matching/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::matching {
namespace {

[[nodiscard]] std::uint64_t count_any_source(std::span<const RecvRequest> reqs) noexcept {
  std::uint64_t n = 0;
  for (const auto& r : reqs) {
    if (r.env.src == kAnySource) ++n;
  }
  return n;
}

/// Lane form: the queue-drain path scans the queue's contiguous src lane
/// instead of striding over whole RecvRequest structs.
[[nodiscard]] std::uint64_t count_any_source(std::span<const Rank> srcs) noexcept {
  std::uint64_t n = 0;
  for (const Rank s : srcs) {
    if (s == kAnySource) ++n;
  }
  return n;
}

// Pass-accounting counters (always written at the top level, never inside a
// shard stage, so a mid-pass snapshot can't observe a half-staged value —
// the drift the serialized pass used to exhibit).
constexpr std::string_view kShardSerialized = "matching.shard.serialized_passes";
constexpr std::string_view kShardSharded = "matching.shard.sharded_passes";
constexpr std::string_view kShardReplicated = "matching.shard.replicated_passes";
constexpr std::string_view kShardWildcardPosts = "matching.shard.wildcard_posts";
constexpr std::string_view kShardRounds = "matching.shard.replication_rounds";

/// Stub-claim reconciliation cap; beyond it the pass falls back to the
/// serialized path (still exact, never reached by non-adversarial traffic).
constexpr int kMaxReplicationRounds = 64;

}  // namespace

struct ShardedMatchEngine::Impl {
  Options opt;
  std::vector<MatchEngine> shards;

  // Route scratch, recycled across calls (the engine is per-thread, like
  // MatchEngine: none of this is locked).  Every buffer is re-initialized
  // with clear()/assign()/resize() so capacity survives and the steady
  // state allocates nothing.
  std::vector<MessageQueue> shard_msgs;
  std::vector<RecvQueue> shard_reqs;
  std::vector<std::vector<std::uint32_t>> msg_map;
  std::vector<std::vector<std::uint32_t>> req_map;
  std::vector<SimtMatchStats> shard_stats;
  std::vector<std::uint8_t> shard_busy;  ///< Not vector<bool>: written in parallel.
  std::vector<telemetry::Registry> stages;
  std::vector<std::uint8_t> msg_flags;
  std::vector<std::uint8_t> req_flags;

  // Replicated-stub wildcard path scratch (pattern-table algorithm only).
  struct Claim {
    std::uint32_t msg = 0;    ///< Global message index (arrival order).
    std::uint32_t req = 0;    ///< Global index of the wildcard receive.
    std::uint32_t shard = 0;  ///< Shard whose run produced the claim.
  };
  std::vector<std::vector<std::uint32_t>> rep_msg_idx;  ///< Pristine routing.
  std::vector<std::vector<std::uint32_t>> rep_req_idx;  ///< Concrete + stubs, posted order.
  std::vector<std::vector<std::uint8_t>> lost;  ///< Per shard, per global req: stub dropped.
  std::vector<std::uint8_t> shard_dirty;        ///< Needs a (re-)run this round.
  std::vector<Claim> claims;
  std::vector<std::int32_t> req_owner;   ///< Scan scratch: stub -> claiming shard.
  std::vector<std::uint8_t> req_proven;  ///< Scan scratch: owner claim is final.
  std::vector<std::uint8_t> scan_suspect;  ///< Shard hit a conflict this scan.
  std::vector<std::uint8_t> scan_shaky;    ///< Shard holds a threatened claim.

  std::uint64_t serialized_passes = 0;
  std::uint64_t sharded_passes = 0;
  std::uint64_t replicated_passes = 0;
};

ShardedMatchEngine::ShardedMatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg,
                                       Options opt)
    : cfg_(cfg), impl_(std::make_unique<Impl>()) {
  if (opt.shards < 1) throw std::invalid_argument("sharded engine needs shards >= 1");
  impl_->opt = opt;
  const auto n = static_cast<std::size_t>(opt.shards);
  impl_->shards.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    // Each shard models an independent communication SM; the shard's own
    // matcher fan-out (CTAs, partitions) still honors the host policy.
    impl_->shards.emplace_back(spec, cfg, opt.policy);
  }
  impl_->shard_msgs.resize(n);
  impl_->shard_reqs.resize(n);
  impl_->msg_map.resize(n);
  impl_->req_map.resize(n);
  impl_->shard_stats.resize(n);
  impl_->shard_busy.resize(n, 0);
  impl_->stages.resize(n);
  impl_->rep_msg_idx.resize(n);
  impl_->rep_req_idx.resize(n);
  impl_->lost.resize(n);
  impl_->shard_dirty.resize(n, 0);
}

ShardedMatchEngine::~ShardedMatchEngine() = default;
ShardedMatchEngine::ShardedMatchEngine(ShardedMatchEngine&&) noexcept = default;
ShardedMatchEngine& ShardedMatchEngine::operator=(ShardedMatchEngine&&) noexcept = default;

Algorithm ShardedMatchEngine::algorithm_kind() const noexcept {
  return impl_->shards.front().algorithm_kind();
}

int ShardedMatchEngine::shard_count() const noexcept {
  return static_cast<int>(impl_->shards.size());
}

int ShardedMatchEngine::shard_of(CommId comm, Rank src, StreamId stream) const noexcept {
  // Static partition map over the (comm, source-rank, stream) class space.
  // Mixing the comm/src halves keeps skewed rank or communicator patterns
  // from piling onto one shard; the map must only be stable, not
  // order-preserving, because every (comm, src, stream) class is confined
  // to a single shard either way.  The stream id is added AFTER the mix:
  // stream 0 therefore reproduces the pre-stream map bit-for-bit, and the
  // streams of one (comm, src) pair walk consecutive shards — the
  // stream-affinity spread bench/fig_streams sweeps.
  const std::uint64_t word =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm)) << 32) |
      static_cast<std::uint32_t>(src);
  const std::uint32_t mixed =
      util::mix64to32(word) + static_cast<std::uint32_t>(stream);
  return static_cast<int>(mixed % impl_->shards.size());
}

int ShardedMatchEngine::shard_of(CommId comm, Rank src) const noexcept {
  return shard_of(comm, src, kDefaultStream);
}

std::uint64_t ShardedMatchEngine::serialized_passes() const noexcept {
  return impl_->serialized_passes;
}

std::uint64_t ShardedMatchEngine::sharded_passes() const noexcept {
  return impl_->sharded_passes;
}

std::uint64_t ShardedMatchEngine::replicated_passes() const noexcept {
  return impl_->replicated_passes;
}

telemetry::TelemetryReport ShardedMatchEngine::snapshot() const {
  telemetry::TelemetryReport total;
  for (const auto& shard : impl_->shards) total.merge(shard.snapshot());
  return total;
}

telemetry::TelemetryReport ShardedMatchEngine::shard_snapshot(int shard) const {
  if (shard < 0 || shard >= shard_count()) {
    throw std::out_of_range("shard index out of range");
  }
  return impl_->shards[static_cast<std::size_t>(shard)].snapshot();
}

void ShardedMatchEngine::match_shards_into(std::span<const Message> msgs,
                                           std::span<const RecvRequest> reqs,
                                           SimtMatchStats& out) const {
  Impl& im = *impl_;
  const std::size_t n = im.shards.size();
  out.reset(reqs.size());

  for (std::size_t s = 0; s < n; ++s) {
    im.shard_msgs[s].clear();
    im.shard_reqs[s].clear();
    im.msg_map[s].clear();
    im.req_map[s].clear();
    im.shard_busy[s] = 0;
  }
  // Stable routing: within a shard, elements keep their global relative
  // order (and their sequence numbers, via push_raw), so every
  // (comm, src, stream) class reaches its shard exactly as an unsharded
  // engine would see it.
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto s = static_cast<std::size_t>(
        shard_of(msgs[i].env.comm, msgs[i].env.src, msgs[i].env.stream));
    im.shard_msgs[s].push_raw(msgs[i]);
    im.msg_map[s].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto s = static_cast<std::size_t>(
        shard_of(reqs[i].env.comm, reqs[i].env.src, reqs[i].env.stream));
    im.shard_reqs[s].push_raw(reqs[i]);
    im.req_map[s].push_back(static_cast<std::uint32_t>(i));
  }

  if constexpr (telemetry::kEnabled) {
    for (std::size_t s = 0; s < n; ++s) im.stages[s].reset_values();
  }

  // Fan the shards out across host threads.  Each shard touches only its
  // own queues, stats slot, engine (and workspace), and telemetry stage;
  // the merges below run serially in shard-index order, which is what
  // keeps results and snapshots bit-identical for every thread count.
  util::ThreadPool::shared().run_indexed(
      n, im.opt.policy.resolved_threads(), [&](std::size_t s) {
        if (im.shard_msgs[s].empty() || im.shard_reqs[s].empty()) return;
        im.shard_busy[s] = 1;
        if constexpr (telemetry::kEnabled) {
          const telemetry::ScopedStage stage(im.stages[s]);
          im.shards[s].match_queues(im.shard_msgs[s], im.shard_reqs[s],
                                    im.shard_stats[s]);
        } else {
          im.shards[s].match_queues(im.shard_msgs[s], im.shard_reqs[s],
                                    im.shard_stats[s]);
        }
      });
  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    for (std::size_t s = 0; s < n; ++s) {
      if (im.shard_busy[s] != 0) sink.merge_from(im.stages[s]);
    }
  }

  // Merge in shard-index order.  Shards model concurrent communication
  // SMs, so the modelled time of the pass is the slowest shard's, while
  // matches and per-phase event counters sum.
  double max_cycles = 0.0;
  double max_seconds = 0.0;
  int ctas = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (im.shard_busy[s] == 0) continue;
    const SimtMatchStats& shard = im.shard_stats[s];
    for (std::size_t r = 0; r < shard.result.request_match.size(); ++r) {
      const auto m = shard.result.request_match[r];
      if (m == kNoMatch) continue;
      out.result.request_match[im.req_map[s][r]] =
          static_cast<std::int32_t>(im.msg_map[s][static_cast<std::size_t>(m)]);
    }
    out.scan_events += shard.scan_events;
    out.reduce_events += shard.reduce_events;
    out.compact_events += shard.compact_events;
    out.iterations += shard.iterations;
    out.warps_used = std::max(out.warps_used, shard.warps_used);
    ctas += shard.ctas_used;
    max_cycles = std::max(max_cycles, shard.cycles);
    max_seconds = std::max(max_seconds, shard.seconds);
  }
  out.ctas_used = std::max(1, ctas);
  out.cycles = max_cycles;
  out.seconds = max_seconds;
  ++im.sharded_passes;
  telemetry::count(kShardSharded);
}

void ShardedMatchEngine::match_serialized_into(std::span<const Message> msgs,
                                               std::span<const RecvRequest> reqs,
                                               SimtMatchStats& out) const {
  Impl& im = *impl_;
  // The whole batch through shard 0, with the shard's matcher telemetry
  // staged and merged exactly like a sharded pass would stage it.  Before
  // this fix the serialized pass wrote shard 0's counters straight into the
  // ambient sink, so the first ANY_SOURCE post of a fresh engine produced a
  // different staging order than every other pass (counter drift vs the
  // unsharded engine under stage-scoped collection).
  if constexpr (telemetry::kEnabled) {
    im.stages[0].reset_values();
    {
      const telemetry::ScopedStage stage(im.stages[0]);
      im.shards.front().match(msgs, reqs, out);
    }
    telemetry::sink().merge_from(im.stages[0]);
  } else {
    im.shards.front().match(msgs, reqs, out);
  }
  ++im.serialized_passes;
  telemetry::count(kShardSerialized);
}

void ShardedMatchEngine::match_replicated_into(std::span<const Message> msgs,
                                               std::span<const RecvRequest> reqs,
                                               SimtMatchStats& out) const {
  Impl& im = *impl_;
  const std::size_t n = im.shards.size();
  out.reset(reqs.size());

  // Pristine routing as index lists: messages and concrete receives go to
  // their (comm, src) shard; every ANY_SOURCE receive is stubbed into all
  // shards, in its global posted position, so each shard sees exactly the
  // receive stream an unsharded engine would show it.
  for (std::size_t s = 0; s < n; ++s) {
    im.rep_msg_idx[s].clear();
    im.rep_req_idx[s].clear();
    im.lost[s].assign(reqs.size(), 0);
    im.shard_dirty[s] = 1;
    im.shard_busy[s] = 0;
    im.shard_stats[s].reset(0);
    im.req_map[s].clear();
  }
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto s = static_cast<std::size_t>(
        shard_of(msgs[i].env.comm, msgs[i].env.src, msgs[i].env.stream));
    im.rep_msg_idx[s].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].env.src == kAnySource) {
      for (std::size_t s = 0; s < n; ++s) {
        im.rep_req_idx[s].push_back(static_cast<std::uint32_t>(i));
      }
    } else {
      const auto s = static_cast<std::size_t>(
          shard_of(reqs[i].env.comm, reqs[i].env.src, reqs[i].env.stream));
      im.rep_req_idx[s].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Fixpoint: run dirty shards, scan stub claims in global message-arrival
  // order, finalize everything before the first cross-shard conflict, drop
  // the loser's stub and re-run it.  Each round with a conflict removes one
  // stub permanently (sound: the winning claim is in the finalized prefix),
  // so the loop terminates; docs/wildcards.md has the argument.
  double total_cycles = 0.0;
  double total_seconds = 0.0;
  int rounds = 0;
  while (true) {
    if (++rounds > kMaxReplicationRounds) {
      // Safety valve: exact, just not parallel — the whole batch through
      // shard 0, leftover-tolerant (the caller applies any unexpected-
      // message policy).  Unreachable without an adversarial claim-chain;
      // counted so regressions would show up.
      auto& mq0 = im.shard_msgs[0];
      auto& rq0 = im.shard_reqs[0];
      mq0.clear();
      rq0.clear();
      mq0.push_raw_n(msgs);
      rq0.push_raw_n(reqs);
      if constexpr (telemetry::kEnabled) {
        im.stages[0].reset_values();
        {
          const telemetry::ScopedStage stage(im.stages[0]);
          im.shards.front().match_queues(mq0, rq0, out);
        }
        telemetry::sink().merge_from(im.stages[0]);
      } else {
        im.shards.front().match_queues(mq0, rq0, out);
      }
      ++im.serialized_passes;
      telemetry::count(kShardSerialized);
      return;
    }
    if constexpr (telemetry::kEnabled) {
      for (std::size_t s = 0; s < n; ++s) {
        if (im.shard_dirty[s] != 0) im.stages[s].reset_values();
      }
    }
    util::ThreadPool::shared().run_indexed(
        n, im.opt.policy.resolved_threads(), [&](std::size_t s) {
          if (im.shard_dirty[s] == 0) return;
          im.shard_busy[s] = 0;
          auto& mq = im.shard_msgs[s];
          auto& rq = im.shard_reqs[s];
          mq.clear();
          rq.clear();
          im.req_map[s].clear();
          for (const auto gi : im.rep_msg_idx[s]) mq.push_raw(msgs[gi]);
          for (const auto gi : im.rep_req_idx[s]) {
            if (im.lost[s][gi] != 0) continue;
            rq.push_raw(reqs[gi]);
            im.req_map[s].push_back(gi);
          }
          im.shard_stats[s].reset(0);
          if (mq.empty() || rq.empty()) return;
          im.shard_busy[s] = 1;
          if constexpr (telemetry::kEnabled) {
            const telemetry::ScopedStage stage(im.stages[s]);
            im.shards[s].match_queues(mq, rq, im.shard_stats[s]);
          } else {
            im.shards[s].match_queues(mq, rq, im.shard_stats[s]);
          }
        });
    if constexpr (telemetry::kEnabled) {
      auto& sink = telemetry::sink();
      for (std::size_t s = 0; s < n; ++s) {
        if (im.shard_dirty[s] != 0 && im.shard_busy[s] != 0) sink.merge_from(im.stages[s]);
      }
    }

    // Modelled cost of the round: shards run concurrently, so the round
    // costs its slowest re-run shard; rounds serialize.  Event counters sum
    // over every run (discarded runs were real modelled work).
    double round_cycles = 0.0;
    double round_seconds = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (im.shard_dirty[s] == 0 || im.shard_busy[s] == 0) continue;
      const SimtMatchStats& shard = im.shard_stats[s];
      out.scan_events += shard.scan_events;
      out.reduce_events += shard.reduce_events;
      out.compact_events += shard.compact_events;
      out.iterations += shard.iterations;
      out.warps_used = std::max(out.warps_used, shard.warps_used);
      round_cycles = std::max(round_cycles, shard.cycles);
      round_seconds = std::max(round_seconds, shard.seconds);
    }
    total_cycles += round_cycles;
    total_seconds += round_seconds;
    for (std::size_t s = 0; s < n; ++s) im.shard_dirty[s] = 0;

    // Collect every shard's live stub claims (latest runs) and scan them in
    // global arrival order.  Message indices are unique across shards, so
    // the order is total and the scan is deterministic.
    im.claims.clear();
    for (std::size_t s = 0; s < n; ++s) {
      const SimtMatchStats& shard = im.shard_stats[s];
      for (std::size_t r = 0; r < shard.result.request_match.size(); ++r) {
        const auto m = shard.result.request_match[r];
        if (m == kNoMatch) continue;
        const std::uint32_t g = im.req_map[s][r];
        if (reqs[g].env.src != kAnySource) continue;
        im.claims.push_back(Impl::Claim{
            .msg = im.rep_msg_idx[s][static_cast<std::size_t>(m)],
            .req = g,
            .shard = static_cast<std::uint32_t>(s)});
      }
    }
    std::sort(im.claims.begin(), im.claims.end(),
              [](const Impl::Claim& a, const Impl::Claim& b) { return a.msg < b.msg; });

    // A claim is a PROVEN owner when nothing with unknown behavior can get
    // at its stub first: the claiming shard has had no conflict earlier in
    // the scan, holds no earlier threatened claim (scan_shaky), and no
    // shard already marked for a re-run still stubs the wildcard.  Losses
    // are charged (and stubs dropped, permanently) only against proven
    // owners; a conflict with a tentative owner merely suspends the loser's
    // remaining claims until the threat has re-run.  The first conflict of
    // any scan is always against a proven owner, so every round with a
    // conflict drops at least one stub and the fixpoint terminates.
    im.req_owner.assign(reqs.size(), -1);
    im.req_proven.assign(reqs.size(), 0);
    im.scan_suspect.assign(n, 0);
    im.scan_shaky.assign(n, 0);
    bool any_loss = false;
    for (const Impl::Claim& c : im.claims) {
      const std::size_t s = c.shard;
      if (im.scan_suspect[s] != 0) continue;  // Behind its own first conflict.
      if (im.req_owner[c.req] >= 0) {
        im.scan_suspect[s] = 1;
        if (im.req_proven[c.req] != 0) {
          im.lost[s][c.req] = 1;
          im.shard_dirty[s] = 1;
          any_loss = true;
        }
        continue;
      }
      bool threatened = im.scan_shaky[s] != 0;
      for (std::size_t t = 0; !threatened && t < n; ++t) {
        threatened = im.shard_dirty[t] != 0 && im.lost[t][c.req] == 0;
      }
      im.req_owner[c.req] = static_cast<std::int32_t>(s);
      im.req_proven[c.req] = threatened ? 0 : 1;
      if (threatened) im.scan_shaky[s] = 1;
    }
    // No permanent loss implies no re-runs were pending (threats require an
    // earlier loss), hence every owner was proven and no conflict occurred.
    if (!any_loss) break;
  }

  // Compose the final pairing from each shard's latest run.  At the
  // fixpoint no stub is claimed twice, so the writes are disjoint.
  int ctas = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const SimtMatchStats& shard = im.shard_stats[s];
    for (std::size_t r = 0; r < shard.result.request_match.size(); ++r) {
      const auto m = shard.result.request_match[r];
      if (m == kNoMatch) continue;
      out.result.request_match[im.req_map[s][r]] =
          static_cast<std::int32_t>(im.rep_msg_idx[s][static_cast<std::size_t>(m)]);
    }
    if (im.shard_busy[s] != 0) ctas += shard.ctas_used;
  }
  out.ctas_used = std::max(1, ctas);
  out.cycles = total_cycles;
  out.seconds = total_seconds;
  ++im.replicated_passes;
  telemetry::count(kShardReplicated);
  telemetry::count(kShardRounds, static_cast<std::uint64_t>(rounds));
}

SimtMatchStats ShardedMatchEngine::match(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs) const {
  SimtMatchStats stats;
  match(msgs, reqs, stats);
  return stats;
}

void ShardedMatchEngine::match(std::span<const Message> msgs,
                               std::span<const RecvRequest> reqs,
                               SimtMatchStats& out) const {
  Impl& im = *impl_;
  if (im.shards.size() == 1) {
    im.shards.front().match(msgs, reqs, out);
    return;
  }
  if (const std::uint64_t wc = count_any_source(reqs); wc > 0) {
    telemetry::count(kShardWildcardPosts, wc);
    if (algorithm_kind() == Algorithm::kPatternTable && cfg_.wildcards) {
      // Pattern-table algorithm: replicate the wildcard stubs instead of
      // serializing; the reconciliation fixpoint keeps results bit-identical
      // to an unsharded engine.
      match_replicated_into(msgs, reqs, out);
      if (!cfg_.unexpected && out.result.matched() != msgs.size()) {
        throw std::runtime_error(
            "unexpected message encountered, but the configured semantics prohibit "
            "unexpected messages (pre-post all receives or enable `unexpected`)");
      }
      return;
    }
    // The serialized all-shard pass: one MatchEngine call over the whole
    // batch, exactly as an unsharded engine would run it.  (Rejection of
    // wildcards under wildcard-prohibiting semantics happens inside.)
    match_serialized_into(msgs, reqs, out);
    return;
  }
  match_shards_into(msgs, reqs, out);
  if (!cfg_.unexpected && out.result.matched() != msgs.size()) {
    throw std::runtime_error(
        "unexpected message encountered, but the configured semantics prohibit "
        "unexpected messages (pre-post all receives or enable `unexpected`)");
  }
}

SimtMatchStats ShardedMatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats;
  match_queues(mq, rq, stats);
  return stats;
}

void ShardedMatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq,
                                      SimtMatchStats& out) const {
  Impl& im = *impl_;
  if (im.shards.size() == 1) {
    im.shards.front().match_queues(mq, rq, out);
    return;
  }
  if (const std::uint64_t wc = count_any_source(rq.lanes().src); wc > 0) {
    telemetry::count(kShardWildcardPosts, wc);
    if (algorithm_kind() == Algorithm::kPatternTable && cfg_.wildcards) {
      // Replicated drain: batch-match the views through the stub fixpoint,
      // then compact both queues — same shape as the sharded drain below.
      match_replicated_into(mq.view(), rq.view(), out);
    } else {
      // Serialized drain through shard 0, telemetry staged like any other
      // pass (shard 0's matcher drains and compacts the queues itself).
      if constexpr (telemetry::kEnabled) {
        im.stages[0].reset_values();
        {
          const telemetry::ScopedStage stage(im.stages[0]);
          im.shards.front().match_queues(mq, rq, out);
        }
        telemetry::sink().merge_from(im.stages[0]);
      } else {
        im.shards.front().match_queues(mq, rq, out);
      }
      ++im.serialized_passes;
      telemetry::count(kShardSerialized);
      return;
    }
  } else {
    // Sharded drain: batch-match the queue views (indices refer to the
    // pre-compaction contents), then compact both queues through the flag
    // vectors — the same shape as the engine's multi-comm drain.
    match_shards_into(mq.view(), rq.view(), out);
  }
  im.msg_flags.assign(mq.size(), 0);
  im.req_flags.assign(rq.size(), 0);
  for (std::size_t r = 0; r < out.result.request_match.size(); ++r) {
    const auto m = out.result.request_match[r];
    if (m == kNoMatch) continue;
    im.req_flags[r] = 1;
    im.msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(im.msg_flags);
  (void)rq.compact(im.req_flags);
}

void ShardedMatchEngine::match_batch(std::span<const Message> msg_arrivals,
                                     std::span<const RecvRequest> req_arrivals,
                                     MessageQueue& mq, RecvQueue& rq,
                                     SimtMatchStats& out) const {
  mq.push_n(msg_arrivals);
  rq.push_n(req_arrivals);
  match_queues(mq, rq, out);
}

SimtMatchStats ShardedMatchEngine::match_batch(std::span<const Message> msg_arrivals,
                                               std::span<const RecvRequest> req_arrivals,
                                               MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats;
  match_batch(msg_arrivals, req_arrivals, mq, rq, stats);
  return stats;
}

}  // namespace simtmsg::matching

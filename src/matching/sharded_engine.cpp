#include "matching/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::matching {
namespace {

[[nodiscard]] bool any_source_wildcard(std::span<const RecvRequest> reqs) noexcept {
  for (const auto& r : reqs) {
    if (r.env.src == kAnySource) return true;
  }
  return false;
}

}  // namespace

struct ShardedMatchEngine::Impl {
  Options opt;
  std::vector<MatchEngine> shards;

  // Route scratch, recycled across calls (the engine is per-thread, like
  // MatchEngine: none of this is locked).  Every buffer is re-initialized
  // with clear()/assign()/resize() so capacity survives and the steady
  // state allocates nothing.
  std::vector<MessageQueue> shard_msgs;
  std::vector<RecvQueue> shard_reqs;
  std::vector<std::vector<std::uint32_t>> msg_map;
  std::vector<std::vector<std::uint32_t>> req_map;
  std::vector<SimtMatchStats> shard_stats;
  std::vector<std::uint8_t> shard_busy;  ///< Not vector<bool>: written in parallel.
  std::vector<telemetry::Registry> stages;
  std::vector<std::uint8_t> msg_flags;
  std::vector<std::uint8_t> req_flags;

  std::uint64_t serialized_passes = 0;
  std::uint64_t sharded_passes = 0;
};

ShardedMatchEngine::ShardedMatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg,
                                       Options opt)
    : cfg_(cfg), impl_(std::make_unique<Impl>()) {
  if (opt.shards < 1) throw std::invalid_argument("sharded engine needs shards >= 1");
  impl_->opt = opt;
  const auto n = static_cast<std::size_t>(opt.shards);
  impl_->shards.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    // Each shard models an independent communication SM; the shard's own
    // matcher fan-out (CTAs, partitions) still honors the host policy.
    impl_->shards.emplace_back(spec, cfg, opt.policy);
  }
  impl_->shard_msgs.resize(n);
  impl_->shard_reqs.resize(n);
  impl_->msg_map.resize(n);
  impl_->req_map.resize(n);
  impl_->shard_stats.resize(n);
  impl_->shard_busy.resize(n, 0);
  impl_->stages.resize(n);
}

ShardedMatchEngine::~ShardedMatchEngine() = default;
ShardedMatchEngine::ShardedMatchEngine(ShardedMatchEngine&&) noexcept = default;
ShardedMatchEngine& ShardedMatchEngine::operator=(ShardedMatchEngine&&) noexcept = default;

Algorithm ShardedMatchEngine::algorithm_kind() const noexcept {
  return impl_->shards.front().algorithm_kind();
}

int ShardedMatchEngine::shard_count() const noexcept {
  return static_cast<int>(impl_->shards.size());
}

int ShardedMatchEngine::shard_of(CommId comm, Rank src) const noexcept {
  // Static partition map over the (comm, source-rank) stream space.  Mixing
  // both halves keeps skewed rank or communicator patterns from piling onto
  // one shard; the map must only be stable, not order-preserving, because
  // every (comm, src) stream is confined to a single shard either way.
  const std::uint64_t word =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm)) << 32) |
      static_cast<std::uint32_t>(src);
  return static_cast<int>(util::mix64to32(word) % impl_->shards.size());
}

std::uint64_t ShardedMatchEngine::serialized_passes() const noexcept {
  return impl_->serialized_passes;
}

std::uint64_t ShardedMatchEngine::sharded_passes() const noexcept {
  return impl_->sharded_passes;
}

telemetry::TelemetryReport ShardedMatchEngine::snapshot() const {
  telemetry::TelemetryReport total;
  for (const auto& shard : impl_->shards) total.merge(shard.snapshot());
  return total;
}

telemetry::TelemetryReport ShardedMatchEngine::shard_snapshot(int shard) const {
  if (shard < 0 || shard >= shard_count()) {
    throw std::out_of_range("shard index out of range");
  }
  return impl_->shards[static_cast<std::size_t>(shard)].snapshot();
}

void ShardedMatchEngine::match_shards_into(std::span<const Message> msgs,
                                           std::span<const RecvRequest> reqs,
                                           SimtMatchStats& out) const {
  Impl& im = *impl_;
  const std::size_t n = im.shards.size();
  out.reset(reqs.size());

  for (std::size_t s = 0; s < n; ++s) {
    im.shard_msgs[s].clear();
    im.shard_reqs[s].clear();
    im.msg_map[s].clear();
    im.req_map[s].clear();
    im.shard_busy[s] = 0;
  }
  // Stable routing: within a shard, elements keep their global relative
  // order (and their sequence numbers, via push_raw), so every (comm, src)
  // stream reaches its shard exactly as an unsharded engine would see it.
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const auto s = static_cast<std::size_t>(shard_of(msgs[i].env.comm, msgs[i].env.src));
    im.shard_msgs[s].push_raw(msgs[i]);
    im.msg_map[s].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto s = static_cast<std::size_t>(shard_of(reqs[i].env.comm, reqs[i].env.src));
    im.shard_reqs[s].push_raw(reqs[i]);
    im.req_map[s].push_back(static_cast<std::uint32_t>(i));
  }

  if constexpr (telemetry::kEnabled) {
    for (std::size_t s = 0; s < n; ++s) im.stages[s].reset_values();
  }

  // Fan the shards out across host threads.  Each shard touches only its
  // own queues, stats slot, engine (and workspace), and telemetry stage;
  // the merges below run serially in shard-index order, which is what
  // keeps results and snapshots bit-identical for every thread count.
  util::ThreadPool::shared().run_indexed(
      n, im.opt.policy.resolved_threads(), [&](std::size_t s) {
        if (im.shard_msgs[s].empty() || im.shard_reqs[s].empty()) return;
        im.shard_busy[s] = 1;
        if constexpr (telemetry::kEnabled) {
          const telemetry::ScopedStage stage(im.stages[s]);
          im.shards[s].match_queues(im.shard_msgs[s], im.shard_reqs[s],
                                    im.shard_stats[s]);
        } else {
          im.shards[s].match_queues(im.shard_msgs[s], im.shard_reqs[s],
                                    im.shard_stats[s]);
        }
      });
  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    for (std::size_t s = 0; s < n; ++s) {
      if (im.shard_busy[s] != 0) sink.merge_from(im.stages[s]);
    }
  }

  // Merge in shard-index order.  Shards model concurrent communication
  // SMs, so the modelled time of the pass is the slowest shard's, while
  // matches and per-phase event counters sum.
  double max_cycles = 0.0;
  double max_seconds = 0.0;
  int ctas = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (im.shard_busy[s] == 0) continue;
    const SimtMatchStats& shard = im.shard_stats[s];
    for (std::size_t r = 0; r < shard.result.request_match.size(); ++r) {
      const auto m = shard.result.request_match[r];
      if (m == kNoMatch) continue;
      out.result.request_match[im.req_map[s][r]] =
          static_cast<std::int32_t>(im.msg_map[s][static_cast<std::size_t>(m)]);
    }
    out.scan_events += shard.scan_events;
    out.reduce_events += shard.reduce_events;
    out.compact_events += shard.compact_events;
    out.iterations += shard.iterations;
    out.warps_used = std::max(out.warps_used, shard.warps_used);
    ctas += shard.ctas_used;
    max_cycles = std::max(max_cycles, shard.cycles);
    max_seconds = std::max(max_seconds, shard.seconds);
  }
  out.ctas_used = std::max(1, ctas);
  out.cycles = max_cycles;
  out.seconds = max_seconds;
  ++im.sharded_passes;
}

SimtMatchStats ShardedMatchEngine::match(std::span<const Message> msgs,
                                         std::span<const RecvRequest> reqs) const {
  SimtMatchStats stats;
  match(msgs, reqs, stats);
  return stats;
}

void ShardedMatchEngine::match(std::span<const Message> msgs,
                               std::span<const RecvRequest> reqs,
                               SimtMatchStats& out) const {
  Impl& im = *impl_;
  if (im.shards.size() == 1) {
    im.shards.front().match(msgs, reqs, out);
    return;
  }
  if (any_source_wildcard(reqs)) {
    // The serialized all-shard pass: one MatchEngine call over the whole
    // batch, exactly as an unsharded engine would run it.  (Rejection of
    // wildcards under wildcard-prohibiting semantics happens inside.)
    im.shards.front().match(msgs, reqs, out);
    ++im.serialized_passes;
    return;
  }
  match_shards_into(msgs, reqs, out);
  if (!cfg_.unexpected && out.result.matched() != msgs.size()) {
    throw std::runtime_error(
        "unexpected message encountered, but the configured semantics prohibit "
        "unexpected messages (pre-post all receives or enable `unexpected`)");
  }
}

SimtMatchStats ShardedMatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq) const {
  SimtMatchStats stats;
  match_queues(mq, rq, stats);
  return stats;
}

void ShardedMatchEngine::match_queues(MessageQueue& mq, RecvQueue& rq,
                                      SimtMatchStats& out) const {
  Impl& im = *impl_;
  if (im.shards.size() == 1) {
    im.shards.front().match_queues(mq, rq, out);
    return;
  }
  if (any_source_wildcard(rq.view())) {
    im.shards.front().match_queues(mq, rq, out);
    ++im.serialized_passes;
    return;
  }

  // Sharded drain: batch-match the queue views (indices refer to the
  // pre-compaction contents), then compact both queues through the flag
  // vectors — the same shape as the engine's multi-comm drain.
  match_shards_into(mq.view(), rq.view(), out);
  im.msg_flags.assign(mq.size(), 0);
  im.req_flags.assign(rq.size(), 0);
  for (std::size_t r = 0; r < out.result.request_match.size(); ++r) {
    const auto m = out.result.request_match[r];
    if (m == kNoMatch) continue;
    im.req_flags[r] = 1;
    im.msg_flags[static_cast<std::size_t>(m)] = 1;
  }
  (void)mq.compact(im.msg_flags);
  (void)rq.compact(im.req_flags);
}

}  // namespace simtmsg::matching

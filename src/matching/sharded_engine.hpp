// ShardedMatchEngine: a node's matching work spread over several
// independent MatchEngine shards — the runtime form of the paper's
// multi-SM remark (Section VI-A: "If multiple SMs were used, the
// performance would be increasing linearly since all CTAs would be running
// in parallel").  Each shard models one communication SM with its own
// MatchEngine (and therefore its own workspace and telemetry totals).
//
// Routing: messages and concrete-source receives are assigned to shards by
// a static (comm, source-rank, stream) partition map — shard_of().  MPI's
// per-(src, comm) ordering survives because a given (comm, src, stream)
// traffic class always lands on the same shard, and receives can only
// compete for a message when they could both match it, which (absent
// MPI_ANY_SOURCE) confines competition to a single (comm, src, stream)
// class.  Match results are therefore bit-identical for every shard count.
//
// Stream affinity (docs/streams.md): the map adds the stream id AFTER the
// (comm, src) mix, so default-stream routing is byte-identical to the
// pre-stream map while distinct streams of one (comm, src) pair rotate
// deterministically across consecutive shards — concurrent producer
// streams spread over the shard pool and their matches run in parallel.
//
// MPI_ANY_SOURCE is the one receive that spans shards (it is legal only
// when the semantics permit wildcards — the fully compliant rows of
// Table II).  Under the matrix algorithm a batch or queue state containing
// one pins the engine into a serialized all-shard pass: the entire batch
// runs through shard 0 as a single MatchEngine call, exactly as an
// unsharded engine would.  This mirrors the paper's observation that rank
// partitioning is unlocked by prohibiting the source wildcard.
//
// Under the pattern-table algorithm (SemanticsConfig::pattern_table) the
// wildcard no longer serializes: every ANY_SOURCE receive is replicated as
// a stub into each shard's wildcard tables (in its global posted
// position), the shards run in parallel, and the rare cross-shard races —
// two shards claiming the same stub — are reconciled by a deterministic
// fixpoint: claims are scanned in global message-arrival order, everything
// before the first conflict is final (the earliest-claim theorem,
// docs/wildcards.md), the loser drops the stub and re-runs.  Results stay
// bit-identical to an unsharded engine for every shard and thread count.
//
// Determinism contract (docs/sharding.md):
//   * match results / completions: bit-identical across shard counts and
//     host thread counts (hash-table semantics carry the same safety-valve
//     exception as the fuzz oracle on partial-match workloads);
//   * telemetry snapshots and modelled time: bit-identical across host
//     thread counts for a fixed shard count (shards are fanned out on the
//     util::ThreadPool and merged in shard-index order);
//   * modelled cycles/seconds: the max over the shards' independent SMs —
//     this is the quantity the fig5_runtime_shards bench sweeps.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "matching/engine.hpp"
#include "matching/queue.hpp"
#include "matching/semantics.hpp"
#include "matching/simt_stats.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"
#include "telemetry/report.hpp"

namespace simtmsg::matching {

class ShardedMatchEngine {
 public:
  struct Options {
    /// Independent matcher shards (communication SMs) per engine; 1 is
    /// bit-identical to a plain MatchEngine in results, snapshots, and
    /// allocation behavior.
    int shards = 1;
    /// Host threads the shard fan-out may use.  Purely a wall-clock knob:
    /// results and telemetry are bit-identical for every thread count.
    simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  };

  ShardedMatchEngine(const simt::DeviceSpec& spec, SemanticsConfig cfg, Options opt);
  ~ShardedMatchEngine();

  ShardedMatchEngine(ShardedMatchEngine&&) noexcept;
  ShardedMatchEngine& operator=(ShardedMatchEngine&&) noexcept;
  ShardedMatchEngine(const ShardedMatchEngine&) = delete;
  ShardedMatchEngine& operator=(const ShardedMatchEngine&) = delete;

  /// Batch-match with the same semantics enforcement as MatchEngine::match:
  /// wildcard receives are rejected when prohibited, and unmatched messages
  /// are rejected when unexpected messages are prohibited.
  [[nodiscard]] SimtMatchStats match(std::span<const Message> msgs,
                                     std::span<const RecvRequest> reqs) const;

  /// Out-parameter form; the steady-state entry point.  All scratch (the
  /// per-shard route queues, index maps, stats slots, and each shard's
  /// MatchEngine workspace) is recycled, so repeated calls with a stable
  /// workload shape perform zero heap allocations.
  void match(std::span<const Message> msgs, std::span<const RecvRequest> reqs,
             SimtMatchStats& out) const;

  /// Drain two live queues: match as much as possible and remove matched
  /// elements from both.  Result indices refer to the queues' contents
  /// before the call.  Leftovers are not an error (the progress engine
  /// decides how to treat unexpected messages mid-flight).
  [[nodiscard]] SimtMatchStats match_queues(MessageQueue& mq, RecvQueue& rq) const;

  /// Out-parameter form of match_queues(); allocation-free in steady state.
  void match_queues(MessageQueue& mq, RecvQueue& rq, SimtMatchStats& out) const;

  /// Batched ingestion (mirrors MatchEngine::match_batch): append the
  /// arrivals to the live queues with bulk sequence stamping, then run ONE
  /// match_queues pass, paying routing, the wildcard scan, and telemetry
  /// staging once per batch.  Result indices refer to the queues after the
  /// appends; allocation-free in steady state.
  void match_batch(std::span<const Message> msg_arrivals,
                   std::span<const RecvRequest> req_arrivals, MessageQueue& mq,
                   RecvQueue& rq, SimtMatchStats& out) const;

  [[nodiscard]] SimtMatchStats match_batch(std::span<const Message> msg_arrivals,
                                           std::span<const RecvRequest> req_arrivals,
                                           MessageQueue& mq, RecvQueue& rq) const;

  [[nodiscard]] const SemanticsConfig& semantics() const noexcept { return cfg_; }
  [[nodiscard]] Algorithm algorithm_kind() const noexcept;
  [[nodiscard]] int shard_count() const noexcept;

  /// The static partition map: which shard owns the (comm, src, stream)
  /// traffic class.  Stable for the engine's lifetime (it depends only on
  /// the shard count).  Stream 0 reproduces the historical two-argument
  /// map exactly; distinct streams of one (comm, src) pair rotate across
  /// consecutive shards.
  [[nodiscard]] int shard_of(CommId comm, Rank src, StreamId stream) const noexcept;

  /// Pre-stream partition map; forwards to the default ordering domain.
  [[deprecated("use shard_of(comm, src, stream); this is the stream-0 map")]]
  [[nodiscard]] int shard_of(CommId comm, Rank src) const noexcept;

  /// Telemetry totals merged over every shard in shard-index order.  With
  /// one shard this is exactly the underlying MatchEngine's snapshot.
  [[nodiscard]] telemetry::TelemetryReport snapshot() const;

  /// One shard's own totals (diagnostics; shard in [0, shard_count())).
  [[nodiscard]] telemetry::TelemetryReport shard_snapshot(int shard) const;

  /// How many match calls ran serialized because an MPI_ANY_SOURCE receive
  /// was present, vs. fanned out across the shards, vs. fanned out with
  /// replicated wildcard stubs (pattern-table algorithm).  Always zero for
  /// a single-shard engine (nothing to serialize or fan out).  The same
  /// tallies are staged as `matching.shard.*` telemetry counters.
  [[nodiscard]] std::uint64_t serialized_passes() const noexcept;
  [[nodiscard]] std::uint64_t sharded_passes() const noexcept;
  [[nodiscard]] std::uint64_t replicated_passes() const noexcept;

 private:
  struct Impl;

  /// Core of the sharded path: route both spans, fan the shards out under
  /// the policy, and merge results/telemetry in shard-index order.
  void match_shards_into(std::span<const Message> msgs,
                         std::span<const RecvRequest> reqs, SimtMatchStats& out) const;

  /// The pattern-table wildcard path: replicate ANY_SOURCE stubs into every
  /// shard, fan out, reconcile cross-shard stub claims to a fixpoint.
  void match_replicated_into(std::span<const Message> msgs,
                             std::span<const RecvRequest> reqs, SimtMatchStats& out) const;

  /// The matrix-era fallback: the whole batch through shard 0, with the
  /// shard's telemetry staged and merged exactly like a sharded pass.
  void match_serialized_into(std::span<const Message> msgs,
                             std::span<const RecvRequest> reqs, SimtMatchStats& out) const;

  SemanticsConfig cfg_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simtmsg::matching

// Common result + cost bundle returned by the SIMT matchers.
#pragma once

#include "matching/match_result.hpp"
#include "simt/event_counters.hpp"

namespace simtmsg::matching {

struct SimtMatchStats {
  MatchResult result;

  simt::EventCounters scan_events;     ///< Algorithm 1 (or hash insert phase).
  simt::EventCounters reduce_events;   ///< Algorithm 2 (or hash probe phase).
  simt::EventCounters compact_events;  ///< Queue compaction.

  double cycles = 0.0;   ///< Modelled device cycles for the whole operation.
  double seconds = 0.0;  ///< cycles / device clock.
  int iterations = 0;    ///< Matching passes executed.
  int warps_used = 0;    ///< Scan warps of the widest iteration.
  int ctas_used = 1;

  [[nodiscard]] double matches_per_second() const noexcept {
    const auto matched = static_cast<double>(result.matched());
    return seconds > 0.0 ? matched / seconds : 0.0;
  }
};

}  // namespace simtmsg::matching

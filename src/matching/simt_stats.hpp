// Common result + cost bundle returned by the SIMT matchers.
#pragma once

#include "matching/match_result.hpp"
#include "simt/event_counters.hpp"

namespace simtmsg::matching {

struct SimtMatchStats {
  MatchResult result;

  simt::EventCounters scan_events;     ///< Algorithm 1 (or hash insert phase).
  simt::EventCounters reduce_events;   ///< Algorithm 2 (or hash probe phase).
  simt::EventCounters compact_events;  ///< Queue compaction.

  double cycles = 0.0;   ///< Modelled device cycles for the whole operation.
  double seconds = 0.0;  ///< cycles / device clock.
  int iterations = 0;    ///< Matching passes executed.
  int warps_used = 0;    ///< Scan warps of the widest iteration.
  int ctas_used = 1;

  [[nodiscard]] double matches_per_second() const noexcept {
    const auto matched = static_cast<double>(result.matched());
    return seconds > 0.0 ? matched / seconds : 0.0;
  }

  /// Reinitialize in place for a batch of `n_reqs` requests, reusing the
  /// request_match capacity (the workspace path calls this instead of
  /// constructing a fresh object).
  void reset(std::size_t n_reqs) {
    result.request_match.assign(n_reqs, kNoMatch);
    scan_events = {};
    reduce_events = {};
    compact_events = {};
    cycles = 0.0;
    seconds = 0.0;
    iterations = 0;
    warps_used = 0;
    ctas_used = 1;
  }
};

}  // namespace simtmsg::matching

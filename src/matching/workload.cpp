#include "matching/workload.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace simtmsg::matching {

Workload make_workload(const WorkloadSpec& spec) {
  if (spec.sources < 1 || spec.tags < 1) {
    throw std::invalid_argument("workload needs at least one source and tag");
  }
  if (spec.unique_tuples &&
      static_cast<std::uint64_t>(spec.sources) * static_cast<std::uint64_t>(spec.tags) <
          spec.pairs) {
    throw std::invalid_argument("tuple space too small for unique_tuples");
  }

  util::Rng rng(spec.seed);
  Workload w;
  w.messages.reserve(spec.pairs);
  w.requests.reserve(spec.pairs);

  std::unordered_set<std::uint64_t> used;
  for (std::size_t i = 0; i < spec.pairs; ++i) {
    Envelope env;
    do {
      env.src = static_cast<Rank>(rng.below(static_cast<std::uint64_t>(spec.sources)));
      env.tag = static_cast<Tag>(rng.below(static_cast<std::uint64_t>(spec.tags)));
      env.comm = spec.comm;
    } while (spec.unique_tuples &&
             !used.insert((static_cast<std::uint64_t>(env.src) << 32) |
                          static_cast<std::uint32_t>(env.tag))
                  .second);

    const bool pairable =
        spec.match_fraction >= 1.0 || rng.uniform() < spec.match_fraction;

    Message m;
    m.env = env;
    m.payload = i;
    RecvRequest r;
    r.env = env;
    if (!pairable) {
      // Unpairable filler on both sides: disjoint tag spaces keep the
      // queues full while preventing any match.
      m.env.tag += spec.tags;          // Message tag in [tags, 2*tags).
      r.env.tag += 2 * spec.tags;      // Request tag in [2*tags, 3*tags).
    } else {
      if (spec.src_wildcard_prob > 0.0 && rng.chance(spec.src_wildcard_prob)) {
        r.env.src = kAnySource;
      }
      if (spec.tag_wildcard_prob > 0.0 && rng.chance(spec.tag_wildcard_prob)) {
        r.env.tag = kAnyTag;
      }
    }
    r.user_data = i;
    w.messages.push_back(m);
    w.requests.push_back(r);
  }

  rng.shuffle(w.messages);
  rng.shuffle(w.requests);
  for (std::size_t i = 0; i < w.messages.size(); ++i) w.messages[i].seq = i;
  for (std::size_t i = 0; i < w.requests.size(); ++i) w.requests[i].seq = i;
  return w;
}

void fill_queues(const Workload& w, MessageQueue& mq, RecvQueue& rq) {
  for (const auto& m : w.messages) mq.push(m);
  for (const auto& r : w.requests) rq.push(r);
}

}  // namespace simtmsg::matching

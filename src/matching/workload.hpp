// Synthetic matching workloads for benchmarks and property tests.
//
// The paper's micro-benchmarks use "random tuples in random order, but all
// tuples of the message queue match with tuples in the receive queue"
// (Section V-B) and, for the hash experiments, "random values for the
// {src, tag} tuple" (Section VI-C).  WorkloadSpec generalizes both and adds
// the knobs the relaxation ablations need (wildcard density, match
// fraction, tuple uniqueness).
#pragma once

#include <cstdint>
#include <vector>

#include "matching/envelope.hpp"
#include "matching/queue.hpp"

namespace simtmsg::matching {

struct WorkloadSpec {
  std::size_t pairs = 1024;       ///< Matching (message, request) pairs.
  int sources = 16;               ///< Distinct source ranks drawn from [0, sources).
  int tags = 16;                  ///< Distinct tags drawn from [0, tags).
  CommId comm = 0;
  double src_wildcard_prob = 0.0; ///< P(receive uses MPI_ANY_SOURCE).
  double tag_wildcard_prob = 0.0; ///< P(receive uses MPI_ANY_TAG).
  /// Fraction of pairable (message, request) pairs.  The remainder become
  /// an unmatchable message *and* an unmatchable request (disjoint tag
  /// spaces), so both queues stay at `pairs` entries while only
  /// match_fraction of them can pair — the Section VI-B scenario where
  /// "non-matching messages still propagate through the entire receive
  /// request queue without any progress" and the rate degrades linearly
  /// with the matched fraction.
  double match_fraction = 1.0;
  /// Draw distinct {src, tag} tuples (the hash micro-benchmark's regime).
  bool unique_tuples = false;
  std::uint64_t seed = 1;
};

struct Workload {
  std::vector<Message> messages;   ///< Arrival order (seq stamped 0..n-1).
  std::vector<RecvRequest> requests;  ///< Posted order.
};

/// Generate a workload.  Every request is guaranteed to have at least one
/// matching message; messages beyond match_fraction have no request.
[[nodiscard]] Workload make_workload(const WorkloadSpec& spec);

/// Convenience: move a workload into queues.
void fill_queues(const Workload& w, MessageQueue& mq, RecvQueue& rq);

}  // namespace simtmsg::matching

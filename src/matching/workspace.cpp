#include "matching/workspace.hpp"

namespace simtmsg::matching {

// Out of line so workspace.hpp can hold vector<unique_ptr<MatchWorkspace>>
// members while MatchWorkspace is still incomplete at that point.
PartitionWorkspace::PartitionWorkspace() = default;
PartitionWorkspace::~PartitionWorkspace() = default;

MatchWorkspace& PartitionWorkspace::partition_workspace(std::size_t p) {
  if (p >= per_partition.size()) per_partition.resize(p + 1);
  if (!per_partition[p]) per_partition[p] = std::make_unique<MatchWorkspace>();
  return *per_partition[p];
}

MatchWorkspace::MatchWorkspace() = default;
MatchWorkspace::~MatchWorkspace() = default;

}  // namespace simtmsg::matching

// MatchWorkspace: the reusable scratch arena behind the allocation-free
// steady-state matching path.
//
// Every per-call buffer the matchers and the MatchEngine used to heap-
// allocate — per-comm sub-batches and index maps, compaction flag vectors,
// the vote-matrix CTA contexts, the hash matcher's plan/table storage, the
// partition fan-out queues — lives here instead and is recycled across
// calls: buffers are re-initialized with assign()/resize(), which reuse
// capacity, so once a workspace has seen a workload shape, repeating that
// shape allocates nothing (tests/matching/workspace_alloc_test.cpp proves
// it with a counting operator new).
//
// Ownership and thread-safety contract (docs/perf.md):
//   * A workspace belongs to exactly one caller at a time.  MatchEngine
//     owns one for its own steady-state path; the matchers' by-value
//     convenience wrappers (match()/match_queues()) create a transient one
//     per call.
//   * Workspaces are NOT thread-safe; engines are per-thread.  The only
//     internal concurrency is the partition fan-out, which hands each
//     partition its own nested workspace (PartitionWorkspace::per_partition).
//   * Every buffer is fully re-initialized before use, so workspace reuse
//     never changes modelled results: stats, telemetry, and BENCH numbers
//     are bit-identical with a fresh or a recycled workspace.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "matching/device_hash_table.hpp"
#include "matching/envelope.hpp"
#include "matching/queue.hpp"
#include "matching/simt_stats.hpp"
#include "simt/cta.hpp"
#include "simt/event_counters.hpp"
#include "simt/lane_array.hpp"
#include "simt/launcher.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {

class MatchWorkspace;

/// One warp-wide hash-table operation recorded by the HashMatcher's plan
/// pass: enough to replay the exact counter stream of the fused operation
/// without touching the table.  (Lives here so HashWorkspace can recycle
/// the plan storage across calls.)
struct HashGroupPlan {
  bool is_insert = false;
  int warp = 0;        ///< Warp slot within the CTA.
  int live = 0;        ///< Active lanes (low mask).
  simt::LaneSize idx;  ///< Per-lane global element indices (load coalescing).
  simt::LaneU32 keys;
  DeviceHashTable::InsertOutcome ins;
  DeviceHashTable::ProbeOutcome probe;
};

/// Scratch for MatrixMatcher: element words, per-warp registers, original-
/// index maps, per-pass flags, and the two CTA contexts (scan + reduce)
/// whose warp vectors and shared-memory arenas persist across windows.
struct MatrixWorkspace {
  std::vector<std::uint64_t> msg_words;
  std::vector<std::uint64_t> req_words;
  std::vector<simt::LaneU64> msg_regs;
  std::vector<simt::LaneMask> warp_active;
  std::vector<std::uint32_t> msg_orig;
  std::vector<std::uint32_t> req_orig;
  std::vector<std::uint8_t> msg_flags;
  std::vector<std::uint8_t> req_flags;
  /// Queue copies backing the batch interface (match() over spans).
  MessageQueue batch_msgs;
  RecvQueue batch_reqs;
  /// Per-window stats slot reused by the drain loop.
  SimtMatchStats window;
  /// CTA contexts are address-pinned (warps point at their counters), so
  /// they sit in optionals: emplaced on first use, reset() afterwards.
  std::optional<simt::CtaContext> scan_cta;
  std::optional<simt::CtaContext> reduce_cta;
};

/// Scratch for HashMatcher: element words, pending/deferred worklists, the
/// per-CTA operation plans, the device hash table itself (grow-only), and
/// the launch scratch for the cost-replay kernel.
struct HashWorkspace {
  std::vector<std::uint64_t> msg_words;
  std::vector<std::uint64_t> req_words;
  std::vector<std::uint32_t> pending_reqs;
  std::vector<std::uint32_t> pending_msgs;
  std::vector<std::uint32_t> deferred_reqs;
  std::vector<std::uint32_t> deferred_msgs;
  std::vector<std::vector<HashGroupPlan>> plan;  ///< One vector per CTA.
  DeviceHashTable table;
  simt::LaunchScratch launch;
};

/// Scratch for PartitionedMatcher: the per-partition queue pairs and index
/// maps, per-partition run results and telemetry stages, the wave-schedule
/// accumulators, and one nested MatchWorkspace per partition (partitions
/// run concurrently, so they cannot share scratch).
struct PartitionWorkspace {
  PartitionWorkspace();
  ~PartitionWorkspace();
  PartitionWorkspace(const PartitionWorkspace&) = delete;
  PartitionWorkspace& operator=(const PartitionWorkspace&) = delete;

  struct Run {
    bool busy = false;
    SimtMatchStats stats;
  };
  struct Cost {
    double cycles = 0.0;
    int warps = 1;
  };

  std::vector<MessageQueue> part_msgs;
  std::vector<RecvQueue> part_reqs;
  std::vector<std::vector<std::uint32_t>> msg_map;
  std::vector<std::vector<std::uint32_t>> req_map;
  std::vector<Run> runs;
  std::vector<telemetry::Registry> stages;
  std::vector<Cost> costs;
  std::vector<double> sm_cycles;
  std::vector<std::unique_ptr<MatchWorkspace>> per_partition;

  /// The nested workspace for partition `p`, created on first use.
  [[nodiscard]] MatchWorkspace& partition_workspace(std::size_t p);
};

/// Scratch for PatternTableMatcher: four open-addressed class tables (one
/// per wildcard class of the posted receives), the FIFO bucket links
/// threaded through the request indices, and the classification scratch.
/// Slots identify their key through a representative request index (`rep`),
/// which stays valid as a tombstone after the bucket drains, keeping linear
/// probing correct without storing envelopes twice.
struct PatternWorkspace {
  struct Table {
    std::vector<std::int32_t> rep;   ///< Slot -> first request ever inserted, -1 empty.
    std::vector<std::int32_t> head;  ///< Slot -> oldest live request, -1 drained.
    std::vector<std::int32_t> tail;  ///< Slot -> newest live request.
    std::size_t mask = 0;            ///< Slot count - 1 (power of two).
    std::size_t live = 0;            ///< Live (unconsumed) requests in this class.
  };
  Table tables[4];
  std::vector<std::int32_t> next;      ///< Request -> next request in its bucket.
  std::vector<std::uint8_t> req_class; ///< Request -> wildcard class (0..3).
  /// Per-CTA counter scratch for the vector-overload timing-model calls
  /// whose CTAs carry distinct counters.  (The scalar estimate() overload
  /// is allocation-free on its own and needs no scratch.)
  std::vector<simt::EventCounters> cta_events;
};

/// Scratch for the MatchEngine's multi-bucket split: an open-addressed
/// (comm, stream) -> dense-index table plus counting-sort storage that
/// scatters both spans into bucket-contiguous order in a single pass each
/// (O(M + R + C)).  The bucket key packs stream into the high half and
/// comm into the low half; default-stream traffic therefore keys as the
/// bare 32-bit comm and hashes exactly as the pre-stream comm split did.
struct EngineWorkspace {
  std::vector<std::uint64_t> keys;  ///< Distinct (stream, comm) keys, first-appearance order.
  /// Open-addressed table mapping a bucket key to its dense index in
  /// `keys` (power-of-two sized, linear probing, -1 = empty slot).
  std::vector<std::uint64_t> slot_key;
  std::vector<std::int32_t> slot_index;
  std::vector<std::uint32_t> msg_bucket;  ///< Per-message bucket index.
  std::vector<std::uint32_t> req_bucket;  ///< Per-request bucket index.
  std::vector<std::uint32_t> msg_offset;  ///< Per-bucket begin offsets (C + 1).
  std::vector<std::uint32_t> req_offset;
  std::vector<Message> sub_msgs;          ///< Bucket-contiguous scatter.
  std::vector<RecvRequest> sub_reqs;
  std::vector<std::uint32_t> msg_map;     ///< Original indices, same order.
  std::vector<std::uint32_t> req_map;
  SimtMatchStats sub;                     ///< Per-bucket stats slot.
};

class MatchWorkspace {
 public:
  MatchWorkspace();
  ~MatchWorkspace();
  MatchWorkspace(const MatchWorkspace&) = delete;
  MatchWorkspace& operator=(const MatchWorkspace&) = delete;

  /// Generic compaction flags (the base Matcher queue drain and the
  /// engine's multi-comm compaction; the matrix drain has its own pair).
  std::vector<std::uint8_t> msg_flags;
  std::vector<std::uint8_t> req_flags;

  MatrixWorkspace matrix;
  PartitionWorkspace partition;
  HashWorkspace hash;
  PatternWorkspace pattern;
  EngineWorkspace engine;
};

namespace detail {
/// Emplace-or-reset helper for the pinned CTA context slots.
inline simt::CtaContext& reuse_cta(std::optional<simt::CtaContext>& slot, int cta_id,
                                   int num_warps, std::size_t shared_mem_limit) {
  if (!slot.has_value()) {
    slot.emplace(cta_id, num_warps, shared_mem_limit);
  } else {
    slot->reset(cta_id, num_warps, shared_mem_limit);
  }
  return *slot;
}
}  // namespace detail

}  // namespace simtmsg::matching

#include "runtime/bsp.hpp"

#include <stdexcept>

namespace simtmsg::runtime {

matching::Tag BspSession::tag(matching::Tag user_tag) const {
  if (user_tag < 0 || user_tag >= tags_per_step_) {
    throw std::invalid_argument("user tag outside the superstep budget");
  }
  // Two alternating epochs suffice: after a barrier, no superstep-(k) tag
  // can still be in flight, so epoch k+2 may reuse them.
  const matching::Tag epoch = static_cast<matching::Tag>(step_ % 2);
  const matching::Tag mapped = epoch * tags_per_step_ + user_tag;
  if (mapped > 0xFFFF) {
    throw std::invalid_argument("superstep tag epoch exceeds the 16-bit tag budget");
  }
  return mapped;
}

void BspSession::sync() {
  cluster_->barrier();
  ++step_;
  const std::size_t total = cluster_->delivery_failures().size();
  last_losses_ = total - seen_failures_;
  seen_failures_ = total;
  if (fail_on_loss_ && last_losses_ > 0) {
    throw std::runtime_error(
        "superstep " + std::to_string(step_ - 1) + " lost " +
        std::to_string(last_losses_) + " message(s): " +
        to_string(cluster_->delivery_failures()[seen_failures_ - last_losses_]));
  }
}

}  // namespace simtmsg::runtime

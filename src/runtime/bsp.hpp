// BspSession: Bulk Synchronous Parallel structure on top of the cluster
// (Valiant's BSP, paper Section VI: "in a strict Bulk Synchronous Parallel
// model, tags can be reused after synchronization").
//
// Supersteps give the relaxed (unordered) semantics a safe discipline: the
// session derives a per-superstep tag epoch, so user tags are unique within
// a superstep and may be reused after the barrier — exactly the restoration
// of ordering "at the user level" the paper describes (Section VII-B).
#pragma once

#include "runtime/endpoint.hpp"

namespace simtmsg::runtime {

class BspSession {
 public:
  /// tags_per_step bounds the distinct user tags used inside a superstep.
  explicit BspSession(Cluster& cluster, matching::Tag tags_per_step = 1024)
      : cluster_(&cluster), tags_per_step_(tags_per_step) {}

  [[nodiscard]] int superstep() const noexcept { return step_; }

  /// Map a user tag into this superstep's epoch.  Throws when the user tag
  /// exceeds the per-step budget or the epoch would overflow 16-bit tags
  /// (the packed-header limit of Section IV).
  [[nodiscard]] matching::Tag tag(matching::Tag user_tag) const;

  /// Superstep-scoped send/recv.
  void send(int from, int to, matching::Tag user_tag, std::uint64_t payload,
            std::size_t bytes = 8) {
    cluster_->send(from, to, tag(user_tag), payload, /*comm=*/0, bytes);
  }

  [[nodiscard]] RecvHandle irecv(int node, matching::Rank src, matching::Tag user_tag) {
    return cluster_->irecv(node, src, tag(user_tag));
  }

  /// End the superstep: quiesce the cluster and advance the tag epoch.
  /// With fail_on_loss() set, throws std::runtime_error when the fabric
  /// reported new DeliveryFailures during the superstep (a BSP superstep
  /// presumes a complete exchange).
  void sync();

  /// Opt into strict supersteps on a faulted fabric.  Off (default) the
  /// failures stay queryable via Cluster::delivery_failures() and
  /// losses_last_sync().
  BspSession& fail_on_loss(bool on) noexcept {
    fail_on_loss_ = on;
    return *this;
  }

  /// Delivery failures detected during the most recent sync()'d superstep.
  [[nodiscard]] std::size_t losses_last_sync() const noexcept { return last_losses_; }

 private:
  Cluster* cluster_;
  matching::Tag tags_per_step_;
  int step_ = 0;
  std::size_t seen_failures_ = 0;
  std::size_t last_losses_ = 0;
  bool fail_on_loss_ = false;
};

}  // namespace simtmsg::runtime

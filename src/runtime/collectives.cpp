#include "runtime/collectives.hpp"

#include <bit>
#include <stdexcept>

namespace simtmsg::runtime {
namespace {

/// Rounds of a log2 schedule covering p participants.
[[nodiscard]] int log2_rounds(int p) {
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  return rounds;
}

constexpr int kMaxRoundsPerOp = 64;

/// A collective round that cannot complete is fatal for the operation; on
/// a faulted fabric, say why (the reliability layer reports every message
/// it gave up on).
[[noreturn]] void throw_incomplete(const Cluster& cluster, const char* op) {
  std::string why = std::string(op) + " round incomplete";
  const auto& failures = cluster.delivery_failures();
  if (!failures.empty()) {
    why += ": " + std::to_string(failures.size()) +
           " delivery failure(s), first: " + to_string(failures.front());
  }
  throw std::runtime_error(why);
}

}  // namespace

Collectives::Collectives(Cluster& cluster, matching::CommId comm)
    : cluster_(&cluster), comm_(comm) {}

matching::Tag Collectives::tag(int round) const {
  // Two alternating epochs suffice (everything quiesces between ops).
  const matching::Tag mapped = static_cast<matching::Tag>(
      (epoch_ % 2) * kMaxRoundsPerOp + round);
  return mapped;
}

void Collectives::next_epoch() { ++epoch_; }

void Collectives::send(int from, int to, int round, std::uint64_t payload) {
  cluster_->send(from, to, tag(round), payload, comm_);
  ++messages_;
}

RecvHandle Collectives::irecv(int at, int src, int round) {
  return cluster_->irecv(at, src, tag(round), comm_);
}

std::vector<std::uint64_t> Collectives::broadcast(int root, std::uint64_t value) {
  const int p = cluster_->nodes();
  if (root < 0 || root >= p) throw std::out_of_range("broadcast root out of range");
  std::vector<std::uint64_t> values(static_cast<std::size_t>(p), 0);
  values[static_cast<std::size_t>(root)] = value;
  std::vector<bool> has(static_cast<std::size_t>(p), false);
  has[static_cast<std::size_t>(root)] = true;

  // Binomial tree in the rank space rotated so the root is rank 0.
  const auto rel = [&](int node) { return (node - root + p) % p; };
  const auto abs = [&](int r) { return (r + root) % p; };

  const int rounds = log2_rounds(p);
  for (int round = 0; round < rounds; ++round) {
    const int stride = 1 << round;
    struct Pending {
      RecvHandle h;
      int node;
    };
    std::vector<Pending> pending;
    // Receivers pre-post, senders fire, then one quiescence drive.
    for (int r = 0; r < p; ++r) {
      if (r >= stride && r < 2 * stride && !has[static_cast<std::size_t>(abs(r))]) {
        const int from = abs(r - stride);
        pending.push_back({irecv(abs(r), from, round), abs(r)});
      }
    }
    for (int r = 0; r < stride && r < p; ++r) {
      const int to_rel = r + stride;
      if (to_rel < p && has[static_cast<std::size_t>(abs(r))]) {
        send(abs(r), abs(to_rel), round, values[static_cast<std::size_t>(abs(r))]);
      }
    }
    cluster_->run_until_quiescent();
    for (const auto& pend : pending) {
      const auto res = cluster_->result(pend.h);
      if (!res) throw_incomplete(*cluster_, "broadcast");
      values[static_cast<std::size_t>(pend.node)] = res->payload;
      has[static_cast<std::size_t>(pend.node)] = true;
    }
    (void)rel;
  }
  next_epoch();
  return values;
}

std::uint64_t Collectives::reduce(int root, std::span<const std::uint64_t> contributions,
                                  const ReduceOp& op) {
  const int p = cluster_->nodes();
  if (static_cast<int>(contributions.size()) != p) {
    throw std::invalid_argument("reduce needs one contribution per node");
  }
  if (root < 0 || root >= p) throw std::out_of_range("reduce root out of range");

  std::vector<std::uint64_t> acc(contributions.begin(), contributions.end());
  const auto abs = [&](int r) { return (r + root) % p; };

  // Mirror of the broadcast tree: in round k (descending), relative ranks
  // in [stride, 2*stride) send their partial into rank r - stride.
  const int rounds = log2_rounds(p);
  for (int round = rounds - 1; round >= 0; --round) {
    const int stride = 1 << round;
    struct Pending {
      RecvHandle h;
      int node;
    };
    std::vector<Pending> pending;
    for (int r = 0; r < stride; ++r) {
      const int from_rel = r + stride;
      if (from_rel < p) pending.push_back({irecv(abs(r), abs(from_rel), round), abs(r)});
    }
    for (int r = stride; r < 2 * stride && r < p; ++r) {
      send(abs(r), abs(r - stride), round, acc[static_cast<std::size_t>(abs(r))]);
    }
    cluster_->run_until_quiescent();
    for (const auto& pend : pending) {
      const auto res = cluster_->result(pend.h);
      if (!res) throw_incomplete(*cluster_, "reduce");
      auto& a = acc[static_cast<std::size_t>(pend.node)];
      a = op(a, res->payload);
    }
  }
  next_epoch();
  return acc[static_cast<std::size_t>(root)];
}

std::uint64_t Collectives::reduce_sum(int root,
                                      std::span<const std::uint64_t> contributions) {
  return reduce(root, contributions,
                [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::vector<std::uint64_t> Collectives::allreduce(
    std::span<const std::uint64_t> contributions, const ReduceOp& op) {
  const int p = cluster_->nodes();
  if (static_cast<int>(contributions.size()) != p) {
    throw std::invalid_argument("allreduce needs one contribution per node");
  }

  std::vector<std::uint64_t> acc(contributions.begin(), contributions.end());

  if (std::has_single_bit(static_cast<unsigned>(p))) {
    // Recursive doubling: in round k every node exchanges with its
    // partner at XOR distance 2^k and combines.
    const int rounds = log2_rounds(p);
    for (int round = 0; round < rounds; ++round) {
      const int stride = 1 << round;
      std::vector<RecvHandle> handles(static_cast<std::size_t>(p));
      for (int n = 0; n < p; ++n) handles[static_cast<std::size_t>(n)] = irecv(n, n ^ stride, round);
      for (int n = 0; n < p; ++n) send(n, n ^ stride, round, acc[static_cast<std::size_t>(n)]);
      cluster_->run_until_quiescent();
      for (int n = 0; n < p; ++n) {
        const auto res = cluster_->result(handles[static_cast<std::size_t>(n)]);
        if (!res) throw_incomplete(*cluster_, "allreduce");
        auto& a = acc[static_cast<std::size_t>(n)];
        a = op(a, res->payload);
      }
    }
    next_epoch();
    return acc;
  }

  // Non-power-of-two: reduce to 0, then broadcast (both handle any p).
  const std::uint64_t total = reduce(0, acc, op);
  return broadcast(0, total);
}

std::vector<std::uint64_t> Collectives::allreduce_sum(
    std::span<const std::uint64_t> contributions) {
  return allreduce(contributions,
                   [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::vector<std::vector<std::uint64_t>> Collectives::allgather(
    std::span<const std::uint64_t> contributions) {
  const int p = cluster_->nodes();
  if (static_cast<int>(contributions.size()) != p) {
    throw std::invalid_argument("allgather needs one contribution per node");
  }

  std::vector<std::vector<std::uint64_t>> out(
      static_cast<std::size_t>(p), std::vector<std::uint64_t>(static_cast<std::size_t>(p), 0));
  for (int n = 0; n < p; ++n) {
    out[static_cast<std::size_t>(n)][static_cast<std::size_t>(n)] =
        contributions[static_cast<std::size_t>(n)];
  }
  if (p == 1) return out;

  // Ring: in round k node n forwards the block it received in round k-1.
  for (int round = 0; round < p - 1; ++round) {
    std::vector<RecvHandle> handles(static_cast<std::size_t>(p));
    for (int n = 0; n < p; ++n) {
      const int left = (n - 1 + p) % p;
      handles[static_cast<std::size_t>(n)] = irecv(n, left, round % kMaxRoundsPerOp);
    }
    for (int n = 0; n < p; ++n) {
      const int right = (n + 1) % p;
      const int block = (n - round + p) % p;
      send(n, right, round % kMaxRoundsPerOp,
           out[static_cast<std::size_t>(n)][static_cast<std::size_t>(block)]);
    }
    cluster_->run_until_quiescent();
    for (int n = 0; n < p; ++n) {
      const auto res = cluster_->result(handles[static_cast<std::size_t>(n)]);
      if (!res) throw_incomplete(*cluster_, "allgather");
      const int block = (n - 1 - round + 2 * p) % p;
      out[static_cast<std::size_t>(n)][static_cast<std::size_t>(block)] = res->payload;
    }
  }
  next_epoch();
  return out;
}

}  // namespace simtmsg::runtime

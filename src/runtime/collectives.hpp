// Collective operations over the simulated GPU cluster.
//
// The paper closes with the open question of "whether send/recv,
// collectives, put/get, (partitioned) global address spaces (GAS), or some
// other paradigm is most suitable" for autonomous accelerators.  This layer
// builds the classic collectives from the send/recv primitive so that the
// question can be explored on top of any Table II semantics row:
//   - broadcast: binomial tree, ceil(log2 p) rounds,
//   - reduce:    binomial tree (mirror of broadcast),
//   - allreduce: recursive doubling, ceil(log2 p) rounds,
//   - allgather: ring, p-1 rounds,
//   - barrier:   delegated to the cluster's quiescence barrier.
//
// All operations run on a dedicated communicator and advance a tag epoch
// per call, so they compose with unordered (hash) matching semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "runtime/endpoint.hpp"

namespace simtmsg::runtime {

class Collectives {
 public:
  /// Reduction operator on payload words (default: sum).
  using ReduceOp = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

  /// `comm` must not collide with application communicators.
  explicit Collectives(Cluster& cluster, matching::CommId comm = 0x7F);

  /// Root's `value` ends up on every node; returns the per-node values.
  std::vector<std::uint64_t> broadcast(int root, std::uint64_t value);

  /// Reduce contributions[i] (owned by node i) onto `root`.
  std::uint64_t reduce(int root, std::span<const std::uint64_t> contributions,
                       const ReduceOp& op);
  std::uint64_t reduce_sum(int root, std::span<const std::uint64_t> contributions);

  /// Every node obtains op-combination of all contributions.
  std::vector<std::uint64_t> allreduce(std::span<const std::uint64_t> contributions,
                                       const ReduceOp& op);
  std::vector<std::uint64_t> allreduce_sum(std::span<const std::uint64_t> contributions);

  /// Every node obtains every contribution, indexed by rank.
  std::vector<std::vector<std::uint64_t>> allgather(
      std::span<const std::uint64_t> contributions);

  void barrier() { cluster_->barrier(); }

  /// Messages injected by collectives so far (complexity checks).
  [[nodiscard]] std::uint64_t messages_used() const noexcept { return messages_; }

 private:
  /// Fresh per-operation tag (epoch * stride + round), 16-bit safe.
  [[nodiscard]] matching::Tag tag(int round) const;
  void next_epoch();
  void send(int from, int to, int round, std::uint64_t payload);
  [[nodiscard]] RecvHandle irecv(int at, int src, int round);

  Cluster* cluster_;
  matching::CommId comm_;
  int epoch_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace simtmsg::runtime

#include "runtime/endpoint.hpp"

#include <stdexcept>

namespace simtmsg::runtime {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg), gas_(cfg.nodes, cfg.network) {
  if (cfg_.nodes < 1) throw std::invalid_argument("cluster needs at least one node");
  if (!matching::valid(cfg_.semantics)) {
    throw std::invalid_argument("inconsistent semantics: " +
                                matching::describe(cfg_.semantics));
  }
  const auto& device = simt::device(cfg_.device);
  engines_.reserve(static_cast<std::size_t>(cfg_.nodes));
  posted_.resize(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) engines_.emplace_back(device, cfg_.semantics);
}

void Cluster::send(int from, int to, matching::Tag tag, std::uint64_t payload,
                   matching::CommId comm, std::size_t bytes) {
  if (from < 0 || from >= cfg_.nodes) throw std::out_of_range("sender out of range");
  if (tag < 0) throw std::invalid_argument("send tag must be concrete");
  matching::Envelope env{.src = from, .tag = tag, .comm = comm};
  (void)gas_.remote_enqueue(from, to, env, payload, bytes, now_us_);
  ++sends_;
}

RecvHandle Cluster::irecv(int node, matching::Rank src, matching::Tag tag,
                          matching::CommId comm) {
  if (node < 0 || node >= cfg_.nodes) throw std::out_of_range("node out of range");
  matching::Envelope env{.src = src, .tag = tag, .comm = comm};
  if (!cfg_.semantics.wildcards && matching::has_wildcard(env)) {
    throw std::invalid_argument("wildcards are prohibited by the cluster semantics");
  }
  matching::RecvRequest req;
  req.env = env;
  req.user_data = next_handle_;
  posted_[static_cast<std::size_t>(node)].push(req);
  ++posts_;
  return {node, next_handle_++};
}

bool Cluster::test(const RecvHandle& h) const { return completed_.contains(h.id); }

std::optional<RecvResult> Cluster::result(const RecvHandle& h) const {
  const auto it = completed_.find(h.id);
  if (it == completed_.end()) return std::nullopt;
  return it->second;
}

std::size_t Cluster::progress() {
  // Advance the clock to the next arrival (if any) and deliver.
  const double next = gas_.next_arrival();
  if (next >= 0.0) {
    now_us_ = std::max(now_us_, next);
    (void)gas_.deliver_until(now_us_);
  }

  // Run every node's communication kernel once.
  std::vector<Completion> completions;
  std::size_t matched = 0;
  for (int n = 0; n < cfg_.nodes; ++n) {
    matched += engines_[static_cast<std::size_t>(n)].step(
        gas_.incoming(n), posted_[static_cast<std::size_t>(n)], completions);
  }
  for (const auto& c : completions) {
    completed_[c.handle] =
        RecvResult{c.msg_env.src, c.msg_env.tag, c.payload};
  }
  return matched;
}

void Cluster::run_until_quiescent() {
  for (;;) {
    const std::size_t matched = progress();
    if (matched == 0 && gas_.idle()) return;
  }
}

void Cluster::barrier() {
  run_until_quiescent();
  if (!cfg_.semantics.unexpected) {
    std::vector<Completion> sink;
    for (int n = 0; n < cfg_.nodes; ++n) {
      (void)engines_[static_cast<std::size_t>(n)].step(
          gas_.incoming(n), posted_[static_cast<std::size_t>(n)], sink,
          /*enforce_expected=*/true);
    }
  }
}

RecvResult Cluster::wait(const RecvHandle& h) {
  for (;;) {
    if (const auto r = result(h)) return *r;
    const std::size_t matched = progress();
    if (matched == 0 && gas_.idle()) {
      if (const auto r = result(h)) return *r;
      throw std::runtime_error("wait(): cluster quiescent, receive cannot complete");
    }
  }
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.messages_sent = sends_;
  s.receives_posted = posts_;
  s.virtual_time_us = now_us_;
  for (const auto& e : engines_) {
    const auto r = e.snapshot();
    s.matches += r.matches;
    s.matching_seconds += r.seconds;
  }
  return s;
}

telemetry::TelemetryReport Cluster::snapshot() const {
  telemetry::TelemetryReport total;
  for (const auto& e : engines_) total.merge(e.snapshot());
  return total;
}

double Cluster::node_matching_seconds(int node) const {
  return engines_[static_cast<std::size_t>(node)].snapshot().seconds;
}

}  // namespace simtmsg::runtime

#include "runtime/endpoint.hpp"

#include <stdexcept>

namespace simtmsg::runtime {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), gas_(cfg_.nodes, cfg_.network, &fabric_telemetry_) {
  if (cfg_.nodes < 1) throw std::invalid_argument("cluster needs at least one node");
  if (cfg_.shards_per_node < 1) {
    throw std::invalid_argument("cluster needs shards_per_node >= 1");
  }
  if (!matching::valid(cfg_.semantics)) {
    throw std::invalid_argument("inconsistent semantics: " +
                                matching::describe(cfg_.semantics));
  }
  const auto& device = simt::device(cfg_.device);
  engines_.reserve(static_cast<std::size_t>(cfg_.nodes));
  posted_.resize(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    engines_.emplace_back(device, cfg_.semantics, cfg_.policy, cfg_.shards_per_node, n,
                          cfg_.reliability, &fabric_telemetry_);
  }
}

void Cluster::inject(Packet&& p) {
  // A negative arrival means the wire dropped the packet; the reliability
  // timers recover (or report) it.
  (void)gas_.inject(std::move(p), now_us_);
}

void Cluster::send(int from, int to, matching::Tag tag, std::uint64_t payload,
                   matching::CommId comm, std::size_t bytes) {
  if (from < 0 || from >= cfg_.nodes) throw std::out_of_range("sender out of range");
  if (to < 0 || to >= cfg_.nodes) throw std::out_of_range("destination node out of range");
  if (tag < 0) throw std::invalid_argument("send tag must be concrete");
  matching::Envelope env{.src = from, .tag = tag, .comm = comm};
  if (cfg_.reliability.enabled) {
    inject(engines_[static_cast<std::size_t>(from)].reliability().make_data(
        to, env, payload, bytes, now_us_));
  } else {
    (void)gas_.remote_enqueue(from, to, env, payload, bytes, now_us_);
  }
  ++sends_;
}

RecvHandle Cluster::irecv(int node, matching::Rank src, matching::Tag tag,
                          matching::CommId comm) {
  if (node < 0 || node >= cfg_.nodes) throw std::out_of_range("node out of range");
  matching::Envelope env{.src = src, .tag = tag, .comm = comm};
  if (!cfg_.semantics.wildcards && matching::has_wildcard(env)) {
    throw std::invalid_argument("wildcards are prohibited by the cluster semantics");
  }
  matching::RecvRequest req;
  req.env = env;
  req.user_data = next_handle_;
  posted_[static_cast<std::size_t>(node)].push(req);
  ++posts_;
  return {node, next_handle_++};
}

bool Cluster::test(const RecvHandle& h) const { return completed_.contains(h.id); }

std::optional<RecvResult> Cluster::result(const RecvHandle& h) const {
  const auto it = completed_.find(h.id);
  if (it == completed_.end()) return std::nullopt;
  return it->second;
}

std::size_t Cluster::progress() {
  // Advance the clock to the next event: the earliest in-flight arrival or
  // (with reliability) the earliest retransmit deadline.
  double next = gas_.next_arrival();
  if (cfg_.reliability.enabled) {
    for (const auto& e : engines_) {
      const double d = e.reliability().next_deadline();
      if (d >= 0.0 && (next < 0.0 || d < next)) next = d;
    }
  }
  if (next >= 0.0) now_us_ = std::max(now_us_, next);

  if (cfg_.reliability.enabled) {
    // Raw wire packets go through each destination's reliability channel:
    // verify, dedup, ack, and release accepted messages (in order when the
    // semantics demand it) into the node's incoming queue.
    std::vector<Packet> raw;
    (void)gas_.deliver_raw_until(now_us_, raw);
    std::vector<Packet> replies;
    std::vector<matching::Message> accepted;
    for (const Packet& p : raw) {
      accepted.clear();
      engines_[static_cast<std::size_t>(p.to)].reliability().on_packet(
          p, now_us_, accepted, replies);
      for (const auto& m : accepted) gas_.incoming(p.to).push(m);
    }
    for (Packet& r : replies) inject(std::move(r));

    // Fire expired retransmit timers (and report exhausted sends).
    std::vector<Packet> resend;
    for (auto& e : engines_) e.reliability().expire(now_us_, resend, failures_);
    for (Packet& r : resend) inject(std::move(r));
  } else {
    (void)gas_.deliver_until(now_us_);
  }

  // Run every node's communication kernel once.
  std::vector<Completion> completions;
  std::size_t matched = 0;
  for (int n = 0; n < cfg_.nodes; ++n) {
    matched += engines_[static_cast<std::size_t>(n)].step(
        gas_.incoming(n), posted_[static_cast<std::size_t>(n)], completions);
  }
  for (const auto& c : completions) {
    completed_[c.handle] =
        RecvResult{c.msg_env.src, c.msg_env.tag, c.payload};
  }
  return matched;
}

bool Cluster::quiesced() {
  if (!gas_.idle()) return false;
  if (cfg_.reliability.enabled) {
    for (const auto& e : engines_) {
      if (!e.reliability().idle()) return false;
    }
    // Nothing in flight, every sender done: messages still held for
    // in-order release are permanently stuck behind a failed sequence.
    for (auto& e : engines_) e.reliability().sweep_stranded(now_us_, failures_);
  }
  return true;
}

void Cluster::run_until_quiescent() {
  for (;;) {
    const std::size_t matched = progress();
    if (matched == 0 && quiesced()) return;
  }
}

void Cluster::barrier() {
  run_until_quiescent();
  if (!cfg_.semantics.unexpected) {
    std::vector<Completion> sink;
    for (int n = 0; n < cfg_.nodes; ++n) {
      (void)engines_[static_cast<std::size_t>(n)].step(
          gas_.incoming(n), posted_[static_cast<std::size_t>(n)], sink,
          /*enforce_expected=*/true);
    }
  }
}

RecvResult Cluster::wait(const RecvHandle& h) {
  for (;;) {
    if (const auto r = result(h)) return *r;
    const std::size_t matched = progress();
    if (matched == 0 && quiesced()) {
      if (const auto r = result(h)) return *r;
      // Name the stuck handle so a chaos-test failure is diagnosable: which
      // node's queue it sits in, and the posted (src, tag, comm) that never
      // found a message.
      std::string why = "wait(): cluster quiescent, receive cannot complete (node " +
                        std::to_string(h.node) + ", handle " + std::to_string(h.id);
      const matching::RecvRequest* stuck = nullptr;
      if (h.node >= 0 && h.node < cfg_.nodes) {
        for (const auto& r : posted_[static_cast<std::size_t>(h.node)].view()) {
          if (r.user_data == h.id) {
            stuck = &r;
            break;
          }
        }
      }
      if (stuck != nullptr) {
        why += ", posted " + matching::to_string(stuck->env);
      } else {
        why += ", not in the posted queue";
      }
      why += ")";
      if (!failures_.empty()) {
        why += " (" + std::to_string(failures_.size()) +
               " delivery failure(s) recorded; see delivery_failures())";
      }
      throw std::runtime_error(why);
    }
  }
}

ClusterStats Cluster::stats() const {
  const telemetry::TelemetryReport r = snapshot();
  const auto counter = [&r](const char* name) -> std::uint64_t {
    const auto it = r.counters.find(name);
    return it != r.counters.end() ? it->second : 0;
  };
  const auto gauge = [&r](const char* name) -> double {
    const auto it = r.gauges.find(name);
    return it != r.gauges.end() ? it->second : 0.0;
  };
  ClusterStats s;
  s.messages_sent = counter("runtime.cluster.messages_sent");
  s.receives_posted = counter("runtime.cluster.receives_posted");
  s.matches = r.matches;
  s.delivery_failures = counter("runtime.cluster.delivery_failures");
  s.matching_seconds = r.seconds;
  s.virtual_time_us = gauge("runtime.cluster.virtual_time_us");
  return s;
}

telemetry::TelemetryReport Cluster::snapshot() const {
  telemetry::TelemetryReport total;
  for (int n = 0; n < cfg_.nodes; ++n) {
    const auto node_report = engines_[static_cast<std::size_t>(n)].snapshot();
    // Fold the per-node modelled matching time in as a named gauge (the
    // former node_matching_seconds(int) accessor).
    total.gauges["runtime.node." + std::to_string(n) + ".matching_seconds"] =
        node_report.seconds;
    total.merge(node_report);
  }
  total.absorb(fabric_telemetry_);
  // Headline cluster counters: the single source of truth stats() reads.
  total.counters["runtime.cluster.messages_sent"] = sends_;
  total.counters["runtime.cluster.receives_posted"] = posts_;
  total.counters["runtime.cluster.delivery_failures"] = failures_.size();
  total.gauges["runtime.cluster.virtual_time_us"] = now_us_;
  return total;
}

}  // namespace simtmsg::runtime

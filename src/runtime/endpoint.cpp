#include "runtime/endpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>

namespace simtmsg::runtime {

int default_max_streams() {
  // Mirrors default_scheduler_policy(): the environment picks the default
  // so whole suites can be re-run with a different stream budget without
  // code changes.  SIMTMSG_STREAMS=1 pins clusters to the default stream.
  if (const char* env = std::getenv("SIMTMSG_STREAMS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1'000'000) {
      return static_cast<int>(v);
    }
  }
  return 64;
}

namespace {

/// Validate before any member is constructed (gas_ sizes vectors off
/// cfg.nodes; a negative count must fail with a typed error, not a
/// bad_alloc from a huge size_t cast).
ClusterConfig validated(ClusterConfig cfg) {
  if (cfg.nodes < 1) {
    throw std::invalid_argument("ClusterConfig.nodes must be >= 1 (got " +
                                std::to_string(cfg.nodes) + ")");
  }
  if (cfg.shards_per_node < 1) {
    throw std::invalid_argument("ClusterConfig.shards_per_node must be >= 1 (got " +
                                std::to_string(cfg.shards_per_node) + ")");
  }
  if (cfg.scheduler != SchedulerPolicy::kLegacyLockstep &&
      cfg.scheduler != SchedulerPolicy::kEventDriven) {
    throw std::invalid_argument(
        "ClusterConfig.scheduler is not a valid SchedulerPolicy (got " +
        std::to_string(static_cast<int>(cfg.scheduler)) + ")");
  }
  if (!matching::valid(cfg.semantics)) {
    throw std::invalid_argument("ClusterConfig.semantics inconsistent: " +
                                matching::describe(cfg.semantics));
  }
  if (cfg.max_streams < 1) {
    throw std::invalid_argument(
        "ClusterConfig.max_streams must be >= 1 (stream 0 always exists; got " +
        std::to_string(cfg.max_streams) + ")");
  }
  return cfg;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(validated(std::move(cfg))),
      gas_(cfg_.nodes, cfg_.network, &fabric_telemetry_) {
  const auto& device = simt::device(cfg_.device);
  engines_.reserve(static_cast<std::size_t>(cfg_.nodes));
  posted_.resize(static_cast<std::size_t>(cfg_.nodes));
  for (int n = 0; n < cfg_.nodes; ++n) {
    engines_.emplace_back(device, cfg_.semantics, cfg_.policy, cfg_.shards_per_node, n,
                          cfg_.reliability, &fabric_telemetry_);
  }
  scheduler_ = Scheduler::make(
      cfg_.scheduler, cfg_.nodes,
      Scheduler::Probe{
          .runnable =
              [this](int n) {
                return !gas_.incoming(n).empty() &&
                       !posted_[static_cast<std::size_t>(n)].empty();
              },
          .rto_deadline =
              [this](int n) {
                return cfg_.reliability.enabled
                           ? engines_[static_cast<std::size_t>(n)]
                                 .reliability()
                                 .next_deadline()
                           : -1.0;
              },
      });
}

void Cluster::inject(Packet&& p) {
  // A negative arrival means the wire dropped the packet; the reliability
  // timers recover (or report) it.
  (void)gas_.inject(std::move(p), now_us_);
}

void Cluster::wake(int node) {
  ++wakes_;
  scheduler_->wake(node);
}

void Cluster::validate_stream(Stream stream) const {
  if (stream.id < 0 || stream.id >= cfg_.max_streams) {
    throw std::invalid_argument(
        "stream id " + std::to_string(stream.id) + " outside [0, " +
        std::to_string(cfg_.max_streams) + ") (ClusterConfig.max_streams)");
  }
}

SendHandle Cluster::send(Stream stream, int from, int to, matching::Tag tag,
                         std::uint64_t payload, matching::CommId comm,
                         std::size_t bytes) {
  validate_stream(stream);
  if (from < 0 || from >= cfg_.nodes) throw std::out_of_range("sender out of range");
  if (to < 0 || to >= cfg_.nodes) throw std::out_of_range("destination node out of range");
  if (tag < 0) throw std::invalid_argument("send tag must be concrete");
  matching::Envelope env{.src = from, .tag = tag, .comm = comm, .stream = stream.id};
  if (cfg_.reliability.enabled) {
    inject(engines_[static_cast<std::size_t>(from)].reliability().make_data(
        to, env, payload, bytes, now_us_));
    // make_data armed (or re-armed) the sender's retransmit timer.
    scheduler_->rto_touched(from);
  } else {
    (void)gas_.remote_enqueue(from, to, env, payload, bytes, now_us_);
  }
  ++sends_;
  if (stream.id != matching::kDefaultStream) ++stream_sends_[stream.id];
  return {from, to, next_send_id_++};
}

SendHandle Cluster::send(int from, int to, matching::Tag tag, std::uint64_t payload,
                         matching::CommId comm, std::size_t bytes) {
  return send(Stream{}, from, to, tag, payload, comm, bytes);
}

RecvHandle Cluster::irecv(Stream stream, int node, matching::Rank src,
                          matching::Tag tag, matching::CommId comm) {
  validate_stream(stream);
  if (node < 0 || node >= cfg_.nodes) throw std::out_of_range("node out of range");
  matching::Envelope env{.src = src, .tag = tag, .comm = comm, .stream = stream.id};
  if (!cfg_.semantics.wildcards && matching::has_wildcard(env)) {
    throw std::invalid_argument("wildcards are prohibited by the cluster semantics");
  }
  matching::RecvRequest req;
  req.env = env;
  req.user_data = next_handle_;
  posted_[static_cast<std::size_t>(node)].push(req);
  pending_.emplace(next_handle_, PendingRecv{node, env});
  ++posts_;
  if (stream.id != matching::kDefaultStream) ++stream_posts_[stream.id];
  wake(node);
  return {node, next_handle_++};
}

RecvHandle Cluster::irecv(int node, matching::Rank src, matching::Tag tag,
                          matching::CommId comm) {
  return irecv(Stream{}, node, src, tag, comm);
}

bool Cluster::test(RecvHandle h) const { return completed_.contains(h.id); }

bool Cluster::cancel(RecvHandle h) {
  const auto it = pending_.find(h.id);
  if (it == pending_.end()) return false;
  auto& queue = posted_[static_cast<std::size_t>(it->second.node)];
  std::vector<std::uint8_t> matched(queue.size(), 0);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].user_data == h.id) matched[i] = 1;
  }
  (void)queue.compact(matched);
  const int node = it->second.node;
  pending_.erase(it);
  ++cancels_;
  // The node may have just gone idle; both policies agree because the
  // lockstep scheduler re-probes every tick and stepped() is its no-op.
  scheduler_->stepped(node, !gas_.incoming(node).empty() && !queue.empty());
  return true;
}

std::optional<RecvResult> Cluster::result(RecvHandle h) const {
  const auto it = completed_.find(h.id);
  if (it == completed_.end()) return std::nullopt;
  return it->second;
}

std::size_t Cluster::progress() {
  ++ticks_;

  // Advance the clock to the next event: the earliest in-flight arrival or
  // the earliest retransmit deadline.
  double next = gas_.next_arrival();
  const double rto = scheduler_->next_rto_deadline();
  if (rto >= 0.0 && (next < 0.0 || rto < next)) next = rto;
  if (next >= 0.0) now_us_ = std::max(now_us_, next);

  raw_.clear();
  (void)gas_.deliver_raw_until(now_us_, raw_);
  if (cfg_.reliability.enabled) {
    // Raw wire packets go through each destination's reliability channel:
    // verify, dedup, ack, and release accepted messages (in order when the
    // semantics demand it) into the node's incoming queue.
    replies_.clear();
    for (const Packet& p : raw_) {
      accepted_.clear();
      engines_[static_cast<std::size_t>(p.to)].reliability().on_packet(
          p, now_us_, accepted_, replies_);
      gas_.incoming(p.to).push_n(accepted_);  // Bulk append, one seq-stamp run.
      if (!accepted_.empty()) wake(p.to);
      // Data changed the receiver's dedup state; an ack cleared a pending
      // send.  Either way p.to's earliest deadline may differ now.
      scheduler_->rto_touched(p.to);
    }
    for (Packet& r : replies_) inject(std::move(r));

    // Fire expired retransmit timers (and report exhausted sends),
    // ascending by node id: retransmit injection order stamps wire
    // sequences, which the fault draws are keyed on.
    scheduler_->collect_due(now_us_, due_);
    rto_expiries_ += due_.size();
    resend_.clear();
    for (const int n : due_) {
      engines_[static_cast<std::size_t>(n)].reliability().expire(now_us_, resend_,
                                                                 failures_);
      scheduler_->rto_touched(n);
    }
    for (Packet& r : resend_) inject(std::move(r));
  } else {
    // Batched ingestion: raw_ is arrival-ordered, so contiguous packets to
    // the same destination form a run the queue can absorb with one bulk
    // push_n.  Per-queue arrival order — and therefore sequence stamping —
    // is identical to pushing per packet; wake() is level-triggered, so one
    // wake per run is equivalent to one per packet.
    std::size_t i = 0;
    while (i < raw_.size()) {
      const int to = raw_[i].to;
      ingest_batch_.clear();
      for (; i < raw_.size() && raw_[i].to == to; ++i) {
        matching::Message m;
        m.env = raw_[i].env;
        m.payload = raw_[i].payload;
        ingest_batch_.push_back(m);
      }
      gas_.incoming(to).push_n(ingest_batch_);
      wake(to);
    }
  }

  // Step every node whose communication kernel has matching work — and
  // only those (both policies agree on the set; they differ in how much
  // the *query* cost: scan vs incremental).
  scheduler_->collect_active(active_);
  nodes_stepped_ += active_.size();
  idle_steps_skipped_ += static_cast<std::uint64_t>(cfg_.nodes) - active_.size();
  active_set_peak_ = std::max(active_set_peak_, active_.size());
  completions_.clear();
  std::size_t matched = 0;
  for (const int n : active_) {
    const StepResult r = engines_[static_cast<std::size_t>(n)].step(
        gas_.incoming(n), posted_[static_cast<std::size_t>(n)], completions_);
    matched += r.matched;
    scheduler_->stepped(n, r.runnable);
  }
  for (const auto& c : completions_) {
    completed_[c.handle] =
        RecvResult{c.msg_env.src, c.msg_env.tag, c.payload, c.msg_env.stream};
    pending_.erase(c.handle);
  }
  return matched;
}

bool Cluster::quiesced() {
  if (!gas_.idle()) return false;
  if (cfg_.reliability.enabled) {
    // A channel is idle exactly when it has no armed deadline, so the
    // scheduler's wheel answers fleet-wide reliability quiescence.
    if (!scheduler_->rto_idle()) return false;
    // Nothing in flight, every sender done: messages still held for
    // in-order release are permanently stuck behind a failed sequence.
    for (auto& e : engines_) e.reliability().sweep_stranded(now_us_, failures_);
  }
  return true;
}

void Cluster::run_until_quiescent() {
  for (;;) {
    const std::size_t matched = progress();
    if (matched == 0 && quiesced()) return;
  }
}

void Cluster::barrier() {
  run_until_quiescent();
  if (!cfg_.semantics.unexpected) {
    // Enforcement sweep: every node, not just the active set — a node with
    // leftover unexpected messages and no posted receives is exactly what
    // this is here to catch.
    std::vector<Completion> sink;
    for (int n = 0; n < cfg_.nodes; ++n) {
      const StepResult r = engines_[static_cast<std::size_t>(n)].step(
          gas_.incoming(n), posted_[static_cast<std::size_t>(n)], sink,
          /*enforce_expected=*/true);
      scheduler_->stepped(n, r.runnable);
    }
  }
}

NodeActivity Cluster::node_activity(int node) const {
  if (node < 0 || node >= cfg_.nodes) throw std::out_of_range("node out of range");
  if (cfg_.reliability.enabled &&
      engines_[static_cast<std::size_t>(node)].reliability().next_deadline() >= 0.0) {
    return NodeActivity::kAwaitingRetransmit;
  }
  const bool has_msgs = !gas_.incoming(node).empty();
  const bool has_recvs = !posted_[static_cast<std::size_t>(node)].empty();
  if (has_msgs && has_recvs) return NodeActivity::kRunnable;
  if (has_recvs) return NodeActivity::kStarved;
  return NodeActivity::kIdle;
}

RecvResult Cluster::wait(RecvHandle h) {
  for (;;) {
    if (const auto r = result(h)) return *r;
    const std::size_t matched = progress();
    if (matched == 0 && quiesced()) {
      if (const auto r = result(h)) return *r;
      // Name the stuck handle so a chaos-test failure is diagnosable: which
      // node's queue it sits in, and the posted (src, tag, comm) that never
      // found a message.  The pending index makes both lookups O(1).
      std::string why = "wait(): cluster quiescent, receive cannot complete (node " +
                        std::to_string(h.node) + ", handle " + std::to_string(h.id);
      const auto it = pending_.find(h.id);
      if (it != pending_.end()) {
        why += ", posted " + matching::to_string(it->second.env);
      } else {
        why += ", not in the posted queue";
      }
      why += ")";
      if (h.node >= 0 && h.node < cfg_.nodes) {
        why += " (scheduler view: " + std::string(to_string(node_activity(h.node))) +
               ")";
      }
      if (!failures_.empty()) {
        why += " (" + std::to_string(failures_.size()) +
               " delivery failure(s) recorded; see delivery_failures())";
      }
      throw std::runtime_error(why);
    }
  }
}

ClusterStats Cluster::stats() const {
  const telemetry::TelemetryReport r = snapshot();
  const auto counter = [&r](const char* name) -> std::uint64_t {
    const auto it = r.counters.find(name);
    return it != r.counters.end() ? it->second : 0;
  };
  const auto gauge = [&r](const char* name) -> double {
    const auto it = r.gauges.find(name);
    return it != r.gauges.end() ? it->second : 0.0;
  };
  ClusterStats s;
  s.messages_sent = counter("runtime.cluster.messages_sent");
  s.receives_posted = counter("runtime.cluster.receives_posted");
  s.matches = r.matches;
  s.delivery_failures = counter("runtime.cluster.delivery_failures");
  s.matching_seconds = r.seconds;
  s.virtual_time_us = gauge("runtime.cluster.virtual_time_us");
  return s;
}

telemetry::TelemetryReport Cluster::snapshot() const {
  telemetry::TelemetryReport total;
  for (int n = 0; n < cfg_.nodes; ++n) {
    const auto node_report = engines_[static_cast<std::size_t>(n)].snapshot();
    // Fold the per-node modelled matching time in as a named gauge (the
    // former node_matching_seconds(int) accessor).
    total.gauges["runtime.node." + std::to_string(n) + ".matching_seconds"] =
        node_report.seconds;
    total.merge(node_report);
  }
  total.absorb(fabric_telemetry_);
  // Headline cluster counters: the single source of truth stats() reads.
  total.counters["runtime.cluster.messages_sent"] = sends_;
  total.counters["runtime.cluster.receives_posted"] = posts_;
  total.counters["runtime.cluster.receives_cancelled"] = cancels_;
  total.counters["runtime.cluster.delivery_failures"] = failures_.size();
  total.gauges["runtime.cluster.virtual_time_us"] = now_us_;
  // Scheduler instruments: identical for every host thread count AND every
  // scheduler policy (the policy itself is deliberately not exported — the
  // snapshot is the byte-identity oracle between the two).
  total.counters["runtime.scheduler.ticks"] = ticks_;
  total.counters["runtime.scheduler.nodes_stepped"] = nodes_stepped_;
  total.counters["runtime.scheduler.idle_steps_skipped"] = idle_steps_skipped_;
  total.counters["runtime.scheduler.wakes"] = wakes_;
  total.counters["runtime.scheduler.rto_expiries"] = rto_expiries_;
  total.gauges["runtime.scheduler.active_set_peak"] =
      static_cast<double>(active_set_peak_);
  // Per-stream traffic (docs/streams.md).  Only non-default streams export
  // counters, so a default-stream-only run's snapshot stays byte-identical
  // to the pre-stream runtime's.
  if (!stream_sends_.empty() || !stream_posts_.empty()) {
    std::set<matching::StreamId> domains;
    for (const auto& [stream, n] : stream_sends_) {
      domains.insert(stream);
      total.counters["runtime.stream." + std::to_string(stream) + ".messages_sent"] = n;
    }
    for (const auto& [stream, n] : stream_posts_) {
      domains.insert(stream);
      total.counters["runtime.stream." + std::to_string(stream) +
                     ".receives_posted"] = n;
    }
    // The default stream is always live even when its counters are elided.
    total.counters["runtime.stream.domains"] = domains.size() + 1;
  }
  return total;
}

}  // namespace simtmsg::runtime

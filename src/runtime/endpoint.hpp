// Cluster: the user-facing runtime — a set of simulated GPU endpoints
// communicating over a GAS (Figure 1(b): accelerators autonomously sourcing
// and sinking traffic), each running a communication-kernel progress
// engine with the configured matching semantics.
//
//   runtime::Cluster cluster({.nodes = 4});
//   auto h = cluster.irecv(1, 0, kTag);            // Post on node 1.
//   cluster.send(0, 1, kTag, 0xBEEF);              // Send from node 0.
//   const auto c = cluster.wait(h);                // Drive progress.
//   // c.payload == 0xBEEF
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "matching/semantics.hpp"
#include "runtime/gas.hpp"
#include "runtime/progress_engine.hpp"
#include "runtime/reliability.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"

namespace simtmsg::runtime {

/// Handle to a posted receive.
struct RecvHandle {
  int node = -1;
  std::uint64_t id = 0;
};

/// Result of a completed receive.
struct RecvResult {
  matching::Rank src = 0;  ///< Concrete source (wildcards resolved).
  matching::Tag tag = 0;
  std::uint64_t payload = 0;
};

struct ClusterConfig {
  int nodes = 2;
  matching::SemanticsConfig semantics;  ///< Default: fully MPI-compliant.
  simt::Generation device = simt::Generation::kPascal;
  NetworkConfig network;
  /// Ack/retransmit protocol over the (possibly faulted) fabric
  /// (docs/faults.md).  Off by default: the ideal lossless wire.
  ReliabilityConfig reliability;
  /// Host threads for the per-node matchers.  Purely a wall-clock knob:
  /// results and telemetry are bit-identical for every thread count.
  simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  /// Matcher shards (communication SMs) per node (docs/sharding.md).  The
  /// default of 1 is bit-identical to the original single-engine kernel;
  /// higher counts partition each node's matching by (comm, source rank)
  /// and model the shards as concurrent SMs.  Match results and payload
  /// routing are bit-identical for every shard count.
  int shards_per_node = 1;
};

/// Typed view over the headline entries of Cluster::snapshot() (which is
/// the single source of truth; see Cluster::stats()).
struct ClusterStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t receives_posted = 0;
  std::uint64_t matches = 0;
  std::uint64_t delivery_failures = 0;  ///< Messages the fabric gave up on.
  double matching_seconds = 0.0;  ///< Modelled device time in the matchers.
  double virtual_time_us = 0.0;   ///< Simulated cluster clock.
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  [[nodiscard]] int nodes() const noexcept { return cfg_.nodes; }
  [[nodiscard]] double now_us() const noexcept { return now_us_; }
  [[nodiscard]] const matching::SemanticsConfig& semantics() const noexcept {
    return cfg_.semantics;
  }

  /// Non-blocking send from node `from` to node `to`.
  void send(int from, int to, matching::Tag tag, std::uint64_t payload,
            matching::CommId comm = 0, std::size_t bytes = 8);

  /// Post a receive on `node`.  src may be matching::kAnySource and tag
  /// matching::kAnyTag when the semantics allow wildcards (otherwise
  /// std::invalid_argument).
  [[nodiscard]] RecvHandle irecv(int node, matching::Rank src, matching::Tag tag,
                                 matching::CommId comm = 0);

  /// True once the receive completed; non-blocking.
  [[nodiscard]] bool test(const RecvHandle& h) const;

  /// Completed result, if any.
  [[nodiscard]] std::optional<RecvResult> result(const RecvHandle& h) const;

  /// Drive progress until `h` completes.  Throws std::runtime_error when
  /// the cluster goes quiescent without completing it (deadlock).
  RecvResult wait(const RecvHandle& h);

  /// One progress round: advance the clock to the next arrival, deliver,
  /// and run every node's communication kernel.  Returns new completions.
  std::size_t progress();

  /// Run until no packets are in flight and no further matches are made.
  void run_until_quiescent();

  /// BSP superstep boundary: quiescence + (under no-unexpected semantics)
  /// verification that nothing unexpected remains.
  void barrier();

  /// Thin typed view over snapshot(): every field is read back out of the
  /// telemetry report (the single source of truth), so stats() can never
  /// drift from what snapshot() exports.
  [[nodiscard]] ClusterStats stats() const;

  /// Cluster-wide telemetry: every node engine's snapshot() merged, the
  /// runtime.fault.* / runtime.reliability.* instruments, the
  /// runtime.cluster.* headline counters/gauges backing stats(), and one
  /// runtime.node.<n>.matching_seconds gauge per node (the former
  /// node_matching_seconds(int) accessor, folded in).
  [[nodiscard]] telemetry::TelemetryReport snapshot() const;

  /// Every message the reliability layer gave up on (retry cap exhausted,
  /// or stranded behind a failed sequence at quiescence), in the order the
  /// failures were detected.  Empty on an ideal fabric.
  [[nodiscard]] const std::vector<DeliveryFailure>& delivery_failures() const noexcept {
    return failures_;
  }

 private:
  /// True when nothing is in flight and no reliability timer is pending;
  /// on the transition to quiescence, sweeps stranded held messages into
  /// failures_.
  [[nodiscard]] bool quiesced();
  void inject(Packet&& p);

  ClusterConfig cfg_;
  telemetry::Registry fabric_telemetry_;  ///< runtime.fault.* / runtime.reliability.*.
  GlobalAddressSpace gas_;
  std::vector<ProgressEngine> engines_;
  std::vector<matching::RecvQueue> posted_;
  std::unordered_map<std::uint64_t, RecvResult> completed_;
  std::vector<DeliveryFailure> failures_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t sends_ = 0;
  std::uint64_t posts_ = 0;
  double now_us_ = 0.0;
};

}  // namespace simtmsg::runtime

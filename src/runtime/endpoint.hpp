// Cluster: the user-facing runtime — a set of simulated GPU endpoints
// communicating over a GAS (Figure 1(b): accelerators autonomously sourcing
// and sinking traffic), each running a communication-kernel progress
// engine with the configured matching semantics.
//
//   runtime::Cluster cluster({.nodes = 4});
//   auto h = cluster.irecv(1, 0, kTag);            // Post on node 1.
//   cluster.send(0, 1, kTag, 0xBEEF);              // Send from node 0.
//   const auto c = cluster.wait(h);                // Drive progress.
//   // c.payload == 0xBEEF
//
// Communication is sliced into per-stream ordering domains (docs/
// streams.md): send/irecv qualified with the same Stream keep the full
// per-pair MPI ordering contract among themselves, while distinct streams
// of the same endpoint pair are mutually unordered — independent sequence
// spaces end to end (wire FIFO clamp, reliability seq/ack/watermark,
// match-queue cursors), so one stream's retransmit stall never
// head-of-line-blocks another.  Unqualified send/irecv are exact synonyms
// for stream 0, bit-identical to the pre-stream runtime.
//
// Progress is driven by a Scheduler (docs/runtime.md): each progress()
// tick advances the virtual clock to the next event, delivers the due
// packets, fires the due retransmit timers, and steps only the nodes whose
// communication kernels have matching work.  The default kEventDriven
// policy maintains the active set and a retransmit-deadline wheel
// incrementally, so a tick costs O(active nodes) and the fleet scales to
// O(10k) nodes; kLegacyLockstep finds those nodes by scanning the whole
// fleet (the seed's cost model).  Both policies produce bit-identical
// results and telemetry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "matching/semantics.hpp"
#include "runtime/gas.hpp"
#include "runtime/progress_engine.hpp"
#include "runtime/reliability.hpp"
#include "runtime/scheduler.hpp"
#include "simt/device_spec.hpp"
#include "simt/launcher.hpp"

namespace simtmsg::runtime {

/// A first-class ordering domain (docs/streams.md).  Traffic qualified
/// with the same stream keeps today's per-pair MPI ordering guarantees
/// among itself; distinct streams of the same endpoint pair are mutually
/// unordered and never head-of-line-block each other.  Stream 0 (the
/// default) is the pre-stream ordering domain: unqualified send/irecv are
/// exact synonyms for `Stream{}` qualification.
struct Stream {
  matching::StreamId id = matching::kDefaultStream;

  friend constexpr bool operator==(const Stream&, const Stream&) noexcept = default;
};

/// Handle to a posted receive.
struct RecvHandle {
  int node = -1;
  std::uint64_t id = 0;

  /// False for default-constructed (never-issued) handles.  A valid handle
  /// may still refer to a receive that has since completed or been
  /// cancelled — test()/result() answer that.
  [[nodiscard]] constexpr bool valid() const noexcept { return node >= 0 && id != 0; }
};

/// Handle to an initiated send, symmetric with RecvHandle.  Sends complete
/// locally (the wire and reliability layers own delivery), so the handle
/// carries identity rather than a completion to poll; sends the fabric
/// gave up on surface through Cluster::delivery_failures().
struct SendHandle {
  int from = -1;
  int to = -1;
  std::uint64_t id = 0;

  /// False for default-constructed (never-issued) handles.
  [[nodiscard]] constexpr bool valid() const noexcept { return from >= 0 && id != 0; }
};

/// Result of a completed receive.
struct RecvResult {
  matching::Rank src = 0;  ///< Concrete source (wildcards resolved).
  matching::Tag tag = 0;
  std::uint64_t payload = 0;
  matching::StreamId stream = matching::kDefaultStream;  ///< Ordering domain.
};

/// Default for ClusterConfig::max_streams: the SIMTMSG_STREAMS environment
/// variable when it holds a positive integer, else 64.  SIMTMSG_STREAMS=1
/// pins a suite to the default stream without code changes — the
/// streams-off equivalence leg.
[[nodiscard]] int default_max_streams();

struct ClusterConfig {
  int nodes = 2;
  matching::SemanticsConfig semantics;  ///< Default: fully MPI-compliant.
  simt::Generation device = simt::Generation::kPascal;
  NetworkConfig network;
  /// Ack/retransmit protocol over the (possibly faulted) fabric
  /// (docs/faults.md).  Off by default: the ideal lossless wire.
  ReliabilityConfig reliability;
  /// Host threads for the per-node matchers.  Purely a wall-clock knob:
  /// results and telemetry are bit-identical for every thread count.
  simt::ExecutionPolicy policy = simt::ExecutionPolicy::serial();
  /// Matcher shards (communication SMs) per node (docs/sharding.md).  The
  /// default of 1 is bit-identical to the original single-engine kernel;
  /// higher counts partition each node's matching by (comm, source rank)
  /// and model the shards as concurrent SMs.  Match results and payload
  /// routing are bit-identical for every shard count.
  int shards_per_node = 1;
  /// How progress() decides which nodes to schedule (docs/runtime.md).
  /// kEventDriven tracks the active set incrementally so a tick costs
  /// O(active nodes); kLegacyLockstep scans the fleet every tick (the seed
  /// behaviour, kept selectable).  Results and telemetry are bit-identical
  /// between the two.  The default follows the SIMTMSG_SCHEDULER
  /// environment variable (unset = kEventDriven) so the whole test suite
  /// doubles as an equivalence wall.
  SchedulerPolicy scheduler = default_scheduler_policy();
  /// Ordering domains per endpoint pair (docs/streams.md): stream ids in
  /// [0, max_streams) are accepted by the stream-qualified send/irecv
  /// overloads.  Stream 0 always exists (max_streams must be >= 1); the
  /// default follows the SIMTMSG_STREAMS environment variable (unset = 64)
  /// so existing suites can be re-run pinned to the default stream.
  int max_streams = default_max_streams();
};

/// Typed view over the headline entries of Cluster::snapshot() (which is
/// the single source of truth; see Cluster::stats()).
struct ClusterStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t receives_posted = 0;
  std::uint64_t matches = 0;
  std::uint64_t delivery_failures = 0;  ///< Messages the fabric gave up on.
  double matching_seconds = 0.0;  ///< Modelled device time in the matchers.
  double virtual_time_us = 0.0;   ///< Simulated cluster clock.
};

class Cluster {
 public:
  /// Throws std::invalid_argument (naming the offending field and value)
  /// when the configuration is inconsistent: nodes < 1, shards_per_node
  /// < 1, a scheduler policy outside the enum, or invalid semantics.
  explicit Cluster(ClusterConfig cfg);

  // The Scheduler probes capture `this`; the cluster must not move.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] int nodes() const noexcept { return cfg_.nodes; }
  [[nodiscard]] double now_us() const noexcept { return now_us_; }
  [[nodiscard]] const matching::SemanticsConfig& semantics() const noexcept {
    return cfg_.semantics;
  }
  [[nodiscard]] SchedulerPolicy scheduler_policy() const noexcept {
    return cfg_.scheduler;
  }

  /// Non-blocking send from node `from` to node `to` on `stream`'s
  /// ordering domain.  Throws std::invalid_argument when stream.id is
  /// outside [0, max_streams).
  SendHandle send(Stream stream, int from, int to, matching::Tag tag,
                  std::uint64_t payload, matching::CommId comm = 0,
                  std::size_t bytes = 8);

  /// Default-stream shim: identical to send(Stream{}, ...).
  SendHandle send(int from, int to, matching::Tag tag, std::uint64_t payload,
                  matching::CommId comm = 0, std::size_t bytes = 8);

  /// Post a receive on `node` for `stream`'s ordering domain — it matches
  /// only messages sent on the same stream (the stream joins the match
  /// tuple; there is no stream wildcard).  src may be matching::kAnySource
  /// and tag matching::kAnyTag when the semantics allow wildcards
  /// (otherwise std::invalid_argument, as for an out-of-range stream id).
  [[nodiscard]] RecvHandle irecv(Stream stream, int node, matching::Rank src,
                                 matching::Tag tag, matching::CommId comm = 0);

  /// Default-stream shim: identical to irecv(Stream{}, ...).
  [[nodiscard]] RecvHandle irecv(int node, matching::Rank src, matching::Tag tag,
                                 matching::CommId comm = 0);

  /// True once the receive completed; non-blocking.  (Handles are 12 bytes
  /// — passed by value.)
  [[nodiscard]] bool test(RecvHandle h) const;

  /// Cancel a posted receive that has not completed: removes it from the
  /// node's posted queue and the pending index, and tells the scheduler in
  /// case the node just went idle.  Returns true when the handle was
  /// pending and is now cancelled; false when it already completed (the
  /// result stays readable) or was never posted.  O(posted queue) — a cold
  /// path for retiring receives whose messages the fabric gave up on
  /// (StarForest partial mode, docs/collectives.md).
  bool cancel(RecvHandle h);

  /// Completed result, if any.
  [[nodiscard]] std::optional<RecvResult> result(RecvHandle h) const;

  /// Drive progress until `h` completes.  Throws std::runtime_error when
  /// the cluster goes quiescent without completing it (deadlock); the
  /// error names the stuck handle, its posted envelope, and the
  /// scheduler's view of the node (idle / starved / runnable / awaiting
  /// retransmit) — all O(1) lookups, not queue scans.
  RecvResult wait(RecvHandle h);

  /// One scheduler tick: advance the clock to the next event (earliest
  /// arrival or retransmit deadline), deliver the due packets, fire the
  /// due timers, and step every node with matching work.  Returns the
  /// number of new matches.
  std::size_t progress();

  /// Run until no packets are in flight and no further matches are made.
  void run_until_quiescent();

  /// BSP superstep boundary: quiescence + (under no-unexpected semantics)
  /// verification that nothing unexpected remains.
  void barrier();

  /// The scheduler's view of one node — the vocabulary wait() uses for
  /// deadlock diagnostics.
  [[nodiscard]] NodeActivity node_activity(int node) const;

  /// Thin typed view over snapshot(): every field is read back out of the
  /// telemetry report (the single source of truth), so stats() can never
  /// drift from what snapshot() exports.
  [[nodiscard]] ClusterStats stats() const;

  /// Cluster-wide telemetry: every node engine's snapshot() merged, the
  /// runtime.fault.* / runtime.reliability.* instruments, the
  /// runtime.cluster.* headline counters/gauges backing stats(), one
  /// runtime.node.<n>.matching_seconds gauge per node, and the
  /// runtime.scheduler.* instruments (ticks, nodes stepped, idle steps
  /// skipped, wakes, RTO expiries, active-set peak).  Bit-identical for
  /// every host thread count AND every scheduler policy.
  [[nodiscard]] telemetry::TelemetryReport snapshot() const;

  /// Every message the reliability layer gave up on (retry cap exhausted,
  /// or stranded behind a failed sequence at quiescence), in the order the
  /// failures were detected.  Empty on an ideal fabric.
  [[nodiscard]] const std::vector<DeliveryFailure>& delivery_failures() const noexcept {
    return failures_;
  }

  /// Registry absorbed into snapshot() alongside the per-node engine
  /// reports: runtime layers built on the cluster (StarForest, ...) put
  /// their runtime.* instruments here so cluster snapshots stay the single
  /// source of truth.  Single-threaded like the progress path itself.
  [[nodiscard]] telemetry::Registry& layer_telemetry() noexcept {
    return fabric_telemetry_;
  }

 private:
  /// A receive posted but not yet completed: the O(1) index wait() and the
  /// deadlock diagnostics use instead of scanning the posted queues.
  struct PendingRecv {
    int node = -1;
    matching::Envelope env;
  };

  /// True when nothing is in flight and no reliability timer is pending;
  /// on the transition to quiescence, sweeps stranded held messages into
  /// failures_.
  [[nodiscard]] bool quiesced();
  void inject(Packet&& p);
  /// A queue push may have made `node` runnable.
  void wake(int node);
  /// Throws std::invalid_argument when stream.id is outside
  /// [0, cfg_.max_streams).
  void validate_stream(Stream stream) const;

  ClusterConfig cfg_;
  telemetry::Registry fabric_telemetry_;  ///< runtime.fault.* / runtime.reliability.*.
  GlobalAddressSpace gas_;
  std::vector<ProgressEngine> engines_;
  std::vector<matching::RecvQueue> posted_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unordered_map<std::uint64_t, RecvResult> completed_;  ///< By handle id.
  std::unordered_map<std::uint64_t, PendingRecv> pending_;   ///< By handle id.
  std::vector<DeliveryFailure> failures_;
  std::uint64_t next_handle_ = 1;
  /// Send handles draw from their own id space so receive handle ids are
  /// unchanged from the pre-SendHandle runtime.
  std::uint64_t next_send_id_ = 1;
  std::uint64_t sends_ = 0;
  std::uint64_t posts_ = 0;
  std::uint64_t cancels_ = 0;
  /// Per-stream activity, non-default streams only; exported as the
  /// runtime.stream.* counters.  Both maps stay empty — and the counters
  /// absent — until a non-default stream is used, so a default-stream
  /// cluster's snapshot is byte-identical to the pre-stream runtime's.
  std::map<matching::StreamId, std::uint64_t> stream_sends_;
  std::map<matching::StreamId, std::uint64_t> stream_posts_;
  double now_us_ = 0.0;

  // runtime.scheduler.* instruments (identical across policies and host
  // thread counts — maintained on the single-threaded progress path).
  std::uint64_t ticks_ = 0;
  std::uint64_t nodes_stepped_ = 0;
  std::uint64_t idle_steps_skipped_ = 0;
  std::uint64_t wakes_ = 0;
  std::uint64_t rto_expiries_ = 0;
  std::size_t active_set_peak_ = 0;

  // Per-tick scratch, reused so the steady-state progress loop stays
  // allocation-free once the fleet's working set is warm.
  std::vector<Packet> raw_;
  std::vector<Packet> replies_;
  std::vector<Packet> resend_;
  std::vector<matching::Message> accepted_;
  std::vector<matching::Message> ingest_batch_;  ///< Same-destination run staging.
  std::vector<Completion> completions_;
  std::vector<int> active_;
  std::vector<int> due_;
};

}  // namespace simtmsg::runtime

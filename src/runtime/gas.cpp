#include "runtime/gas.hpp"

#include <stdexcept>

namespace simtmsg::runtime {

GlobalAddressSpace::GlobalAddressSpace(int nodes, NetworkConfig net_cfg)
    : network_(net_cfg), incoming_(static_cast<std::size_t>(nodes)) {
  if (nodes < 1) throw std::invalid_argument("GAS needs at least one node");
}

double GlobalAddressSpace::remote_enqueue(int from, int to,
                                          const matching::Envelope& env,
                                          std::uint64_t payload, std::size_t bytes,
                                          double now_us) {
  if (to < 0 || to >= nodes()) throw std::out_of_range("destination node out of range");
  Packet p;
  p.from = from;
  p.to = to;
  p.env = env;
  p.payload = payload;
  p.bytes = bytes;
  p.arrival_us = network_.arrival_time(now_us, bytes);
  p.sequence = sequence_++;
  in_flight_.push(p);
  return p.arrival_us;
}

std::size_t GlobalAddressSpace::deliver_until(double until_us) {
  std::size_t delivered = 0;
  while (!in_flight_.empty() && in_flight_.top().arrival_us <= until_us) {
    const Packet p = in_flight_.top();
    in_flight_.pop();
    matching::Message m;
    m.env = p.env;
    m.payload = p.payload;
    incoming_[static_cast<std::size_t>(p.to)].push(m);
    ++delivered;
  }
  return delivered;
}

double GlobalAddressSpace::next_arrival() const noexcept {
  return in_flight_.empty() ? -1.0 : in_flight_.top().arrival_us;
}

}  // namespace simtmsg::runtime

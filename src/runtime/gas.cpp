#include "runtime/gas.hpp"

#include <algorithm>
#include <stdexcept>

namespace simtmsg::runtime {

GlobalAddressSpace::GlobalAddressSpace(int nodes, NetworkConfig net_cfg,
                                       telemetry::Registry* fault_sink)
    : network_(std::move(net_cfg)),
      incoming_(static_cast<std::size_t>(nodes)),
      fault_sink_(fault_sink) {
  if (nodes < 1) throw std::invalid_argument("GAS needs at least one node");
}

void GlobalAddressSpace::bump(std::string_view name) {
  if constexpr (telemetry::kEnabled) {
    if (fault_sink_ != nullptr) fault_sink_->counter(name).add(1);
  }
}

double GlobalAddressSpace::remote_enqueue(int from, int to,
                                          const matching::Envelope& env,
                                          std::uint64_t payload, std::size_t bytes,
                                          double now_us) {
  Packet p;
  p.from = from;
  p.to = to;
  p.env = env;
  p.payload = payload;
  p.bytes = bytes;
  return inject(std::move(p), now_us);
}

double GlobalAddressSpace::inject(Packet p, double now_us) {
  if (p.to < 0 || p.to >= nodes()) throw std::out_of_range("destination node out of range");
  p.sequence = sequence_++;
  const WirePlan plan = network_.plan(p, now_us);

  if (plan.fault.extra_delay_us > 0.0) bump("runtime.fault.delay_spikes");
  if (plan.fault.drop) {
    bump("runtime.fault.drops");
    return -1.0;
  }

  p.arrival_us = plan.arrival_us;
  if (plan.fault.corrupt) {
    bump("runtime.fault.corruptions");
    p.payload ^= std::uint64_t{1} << plan.corrupt_bit;
  }

  const bool keep_fifo = !network_.config().faults.allow_pair_reorder;
  double& last = last_arrival_[{p.from, p.to, p.env.stream}];
  if (keep_fifo) p.arrival_us = std::max(p.arrival_us, last);
  last = std::max(last, p.arrival_us);

  const double arrival = p.arrival_us;
  if (plan.fault.duplicate) {
    bump("runtime.fault.duplicates");
    Packet dup = p;
    dup.sequence = sequence_++;
    dup.arrival_us = std::max(plan.dup_arrival_us, arrival);
    last = std::max(last, dup.arrival_us);
    in_flight_.push(std::move(dup));
  }
  in_flight_.push(std::move(p));
  return arrival;
}

std::size_t GlobalAddressSpace::deliver_until(double until_us) {
  std::size_t delivered = 0;
  while (!in_flight_.empty() && in_flight_.top().arrival_us <= until_us) {
    const Packet p = in_flight_.top();
    in_flight_.pop();
    matching::Message m;
    m.env = p.env;
    m.payload = p.payload;
    incoming_[static_cast<std::size_t>(p.to)].push(m);
    ++delivered;
  }
  return delivered;
}

std::size_t GlobalAddressSpace::deliver_raw_until(double until_us,
                                                  std::vector<Packet>& out) {
  std::size_t delivered = 0;
  while (!in_flight_.empty() && in_flight_.top().arrival_us <= until_us) {
    out.push_back(in_flight_.top());
    in_flight_.pop();
    ++delivered;
  }
  return delivered;
}

double GlobalAddressSpace::next_arrival() const noexcept {
  return in_flight_.empty() ? -1.0 : in_flight_.top().arrival_us;
}

}  // namespace simtmsg::runtime

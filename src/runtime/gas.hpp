// GlobalAddressSpace: the paper's communication substrate (Section II-C):
// "NVLink and PCIe systems allow GPUs to address a peer's memory directly
// by spanning a virtual global address space (GAS) across the network.
// 'Send' operations write messages to queues in remote memory and 'Receive'
// operations query the local queue for new messages."
//
// Each node owns an incoming message queue in its (simulated) device
// memory; remote_enqueue models the one-sided write a send performs.
// In-flight packets are delivered in arrival-time order.  FIFO is enforced
// per (from, to, stream) with a monotone clamp on planned arrivals — the
// NVLink-class guarantee, sliced per ordering domain (docs/streams.md) so
// distinct streams of the same pair may overtake each other — unless the
// FaultModel's pair-order-violation mode is on.
// The wire applies the NetworkConfig's FaultModel at injection time: a
// packet may be dropped, duplicated, bit-flipped, or delay-spiked, each
// event tallied into the optional telemetry sink as runtime.fault.*.
#pragma once

#include <map>
#include <queue>
#include <tuple>
#include <vector>

#include "matching/queue.hpp"
#include "runtime/network.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::runtime {

class GlobalAddressSpace {
 public:
  /// `fault_sink` (may be null) receives the runtime.fault.* wire counters.
  GlobalAddressSpace(int nodes, NetworkConfig net_cfg,
                     telemetry::Registry* fault_sink = nullptr);

  [[nodiscard]] int nodes() const noexcept { return static_cast<int>(incoming_.size()); }

  /// One-sided remote write of a message header+payload into `to`'s queue.
  /// Returns the packet's arrival time.
  double remote_enqueue(int from, int to, const matching::Envelope& env,
                        std::uint64_t payload, std::size_t bytes, double now_us);

  /// Inject a fully-formed packet (reliability path: data, ack, or
  /// retransmission).  Stamps the wire sequence, applies the fault plan,
  /// and returns the planned arrival time — or a negative value when the
  /// wire dropped the packet.
  double inject(Packet p, double now_us);

  /// Move every packet with arrival <= `until_us` into its destination's
  /// incoming queue (arrival order).  Returns the number delivered.  This
  /// is the raw-fabric path; with a reliability layer the Cluster uses
  /// deliver_raw_until instead.
  std::size_t deliver_until(double until_us);

  /// As deliver_until, but hands the raw packets (in arrival order) to the
  /// caller instead of the incoming queues — the reliability layer decides
  /// what is accepted.
  std::size_t deliver_raw_until(double until_us, std::vector<Packet>& out);

  /// Earliest in-flight arrival, or a negative value when nothing is in
  /// flight.
  [[nodiscard]] double next_arrival() const noexcept;

  [[nodiscard]] bool idle() const noexcept { return in_flight_.empty(); }

  /// Node-local incoming message queue (what the communication kernel
  /// matches against).
  [[nodiscard]] matching::MessageQueue& incoming(int node) {
    return incoming_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const matching::MessageQueue& incoming(int node) const {
    return incoming_[static_cast<std::size_t>(node)];
  }

  [[nodiscard]] std::uint64_t total_injected() const noexcept { return sequence_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.arrival_us != b.arrival_us) return a.arrival_us > b.arrival_us;
      return a.sequence > b.sequence;
    }
  };

  void bump(std::string_view name);

  Network network_;
  std::priority_queue<Packet, std::vector<Packet>, Later> in_flight_;
  std::vector<matching::MessageQueue> incoming_;
  /// Latest planned arrival per (from, to, stream) — the FIFO clamp.  One
  /// clamp per ordering domain: a delay spike on one stream never drags a
  /// sibling stream's arrivals behind it.  With only the default stream the
  /// map holds exactly the pre-stream (from, to) entries.
  std::map<std::tuple<int, int, matching::StreamId>, double> last_arrival_;
  telemetry::Registry* fault_sink_ = nullptr;
  std::uint64_t sequence_ = 0;
};

}  // namespace simtmsg::runtime

// GlobalAddressSpace: the paper's communication substrate (Section II-C):
// "NVLink and PCIe systems allow GPUs to address a peer's memory directly
// by spanning a virtual global address space (GAS) across the network.
// 'Send' operations write messages to queues in remote memory and 'Receive'
// operations query the local queue for new messages."
//
// Each node owns an incoming message queue in its (simulated) device
// memory; remote_enqueue models the one-sided write a send performs.
// In-flight packets are delivered in arrival-time order (per-pair FIFO is
// preserved by construction when jitter is zero).
#pragma once

#include <queue>
#include <vector>

#include "matching/queue.hpp"
#include "runtime/network.hpp"

namespace simtmsg::runtime {

class GlobalAddressSpace {
 public:
  GlobalAddressSpace(int nodes, NetworkConfig net_cfg);

  [[nodiscard]] int nodes() const noexcept { return static_cast<int>(incoming_.size()); }

  /// One-sided remote write of a message header+payload into `to`'s queue.
  /// Returns the packet's arrival time.
  double remote_enqueue(int from, int to, const matching::Envelope& env,
                        std::uint64_t payload, std::size_t bytes, double now_us);

  /// Move every packet with arrival <= `until_us` into its destination's
  /// incoming queue (arrival order).  Returns the number delivered.
  std::size_t deliver_until(double until_us);

  /// Earliest in-flight arrival, or a negative value when nothing is in
  /// flight.
  [[nodiscard]] double next_arrival() const noexcept;

  [[nodiscard]] bool idle() const noexcept { return in_flight_.empty(); }

  /// Node-local incoming message queue (what the communication kernel
  /// matches against).
  [[nodiscard]] matching::MessageQueue& incoming(int node) {
    return incoming_[static_cast<std::size_t>(node)];
  }

  [[nodiscard]] std::uint64_t total_injected() const noexcept { return sequence_; }

 private:
  struct Later {
    bool operator()(const Packet& a, const Packet& b) const noexcept {
      if (a.arrival_us != b.arrival_us) return a.arrival_us > b.arrival_us;
      return a.sequence > b.sequence;
    }
  };

  Network network_;
  std::priority_queue<Packet, std::vector<Packet>, Later> in_flight_;
  std::vector<matching::MessageQueue> incoming_;
  std::uint64_t sequence_ = 0;
};

}  // namespace simtmsg::runtime

#include "runtime/network.hpp"

// Network is header-only (hot path); this TU anchors it into the library.

namespace simtmsg::runtime {

static_assert(sizeof(Packet) > 0);

}  // namespace simtmsg::runtime

#include "runtime/network.hpp"

namespace simtmsg::runtime {
namespace {

/// Independent derived seed for one (config seed, wire_seq, salt) tuple.
[[nodiscard]] std::uint64_t derive(std::uint64_t seed, std::uint64_t wire_seq,
                                   std::uint64_t salt) noexcept {
  std::uint64_t s = seed ^ (wire_seq * 0x9E3779B97F4A7C15ull) ^ salt;
  return util::splitmix64(s);
}

}  // namespace

double Network::jitter(std::uint64_t wire_seq) const noexcept {
  if (cfg_.jitter_us <= 0.0) return 0.0;
  util::Rng rng(derive(cfg_.seed, wire_seq, 0x6A177E12ull));
  return rng.uniform() * cfg_.jitter_us;
}

WirePlan Network::plan(const Packet& p, double now_us) const {
  WirePlan out;
  out.arrival_us = arrival_time(now_us, p.bytes, p.sequence);

  const FaultModel& f = cfg_.faults;
  if (f.script) {
    out.fault = f.script(p);
  } else if (f.active()) {
    util::Rng rng(derive(cfg_.seed, p.sequence, 0xFA017ull));
    out.fault.drop = f.drop_prob > 0.0 && rng.chance(f.drop_prob);
    out.fault.duplicate = f.dup_prob > 0.0 && rng.chance(f.dup_prob);
    out.fault.corrupt = f.corrupt_prob > 0.0 && rng.chance(f.corrupt_prob);
    if (f.delay_spike_prob > 0.0 && rng.chance(f.delay_spike_prob)) {
      out.fault.extra_delay_us = rng.uniform() * f.delay_spike_us;
    }
  }

  util::Rng shape(derive(cfg_.seed, p.sequence, 0x5AAFE2ull));
  out.corrupt_bit = static_cast<int>(shape.below(64));
  out.arrival_us += out.fault.extra_delay_us;
  // The duplicate trails the original by an independent extra delay in
  // (0, latency + jitter]: close enough to stress duplicate suppression,
  // far enough to interleave with later traffic.
  out.dup_arrival_us =
      out.arrival_us + shape.uniform() * (cfg_.latency_us + cfg_.jitter_us) +
      1e-6;
  return out;
}

}  // namespace simtmsg::runtime

// Network model for the simulated GPU cluster: NVLink-class links with a
// fixed per-message latency, a bandwidth term, optional jitter, and an
// optional adversarial FaultModel (per-packet drop, duplication, payload
// corruption, delay spikes, and an opt-in pair-order-violation mode).
//
// Everything the wire does to a packet is derived *statelessly* from
// (config seed, wire sequence number) via splitmix64 — there is no shared
// mutable RNG, so planning is const, thread-safe, and bit-identical for a
// fixed seed regardless of host thread count (the PR 2 invariant).  The
// fault-free default reproduces the ideal lossless fabric NVLink-class
// hardware provides and the paper's relaxations presume; docs/faults.md
// describes the adversarial modes and the reliability protocol built on
// top of them.
#pragma once

#include <cstdint>
#include <functional>

#include "matching/envelope.hpp"
#include "util/rng.hpp"

namespace simtmsg::runtime {

/// What a packet is carrying: user data, or a reliability-layer ack.
enum class PacketKind : std::uint8_t { kData = 0, kAck = 1 };

/// A message in flight between two endpoints.  The packet's ordering
/// domain rides in env.stream (docs/streams.md): the GAS FIFO clamp, the
/// reliability sequence spaces, and pair_seq below are all sliced by it.
struct Packet {
  int from = 0;
  int to = 0;
  matching::Envelope env;
  std::uint64_t payload = 0;
  std::size_t bytes = 8;
  double arrival_us = 0.0;
  std::uint64_t sequence = 0;   ///< Global wire injection order (tie-break).
  PacketKind kind = PacketKind::kData;
  std::uint64_t pair_seq = 0;   ///< Per-(from,to,stream) sequence (reliability layer).
  std::uint64_t checksum = 0;   ///< packet_checksum() over the fields above.
  int attempt = 1;              ///< Delivery attempt (1 = first transmission).
};

/// What the wire decided to do with one injected packet.  Scripted tests
/// build these directly; the probabilistic FaultModel derives them per
/// wire-sequence number.
struct WireFault {
  bool drop = false;        ///< Packet never arrives.
  bool duplicate = false;   ///< A second copy arrives (later).
  bool corrupt = false;     ///< One payload bit is flipped in flight.
  double extra_delay_us = 0.0;  ///< Delay spike on top of latency + jitter.
};

/// Deterministic, seeded fault injection.  With `script` set, the script
/// decides every packet's fate (exact scenario tests); otherwise each knob
/// is an independent per-packet Bernoulli draw keyed on the wire sequence.
struct FaultModel {
  double drop_prob = 0.0;         ///< P(packet lost).
  double dup_prob = 0.0;          ///< P(packet duplicated).
  double corrupt_prob = 0.0;      ///< P(one payload bit flipped).
  double delay_spike_prob = 0.0;  ///< P(delay spike).
  double delay_spike_us = 0.0;    ///< Spike magnitude (uniform in [0, this]).
  /// Permit same-pair packets to overtake each other on the wire.  Off, the
  /// fabric clamps arrivals so per-pair FIFO holds (the NVLink guarantee);
  /// on, jitter and spikes may reorder a pair's packets — exactly where the
  /// compliant matrix path and the "no ordering" hash path diverge.
  bool allow_pair_reorder = false;
  /// Scripted override: when set, called once per injected packet (with the
  /// wire sequence already stamped) and its verdict replaces the
  /// probabilistic draws.  Deterministic as long as the script is.
  std::function<WireFault(const Packet&)> script;

  /// True when any fault can occur (a script counts: it may do anything).
  [[nodiscard]] bool active() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || corrupt_prob > 0.0 ||
           delay_spike_prob > 0.0 || allow_pair_reorder || script != nullptr;
  }
};

struct NetworkConfig {
  double latency_us = 1.3;       ///< Per-message one-way latency.
  double bandwidth_gbs = 40.0;   ///< Link bandwidth, GB/s (NVLink-class).
  double jitter_us = 0.0;        ///< Uniform extra delay in [0, jitter].
  std::uint64_t seed = 1;
  FaultModel faults;             ///< Default: ideal lossless fabric.
};

/// Full wire plan for one injected packet: fault verdict plus the planned
/// arrival times (dup_arrival_us is meaningful only when duplicate is set).
struct WirePlan {
  WireFault fault;
  int corrupt_bit = 0;       ///< Payload bit to flip when fault.corrupt.
  double arrival_us = 0.0;
  double dup_arrival_us = 0.0;
};

class Network {
 public:
  explicit Network(NetworkConfig cfg) : cfg_(std::move(cfg)) {}

  /// Arrival time for `bytes` injected at `now_us` as wire packet
  /// `wire_seq`.  Jitter is derived from (seed, wire_seq) — const and
  /// thread-safe; two networks with the same config agree exactly.
  [[nodiscard]] double arrival_time(double now_us, std::size_t bytes,
                                    std::uint64_t wire_seq) const noexcept {
    const double wire = static_cast<double>(bytes) / (cfg_.bandwidth_gbs * 1e3);  // us.
    return now_us + cfg_.latency_us + wire + jitter(wire_seq);
  }

  /// Everything the wire will do to `p` (whose sequence must already be
  /// stamped), injected at `now_us`.  Pure function of (config, packet).
  [[nodiscard]] WirePlan plan(const Packet& p, double now_us) const;

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

 private:
  /// Derived jitter for one wire packet (0 when jitter is disabled).
  [[nodiscard]] double jitter(std::uint64_t wire_seq) const noexcept;

  NetworkConfig cfg_;
};

}  // namespace simtmsg::runtime

// Network model for the simulated GPU cluster: NVLink-class links with a
// fixed per-message latency, a bandwidth term, and optional jitter (which
// produces out-of-order delivery between different pairs, like a real
// multi-path fabric; per-pair ordering is preserved, as NVLink and
// lossless HPC fabrics guarantee and MPI's ordering rule presumes).
#pragma once

#include <cstdint>

#include "matching/envelope.hpp"
#include "util/rng.hpp"

namespace simtmsg::runtime {

struct NetworkConfig {
  double latency_us = 1.3;       ///< Per-message one-way latency.
  double bandwidth_gbs = 40.0;   ///< Link bandwidth, GB/s (NVLink-class).
  double jitter_us = 0.0;        ///< Uniform extra delay in [0, jitter].
  std::uint64_t seed = 1;
};

/// A message in flight between two endpoints.
struct Packet {
  int from = 0;
  int to = 0;
  matching::Envelope env;
  std::uint64_t payload = 0;
  std::size_t bytes = 8;
  double arrival_us = 0.0;
  std::uint64_t sequence = 0;  ///< Global injection order (tie-break).
};

class Network {
 public:
  explicit Network(NetworkConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Arrival time for `bytes` injected at `now_us`.
  [[nodiscard]] double arrival_time(double now_us, std::size_t bytes) noexcept {
    const double wire = static_cast<double>(bytes) / (cfg_.bandwidth_gbs * 1e3);  // us.
    const double jitter = cfg_.jitter_us > 0.0 ? rng_.uniform() * cfg_.jitter_us : 0.0;
    return now_us + cfg_.latency_us + wire + jitter;
  }

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

 private:
  NetworkConfig cfg_;
  util::Rng rng_;
};

}  // namespace simtmsg::runtime

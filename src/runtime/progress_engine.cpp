#include "runtime/progress_engine.hpp"

#include <stdexcept>

namespace simtmsg::runtime {

ProgressEngine::ProgressEngine(const simt::DeviceSpec& device,
                               matching::SemanticsConfig semantics)
    : engine_(device, semantics, {}), semantics_(semantics) {}

ProgressEngine::ProgressEngine(const simt::DeviceSpec& device,
                               matching::SemanticsConfig semantics,
                               const simt::ExecutionPolicy& policy, int shards, int node,
                               const ReliabilityConfig& reliability,
                               telemetry::Registry* sink)
    : engine_(device, semantics,
              matching::ShardedMatchEngine::Options{.shards = shards, .policy = policy}),
      semantics_(semantics) {
  if (reliability.enabled) {
    if (reliability.max_attempts < 1) {
      throw std::invalid_argument("reliability needs max_attempts >= 1");
    }
    if (reliability.timeout_us <= 0.0 || reliability.backoff < 1.0) {
      throw std::invalid_argument("reliability needs timeout_us > 0 and backoff >= 1");
    }
    if (reliability.max_timeout_us < reliability.timeout_us) {
      throw std::invalid_argument("reliability needs max_timeout_us >= timeout_us");
    }
    // The hold-back buffer restores the per-pair delivery order the MPI
    // ordering guarantee needs; relaxed "no ordering" semantics release on
    // arrival (the paper's divergence point under faults).
    reliability_.emplace(node, reliability, /*restore_order=*/semantics.ordering, sink);
  }
}

telemetry::TelemetryReport ProgressEngine::snapshot() const {
  telemetry::TelemetryReport r = engine_.snapshot();
  // A progress step that found an empty queue pair never reaches the match
  // engine; report steps, not engine calls.
  r.calls = steps_;
  return r;
}

StepResult ProgressEngine::step(matching::MessageQueue& incoming,
                                matching::RecvQueue& posted,
                                std::vector<Completion>& out, bool enforce_expected) {
  ++steps_;
  if (incoming.empty() || posted.empty()) {
    if (enforce_expected && !semantics_.unexpected && !incoming.empty()) {
      throw std::runtime_error(
          "unexpected message at quiescence under no-unexpected semantics");
    }
    // One queue is empty: nothing can match until a wake event refills it.
    return {.matched = 0, .runnable = false};
  }

  // Snapshot: result indices refer to pre-compaction queue contents.  The
  // snapshot vectors and the stats slot are members, refilled per step.
  snap_msgs_.assign(incoming.view().begin(), incoming.view().end());
  snap_reqs_.assign(posted.view().begin(), posted.view().end());
  const auto& msgs = snap_msgs_;
  const auto& reqs = snap_reqs_;

  engine_.match_queues(incoming, posted, step_stats_);
  const auto& stats = step_stats_;

  std::size_t matched = 0;
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    if (m == matching::kNoMatch) continue;
    ++matched;
    Completion c;
    c.handle = reqs[r].user_data;
    c.msg_env = msgs[static_cast<std::size_t>(m)].env;
    c.payload = msgs[static_cast<std::size_t>(m)].payload;
    out.push_back(c);
  }

  if (enforce_expected && !semantics_.unexpected && !incoming.empty()) {
    throw std::runtime_error(
        "unexpected message at quiescence under no-unexpected semantics");
  }
  return {.matched = matched, .runnable = !incoming.empty() && !posted.empty()};
}

}  // namespace simtmsg::runtime

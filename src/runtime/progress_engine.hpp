// ProgressEngine: the per-node "communication kernel" of Section II-C —
// "there is one communication kernel running on a single GPU streaming
// multiprocessor (SM) while other SMs are executing the application's grid
// ... The matching and other communication tasks are performed in the
// background by the communication kernel."
//
// Each step drains the node's incoming GAS queue against its posted
// receive queue through a ShardedMatchEngine configured with the cluster's
// semantics, and reports completions.  With shards_per_node > 1 the node
// dedicates several communication SMs to matching (docs/sharding.md); the
// default of one shard is bit-identical to the original single-engine
// kernel.  Stream-sliced ordering (docs/streams.md) needs no special
// handling here: the stream rides in every envelope, the queues stamp
// per-stream sequence cursors, and the sharded engine buckets by
// (comm, stream) — the step sees a union of ordering domains and matches
// each only against itself.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "matching/queue.hpp"
#include "matching/sharded_engine.hpp"
#include "runtime/reliability.hpp"
#include "telemetry/report.hpp"

namespace simtmsg::runtime {

struct Completion {
  std::uint64_t handle = 0;    ///< The receive's user handle.
  /// The concrete matched message envelope (carries the stream — the
  /// matched message's ordering domain, always equal to the receive's).
  matching::Envelope msg_env;
  std::uint64_t payload = 0;
};

/// What one progress step did and whether the node needs rescheduling —
/// the runnable/idle contract the cluster Scheduler is built on
/// (docs/runtime.md).
struct StepResult {
  std::size_t matched = 0;  ///< New matches this step.
  /// True when the node still has both pending messages and posted
  /// receives after the step: the scheduler must keep it in the active set
  /// (the queues hold a pair the semantics could not match this pass, or a
  /// matcher safety valve deferred work).  False means the node is idle
  /// until a new message arrives or a new receive is posted.
  bool runnable = false;
};

class ProgressEngine {
 public:
  ProgressEngine(const simt::DeviceSpec& device, matching::SemanticsConfig semantics);

  /// Full constructor: host execution policy for the node's matcher, the
  /// number of matcher shards (communication SMs) for this node, the node
  /// id, and the reliability protocol config.  When `reliability.enabled`,
  /// the engine owns this node's ReliabilityChannel (the per-node half of
  /// the ack/retransmit protocol the communication kernel runs in the
  /// background); `sink` receives its telemetry.
  ProgressEngine(const simt::DeviceSpec& device, matching::SemanticsConfig semantics,
                 const simt::ExecutionPolicy& policy, int shards, int node,
                 const ReliabilityConfig& reliability, telemetry::Registry* sink);

  /// One matching pass over (incoming, posted).  Matched elements are
  /// removed from both queues; completions are appended to `out`.
  /// Returns the number of new matches plus whether the node remains
  /// runnable (needs rescheduling — see StepResult).  Throws
  /// std::runtime_error when a message remains unmatched although the
  /// semantics prohibit unexpected messages and `enforce_expected` is set
  /// (used at quiescence points — mid-flight a message may legitimately
  /// precede its receive's arrival into the queue by one progress step).
  StepResult step(matching::MessageQueue& incoming, matching::RecvQueue& posted,
                  std::vector<Completion>& out, bool enforce_expected = false);

  /// Telemetry totals for this engine: `calls` counts progress steps,
  /// `matches`/`cycles`/`seconds`/`iterations` and the event-counter phases
  /// come from the underlying matcher shards (merged in shard order).
  [[nodiscard]] telemetry::TelemetryReport snapshot() const;

  [[nodiscard]] const matching::ShardedMatchEngine& engine() const noexcept {
    return engine_;
  }

  /// This node's reliability protocol state (only with a full-constructor
  /// engine whose ReliabilityConfig was enabled).
  [[nodiscard]] bool has_reliability() const noexcept { return reliability_.has_value(); }
  [[nodiscard]] ReliabilityChannel& reliability() { return *reliability_; }
  [[nodiscard]] const ReliabilityChannel& reliability() const { return *reliability_; }

 private:
  matching::ShardedMatchEngine engine_;
  matching::SemanticsConfig semantics_;
  std::optional<ReliabilityChannel> reliability_;
  std::uint64_t steps_ = 0;
  // Per-step scratch, reused so the steady-state progress loop stays
  // allocation-free (the queue snapshots and the match stats are refilled
  // every step).
  std::vector<matching::Message> snap_msgs_;
  std::vector<matching::RecvRequest> snap_reqs_;
  matching::SimtMatchStats step_stats_;
};

}  // namespace simtmsg::runtime

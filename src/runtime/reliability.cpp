#include "runtime/reliability.hpp"

#include <algorithm>

namespace simtmsg::runtime {

std::string to_string(const DeliveryFailure& f) {
  std::string s = f.kind == FailureKind::kRetriesExhausted
                      ? "retries exhausted"
                      : "stranded behind a failed sequence";
  s += ": " + std::to_string(f.from) + " -> " + std::to_string(f.to) +
       " tag=" + std::to_string(f.env.tag) +
       " pair_seq=" + std::to_string(f.pair_seq) +
       " attempts=" + std::to_string(f.attempts);
  // Default-stream failure labels read exactly as before streams existed.
  if (f.env.stream != matching::kDefaultStream) {
    s += " stream=" + std::to_string(f.env.stream);
  }
  return s;
}

std::uint64_t packet_checksum(const matching::Envelope& env, std::uint64_t payload,
                              std::uint64_t pair_seq, PacketKind kind) noexcept {
  std::uint64_t h = 0xC4EC5D0C0DE5EEDull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    std::uint64_t s = h ^ v;
    h = util::splitmix64(s);
  };
  mix(static_cast<std::uint32_t>(env.src));
  mix(static_cast<std::uint32_t>(env.tag));
  mix(static_cast<std::uint32_t>(env.comm));
  // The stream is addressing state like the comm: a packet corrupted onto a
  // different ordering domain must fail verification, or it would be deduped
  // (and release-ordered) against the wrong (pair, stream) space.
  mix(static_cast<std::uint32_t>(env.stream));
  mix(payload);
  mix(pair_seq);
  mix(static_cast<std::uint64_t>(kind));
  return h;
}

ReliabilityChannel::ReliabilityChannel(int node, const ReliabilityConfig& cfg,
                                       bool restore_order, telemetry::Registry* sink)
    : node_(node), cfg_(cfg), restore_order_(restore_order), sink_(sink) {}

void ReliabilityChannel::bump(std::string_view name, std::uint64_t n) {
  if constexpr (telemetry::kEnabled) {
    if (sink_ != nullptr) sink_->counter(name).add(n);
  }
}

void ReliabilityChannel::observe_attempts(std::uint64_t attempts) {
  if constexpr (telemetry::kEnabled) {
    if (sink_ != nullptr) {
      sink_->histogram("runtime.reliability.delivery_attempts").record(attempts);
    }
  }
}

Packet ReliabilityChannel::make_data(int to, const matching::Envelope& env,
                                     std::uint64_t payload, std::size_t bytes,
                                     double now_us) {
  Packet p;
  p.from = node_;
  p.to = to;
  p.env = env;
  p.payload = payload;
  p.bytes = bytes;
  p.kind = PacketKind::kData;
  // Each (destination, stream) pair owns an independent sequence space:
  // streams of one pair never share pair_seq values, watermarks, or
  // hold-back gaps (docs/streams.md).
  p.pair_seq = next_send_seq_[{to, env.stream}]++;
  p.checksum = packet_checksum(env, payload, p.pair_seq, PacketKind::kData);
  p.attempt = 1;
  outstanding_[{to, env.stream, p.pair_seq}] =
      Outstanding{p, now_us + cfg_.timeout_us, now_us, cfg_.timeout_us};
  deadlines_.insert(now_us + cfg_.timeout_us);
  bump("runtime.reliability.data_sent");
  return p;
}

void ReliabilityChannel::accept(int src, RxState& rx, const Packet& p,
                                std::vector<matching::Message>& accepted) {
  matching::Message m;
  m.env = p.env;
  m.payload = p.payload;
  rx.accepted_above.insert(p.pair_seq);
  if (restore_order_) {
    rx.held[p.pair_seq] = Held{m, p.attempt};
    for (auto it = rx.held.find(rx.next_release); it != rx.held.end();
         it = rx.held.find(rx.next_release)) {
      accepted.push_back(it->second.msg);
      rx.accepted_above.erase(rx.next_release);
      rx.held.erase(it);
      ++rx.next_release;
    }
  } else {
    accepted.push_back(m);
    while (rx.accepted_above.erase(rx.next_release) > 0) ++rx.next_release;
  }
  (void)src;
}

void ReliabilityChannel::on_packet(const Packet& p, double now_us,
                                   std::vector<matching::Message>& accepted,
                                   std::vector<Packet>& replies) {
  (void)now_us;
  if (p.checksum != packet_checksum(p.env, p.payload, p.pair_seq, p.kind)) {
    // Corrupted in flight: treat as lost; a retransmission recovers it.
    bump("runtime.reliability.corruptions_detected");
    return;
  }

  if (p.kind == PacketKind::kAck) {
    const auto it = outstanding_.find({p.from, p.env.stream, p.pair_seq});
    if (it == outstanding_.end()) {
      bump("runtime.reliability.stale_acks");
      return;
    }
    bump("runtime.reliability.acks_received");
    observe_attempts(static_cast<std::uint64_t>(it->second.pkt.attempt));
    deadlines_.erase(deadlines_.find(it->second.deadline));
    outstanding_.erase(it);
    return;
  }

  RxState& rx = rx_[{p.from, p.env.stream}];
  const bool duplicate =
      p.pair_seq < rx.next_release || rx.accepted_above.contains(p.pair_seq);
  if (duplicate) {
    bump("runtime.reliability.duplicates_suppressed");
  } else {
    accept(p.from, rx, p, accepted);
  }

  // Always (re-)ack — the copy we saw first may have been acked on a wire
  // packet that was itself dropped.
  Packet ack;
  ack.from = node_;
  ack.to = p.from;
  ack.env = p.env;
  ack.payload = p.pair_seq;
  ack.bytes = 8;
  ack.kind = PacketKind::kAck;
  ack.pair_seq = p.pair_seq;
  ack.checksum = packet_checksum(ack.env, ack.payload, ack.pair_seq, PacketKind::kAck);
  ack.attempt = p.attempt;
  replies.push_back(ack);
  bump("runtime.reliability.acks_sent");
}

void ReliabilityChannel::expire(double now_us, std::vector<Packet>& resend,
                                std::vector<DeliveryFailure>& failed) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    Outstanding& o = it->second;
    if (o.deadline > now_us) {
      ++it;
      continue;
    }
    if (o.pkt.attempt >= cfg_.max_attempts) {
      DeliveryFailure f;
      f.kind = FailureKind::kRetriesExhausted;
      f.from = o.pkt.from;
      f.to = o.pkt.to;
      f.env = o.pkt.env;
      f.payload = o.pkt.payload;
      f.pair_seq = o.pkt.pair_seq;
      f.attempts = o.pkt.attempt;
      f.first_send_us = o.first_send_us;
      f.failed_us = now_us;
      failed.push_back(f);
      bump("runtime.reliability.delivery_failures");
      observe_attempts(static_cast<std::uint64_t>(o.pkt.attempt));
      deadlines_.erase(deadlines_.find(o.deadline));
      it = outstanding_.erase(it);
      continue;
    }
    ++o.pkt.attempt;
    // One multiply per retransmit (same floating-point sequence as the old
    // backoff^(attempt-1) recomputation when the cap never binds), clamped
    // so a large retry budget cannot push the deadline out without bound.
    o.rto = std::min(o.rto * cfg_.backoff, cfg_.max_timeout_us);
    deadlines_.erase(deadlines_.find(o.deadline));
    o.deadline = now_us + o.rto;
    deadlines_.insert(o.deadline);
    resend.push_back(o.pkt);
    bump("runtime.reliability.retransmits");
    ++it;
  }
}

double ReliabilityChannel::next_deadline() const noexcept {
  return deadlines_.empty() ? -1.0 : *deadlines_.begin();
}

void ReliabilityChannel::sweep_stranded(double now_us,
                                        std::vector<DeliveryFailure>& failed) {
  for (auto& [key, rx] : rx_) {
    for (const auto& [seq, held] : rx.held) {
      DeliveryFailure f;
      f.kind = FailureKind::kStranded;
      f.from = key.first;
      f.to = node_;
      f.env = held.msg.env;
      f.payload = held.msg.payload;
      f.pair_seq = seq;
      f.attempts = held.attempt;
      f.failed_us = now_us;
      failed.push_back(f);
      bump("runtime.reliability.stranded");
    }
    // Advance the watermark past everything seen so post-quiescence traffic
    // on this pair is not parked behind the abandoned gap.  No copies of
    // the gap's packets can still arrive: the cluster is quiescent and the
    // sender exhausted its retries.
    if (!rx.accepted_above.empty()) {
      rx.next_release = std::max(rx.next_release, *rx.accepted_above.rbegin() + 1);
    }
    rx.accepted_above.clear();
    rx.held.clear();
  }
}

}  // namespace simtmsg::runtime

// Reliability protocol over the faulted fabric (docs/faults.md).
//
// The paper's relaxations presume a lossless, per-pair-ordered NVLink-class
// network.  Once the FaultModel makes the wire adversarial, each node's
// communication kernel runs this protocol so the matchers above still see
// the fabric they were designed for:
//
//   * per-(sender, receiver, stream) sequence numbers on every data packet
//     — each ordering domain (docs/streams.md) owns an independent
//     seq/ack/watermark space, so one stream's retransmit stall never
//     head-of-line-blocks another stream of the same pair,
//   * positive acks from the receiver, retransmission on timeout with
//     exponential backoff and a retry cap,
//   * duplicate suppression (watermark + sparse set above it, per stream),
//   * end-to-end checksum verification (corrupted packets are treated as
//     lost and recovered by retransmission), and
//   * per-(pair, stream) in-order release when the cluster semantics keep
//     the MPI ordering guarantee (a hold-back buffer, TCP-style); under
//     relaxed "no ordering" semantics packets are released on arrival.
//
// When the retry cap is exhausted the message is surfaced as a typed
// DeliveryFailure — never a hang, crash, or silent loss.  Messages held
// behind a failed sequence number can no longer be released in order; at
// cluster quiescence they are swept into DeliveryFailure{kStranded}.
//
// All decisions are made on the (single-threaded) cluster progress path
// and all randomness lives in the Network's counter-derived streams, so a
// fixed seed gives bit-identical behavior — including every telemetry
// counter — for every ExecutionPolicy thread count.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/network.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::runtime {

struct ReliabilityConfig {
  bool enabled = false;    ///< Off: raw wire (the seed's ideal-fabric path).
  double timeout_us = 25.0;  ///< Initial retransmit timeout (RTO).
  double backoff = 2.0;      ///< RTO multiplier per retransmission.
  int max_attempts = 8;      ///< Total transmissions before giving up (>= 1).
  /// Upper bound on the backed-off RTO (must be >= timeout_us).  Without a
  /// cap, a large max_attempts lets backoff^attempts grow without bound and
  /// a single lossy pair can push its next retransmit past the end of the
  /// run — the classic unbounded-exponential-backoff bug.
  double max_timeout_us = 1e6;
};

/// Why a message was reported undeliverable.
enum class FailureKind : std::uint8_t {
  kRetriesExhausted,  ///< The sender hit the retry cap without an ack.
  kStranded,          ///< Held behind a failed sequence number at quiescence.
};

/// A message the reliability layer gave up on, reported via
/// Cluster::delivery_failures().
struct DeliveryFailure {
  FailureKind kind = FailureKind::kRetriesExhausted;
  int from = 0;
  int to = 0;
  matching::Envelope env;
  std::uint64_t payload = 0;
  std::uint64_t pair_seq = 0;
  int attempts = 0;        ///< Transmissions performed (kStranded: of the copy held).
  double first_send_us = 0.0;
  double failed_us = 0.0;
};

[[nodiscard]] std::string to_string(const DeliveryFailure& f);

/// End-to-end checksum over the fields corruption may touch.  Mixing the
/// sequence and kind in keeps a stale duplicate from masquerading as a
/// different packet.
[[nodiscard]] std::uint64_t packet_checksum(const matching::Envelope& env,
                                            std::uint64_t payload,
                                            std::uint64_t pair_seq,
                                            PacketKind kind) noexcept;

/// Per-node protocol state: the tx window of unacked sends and the rx
/// dedup/reorder state per peer.  One instance lives in each node's
/// ProgressEngine; the Cluster drives it from the progress loop.
class ReliabilityChannel {
 public:
  /// `sink` (may be null) receives the runtime.reliability.* counters and
  /// the delivery-attempts histogram; `restore_order` selects the TCP-style
  /// hold-back buffer (on for ordering-preserving cluster semantics).
  ReliabilityChannel(int node, const ReliabilityConfig& cfg, bool restore_order,
                     telemetry::Registry* sink);

  /// Wrap a user send into a sequenced, checksummed data packet and track
  /// it for ack/retransmit.  The caller injects the packet into the wire.
  [[nodiscard]] Packet make_data(int to, const matching::Envelope& env,
                                 std::uint64_t payload, std::size_t bytes,
                                 double now_us);

  /// Handle one wire arrival addressed to this node.  Accepted user
  /// messages (in release order) go to `accepted`; packets to inject in
  /// response (acks) go to `replies`.
  void on_packet(const Packet& p, double now_us,
                 std::vector<matching::Message>& accepted,
                 std::vector<Packet>& replies);

  /// Retransmit or fail every send whose deadline has passed.  Packets to
  /// re-inject go to `resend`; exhausted sends go to `failed`.
  void expire(double now_us, std::vector<Packet>& resend,
              std::vector<DeliveryFailure>& failed);

  /// Earliest retransmit deadline, or a negative value when none pending.
  [[nodiscard]] double next_deadline() const noexcept;

  /// True when no sends are awaiting acks.
  [[nodiscard]] bool idle() const noexcept { return outstanding_.empty(); }

  /// Quiescence sweep: messages still held for in-order release can never
  /// be released (their gap's sender gave up) — convert them to
  /// DeliveryFailure{kStranded} and clear the hold buffers.
  void sweep_stranded(double now_us, std::vector<DeliveryFailure>& failed);

 private:
  struct Outstanding {
    Packet pkt;               ///< As last transmitted (attempt up to date).
    double deadline = 0.0;
    double first_send_us = 0.0;
    /// Current retransmit timeout, advanced incrementally (one multiply per
    /// retransmit, clamped to cfg.max_timeout_us) instead of recomputing
    /// backoff^attempts from scratch on every expiry.
    double rto = 0.0;
  };

  /// A message parked until its pair-sequence gap fills.
  struct Held {
    matching::Message msg;
    int attempt = 1;  ///< Attempt of the copy that was accepted.
  };

  /// Receive state for one sending peer.
  struct RxState {
    std::uint64_t next_release = 0;          ///< All pair_seq below are done.
    std::set<std::uint64_t> accepted_above;  ///< Accepted >= watermark.
    /// Held for in-order release (restore_order only): pair_seq -> message.
    std::map<std::uint64_t, Held> held;
  };

  void bump(std::string_view name, std::uint64_t n = 1);
  void observe_attempts(std::uint64_t attempts);
  void accept(int src, RxState& rx, const Packet& p,
              std::vector<matching::Message>& accepted);

  int node_;
  ReliabilityConfig cfg_;
  bool restore_order_;
  telemetry::Registry* sink_;
  /// Unacked sends keyed (destination, stream, pair_seq) — ordered so
  /// expiry and quiescence sweeps iterate deterministically; with only the
  /// default stream present the iteration order is exactly the pre-stream
  /// (destination, pair_seq) order.
  std::map<std::tuple<int, matching::StreamId, std::uint64_t>, Outstanding> outstanding_;
  /// Mirror of every Outstanding's deadline, kept in step by
  /// make_data/on_packet/expire, so next_deadline() is O(1) instead of a
  /// linear scan of the tx window on every cluster tick.
  std::multiset<double> deadlines_;
  /// Per (destination, stream): independent sequence spaces per ordering
  /// domain (docs/streams.md).
  std::map<std::pair<int, matching::StreamId>, std::uint64_t> next_send_seq_;
  /// Per (sending peer, stream): independent dedup/reorder state, so a gap
  /// on one stream never parks another stream's messages.
  std::map<std::pair<int, matching::StreamId>, RxState> rx_;
};

}  // namespace simtmsg::runtime

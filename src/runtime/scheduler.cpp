#include "runtime/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace simtmsg::runtime {

std::string_view to_string(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kLegacyLockstep: return "lockstep";
    case SchedulerPolicy::kEventDriven: return "event-driven";
  }
  return "?";
}

std::string_view to_string(NodeActivity activity) noexcept {
  switch (activity) {
    case NodeActivity::kIdle: return "idle";
    case NodeActivity::kStarved: return "starved";
    case NodeActivity::kRunnable: return "runnable";
    case NodeActivity::kAwaitingRetransmit: return "awaiting retransmit";
  }
  return "?";
}

SchedulerPolicy default_scheduler_policy() {
  // Event-driven is the default (it soaked for three PRs behind the
  // byte-identity wall); the lockstep seed behaviour stays selectable via
  // SIMTMSG_SCHEDULER=lockstep or an explicit ClusterConfig::scheduler.
  const char* v = std::getenv("SIMTMSG_SCHEDULER");
  if (v == nullptr || *v == '\0') return SchedulerPolicy::kEventDriven;
  const std::string_view s(v);
  if (s == "lockstep" || s == "legacy") return SchedulerPolicy::kLegacyLockstep;
  if (s == "event" || s == "event-driven") return SchedulerPolicy::kEventDriven;
  throw std::invalid_argument(
      "SIMTMSG_SCHEDULER must be 'lockstep' or 'event' (got '" + std::string(s) +
      "')");
}

namespace {

/// The seed's cost model: every per-tick query scans all nodes through the
/// probe.  State-change notifications are no-ops — there is no state.
class LockstepScheduler final : public Scheduler {
 public:
  LockstepScheduler(int nodes, Probe probe) : nodes_(nodes), probe_(std::move(probe)) {}

  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kLegacyLockstep;
  }

  void wake(int) override {}
  void rto_touched(int) override {}
  void stepped(int, bool) override {}

  void collect_active(std::vector<int>& out) override {
    out.clear();
    for (int n = 0; n < nodes_; ++n) {
      if (probe_.runnable(n)) out.push_back(n);
    }
  }

  [[nodiscard]] double next_rto_deadline() const override {
    double next = -1.0;
    for (int n = 0; n < nodes_; ++n) {
      const double d = probe_.rto_deadline(n);
      if (d >= 0.0 && (next < 0.0 || d < next)) next = d;
    }
    return next;
  }

  void collect_due(double now_us, std::vector<int>& out) override {
    out.clear();
    for (int n = 0; n < nodes_; ++n) {
      const double d = probe_.rto_deadline(n);
      if (d >= 0.0 && d <= now_us) out.push_back(n);
    }
  }

  [[nodiscard]] bool rto_idle() const override {
    for (int n = 0; n < nodes_; ++n) {
      if (probe_.rto_deadline(n) >= 0.0) return false;
    }
    return true;
  }

 private:
  int nodes_;
  Probe probe_;
};

/// Incremental scheduler: a runnable set fed by wake()/stepped() and a
/// deadline wheel with one entry per node at that node's earliest RTO.
/// Every query is O(answer), not O(nodes).
class EventScheduler final : public Scheduler {
 public:
  EventScheduler(int nodes, Probe probe)
      : probe_(std::move(probe)), armed_(static_cast<std::size_t>(nodes), -1.0) {}

  [[nodiscard]] SchedulerPolicy policy() const noexcept override {
    return SchedulerPolicy::kEventDriven;
  }

  void wake(int node) override {
    if (probe_.runnable(node)) runnable_.insert(node);
  }

  void rto_touched(int node) override {
    const double fresh = probe_.rto_deadline(node);
    double& armed = armed_[static_cast<std::size_t>(node)];
    if (fresh == armed) return;  // Both exact copies of the channel's value.
    if (armed >= 0.0) wheel_.erase(wheel_.find({armed, node}));
    armed = fresh >= 0.0 ? fresh : -1.0;
    if (armed >= 0.0) wheel_.insert({armed, node});
  }

  void stepped(int node, bool runnable) override {
    if (runnable) {
      runnable_.insert(node);
    } else {
      runnable_.erase(node);
    }
  }

  void collect_active(std::vector<int>& out) override {
    out.assign(runnable_.begin(), runnable_.end());  // std::set: ascending.
  }

  [[nodiscard]] double next_rto_deadline() const override {
    return wheel_.empty() ? -1.0 : wheel_.begin()->first;
  }

  void collect_due(double now_us, std::vector<int>& out) override {
    out.clear();
    for (auto it = wheel_.begin(); it != wheel_.end() && it->first <= now_us; ++it) {
      out.push_back(it->second);
    }
    // One wheel entry per node, but entries are deadline-ordered; the
    // cluster expires nodes in ascending node order (the wire-sequence
    // stamping of retransmits depends on it).
    std::sort(out.begin(), out.end());
  }

  [[nodiscard]] bool rto_idle() const override { return wheel_.empty(); }

 private:
  Probe probe_;
  /// Nodes whose incoming and posted queues are both non-empty.
  std::set<int> runnable_;
  /// (deadline, node), one entry per node at its earliest RTO.  A multiset
  /// because two nodes may share a deadline (coalesced timers).
  std::multiset<std::pair<double, int>> wheel_;
  /// The deadline currently indexed for each node (-1 = none): the exact
  /// key to erase on re-arm.
  std::vector<double> armed_;
};

}  // namespace

std::unique_ptr<Scheduler> Scheduler::make(SchedulerPolicy policy, int nodes,
                                           Probe probe) {
  switch (policy) {
    case SchedulerPolicy::kLegacyLockstep:
      return std::make_unique<LockstepScheduler>(nodes, std::move(probe));
    case SchedulerPolicy::kEventDriven:
      return std::make_unique<EventScheduler>(nodes, std::move(probe));
  }
  throw std::invalid_argument("unknown SchedulerPolicy " +
                              std::to_string(static_cast<int>(policy)));
}

}  // namespace simtmsg::runtime

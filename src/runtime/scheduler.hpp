// Cluster scheduler: which nodes does a progress tick have to touch?
//
// The paper's Figure 1(b) vision is accelerators autonomously sourcing and
// sinking traffic; what caps the simulated fleet size is not matching cost
// but the runtime loop itself.  The seed runtime stepped every node's
// communication kernel on every tick and scanned every reliability channel
// for its next retransmit deadline, so a 10k-node cluster paid O(nodes)
// per tick even when three nodes were talking.  This interface splits that
// decision out of Cluster::progress():
//
//   * LockstepScheduler (SchedulerPolicy::kLegacyLockstep) keeps the
//     seed's cost model: every query is a scan over all nodes.
//   * EventScheduler (SchedulerPolicy::kEventDriven, the default) maintains
//     the answers
//     incrementally — a runnable set (nodes whose incoming-message and
//     posted-receive queues are both non-empty) fed by wake() events, and a
//     retransmit-deadline wheel (one entry per node at that node's earliest
//     RTO, generalizing the reliability channel's per-node multiset index)
//     fed by rto_touched() events — so a tick costs O(active), not O(nodes).
//
// Both policies schedule exactly the same nodes in exactly the same
// (ascending) order and expose the same deadlines, so match results,
// delivery failures, and every telemetry counter — including the
// runtime.scheduler.* instruments — are bit-identical between them.  Every
// existing cluster test therefore doubles as an equivalence oracle
// (docs/runtime.md).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

namespace simtmsg::runtime {

/// How Cluster::progress() decides which nodes to schedule each tick.
enum class SchedulerPolicy : int {
  /// Scan all nodes every tick (the seed's loop, bit-identical results).
  kLegacyLockstep = 0,
  /// Maintain the active set and RTO wheel incrementally: a tick costs
  /// O(active nodes), so quiescent nodes are never touched.
  kEventDriven = 1,
};

[[nodiscard]] std::string_view to_string(SchedulerPolicy policy) noexcept;

/// Policy a default-constructed ClusterConfig uses.  kEventDriven unless
/// the SIMTMSG_SCHEDULER environment variable says otherwise ("lockstep" /
/// "legacy" or "event" / "event-driven"; anything else throws).  The env
/// override is the equivalence wall's lever: CI re-runs the whole runtime
/// and chaos suites with SIMTMSG_SCHEDULER=lockstep, so every test that
/// does not pin a policy exercises both schedulers.
[[nodiscard]] SchedulerPolicy default_scheduler_policy();

/// What a node is doing from the scheduler's point of view — the
/// vocabulary of Cluster::wait() deadlock diagnostics.
enum class NodeActivity {
  kIdle,               ///< No pending messages, no posted receives.
  kStarved,            ///< Receives posted but no inbound messages.
  kRunnable,           ///< Messages and receives both pending (matching runs).
  kAwaitingRetransmit, ///< Unacked sends: a retransmit timer is armed.
};

[[nodiscard]] std::string_view to_string(NodeActivity activity) noexcept;

/// Scheduling decisions for one Cluster.  The cluster reports state changes
/// (wake / rto_touched / stepped); the scheduler answers the per-tick
/// queries (collect_active / collect_due / next_rto_deadline / rto_idle).
/// All node lists are ascending by node id — the deterministic order the
/// wire-sequence stamping of retransmits depends on.
class Scheduler {
 public:
  /// How the scheduler inspects a node without owning cluster state.
  struct Probe {
    /// Both the node's incoming-message and posted-receive queues are
    /// non-empty, i.e. its communication kernel has matching work.
    std::function<bool(int)> runnable;
    /// The node's earliest retransmit deadline, or a negative value when it
    /// has no unacked sends (ReliabilityChannel::next_deadline()).
    std::function<double(int)> rto_deadline;
  };

  virtual ~Scheduler() = default;

  [[nodiscard]] virtual SchedulerPolicy policy() const noexcept = 0;

  /// A queue push may have made `node` runnable (message delivered or
  /// receive posted).
  virtual void wake(int node) = 0;

  /// `node`'s reliability channel changed (send tracked, ack processed, or
  /// timers expired): its earliest RTO deadline may differ now.
  virtual void rto_touched(int node) = 0;

  /// The node stepped; `runnable` says whether it still has matching work
  /// (the ProgressEngine::step() StepResult contract).
  virtual void stepped(int node, bool runnable) = 0;

  /// Nodes to step this tick, ascending.  Clears `out` first.
  virtual void collect_active(std::vector<int>& out) = 0;

  /// Earliest retransmit deadline across the fleet, or negative when no
  /// node has unacked sends.
  [[nodiscard]] virtual double next_rto_deadline() const = 0;

  /// Nodes whose earliest RTO deadline is <= now_us, ascending.  Clears
  /// `out` first.
  virtual void collect_due(double now_us, std::vector<int>& out) = 0;

  /// True when no node has unacked sends (reliability quiescence).
  [[nodiscard]] virtual bool rto_idle() const = 0;

  [[nodiscard]] static std::unique_ptr<Scheduler> make(SchedulerPolicy policy,
                                                       int nodes, Probe probe);
};

}  // namespace simtmsg::runtime

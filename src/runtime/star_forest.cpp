#include "runtime/star_forest.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace simtmsg::runtime {
namespace {

/// Phases per operation sharing one tag epoch (fetch_and_op uses two:
/// gather then scatter).
constexpr int kPhases = 2;

/// An edge that cannot complete under kThrow is fatal for the operation;
/// on a faulted fabric, say why (the reliability layer reports every
/// message it gave up on).
[[noreturn]] void throw_incomplete(const Cluster& cluster, const char* op, int edge) {
  std::string why = std::string(op) + " incomplete at edge " + std::to_string(edge);
  const auto& failures = cluster.delivery_failures();
  if (!failures.empty()) {
    why += ": " + std::to_string(failures.size()) +
           " delivery failure(s), first: " + to_string(failures.front());
  }
  throw std::runtime_error(why);
}

}  // namespace

StarForest::StarForest(Cluster& cluster, std::vector<SfEdge> edges,
                       StarForestConfig cfg)
    : cluster_(&cluster), edges_(std::move(edges)), cfg_(cfg) {
  const int p = cluster_->nodes();
  occurrence_.reserve(edges_.size());
  std::map<std::pair<int, int>, int> multiplicity;
  std::map<int, int> degree_of;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const SfEdge& e = edges_[i];
    if (e.root < 0 || e.root >= p || e.leaf < 0 || e.leaf >= p) {
      throw std::invalid_argument(
          "StarForest edge " + std::to_string(i) + " endpoint out of range: root " +
          std::to_string(e.root) + ", leaf " + std::to_string(e.leaf) + " (nodes " +
          std::to_string(p) + ")");
    }
    int& occ = multiplicity[{e.root, e.leaf}];
    if (occ >= kMaxPairMultiplicity) {
      throw std::invalid_argument(
          "StarForest edge " + std::to_string(i) + " exceeds " +
          std::to_string(kMaxPairMultiplicity) + " parallel edges for node pair (" +
          std::to_string(e.root) + ", " + std::to_string(e.leaf) + ")");
    }
    occurrence_.push_back(occ++);
    ++degree_of[e.root];
  }

  auto& telemetry = cluster_->layer_telemetry();
  telemetry.counter("runtime.sf.forests").add(1);
  telemetry.counter("runtime.sf.edges_built").add(edges_.size());
  for (const auto& [root, degree] : degree_of) {
    telemetry.histogram("runtime.sf.root_degree").record(
        static_cast<std::uint64_t>(degree));
  }
}

int StarForest::degree(int node) const {
  int d = 0;
  for (const SfEdge& e : edges_) d += e.root == node ? 1 : 0;
  return d;
}

int StarForest::leaf_degree(int node) const {
  int d = 0;
  for (const SfEdge& e : edges_) d += e.leaf == node ? 1 : 0;
  return d;
}

matching::Tag StarForest::tag(int phase, int occurrence) const {
  // Two alternating epochs suffice: every operation quiesces before it
  // returns, and incomplete edges are cancelled, so no receive or message
  // from epoch e can survive into epoch e + 2.
  return static_cast<matching::Tag>(
      ((epoch_ % 2) * kPhases + phase) * kMaxPairMultiplicity + occurrence);
}

void StarForest::next_epoch() { ++epoch_; }

void StarForest::send(int from, int to, int phase, int occurrence,
                      std::uint64_t payload) {
  cluster_->send(from, to, tag(phase, occurrence), payload, cfg_.comm);
  ++messages_;
  count("runtime.sf.messages");
}

RecvHandle StarForest::irecv(int at, int src, int phase, int occurrence) {
  return cluster_->irecv(at, src, tag(phase, occurrence), cfg_.comm);
}

void StarForest::count(const char* name, std::uint64_t n) const {
  cluster_->layer_telemetry().counter(name).add(n);
}

std::vector<char> StarForest::complete(const char* op,
                                       const std::vector<PendingEdge>& pending,
                                       std::vector<std::uint64_t>& out) {
  cluster_->run_until_quiescent();
  std::vector<char> delivered(edges_.size(), 0);
  for (const PendingEdge& p : pending) {
    if (const auto res = cluster_->result(p.handle)) {
      out[static_cast<std::size_t>(p.edge)] = res->payload;
      delivered[static_cast<std::size_t>(p.edge)] = 1;
      continue;
    }
    if (cfg_.on_incomplete == StarForestConfig::OnIncomplete::kThrow) {
      throw_incomplete(*cluster_, op, p.edge);
    }
    // Partial mode: record the edge and retire its posted receive, so the
    // next epoch's identically-tagged traffic cannot be captured by a
    // stale post.
    failed_edges_.push_back(p.edge);
    (void)cluster_->cancel(p.handle);
    count("runtime.sf.incomplete_edges");
  }
  return delivered;
}

void StarForest::bcast(ValueFn root_value, StoreFn leaf_store) {
  count("runtime.sf.bcasts");
  failed_edges_.clear();
  std::vector<std::uint64_t> values(edges_.size(), 0);
  std::vector<char> local(edges_.size(), 0);

  // Leaves pre-post every remote edge, then roots fire (the LULESH
  // discipline: receives first, one quiescence drive after).
  std::vector<PendingEdge> pending;
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.root == e.leaf) continue;
    pending.push_back({irecv(e.leaf, e.root, 0, occurrence_[static_cast<std::size_t>(i)]), i});
  }
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    const std::uint64_t v = root_value(e.root, e.root_slot);
    if (e.root == e.leaf) {
      // Local edge: data moves without touching the wire.
      values[static_cast<std::size_t>(i)] = v;
      local[static_cast<std::size_t>(i)] = 1;
      count("runtime.sf.local_hops");
      continue;
    }
    send(e.root, e.leaf, 0, occurrence_[static_cast<std::size_t>(i)], v);
  }
  const std::vector<char> delivered = complete("StarForest::bcast", pending, values);

  for (int i = 0; i < nedges(); ++i) {
    if (delivered[static_cast<std::size_t>(i)] == 0 && local[static_cast<std::size_t>(i)] == 0) continue;
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    leaf_store(e.leaf, e.leaf_slot, values[static_cast<std::size_t>(i)]);
  }
  next_epoch();
}

void StarForest::reduce(ValueFn leaf_value, ValueFn root_value, StoreFn root_store,
                        const Op& op) {
  count("runtime.sf.reduces");
  failed_edges_.clear();
  std::vector<std::uint64_t> values(edges_.size(), 0);
  std::vector<char> local(edges_.size(), 0);

  std::vector<PendingEdge> pending;
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.root == e.leaf) continue;
    pending.push_back({irecv(e.root, e.leaf, 0, occurrence_[static_cast<std::size_t>(i)]), i});
  }
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    const std::uint64_t v = leaf_value(e.leaf, e.leaf_slot);
    if (e.root == e.leaf) {
      values[static_cast<std::size_t>(i)] = v;
      local[static_cast<std::size_t>(i)] = 1;
      count("runtime.sf.local_hops");
      continue;
    }
    send(e.leaf, e.root, 0, occurrence_[static_cast<std::size_t>(i)], v);
  }
  const std::vector<char> delivered = complete("StarForest::reduce", pending, values);

  // Apply contributions in edge order through the accessors, so several
  // edges landing in one root slot chain deterministically.
  for (int i = 0; i < nedges(); ++i) {
    if (delivered[static_cast<std::size_t>(i)] == 0 && local[static_cast<std::size_t>(i)] == 0) continue;
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    root_store(e.root, e.root_slot,
               op(root_value(e.root, e.root_slot), values[static_cast<std::size_t>(i)]));
  }
  next_epoch();
}

void StarForest::fetch_and_op(ValueFn leaf_operand, ValueFn root_value,
                              StoreFn root_store, StoreFn leaf_store, const Op& op) {
  count("runtime.sf.fetch_ops");
  failed_edges_.clear();
  std::vector<std::uint64_t> operands(edges_.size(), 0);
  std::vector<char> local(edges_.size(), 0);

  // Phase 0: gather operands to the roots.
  std::vector<PendingEdge> pending;
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.root == e.leaf) continue;
    pending.push_back({irecv(e.root, e.leaf, 0, occurrence_[static_cast<std::size_t>(i)]), i});
  }
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    const std::uint64_t v = leaf_operand(e.leaf, e.leaf_slot);
    if (e.root == e.leaf) {
      operands[static_cast<std::size_t>(i)] = v;
      local[static_cast<std::size_t>(i)] = 1;
      count("runtime.sf.local_hops");
      continue;
    }
    send(e.leaf, e.root, 0, occurrence_[static_cast<std::size_t>(i)], v);
  }
  const std::vector<char> arrived =
      complete("StarForest::fetch_and_op (gather)", pending, operands);

  // Apply in edge order; each edge's fetched value is the root slot
  // *before* its own operand — the one-sided fetch-and-op contract.
  std::vector<std::uint64_t> fetched(edges_.size(), 0);
  for (int i = 0; i < nedges(); ++i) {
    if (arrived[static_cast<std::size_t>(i)] == 0 && local[static_cast<std::size_t>(i)] == 0) continue;
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    fetched[static_cast<std::size_t>(i)] = root_value(e.root, e.root_slot);
    root_store(e.root, e.root_slot,
               op(fetched[static_cast<std::size_t>(i)], operands[static_cast<std::size_t>(i)]));
  }

  // Phase 1: scatter each fetched value back to its leaf.  An operand that
  // arrived is applied even when this reply cannot be delivered — the
  // atomic happened; only the fetch was lost (recorded as a failure).
  pending.clear();
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.root == e.leaf || arrived[static_cast<std::size_t>(i)] == 0) continue;
    pending.push_back({irecv(e.leaf, e.root, 1, occurrence_[static_cast<std::size_t>(i)]), i});
  }
  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (e.root == e.leaf || arrived[static_cast<std::size_t>(i)] == 0) continue;
    send(e.root, e.leaf, 1, occurrence_[static_cast<std::size_t>(i)],
         fetched[static_cast<std::size_t>(i)]);
  }
  std::vector<std::uint64_t> replies(edges_.size(), 0);
  const std::vector<char> delivered =
      complete("StarForest::fetch_and_op (scatter)", pending, replies);

  for (int i = 0; i < nedges(); ++i) {
    const SfEdge& e = edges_[static_cast<std::size_t>(i)];
    if (local[static_cast<std::size_t>(i)] != 0) {
      leaf_store(e.leaf, e.leaf_slot, fetched[static_cast<std::size_t>(i)]);
    } else if (delivered[static_cast<std::size_t>(i)] != 0) {
      leaf_store(e.leaf, e.leaf_slot, replies[static_cast<std::size_t>(i)]);
    }
  }
  next_epoch();
}

}  // namespace simtmsg::runtime

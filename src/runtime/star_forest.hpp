// StarForest: sparse-neighborhood collectives on a star-forest graph
// (the PetscSF model; docs/collectives.md).
//
// The paper's Table I shows real MPI applications talk to only 4-79 peer
// ranks out of thousands — dense collectives (runtime/collectives.hpp)
// span the whole communicator, which is the wrong shape for halo
// exchange, AMR, and unstructured-mesh traffic.  A StarForest names the
// sparse communication graph once — directed edges from (root node, root
// slot) to (leaf node, leaf slot), where slots are caller-defined data
// indices — and then moves data along exactly those edges:
//
//   bcast         root slot values  -> every attached leaf slot,
//   reduce        leaf slot values  -> combined into the root slot
//                 (pluggable op, applied in edge order),
//   fetch_and_op  leaf operands     -> read-modify-write at the root slot;
//                 each leaf gets the root value from *before* its own
//                 operand was applied (the one-sided atomic).
//
// Everything rides the existing point-to-point path through Cluster:
// the per-node matching engines (every Table II semantics row and
// matcher algorithm), the reliability channel, and both scheduler
// policies see StarForest traffic as ordinary tagged sends — no new
// wire primitives.  Each operation advances a tag epoch, so back-to-back
// ops compose with unordered (hash) matching semantics exactly like the
// dense collectives.
//
// Partial failure (the fault-model composition): with
// OnIncomplete::kPartial an edge whose message the fabric gave up on is
// recorded in last_failures() while every other edge — in particular,
// every disjoint neighborhood — completes with the fault-free values.
// The default kThrow mirrors the Collectives contract: any incomplete
// edge fails the whole operation with the delivery failures attached.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "runtime/endpoint.hpp"
#include "util/function_ref.hpp"

namespace simtmsg::runtime {

/// One directed edge of the forest.  Slots are opaque caller-defined data
/// indices (array offsets, cell ids, ...): both endpoints know the edge
/// list, so slots never travel on the wire — only the 64-bit value does.
struct SfEdge {
  int root = 0;                 ///< Node owning the authoritative value.
  std::int32_t root_slot = 0;   ///< Data index on the root node.
  int leaf = 0;                 ///< Node mirroring / contributing.
  std::int32_t leaf_slot = 0;   ///< Data index on the leaf node.

  friend bool operator==(const SfEdge&, const SfEdge&) = default;
};

struct StarForestConfig {
  /// Dedicated communicator; must not collide with application
  /// communicators or the dense Collectives comm (default 0x7F).
  matching::CommId comm = 0x7E;

  enum class OnIncomplete {
    kThrow,    ///< Any edge that cannot complete fails the whole op.
    kPartial,  ///< Complete what the fabric delivered; failed edges go to
               ///< last_failures() and their target slots stay untouched.
  };
  OnIncomplete on_incomplete = OnIncomplete::kThrow;
};

class StarForest {
 public:
  /// Combiner for reduce / fetch_and_op, applied in edge order (so
  /// non-commutative ops are deterministic).
  using Op = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;
  /// Read a caller-owned data slot.  Only invoked during the call that
  /// received it (never stored), hence the non-owning reference type.
  using ValueFn = util::FunctionRef<std::uint64_t(int node, std::int32_t slot)>;
  /// Write a caller-owned data slot.
  using StoreFn = util::FunctionRef<void(int node, std::int32_t slot, std::uint64_t value)>;

  /// Validates the edge list against the cluster: every endpoint in
  /// [0, nodes), and at most kMaxPairMultiplicity edges per (root, leaf)
  /// node pair (parallel edges are disambiguated by tag).  Throws
  /// std::invalid_argument naming the offending edge otherwise.
  StarForest(Cluster& cluster, std::vector<SfEdge> edges, StarForestConfig cfg = {});

  /// Parallel (root, leaf) edges a single forest can carry — the tag space
  /// reserved per node pair and phase.
  static constexpr int kMaxPairMultiplicity = 4096;

  [[nodiscard]] const std::vector<SfEdge>& edges() const noexcept { return edges_; }
  [[nodiscard]] int nedges() const noexcept { return static_cast<int>(edges_.size()); }
  [[nodiscard]] matching::CommId comm() const noexcept { return cfg_.comm; }
  /// Out-degree of `node` as a root (number of edges rooted there).
  [[nodiscard]] int degree(int node) const;
  /// In-degree of `node` as a leaf.
  [[nodiscard]] int leaf_degree(int node) const;

  /// Root -> leaves: every edge's leaf slot receives the root slot's value
  /// via leaf_store(leaf, leaf_slot, value).  Local (root == leaf) edges
  /// never touch the wire.
  void bcast(ValueFn root_value, StoreFn leaf_store);

  /// Leaves -> roots: each edge contributes leaf_value(leaf, leaf_slot)
  /// into its root slot, applied in edge order as
  ///   root_store(root, root_slot, op(current root value, contribution)).
  void reduce(ValueFn leaf_value, ValueFn root_value, StoreFn root_store, const Op& op);

  /// One-sided atomic read-modify-write at the root slot.  Phase 1
  /// gathers each edge's operand to its root; the root applies operands
  /// in edge order, and each edge's *fetched* value (the root slot
  /// immediately before that edge's operand) travels back in phase 2 as
  /// leaf_store(leaf, leaf_slot, fetched).  Operands that arrived are
  /// applied to the root even when the reply cannot be delivered (the
  /// atomic happened; only the fetch was lost) — such edges are recorded
  /// as failures.
  void fetch_and_op(ValueFn leaf_operand, ValueFn root_value, StoreFn root_store,
                    StoreFn leaf_store, const Op& op);

  /// Edge indices (into edges()) that did not complete during the most
  /// recent operation, in edge order.  Always empty under kThrow (the op
  /// throws instead) and on a healthy fabric.
  [[nodiscard]] std::span<const int> last_failures() const noexcept {
    return failed_edges_;
  }

  /// Wire messages injected by this forest so far (complexity checks);
  /// local edges move data without messages.
  [[nodiscard]] std::uint64_t messages_used() const noexcept { return messages_; }

 private:
  struct PendingEdge {
    RecvHandle handle;
    int edge = 0;  ///< Index into edges_.
  };

  /// Fresh per-(epoch, phase, pair-occurrence) tag; epochs alternate
  /// because everything quiesces between operations.
  [[nodiscard]] matching::Tag tag(int phase, int occurrence) const;
  void next_epoch();
  void send(int from, int to, int phase, int occurrence, std::uint64_t payload);
  [[nodiscard]] RecvHandle irecv(int at, int src, int phase, int occurrence);
  /// Drive the cluster and collect each pending edge's payload into
  /// `out` (indexed by edge); missing edges go to failed_edges_ (kPartial)
  /// or abort the op (kThrow).  Returns a per-edge delivered mask.
  std::vector<char> complete(const char* op, const std::vector<PendingEdge>& pending,
                             std::vector<std::uint64_t>& out);
  void count(const char* name, std::uint64_t n = 1) const;

  Cluster* cluster_;
  std::vector<SfEdge> edges_;
  StarForestConfig cfg_;
  std::vector<int> occurrence_;  ///< Per-edge index among same (root, leaf) pair.
  std::vector<int> failed_edges_;
  int epoch_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace simtmsg::runtime

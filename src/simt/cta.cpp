#include "simt/cta.hpp"

#include <stdexcept>

namespace simtmsg::simt {

CtaContext::CtaContext(int cta_id, int num_warps, std::size_t shared_mem_limit)
    : cta_id_(cta_id), num_warps_(num_warps), shared_limit_(shared_mem_limit) {
  if (num_warps < 1 || num_warps > 32) {
    throw std::invalid_argument("CTA must have 1..32 warps");
  }
  warps_.reserve(static_cast<std::size_t>(num_warps));
  for (int w = 0; w < num_warps; ++w) warps_.emplace_back(w, counters_);
}

void CtaContext::reset(int cta_id, int num_warps, std::size_t shared_mem_limit) {
  if (num_warps < 1 || num_warps > 32) {
    throw std::invalid_argument("CTA must have 1..32 warps");
  }
  cta_id_ = cta_id;
  num_warps_ = num_warps;
  shared_limit_ = shared_mem_limit;
  shared_used_ = 0;
  next_arena_ = 0;
  counters_ = EventCounters{};
  for (int w = static_cast<int>(warps_.size()); w < num_warps; ++w) {
    warps_.emplace_back(w, counters_);
  }
  for (auto& w : warps_) w.set_active(kFullMask);
}

WarpContext& CtaContext::warp(int w) {
  if (w < 0 || w >= num_warps_) throw std::out_of_range("warp id out of range");
  return warps_[static_cast<std::size_t>(w)];
}

void CtaContext::for_each_warp(const std::function<void(WarpContext&)>& fn) {
  for (int w = 0; w < num_warps_; ++w) {
    warps_[static_cast<std::size_t>(w)].set_active(kFullMask);
    fn(warps_[static_cast<std::size_t>(w)]);
  }
}

}  // namespace simtmsg::simt

// CtaContext: one cooperative thread array (thread block).
//
// The simulator executes warp-synchronous kernels: a kernel is expressed as
// a sequence of per-warp phases separated by CTA barriers.  Because the
// matching kernels (like most HPC GPU kernels) only exchange data across
// warps through shared/global memory at barrier boundaries, executing the
// warps of a phase sequentially on the host is functionally equivalent to
// the concurrent hardware execution; the TimingModel accounts for the
// concurrency when converting events to cycles.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "simt/event_counters.hpp"
#include "simt/warp.hpp"

namespace simtmsg::simt {

class CtaContext {
 public:
  /// A CTA with `num_warps` warps (1..32) and a shared-memory budget.
  CtaContext(int cta_id, int num_warps, std::size_t shared_mem_limit = 48 * 1024);

  [[nodiscard]] int cta_id() const noexcept { return cta_id_; }
  [[nodiscard]] int num_warps() const noexcept { return num_warps_; }
  [[nodiscard]] int num_threads() const noexcept { return num_warps_ * kWarpSize; }

  /// Access warp `w`'s context.  All warps share the CTA's counters.
  [[nodiscard]] WarpContext& warp(int w);

  /// Run `fn(warp)` for every warp of the CTA (one kernel phase).
  void for_each_warp(const std::function<void(WarpContext&)>& fn);

  /// CTA-wide barrier (CUDA __syncthreads); counted for the cost model.
  void barrier() noexcept { counters_.cta_barriers += 1; }

  /// Allocate `n` elements of CTA shared memory; throws if the kernel
  /// exceeds the device's shared-memory budget (this is what limits
  /// occupancy — "due to the SM's limited resources the execution of
  /// multiple CTAs is serialized").
  template <typename T>
  [[nodiscard]] std::span<T> alloc_shared(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (shared_used_ + bytes > shared_limit_) {
      throw std::runtime_error("CTA shared memory budget exceeded");
    }
    shared_used_ += bytes;
    auto storage = std::make_unique<std::vector<std::byte>>(bytes);
    T* base = reinterpret_cast<T*>(storage->data());
    for (std::size_t i = 0; i < n; ++i) new (base + i) T{};
    shared_arenas_.push_back(std::move(storage));
    return {base, n};
  }

  [[nodiscard]] std::size_t shared_bytes_used() const noexcept { return shared_used_; }

  [[nodiscard]] const EventCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] EventCounters& counters() noexcept { return counters_; }

 private:
  int cta_id_;
  int num_warps_;
  std::size_t shared_limit_;
  std::size_t shared_used_ = 0;
  EventCounters counters_;
  std::vector<WarpContext> warps_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> shared_arenas_;
};

}  // namespace simtmsg::simt

// CtaContext: one cooperative thread array (thread block).
//
// The simulator executes warp-synchronous kernels: a kernel is expressed as
// a sequence of per-warp phases separated by CTA barriers.  Because the
// matching kernels (like most HPC GPU kernels) only exchange data across
// warps through shared/global memory at barrier boundaries, executing the
// warps of a phase sequentially on the host is functionally equivalent to
// the concurrent hardware execution; the TimingModel accounts for the
// concurrency when converting events to cycles.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "simt/event_counters.hpp"
#include "simt/warp.hpp"

namespace simtmsg::simt {

class CtaContext {
 public:
  /// A CTA with `num_warps` warps (1..32) and a shared-memory budget.
  CtaContext(int cta_id, int num_warps, std::size_t shared_mem_limit = 48 * 1024);

  // The warps hold a pointer to this CTA's counters, so the object must
  // stay put.  Reuse across launches goes through reset(), not moves.
  CtaContext(const CtaContext&) = delete;
  CtaContext& operator=(const CtaContext&) = delete;

  /// Re-arm this CTA for a new launch without releasing its storage: warp
  /// contexts, the warp vector, and the shared-memory arenas all keep their
  /// capacity, so a CTA recycled with the same shape allocates nothing.
  void reset(int cta_id, int num_warps, std::size_t shared_mem_limit = 48 * 1024);

  [[nodiscard]] int cta_id() const noexcept { return cta_id_; }
  [[nodiscard]] int num_warps() const noexcept { return num_warps_; }
  [[nodiscard]] int num_threads() const noexcept { return num_warps_ * kWarpSize; }

  /// Access warp `w`'s context.  All warps share the CTA's counters.
  [[nodiscard]] WarpContext& warp(int w);

  /// Run `fn(warp)` for every warp of the CTA (one kernel phase).
  void for_each_warp(const std::function<void(WarpContext&)>& fn);

  /// CTA-wide barrier (CUDA __syncthreads); counted for the cost model.
  void barrier() noexcept { counters_.cta_barriers += 1; }

  /// Allocate `n` elements of CTA shared memory; throws if the kernel
  /// exceeds the device's shared-memory budget (this is what limits
  /// occupancy — "due to the SM's limited resources the execution of
  /// multiple CTAs is serialized").
  template <typename T>
  [[nodiscard]] std::span<T> alloc_shared(std::size_t n) {
    // Arenas are recycled by reset() without running destructors; the
    // zero-initializing placement-new below is the only (re)initialization.
    static_assert(std::is_trivially_destructible_v<T>,
                  "shared memory holds trivially destructible types only");
    const std::size_t bytes = n * sizeof(T);
    if (shared_used_ + bytes > shared_limit_) {
      throw std::runtime_error("CTA shared memory budget exceeded");
    }
    shared_used_ += bytes;
    if (next_arena_ == shared_arenas_.size()) {
      shared_arenas_.push_back(std::make_unique<std::vector<std::byte>>());
    }
    std::vector<std::byte>& storage = *shared_arenas_[next_arena_++];
    if (storage.size() < bytes) storage.resize(bytes);
    T* base = reinterpret_cast<T*>(storage.data());
    for (std::size_t i = 0; i < n; ++i) new (base + i) T{};
    return {base, n};
  }

  [[nodiscard]] std::size_t shared_bytes_used() const noexcept { return shared_used_; }

  [[nodiscard]] const EventCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] EventCounters& counters() noexcept { return counters_; }

 private:
  int cta_id_;
  int num_warps_;
  std::size_t shared_limit_;
  std::size_t shared_used_ = 0;
  std::size_t next_arena_ = 0;  ///< Next arena slot alloc_shared hands out.
  EventCounters counters_;
  /// May hold more warps than num_warps_ after a narrowing reset();
  /// num_warps_ bounds every access.
  std::vector<WarpContext> warps_;
  std::vector<std::unique_ptr<std::vector<std::byte>>> shared_arenas_;
};

}  // namespace simtmsg::simt

#include "simt/device_spec.hpp"

#include <array>

namespace simtmsg::simt {
namespace {

// Calibration notes
// -----------------
// clock_ghz: published boost clocks (K80 875 MHz per GPU, M40 1114 MHz,
// GTX1080 1733 MHz).  The paper's Figure 4 rates (3 / 3.5 / 6 M matches/s)
// track these clocks almost exactly and the paper attributes generation
// differences to clock alone for the latency-bound matrix matcher
// (Section VII-C), so gmem_latency and max_outstanding are generation-
// independent and clock carries the Figure 4 ratios.
//
// gmem_cost / atomic_cost: the hash matcher is bound by scattered memory
// transactions and atomics.  The paper reports 110 M matches/s on Kepler vs
// ~500 M on Pascal at 1024 elements — a 3.3x gain, i.e. ~1.65x beyond the
// clock ratio — attributed to Pascal's memory system.  Kepler's atomic and
// scattered-transaction costs are set correspondingly higher.
//
// alu_cpi: Maxwell carries a small issue-efficiency penalty so that the
// clock-driven estimate lands on the reported 3.5 M rather than 3.9 M.
constexpr std::array<DeviceSpec, 3> kDevices = {{
    {
        .generation = Generation::kKepler,
        .name = "Tesla K80",
        .arch = "Kepler",
        .clock_ghz = 0.875,
        .sm_count = 13,
        .max_resident_warps = 64,
        .shared_mem_per_sm = 48 * 1024,
        .issue_width = 4.0,
        .alu_cpi = 1.0,
        .smem_cost = 1.0,
        .gmem_cost = 0.85,
        .gmem_latency = 370.0,
        .atomic_cost = 0.9,
        .mlp_per_warp = 1.5,
        .max_outstanding = 128.0,
    },
    {
        .generation = Generation::kMaxwell,
        .name = "Tesla M40",
        .arch = "Maxwell",
        .clock_ghz = 1.114,
        .sm_count = 24,
        .max_resident_warps = 64,
        .shared_mem_per_sm = 96 * 1024,
        .issue_width = 4.0,
        .alu_cpi = 1.09,
        .smem_cost = 1.0,
        .gmem_cost = 0.7,
        .gmem_latency = 370.0,
        .atomic_cost = 0.14,
        .mlp_per_warp = 1.5,
        .max_outstanding = 192.0,
    },
    {
        .generation = Generation::kPascal,
        .name = "GTX 1080",
        .arch = "Pascal",
        .clock_ghz = 1.733,
        .sm_count = 20,
        .max_resident_warps = 64,
        .shared_mem_per_sm = 96 * 1024,
        .issue_width = 4.0,
        .alu_cpi = 1.0,
        .smem_cost = 1.0,
        .gmem_cost = 0.32,
        .gmem_latency = 370.0,
        .atomic_cost = 0.14,
        .mlp_per_warp = 1.5,
        .max_outstanding = 256.0,
    },
}};

}  // namespace

const DeviceSpec& device(Generation gen) noexcept {
  return kDevices[static_cast<std::size_t>(gen)];
}

std::span<const DeviceSpec> all_devices() noexcept { return kDevices; }

}  // namespace simtmsg::simt

// Device descriptors for the three GPU generations the paper evaluates
// (Section II-C, footnotes 1-3) plus the derived timing parameters of the
// simulator's cost model.
//
// The paper attributes cross-generation differences almost entirely to clock
// rate ("Newer GPU generations show better performance, but only due to
// higher clock frequencies", Section VII-C), with one exception: the Pascal
// part shows a super-clock 3.3x gain on the memory-bound hash matcher,
// reflecting its improved memory system.  The cost-model parameters below
// encode exactly that: published clocks, equal issue widths, and a lower
// global-memory cost for Pascal.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace simtmsg::simt {

enum class Generation { kKepler, kMaxwell, kPascal };

struct DeviceSpec {
  Generation generation{};
  std::string_view name;   ///< e.g. "Tesla K80".
  std::string_view arch;   ///< e.g. "Kepler".

  // Published hardware facts.
  double clock_ghz = 1.0;          ///< Boost clock of the evaluated part.
  int sm_count = 1;                ///< Informational; experiments use one SM.
  int warp_size = 32;
  int max_warps_per_cta = 32;      ///< "all NVIDIA GPUs only support 32 warps per CTA".
  int max_resident_warps = 64;     ///< Per SM.
  int max_resident_ctas = 16;      ///< "A single SM is able to schedule warps from up to 16 CTAs".
  std::size_t shared_mem_per_sm = 48 * 1024;

  // Cost-model calibration (cycles / event); see simt/timing_model.hpp.
  double issue_width = 4.0;        ///< Warp instructions issued per cycle per SM.
  double alu_cpi = 1.0;            ///< Cycles consumed per issued warp instruction.
  double smem_cost = 1.0;          ///< Throughput cycles per shared-memory transaction.
  double gmem_cost = 1.2;          ///< Throughput cycles per 128B global transaction.
  double gmem_latency = 400.0;     ///< Round-trip latency of a global request, cycles.
  double atomic_cost = 1.0;        ///< Throughput cycles per global atomic.
  double mlp_per_warp = 1.5;       ///< Outstanding global requests one warp sustains.
  double max_outstanding = 256.0;  ///< Requests the memory system overlaps SM-wide.
};

/// Descriptor for one generation (Table II / figures reference these parts).
[[nodiscard]] const DeviceSpec& device(Generation gen) noexcept;

/// Kepler K80, Maxwell M40, Pascal GTX1080 — the paper's evaluation set.
[[nodiscard]] std::span<const DeviceSpec> all_devices() noexcept;

/// Shorthand accessors.
[[nodiscard]] inline const DeviceSpec& kepler_k80() noexcept { return device(Generation::kKepler); }
[[nodiscard]] inline const DeviceSpec& maxwell_m40() noexcept { return device(Generation::kMaxwell); }
[[nodiscard]] inline const DeviceSpec& pascal_gtx1080() noexcept { return device(Generation::kPascal); }

}  // namespace simtmsg::simt

#include "simt/event_counters.hpp"

namespace simtmsg::simt {

EventCounters& EventCounters::operator+=(const EventCounters& o) noexcept {
  alu_instructions += o.alu_instructions;
  ballot_instructions += o.ballot_instructions;
  shuffle_instructions += o.shuffle_instructions;
  branch_instructions += o.branch_instructions;
  divergent_branches += o.divergent_branches;
  shared_transactions += o.shared_transactions;
  global_transactions += o.global_transactions;
  global_load_requests += o.global_load_requests;
  global_store_requests += o.global_store_requests;
  atomic_operations += o.atomic_operations;
  stall_cycles += o.stall_cycles;
  warp_syncs += o.warp_syncs;
  cta_barriers += o.cta_barriers;
  return *this;
}

EventCounters EventCounters::operator+(const EventCounters& o) const noexcept {
  EventCounters r = *this;
  r += o;
  return r;
}

std::uint64_t EventCounters::issued_instructions() const noexcept {
  return alu_instructions + ballot_instructions + shuffle_instructions +
         branch_instructions + warp_syncs;
}

}  // namespace simtmsg::simt

// Event counters accumulated while a kernel executes on the functional SIMT
// engine.  The TimingModel turns these into cycle estimates; they are also
// useful on their own for reasoning about algorithm structure (e.g. how the
// scan phase's instruction count grows with the window size).
#pragma once

#include <cstdint>

namespace simtmsg::simt {

struct EventCounters {
  // Warp-granularity instruction issue events (one event = one instruction
  // issued for a whole warp, regardless of how many lanes are active).
  std::uint64_t alu_instructions = 0;      ///< Integer/compare/bit ops.
  std::uint64_t ballot_instructions = 0;   ///< Warp votes (ballot/any/all).
  std::uint64_t shuffle_instructions = 0;  ///< Intra-warp data exchange.
  std::uint64_t branch_instructions = 0;   ///< Control flow decisions.
  std::uint64_t divergent_branches = 0;    ///< Branches splitting the warp.

  // Memory system events.
  std::uint64_t shared_transactions = 0;   ///< Shared-memory accesses (bank-conflict-free groups).
  std::uint64_t global_transactions = 0;   ///< 128-byte global segments touched.
  std::uint64_t global_load_requests = 0;  ///< Warp-level loads (incur round-trip latency).
  std::uint64_t global_store_requests = 0; ///< Warp-level stores (write-buffered, throughput only).
  std::uint64_t atomic_operations = 0;     ///< Global atomics (hash-table inserts).

  // Cycles of unhideable serialized latency annotated by kernels for
  // dependent chains a single warp cannot overlap (e.g. the sequential
  // reduce's per-column mask dependency).
  std::uint64_t stall_cycles = 0;

  // Synchronization events.
  std::uint64_t warp_syncs = 0;
  std::uint64_t cta_barriers = 0;

  EventCounters& operator+=(const EventCounters& o) noexcept;
  [[nodiscard]] EventCounters operator+(const EventCounters& o) const noexcept;

  /// Total instructions issued (everything the SM front end must dispatch).
  [[nodiscard]] std::uint64_t issued_instructions() const noexcept;

  void reset() noexcept { *this = EventCounters{}; }
};

}  // namespace simtmsg::simt

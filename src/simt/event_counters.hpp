// Event counters accumulated while a kernel executes on the functional SIMT
// engine.  The TimingModel turns these into cycle estimates; they are also
// useful on their own for reasoning about algorithm structure (e.g. how the
// scan phase's instruction count grows with the window size).
#pragma once

#include <cstdint>

namespace simtmsg::simt {

struct EventCounters {
  // Warp-granularity instruction issue events (one event = one instruction
  // issued for a whole warp, regardless of how many lanes are active).
  std::uint64_t alu_instructions = 0;      ///< Integer/compare/bit ops.
  std::uint64_t ballot_instructions = 0;   ///< Warp votes (ballot/any/all).
  std::uint64_t shuffle_instructions = 0;  ///< Intra-warp data exchange.
  std::uint64_t branch_instructions = 0;   ///< Control flow decisions.
  std::uint64_t divergent_branches = 0;    ///< Branches splitting the warp.

  // Memory system events.
  std::uint64_t shared_transactions = 0;   ///< Shared-memory accesses (bank-conflict-free groups).
  std::uint64_t global_transactions = 0;   ///< 128-byte global segments touched.
  std::uint64_t global_load_requests = 0;  ///< Warp-level loads (incur round-trip latency).
  std::uint64_t global_store_requests = 0; ///< Warp-level stores (write-buffered, throughput only).
  std::uint64_t atomic_operations = 0;     ///< Global atomics (hash-table inserts).

  // Cycles of unhideable serialized latency annotated by kernels for
  // dependent chains a single warp cannot overlap (e.g. the sequential
  // reduce's per-column mask dependency).
  std::uint64_t stall_cycles = 0;

  // Synchronization events.
  std::uint64_t warp_syncs = 0;
  std::uint64_t cta_barriers = 0;

  // Header-only so layers below simt (telemetry) can aggregate counters
  // without linking against the simt library.
  EventCounters& operator+=(const EventCounters& o) noexcept {
    alu_instructions += o.alu_instructions;
    ballot_instructions += o.ballot_instructions;
    shuffle_instructions += o.shuffle_instructions;
    branch_instructions += o.branch_instructions;
    divergent_branches += o.divergent_branches;
    shared_transactions += o.shared_transactions;
    global_transactions += o.global_transactions;
    global_load_requests += o.global_load_requests;
    global_store_requests += o.global_store_requests;
    atomic_operations += o.atomic_operations;
    stall_cycles += o.stall_cycles;
    warp_syncs += o.warp_syncs;
    cta_barriers += o.cta_barriers;
    return *this;
  }

  [[nodiscard]] EventCounters operator+(const EventCounters& o) const noexcept {
    EventCounters r = *this;
    r += o;
    return r;
  }

  /// Total instructions issued (everything the SM front end must dispatch).
  [[nodiscard]] std::uint64_t issued_instructions() const noexcept {
    return alu_instructions + ballot_instructions + shuffle_instructions +
           branch_instructions + warp_syncs;
  }

  void reset() noexcept { *this = EventCounters{}; }
};

}  // namespace simtmsg::simt

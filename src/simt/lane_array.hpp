// A LaneArray<T> is one SIMT register: 32 lanes holding one T each.
//
// The functional part of the simulator executes warp instructions as
// lane-wise operations over LaneArrays, with inactive lanes masked off
// exactly like diverged threads on real hardware ("results from diverging
// threads are simply masked off", paper Section II-A).
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

namespace simtmsg::simt {

inline constexpr int kWarpSize = 32;

/// Active-lane mask; bit i corresponds to lane i (LSB = lane 0), matching
/// the CUDA ballot convention described in the paper.
using LaneMask = std::uint32_t;

inline constexpr LaneMask kFullMask = 0xFFFF'FFFFu;

template <typename T>
class LaneArray {
 public:
  constexpr LaneArray() = default;

  /// Broadcast a scalar to all lanes.
  explicit constexpr LaneArray(const T& v) { lanes_.fill(v); }

  [[nodiscard]] constexpr T& operator[](int lane) { return lanes_[static_cast<std::size_t>(lane)]; }
  [[nodiscard]] constexpr const T& operator[](int lane) const {
    return lanes_[static_cast<std::size_t>(lane)];
  }

  [[nodiscard]] static constexpr int size() { return kWarpSize; }

  /// Lane-index register (0, 1, ..., 31): CUDA's threadIdx within a warp.
  [[nodiscard]] static constexpr LaneArray<T> iota() {
    static_assert(std::is_integral_v<T>);
    LaneArray<T> out;
    for (int lane = 0; lane < kWarpSize; ++lane) out[lane] = static_cast<T>(lane);
    return out;
  }

 private:
  std::array<T, kWarpSize> lanes_{};
};

using LaneU32 = LaneArray<std::uint32_t>;
using LaneU64 = LaneArray<std::uint64_t>;
using LaneI32 = LaneArray<std::int32_t>;
using LaneBool = LaneArray<bool>;
using LaneSize = LaneArray<std::size_t>;

}  // namespace simtmsg::simt

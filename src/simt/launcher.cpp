#include "simt/launcher.hpp"

#include <vector>

#include "telemetry/telemetry.hpp"

namespace simtmsg::simt {

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, const KernelFn& kernel) {
  KernelRun run;
  std::vector<EventCounters> per_cta;
  per_cta.reserve(static_cast<std::size_t>(cfg.ctas));

  for (int cta = 0; cta < cfg.ctas; ++cta) {
    CtaContext ctx(cta, cfg.warps_per_cta, spec.shared_mem_per_sm);
    kernel(ctx);
    per_cta.push_back(ctx.counters());
    run.counters += ctx.counters();
  }

  const TimingModel model(spec);
  run.timing = model.estimate(per_cta, cfg);

  // Launch-level span keyed to the modelled cycles the timing model just
  // produced, plus structural histograms (compiled out with telemetry off).
  telemetry::charge_phase("simt.launch", run.timing.cycles);
  telemetry::observe("simt.launch.ctas", static_cast<std::uint64_t>(cfg.ctas));
  telemetry::observe("simt.launch.waves", static_cast<std::uint64_t>(run.timing.waves));
  telemetry::observe("simt.launch.divergent_branches", run.counters.divergent_branches);
  telemetry::observe("simt.launch.issued_instructions",
                     run.counters.issued_instructions());
  return run;
}

}  // namespace simtmsg::simt

#include "simt/launcher.hpp"

#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::simt {

int ExecutionPolicy::resolved_threads() const noexcept {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, const KernelFn& kernel) {
  return launch(spec, cfg, kernel, ExecutionPolicy::serial());
}

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, const KernelFn& kernel,
                 const ExecutionPolicy& policy) {
  KernelRun run;
  const auto n_ctas = static_cast<std::size_t>(cfg.ctas);
  std::vector<EventCounters> per_cta(n_ctas);

  // Telemetry emitted inside the kernel is staged per CTA and merged in CTA
  // order below, so the accumulation order — including floating-point phase
  // sums — is the same for every thread count.  The stages also make
  // concurrent kernel execution race-free without locking the registry.
  std::vector<telemetry::Registry> stages(telemetry::kEnabled ? n_ctas : 0);

  const auto run_cta = [&](std::size_t cta) {
    CtaContext ctx(static_cast<int>(cta), cfg.warps_per_cta, spec.shared_mem_per_sm);
    if constexpr (telemetry::kEnabled) {
      const telemetry::ScopedStage stage(stages[cta]);
      kernel(ctx);
    } else {
      kernel(ctx);
    }
    per_cta[cta] = ctx.counters();
  };

  util::ThreadPool::shared().run_indexed(n_ctas, policy.resolved_threads(), run_cta);

  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    for (const auto& stage : stages) sink.merge_from(stage);
  }
  for (const auto& counters : per_cta) run.counters += counters;

  const TimingModel model(spec);
  run.timing = model.estimate(per_cta, cfg);

  // Launch-level span keyed to the modelled cycles the timing model just
  // produced, plus structural histograms (compiled out with telemetry off).
  telemetry::charge_phase("simt.launch", run.timing.cycles);
  telemetry::observe("simt.launch.ctas", static_cast<std::uint64_t>(cfg.ctas));
  telemetry::observe("simt.launch.waves", static_cast<std::uint64_t>(run.timing.waves));
  telemetry::observe("simt.launch.divergent_branches", run.counters.divergent_branches);
  telemetry::observe("simt.launch.issued_instructions",
                     run.counters.issued_instructions());
  return run;
}

}  // namespace simtmsg::simt

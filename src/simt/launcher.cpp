#include "simt/launcher.hpp"

#include <vector>

namespace simtmsg::simt {

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, const KernelFn& kernel) {
  KernelRun run;
  std::vector<EventCounters> per_cta;
  per_cta.reserve(static_cast<std::size_t>(cfg.ctas));

  for (int cta = 0; cta < cfg.ctas; ++cta) {
    CtaContext ctx(cta, cfg.warps_per_cta, spec.shared_mem_per_sm);
    kernel(ctx);
    per_cta.push_back(ctx.counters());
    run.counters += ctx.counters();
  }

  const TimingModel model(spec);
  run.timing = model.estimate(per_cta, cfg);
  return run;
}

}  // namespace simtmsg::simt

#include "simt/launcher.hpp"

#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace simtmsg::simt {

int ExecutionPolicy::resolved_threads() const noexcept {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, KernelRef kernel) {
  return launch(spec, cfg, kernel, ExecutionPolicy::serial());
}

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, KernelRef kernel,
                 const ExecutionPolicy& policy) {
  LaunchScratch scratch;
  return launch(spec, cfg, kernel, policy, scratch);
}

KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg, KernelRef kernel,
                 const ExecutionPolicy& policy, LaunchScratch& scratch) {
  KernelRun run;
  const auto n_ctas = static_cast<std::size_t>(cfg.ctas);
  scratch.per_cta.assign(n_ctas, EventCounters{});

  // Telemetry emitted inside the kernel is staged per CTA and merged in CTA
  // order below, so the accumulation order — including floating-point phase
  // sums — is the same for every thread count.  The stages also make
  // concurrent kernel execution race-free without locking the registry.
  // Recycled stages keep their map nodes; reset_values() zeroes them.
  if constexpr (telemetry::kEnabled) {
    if (scratch.stages.size() < n_ctas) scratch.stages.resize(n_ctas);
    for (std::size_t i = 0; i < n_ctas; ++i) scratch.stages[i].reset_values();
  }
  if (scratch.ctas.size() < n_ctas) scratch.ctas.resize(n_ctas);

  const auto run_cta = [&](std::size_t cta) {
    auto& slot = scratch.ctas[cta];
    if (slot == nullptr) {
      slot = std::make_unique<CtaContext>(static_cast<int>(cta), cfg.warps_per_cta,
                                          spec.shared_mem_per_sm);
    } else {
      slot->reset(static_cast<int>(cta), cfg.warps_per_cta, spec.shared_mem_per_sm);
    }
    CtaContext& ctx = *slot;
    if constexpr (telemetry::kEnabled) {
      const telemetry::ScopedStage stage(scratch.stages[cta]);
      kernel(ctx);
    } else {
      kernel(ctx);
    }
    scratch.per_cta[cta] = ctx.counters();
  };

  util::ThreadPool::shared().run_indexed(n_ctas, policy.resolved_threads(), run_cta);

  if constexpr (telemetry::kEnabled) {
    auto& sink = telemetry::sink();
    for (std::size_t i = 0; i < n_ctas; ++i) sink.merge_from(scratch.stages[i]);
  }
  for (const auto& counters : scratch.per_cta) run.counters += counters;

  const TimingModel model(spec);
  run.timing = model.estimate(scratch.per_cta, cfg);

  // Launch-level span keyed to the modelled cycles the timing model just
  // produced, plus structural histograms (compiled out with telemetry off).
  telemetry::charge_phase("simt.launch", run.timing.cycles);
  telemetry::observe("simt.launch.ctas", static_cast<std::uint64_t>(cfg.ctas));
  telemetry::observe("simt.launch.waves", static_cast<std::uint64_t>(run.timing.waves));
  telemetry::observe("simt.launch.divergent_branches", run.counters.divergent_branches);
  telemetry::observe("simt.launch.issued_instructions",
                     run.counters.issued_instructions());
  return run;
}

}  // namespace simtmsg::simt

// Launcher: runs a kernel (a callable over CtaContext) for every CTA of a
// launch configuration on the functional engine and produces the combined
// timing estimate.  This is the simulator's analogue of
// `kernel<<<grid, block>>>(...)` followed by reading the device clock.
#pragma once

#include <functional>

#include "simt/cta.hpp"
#include "simt/device_spec.hpp"
#include "simt/timing_model.hpp"

namespace simtmsg::simt {

using KernelFn = std::function<void(CtaContext&)>;

struct KernelRun {
  EventCounters counters;  ///< Summed over all CTAs.
  TimingEstimate timing;
};

/// Execute `kernel` once per CTA and estimate its execution time on `spec`.
[[nodiscard]] KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                               const KernelFn& kernel);

}  // namespace simtmsg::simt

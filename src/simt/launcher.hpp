// Launcher: runs a kernel (a callable over CtaContext) for every CTA of a
// launch configuration on the functional engine and produces the combined
// timing estimate.  This is the simulator's analogue of
// `kernel<<<grid, block>>>(...)` followed by reading the device clock.
//
// CTAs of one launch are independent by contract — exactly the guarantee
// real hardware gives a grid: a kernel may communicate across warps of its
// own CTA, but not across CTAs.  An ExecutionPolicy therefore lets the
// functional engine execute the CTAs of a launch concurrently on a host
// thread pool.  The policy changes host wall-clock time only: per-CTA event
// counters are accumulated in isolation and merged in CTA-index order, and
// telemetry emitted inside the kernel is staged per CTA and merged the same
// way, so counters, the TimingEstimate, and telemetry snapshots are
// bit-identical for every thread count (docs/threading.md).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "simt/cta.hpp"
#include "simt/device_spec.hpp"
#include "simt/timing_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/function_ref.hpp"

namespace simtmsg::simt {

/// Owning kernel type, kept for call sites that store a kernel.
using KernelFn = std::function<void(CtaContext&)>;
/// Non-owning kernel parameter: launch() runs the kernel to completion
/// before returning, so binding the caller's callable by reference is safe
/// and skips the per-launch std::function allocation.
using KernelRef = util::FunctionRef<void(CtaContext&)>;

/// How the functional engine schedules the CTAs of a launch onto host
/// threads.  Purely a host-side wall-clock knob; modelled results are
/// policy-invariant.
struct ExecutionPolicy {
  /// Host threads allowed to execute CTAs concurrently.  <= 1 executes every
  /// CTA on the calling thread in CTA order; 0 is reserved for "use the
  /// hardware concurrency" (resolved at launch time).
  int num_threads = 1;

  [[nodiscard]] static ExecutionPolicy serial() noexcept { return {1}; }
  /// One thread per available hardware core.
  [[nodiscard]] static ExecutionPolicy hardware() noexcept { return {0}; }

  /// num_threads with the 0 = hardware-concurrency default applied.
  [[nodiscard]] int resolved_threads() const noexcept;

  friend bool operator==(const ExecutionPolicy&, const ExecutionPolicy&) = default;
};

struct KernelRun {
  EventCounters counters;  ///< Summed over all CTAs in CTA-index order.
  TimingEstimate timing;
};

/// Reusable launch storage: per-CTA counters, telemetry stages, and the CTA
/// contexts themselves.  A caller that launches repeatedly with a persistent
/// scratch pays the allocations once — steady-state launches with a stable
/// grid shape allocate nothing.  One scratch serves one launch at a time
/// (launches into the same scratch must not overlap).
struct LaunchScratch {
  std::vector<EventCounters> per_cta;
  std::vector<telemetry::Registry> stages;
  /// unique_ptr slots because CtaContext pins its address (warps point at
  /// the CTA's counters); slots are created on first use and then reset().
  std::vector<std::unique_ptr<CtaContext>> ctas;
};

/// Execute `kernel` once per CTA and estimate its execution time on `spec`.
/// CTAs run serially on the calling thread.
[[nodiscard]] KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                               KernelRef kernel);

/// Execute `kernel` once per CTA under `policy`.  The kernel must treat its
/// CtaContext as the only mutable state it owns (shared captures must be
/// read-only or per-CTA-indexed) — the same data-race rule CUDA imposes on
/// a grid.  Results are bit-identical for every policy.
[[nodiscard]] KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                               KernelRef kernel, const ExecutionPolicy& policy);

/// As above, drawing every per-launch buffer from `scratch` instead of the
/// heap.  Results are identical to the scratch-less overloads.
[[nodiscard]] KernelRun launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                               KernelRef kernel, const ExecutionPolicy& policy,
                               LaunchScratch& scratch);

}  // namespace simtmsg::simt

#include "simt/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace simtmsg::simt {
namespace {

/// `e` summed `k` times.  All counter fields are integers, so the product
/// is exactly what k repeated += applications produce.
[[nodiscard]] EventCounters scaled(const EventCounters& e, std::uint64_t k) noexcept {
  EventCounters r;
  r.alu_instructions = e.alu_instructions * k;
  r.ballot_instructions = e.ballot_instructions * k;
  r.shuffle_instructions = e.shuffle_instructions * k;
  r.branch_instructions = e.branch_instructions * k;
  r.divergent_branches = e.divergent_branches * k;
  r.shared_transactions = e.shared_transactions * k;
  r.global_transactions = e.global_transactions * k;
  r.global_load_requests = e.global_load_requests * k;
  r.global_store_requests = e.global_store_requests * k;
  r.atomic_operations = e.atomic_operations * k;
  r.stall_cycles = e.stall_cycles * k;
  r.warp_syncs = e.warp_syncs * k;
  r.cta_barriers = e.cta_barriers * k;
  return r;
}

}  // namespace

int TimingModel::concurrent_ctas(const LaunchConfig& cfg) const noexcept {
  int limit = spec_->max_resident_ctas;
  limit = std::min(limit, std::max(1, spec_->max_resident_warps / std::max(1, cfg.warps_per_cta)));
  if (cfg.shared_bytes_per_cta > 0) {
    const auto by_shared =
        static_cast<int>(spec_->shared_mem_per_sm / cfg.shared_bytes_per_cta);
    limit = std::min(limit, std::max(1, by_shared));
  }
  if (cfg.max_concurrent_ctas > 0) limit = std::min(limit, cfg.max_concurrent_ctas);
  return std::max(1, std::min(limit, std::max(1, cfg.ctas)));
}

double TimingModel::cycles(const EventCounters& e, int resident_warps,
                           double mlp_per_warp) const noexcept {
  const double issue =
      static_cast<double>(e.issued_instructions()) * spec_->alu_cpi / spec_->issue_width;
  const double shared = static_cast<double>(e.shared_transactions) * spec_->smem_cost;
  const double global = static_cast<double>(e.global_transactions) * spec_->gmem_cost;
  const double atomics = static_cast<double>(e.atomic_operations) * spec_->atomic_cost;
  const double barriers = static_cast<double>(e.cta_barriers) * kBarrierCost;

  const double warps = std::max(1, resident_warps);
  const double mlp = mlp_per_warp > 0.0 ? mlp_per_warp : spec_->mlp_per_warp;
  const double in_flight = std::clamp(warps * mlp, 1.0, spec_->max_outstanding);
  const double latency =
      static_cast<double>(e.global_load_requests) * spec_->gmem_latency / in_flight;
  const double stalls = static_cast<double>(e.stall_cycles);

  return issue + shared + global + atomics + barriers + latency + stalls;
}

TimingEstimate TimingModel::estimate(const EventCounters& per_cta,
                                     const LaunchConfig& cfg) const noexcept {
  // Allocation-free twin of the vector overload for the uniform-CTA case:
  // every wave's counters are per_cta summed wave-size times (exact for the
  // integer counters), and the per-wave cycle costs accumulate with the
  // same repeated += the vector loop performs, so the result is
  // bit-identical to materializing an n-element vector — without the
  // per-call heap allocation this overload used to pay.
  TimingEstimate out;
  out.concurrent_ctas = concurrent_ctas(cfg);
  const auto n = static_cast<std::size_t>(std::max(1, cfg.ctas));
  const auto per_wave = static_cast<std::size_t>(out.concurrent_ctas);
  out.waves = static_cast<int>((n + per_wave - 1) / per_wave);

  double total = 0.0;
  const std::size_t full_waves = n / per_wave;
  const std::size_t tail = n % per_wave;
  if (full_waves > 0) {
    const EventCounters wave = scaled(per_cta, per_wave);
    const int resident = static_cast<int>(per_wave) * cfg.warps_per_cta;
    const double wave_cycles = cycles(wave, resident, cfg.mlp_per_warp);
    for (std::size_t w = 0; w < full_waves; ++w) total += wave_cycles;
  }
  if (tail > 0) {
    const EventCounters wave = scaled(per_cta, tail);
    const int resident = static_cast<int>(tail) * cfg.warps_per_cta;
    total += cycles(wave, resident, cfg.mlp_per_warp);
  }
  out.cycles = total;
  out.seconds = seconds_from_cycles(total);

  if constexpr (telemetry::kEnabled) {
    telemetry::charge_phase("simt.timing.estimate", out.cycles);
    telemetry::observe("simt.timing.stall_cycles", scaled(per_cta, n).stall_cycles);
  }
  return out;
}

TimingEstimate TimingModel::estimate(const std::vector<EventCounters>& per_cta,
                                     const LaunchConfig& cfg) const noexcept {
  TimingEstimate out;
  out.concurrent_ctas = concurrent_ctas(cfg);
  const std::size_t n = per_cta.size();
  const auto per_wave = static_cast<std::size_t>(out.concurrent_ctas);
  out.waves = static_cast<int>((n + per_wave - 1) / per_wave);

  double total = 0.0;
  for (std::size_t begin = 0; begin < n; begin += per_wave) {
    const std::size_t end = std::min(begin + per_wave, n);
    EventCounters wave;
    for (std::size_t i = begin; i < end; ++i) wave += per_cta[i];
    const int resident = static_cast<int>(end - begin) * cfg.warps_per_cta;
    total += cycles(wave, resident, cfg.mlp_per_warp);
  }
  out.cycles = total;
  out.seconds = seconds_from_cycles(total);

  // Per-estimate span: the modelled cycles this launch configuration was
  // charged, plus the stall share (serialized-latency diagnosability).
  if constexpr (telemetry::kEnabled) {
    telemetry::charge_phase("simt.timing.estimate", out.cycles);
    EventCounters sum;
    for (const auto& e : per_cta) sum += e;
    telemetry::observe("simt.timing.stall_cycles", sum.stall_cycles);
  }
  return out;
}

}  // namespace simtmsg::simt

#include "simt/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace simtmsg::simt {

int TimingModel::concurrent_ctas(const LaunchConfig& cfg) const noexcept {
  int limit = spec_->max_resident_ctas;
  limit = std::min(limit, std::max(1, spec_->max_resident_warps / std::max(1, cfg.warps_per_cta)));
  if (cfg.shared_bytes_per_cta > 0) {
    const auto by_shared =
        static_cast<int>(spec_->shared_mem_per_sm / cfg.shared_bytes_per_cta);
    limit = std::min(limit, std::max(1, by_shared));
  }
  if (cfg.max_concurrent_ctas > 0) limit = std::min(limit, cfg.max_concurrent_ctas);
  return std::max(1, std::min(limit, std::max(1, cfg.ctas)));
}

double TimingModel::cycles(const EventCounters& e, int resident_warps,
                           double mlp_per_warp) const noexcept {
  const double issue =
      static_cast<double>(e.issued_instructions()) * spec_->alu_cpi / spec_->issue_width;
  const double shared = static_cast<double>(e.shared_transactions) * spec_->smem_cost;
  const double global = static_cast<double>(e.global_transactions) * spec_->gmem_cost;
  const double atomics = static_cast<double>(e.atomic_operations) * spec_->atomic_cost;
  const double barriers = static_cast<double>(e.cta_barriers) * kBarrierCost;

  const double warps = std::max(1, resident_warps);
  const double mlp = mlp_per_warp > 0.0 ? mlp_per_warp : spec_->mlp_per_warp;
  const double in_flight = std::clamp(warps * mlp, 1.0, spec_->max_outstanding);
  const double latency =
      static_cast<double>(e.global_load_requests) * spec_->gmem_latency / in_flight;
  const double stalls = static_cast<double>(e.stall_cycles);

  return issue + shared + global + atomics + barriers + latency + stalls;
}

TimingEstimate TimingModel::estimate(const EventCounters& per_cta,
                                     const LaunchConfig& cfg) const noexcept {
  std::vector<EventCounters> all(static_cast<std::size_t>(std::max(1, cfg.ctas)), per_cta);
  return estimate(all, cfg);
}

TimingEstimate TimingModel::estimate(const std::vector<EventCounters>& per_cta,
                                     const LaunchConfig& cfg) const noexcept {
  TimingEstimate out;
  out.concurrent_ctas = concurrent_ctas(cfg);
  const std::size_t n = per_cta.size();
  const auto per_wave = static_cast<std::size_t>(out.concurrent_ctas);
  out.waves = static_cast<int>((n + per_wave - 1) / per_wave);

  double total = 0.0;
  for (std::size_t begin = 0; begin < n; begin += per_wave) {
    const std::size_t end = std::min(begin + per_wave, n);
    EventCounters wave;
    for (std::size_t i = begin; i < end; ++i) wave += per_cta[i];
    const int resident = static_cast<int>(end - begin) * cfg.warps_per_cta;
    total += cycles(wave, resident, cfg.mlp_per_warp);
  }
  out.cycles = total;
  out.seconds = seconds_from_cycles(total);

  // Per-estimate span: the modelled cycles this launch configuration was
  // charged, plus the stall share (serialized-latency diagnosability).
  if constexpr (telemetry::kEnabled) {
    telemetry::charge_phase("simt.timing.estimate", out.cycles);
    EventCounters sum;
    for (const auto& e : per_cta) sum += e;
    telemetry::observe("simt.timing.stall_cycles", sum.stall_cycles);
  }
  return out;
}

}  // namespace simtmsg::simt

// TimingModel: converts EventCounters into cycle and wall-time estimates
// for a given device generation and launch configuration.
//
// The model is deliberately structural rather than micro-architectural: the
// paper's performance story is carried by (1) how many warp instructions an
// algorithm must issue (the sequential reduce vs the parallel scan), (2) how
// many memory transactions it makes (hash probes), (3) the device clock, and
// (4) occupancy-driven serialization of CTAs on a single SM.  Those four
// effects are modelled; cache hierarchies and instruction fusion are not.
//
//   issue      = issued_instructions * alu_cpi / issue_width
//   shared     = shared_transactions * smem_cost
//   global     = global_transactions * gmem_cost
//   atomics    = atomic_operations   * atomic_cost
//   barriers   = cta_barriers        * kBarrierCost
//   latency    = global_load_requests * gmem_latency
//                / clamp(resident_warps * mlp_per_warp, 1, max_outstanding)
//   cycles     = issue + shared + global + atomics + barriers + latency
//                + stall_cycles
//
// The latency term models memory-level parallelism: each resident warp can
// keep ~mlp_per_warp global requests in flight, capped by the SM-wide
// max_outstanding.  It is what makes the fully compliant matrix matcher
// latency-bound (steady matches/s across queue lengths, Figure 4) while the
// hash matcher is throughput/atomic-bound (Figure 6b).
//
// CTAs beyond the occupancy limit execute in additional "waves"
// (serialized), reproducing the paper's observation that "more CTAs leads
// to serialization and performance is reduced".
#pragma once

#include <cstdint>
#include <vector>

#include "simt/device_spec.hpp"
#include "simt/event_counters.hpp"

namespace simtmsg::simt {

struct LaunchConfig {
  int ctas = 1;
  int warps_per_cta = 32;
  std::size_t shared_bytes_per_cta = 0;
  /// Optional cap on concurrently resident CTAs (e.g. the paper's occupancy
  /// calculator reports 2 for the matrix-matching kernel).  0 = derive from
  /// device limits only.
  int max_concurrent_ctas = 0;
  /// Kernel memory-level parallelism: outstanding global loads one warp of
  /// this kernel sustains.  0 = the device default (spec.mlp_per_warp).
  /// Kernels with independent per-thread accesses (hash probes) sustain far
  /// more than loops with serialized dependencies (the matrix scan).
  double mlp_per_warp = 0.0;
};

struct TimingEstimate {
  double cycles = 0.0;
  double seconds = 0.0;
  int concurrent_ctas = 1;  ///< CTAs resident per wave.
  int waves = 1;            ///< Serialized waves executed.
};

class TimingModel {
 public:
  explicit TimingModel(const DeviceSpec& spec) noexcept : spec_(&spec) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return *spec_; }

  /// CTAs that can be resident simultaneously on one SM for this launch.
  [[nodiscard]] int concurrent_ctas(const LaunchConfig& cfg) const noexcept;

  /// Cycles to execute `events` with `resident_warps` warps sharing the SM.
  /// `mlp_per_warp` overrides the device default when non-zero.
  [[nodiscard]] double cycles(const EventCounters& events, int resident_warps,
                              double mlp_per_warp = 0.0) const noexcept;

  /// Cycles for two pipelined phases that overlap execution (the paper's
  /// scan/reduce pipelining): the longer phase hides the shorter one.
  [[nodiscard]] static double overlapped(double phase_a_cycles, double phase_b_cycles) noexcept {
    return phase_a_cycles > phase_b_cycles ? phase_a_cycles : phase_b_cycles;
  }

  /// Full estimate for `ctas` homogeneous CTAs each producing `per_cta`.
  [[nodiscard]] TimingEstimate estimate(const EventCounters& per_cta,
                                        const LaunchConfig& cfg) const noexcept;

  /// Estimate when CTAs produced different event counts.
  [[nodiscard]] TimingEstimate estimate(const std::vector<EventCounters>& per_cta,
                                        const LaunchConfig& cfg) const noexcept;

  [[nodiscard]] double seconds_from_cycles(double cycles) const noexcept {
    return cycles / (spec_->clock_ghz * 1e9);
  }

  /// Cost charged per CTA-wide barrier, in cycles.
  static constexpr double kBarrierCost = 30.0;

 private:
  const DeviceSpec* spec_;
};

}  // namespace simtmsg::simt

#include "simt/warp.hpp"

// WarpContext is header-only (hot path, fully inlined); this translation
// unit only pins the vtable-free class into the library and hosts small
// non-template helpers.

namespace simtmsg::simt {

static_assert(kWarpSize == 32, "paper's algorithms assume 32-lane warps");

}  // namespace simtmsg::simt

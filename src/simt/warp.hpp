// WarpContext: the device-side programming surface of the simulator.
//
// Kernels (e.g. the scan and reduce phases of the matrix matcher) are
// written against this API in the same warp-synchronous style as the
// paper's Algorithms 1 and 2: ballots, ffs over vote words, predicated
// lane-wise arithmetic, and explicit shared/global memory accesses.  Every
// operation both (a) computes the functional result over the 32 lanes and
// (b) records issue/memory events in the owning EventCounters, from which
// the TimingModel later derives cycles.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "simt/event_counters.hpp"
#include "simt/lane_array.hpp"
#include "util/bits.hpp"

namespace simtmsg::simt {

class WarpContext {
 public:
  WarpContext(int warp_id, EventCounters& counters) noexcept
      : warp_id_(warp_id), counters_(&counters) {}

  [[nodiscard]] int warp_id() const noexcept { return warp_id_; }
  [[nodiscard]] LaneMask active() const noexcept { return active_; }

  /// Replace the active mask (warp-level predication).  Returns the old
  /// mask so callers can restore it after a divergent region.
  LaneMask set_active(LaneMask mask) noexcept {
    const LaneMask old = active_;
    active_ = mask;
    return old;
  }

  [[nodiscard]] bool lane_active(int lane) const noexcept {
    return util::test_bit(active_, lane);
  }

  /// Account for `n` plain integer/compare/bit warp instructions.
  void count_alu(std::uint64_t n = 1) noexcept { counters_->alu_instructions += n; }

  /// Account for a (possibly divergent) branch decision.
  void count_branch(bool divergent = false) noexcept {
    counters_->branch_instructions += 1;
    if (divergent) counters_->divergent_branches += 1;
  }

  // --- Warp vote / data exchange intrinsics ------------------------------

  /// CUDA __ballot: bit i of the result is pred[i] for active lanes, 0 for
  /// inactive lanes ("the LSB represents the first thread of the warp").
  [[nodiscard]] std::uint32_t ballot(const LaneBool& pred) noexcept {
    counters_->ballot_instructions += 1;
    std::uint32_t word = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane) && pred[lane]) word = util::set_bit(word, lane);
    }
    return word;
  }

  [[nodiscard]] bool any(const LaneBool& pred) noexcept { return ballot(pred) != 0; }

  [[nodiscard]] bool all(const LaneBool& pred) noexcept {
    return ballot(pred) == active_;
  }

  /// CUDA __shfl: every active lane reads `v` from lane `src_lane`.
  template <typename T>
  [[nodiscard]] LaneArray<T> shfl(const LaneArray<T>& v, int src_lane) noexcept {
    counters_->shuffle_instructions += 1;
    return LaneArray<T>(v[src_lane]);
  }

  /// Warp-level synchronization point (CUDA __syncwarp).
  void syncwarp() noexcept { counters_->warp_syncs += 1; }

  // --- Lane-wise compute --------------------------------------------------

  /// Run `fn(lane)` on every active lane, charging `instructions` issued
  /// warp instructions for the whole construct.  This is the generic
  /// "vector ALU op" of the simulator.
  template <typename Fn>
  void lanes(Fn&& fn, std::uint64_t instructions = 1) {
    counters_->alu_instructions += instructions;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane)) fn(lane);
    }
  }

  // --- Global memory ------------------------------------------------------
  //
  // Global accesses are described by a span plus per-lane element indices.
  // The simulator counts one warp-level request plus as many 128-byte
  // transactions as distinct segments are touched by active lanes — the
  // standard coalescing model.

  template <typename T>
  [[nodiscard]] LaneArray<T> load_global(std::span<const T> mem, const LaneSize& idx) {
    count_global_access<T>(idx, /*is_load=*/true);
    LaneArray<T> out;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane)) {
        assert(idx[lane] < mem.size());
        out[lane] = mem[idx[lane]];
      }
    }
    return out;
  }

  template <typename T>
  void store_global(std::span<T> mem, const LaneSize& idx, const LaneArray<T>& val) {
    count_global_access<T>(idx, /*is_load=*/false);
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane)) {
        assert(idx[lane] < mem.size());
        mem[idx[lane]] = val[lane];
      }
    }
  }

  /// All lanes read the same element: a single transaction (broadcast).
  template <typename T>
  [[nodiscard]] T load_global_broadcast(std::span<const T> mem, std::size_t idx) {
    assert(idx < mem.size());
    counters_->global_load_requests += 1;
    counters_->global_transactions += 1;
    return mem[idx];
  }

  /// Annotate `cycles` of serialized dependent latency this warp cannot
  /// overlap (per-column dependency chains in the sequential reduce).
  void count_stall(std::uint64_t cycles) noexcept { counters_->stall_cycles += cycles; }

  /// Atomic compare-and-swap on a global word, one per active lane.  Returns
  /// per-lane previous values.  Used by the device hash table inserts.
  [[nodiscard]] LaneU64 atomic_cas(std::span<std::uint64_t> mem, const LaneSize& idx,
                                   const LaneU64& expected, const LaneU64& desired) {
    count_global_access<std::uint64_t>(idx, /*is_load=*/true);
    counters_->atomic_operations += static_cast<std::uint64_t>(util::popc(active_));
    LaneU64 prev;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!lane_active(lane)) continue;
      assert(idx[lane] < mem.size());
      prev[lane] = mem[idx[lane]];
      if (mem[idx[lane]] == expected[lane]) mem[idx[lane]] = desired[lane];
    }
    return prev;
  }

  // --- Counting-only mirrors ----------------------------------------------
  //
  // Cost-replay code (the parallel execution path of the hash matcher)
  // resolves functional outcomes ahead of time and then replays only the
  // *cost* of each memory operation.  These mirrors charge exactly what the
  // corresponding functional operation would, without touching memory, so a
  // replay can run concurrently against shared read-only state.

  /// Charge a warp-level global load of `T` at per-lane indices `idx`
  /// (active lanes) without performing it.  Identical counting to
  /// load_global.
  template <typename T>
  void count_global_load(const LaneSize& idx) noexcept {
    count_global_access<T>(idx, /*is_load=*/true);
  }

  /// Charge a per-active-lane global atomic CAS at `idx` without performing
  /// it.  Identical counting to atomic_cas.
  void count_atomic_cas(const LaneSize& idx) noexcept {
    count_global_access<std::uint64_t>(idx, /*is_load=*/true);
    counters_->atomic_operations += static_cast<std::uint64_t>(util::popc(active_));
  }

  // --- Shared memory ------------------------------------------------------
  //
  // Shared accesses count one transaction per access group; we do not model
  // bank conflicts beyond a flat per-access cost (the matching kernels use
  // conflict-free layouts).

  template <typename T>
  [[nodiscard]] LaneArray<T> load_shared(std::span<const T> mem, const LaneSize& idx) {
    counters_->shared_transactions += 1;
    LaneArray<T> out;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane)) {
        assert(idx[lane] < mem.size());
        out[lane] = mem[idx[lane]];
      }
    }
    return out;
  }

  template <typename T>
  void store_shared(std::span<T> mem, const LaneSize& idx, const LaneArray<T>& val) {
    counters_->shared_transactions += 1;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (lane_active(lane)) {
        assert(idx[lane] < mem.size());
        mem[idx[lane]] = val[lane];
      }
    }
  }

  [[nodiscard]] EventCounters& counters() noexcept { return *counters_; }

 private:
  template <typename T>
  void count_global_access(const LaneSize& idx, bool is_load) noexcept {
    if (is_load) {
      counters_->global_load_requests += 1;
    } else {
      counters_->global_store_requests += 1;
    }
    counters_->global_transactions += coalesced_segments<T>(idx, active_);
  }

  /// Number of distinct 128-byte segments touched by the active lanes.
  template <typename T>
  [[nodiscard]] static std::uint64_t coalesced_segments(const LaneSize& idx,
                                                        LaneMask active) noexcept {
    constexpr std::size_t kSegment = 128;
    std::uint64_t segments = 0;
    std::size_t seen[kWarpSize];
    int n_seen = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (!util::test_bit(active, lane)) continue;
      const std::size_t seg = (idx[lane] * sizeof(T)) / kSegment;
      bool found = false;
      for (int i = 0; i < n_seen; ++i) {
        if (seen[i] == seg) {
          found = true;
          break;
        }
      }
      if (!found) {
        seen[n_seen++] = seg;
        ++segments;
      }
    }
    return segments;
  }

  int warp_id_;
  LaneMask active_ = kFullMask;
  EventCounters* counters_;
};

}  // namespace simtmsg::simt

#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace simtmsg::telemetry {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

namespace {

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  throw std::logic_error(std::string("json: expected ") + want + ", value is kind " +
                         std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

std::uint64_t Json::as_uint() const {
  const double v = as_number();
  if (v < 0.0) throw std::logic_error("json: negative value read as_uint");
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool Json::contains(std::string_view key) const {
  if (kind_ != Kind::kObject) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key '" + std::string(key) + "'");
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  arr_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  kind_error("array or object", kind_);
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_.at(index);
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::kNull:
      return true;
    case Json::Kind::kBool:
      return a.bool_ == b.bool_;
    case Json::Kind::kNumber:
      return a.num_ == b.num_;
    case Json::Kind::kString:
      return a.str_ == b.str_;
    case Json::Kind::kArray:
      return a.arr_ == b.arr_;
    case Json::Kind::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<std::int64_t>(v);
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null like most emitters.
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  os.write(buf, end - buf);
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      return;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      dump_number(os, num_);
      return;
    case Kind::kString:
      dump_string(os, str_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        arr_[i].dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) os << ',';
        newline_indent(os, indent, depth + 1);
        dump_string(os, obj_[i].first);
        os << (indent < 0 ? ":" : ": ");
        obj_[i].second.dump_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      return;
    }
  }
}

void Json::dump(std::ostream& os, int indent) const { dump_impl(os, indent, 0); }

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc{} || end != text_.data() + pos_) fail("malformed number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace simtmsg::telemetry

// Minimal JSON document model used by the telemetry exporters and the bench
// `--json` emitters.  Intentionally tiny: objects, arrays, strings, numbers,
// booleans and null — everything the telemetry schema needs, nothing more.
// Numbers are stored as double (every counter this repo emits fits in the
// 2^53 exact-integer range); integral values are printed without a decimal
// point so `"count": 42` round-trips textually.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace simtmsg::telemetry {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(std::nullptr_t) noexcept : kind_(Kind::kNull) {}
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  Json(double v) noexcept : kind_(Kind::kNumber), num_(v) {}
  Json(int v) noexcept : kind_(Kind::kNumber), num_(v) {}
  Json(std::int64_t v) noexcept : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) noexcept : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}

  [[nodiscard]] static Json object();
  [[nodiscard]] static Json array();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }

  /// Scalar accessors; throw std::logic_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object access.  set() inserts or replaces; operator[] on a const object
  /// throws std::out_of_range for missing keys; contains() probes.
  Json& set(std::string key, Json value);
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Array access.
  Json& push(Json value);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Serialize.  indent < 0: compact single line; otherwise pretty-printed
  /// with `indent` spaces per level.
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document.  Throws std::runtime_error with a
  /// character offset on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  // Insertion-ordered object members (schema readability beats lookup speed
  // at telemetry sizes).
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace simtmsg::telemetry

#include "telemetry/report.hpp"

#include <algorithm>

namespace simtmsg::telemetry {

HistogramSnapshot HistogramSnapshot::of(const Histogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.percentile(50.0);
  s.p99 = h.percentile(99.0);
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket_count(b) > 0) {
      s.buckets.emplace_back(Histogram::bucket_lower_bound(b), h.bucket_count(b));
    }
  }
  return s;
}

namespace {

void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from) {
  into.count += from.count;
  into.sum += from.sum;
  if (from.count > 0) {
    into.min = into.count == from.count ? from.min : std::min(into.min, from.min);
    into.max = std::max(into.max, from.max);
  }
  for (const auto& [lower, n] : from.buckets) {
    bool found = false;
    for (auto& [l, c] : into.buckets) {
      if (l == lower) {
        c += n;
        found = true;
        break;
      }
    }
    if (!found) into.buckets.emplace_back(lower, n);
  }
  std::sort(into.buckets.begin(), into.buckets.end());
  // Percentiles are not mergeable exactly; recompute the conservative
  // bucket-based estimate from the merged buckets.
  const auto estimate = [&into](double p) -> std::uint64_t {
    const double target = p / 100.0 * static_cast<double>(into.count);
    std::uint64_t cumulative = 0;
    for (const auto& [lower, n] : into.buckets) {
      cumulative += n;
      if (static_cast<double>(cumulative) >= target) return lower;
    }
    return into.max;
  };
  if (into.count > 0) {
    into.p50 = estimate(50.0);
    into.p99 = estimate(99.0);
  }
}

}  // namespace

TelemetryReport& TelemetryReport::merge(const TelemetryReport& o) {
  calls += o.calls;
  matches += o.matches;
  cycles += o.cycles;
  seconds += o.seconds;
  iterations += o.iterations;
  scan_events += o.scan_events;
  reduce_events += o.reduce_events;
  compact_events += o.compact_events;
  for (const auto& [name, v] : o.counters) counters[name] += v;
  for (const auto& [name, v] : o.gauges) gauges[name] = v;
  for (const auto& [name, h] : o.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, h);
    if (!inserted) merge_histogram(it->second, h);
  }
  for (const auto& [name, p] : o.phases) phases[name] += p;
  return *this;
}

void TelemetryReport::absorb(const Registry& registry) {
  for (const auto& [name, c] : registry.counters()) counters[name] += c.value();
  for (const auto& [name, g] : registry.gauges()) gauges[name] = g.value();
  for (const auto& [name, h] : registry.histograms()) {
    auto [it, inserted] = histograms.try_emplace(name, HistogramSnapshot::of(h));
    if (!inserted) merge_histogram(it->second, HistogramSnapshot::of(h));
  }
  for (const auto& [name, p] : registry.phases()) phases[name] += p;
}

Json to_json(const simt::EventCounters& e) {
  Json j = Json::object();
  j.set("alu_instructions", e.alu_instructions)
      .set("ballot_instructions", e.ballot_instructions)
      .set("shuffle_instructions", e.shuffle_instructions)
      .set("branch_instructions", e.branch_instructions)
      .set("divergent_branches", e.divergent_branches)
      .set("shared_transactions", e.shared_transactions)
      .set("global_transactions", e.global_transactions)
      .set("global_load_requests", e.global_load_requests)
      .set("global_store_requests", e.global_store_requests)
      .set("atomic_operations", e.atomic_operations)
      .set("stall_cycles", e.stall_cycles)
      .set("warp_syncs", e.warp_syncs)
      .set("cta_barriers", e.cta_barriers);
  return j;
}

namespace {

Json histogram_json(const HistogramSnapshot& h) {
  Json j = Json::object();
  j.set("count", h.count)
      .set("sum", h.sum)
      .set("min", h.min)
      .set("max", h.max)
      .set("mean", h.mean())
      .set("p50", h.p50)
      .set("p99", h.p99);
  Json buckets = Json::array();
  for (const auto& [lower, n] : h.buckets) {
    Json b = Json::object();
    b.set("ge", lower).set("count", n);
    buckets.push(std::move(b));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

Json phase_json(const PhaseStats& p) {
  Json j = Json::object();
  j.set("calls", p.calls)
      .set("device_cycles", p.device_cycles)
      .set("wall_seconds", p.wall_seconds);
  return j;
}

}  // namespace

Json TelemetryReport::to_json() const {
  Json j = Json::object();
  j.set("calls", calls)
      .set("matches", matches)
      .set("cycles", cycles)
      .set("seconds", seconds)
      .set("iterations", iterations)
      .set("matches_per_second", matches_per_second());

  Json events = Json::object();
  events.set("scan", telemetry::to_json(scan_events))
      .set("reduce", telemetry::to_json(reduce_events))
      .set("compact", telemetry::to_json(compact_events));
  j.set("events", std::move(events));

  Json cs = Json::object();
  for (const auto& [name, v] : counters) cs.set(name, v);
  j.set("counters", std::move(cs));

  Json gs = Json::object();
  for (const auto& [name, v] : gauges) gs.set(name, v);
  j.set("gauges", std::move(gs));

  Json hs = Json::object();
  for (const auto& [name, h] : histograms) hs.set(name, histogram_json(h));
  j.set("histograms", std::move(hs));

  Json ps = Json::object();
  for (const auto& [name, p] : phases) ps.set(name, phase_json(p));
  j.set("phases", std::move(ps));
  return j;
}

void TelemetryReport::write_csv(std::ostream& os) const {
  os << "metric,value\n";
  os << "calls," << calls << "\n";
  os << "matches," << matches << "\n";
  os << "cycles," << cycles << "\n";
  os << "seconds," << seconds << "\n";
  os << "iterations," << iterations << "\n";
  os << "matches_per_second," << matches_per_second() << "\n";
  for (const auto& [name, v] : counters) os << name << "," << v << "\n";
  for (const auto& [name, v] : gauges) os << name << "," << v << "\n";
  for (const auto& [name, h] : histograms) {
    os << name << ".count," << h.count << "\n";
    os << name << ".mean," << h.mean() << "\n";
    os << name << ".p99," << h.p99 << "\n";
  }
  for (const auto& [name, p] : phases) {
    os << name << ".calls," << p.calls << "\n";
    os << name << ".device_cycles," << p.device_cycles << "\n";
  }
}

}  // namespace simtmsg::telemetry

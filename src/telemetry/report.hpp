// TelemetryReport: the structured snapshot every instrumented component
// (MatchEngine, ProgressEngine, Cluster) returns from `snapshot()`.  It
// replaces the ad-hoc per-class accessor quartets (matching_seconds(),
// matching_cycles(), matches(), steps()) with one mergeable value type that
// exports to JSON and CSV.
//
// Headline totals (calls/matches/cycles/seconds/iterations and the three
// event-counter phases) are maintained *unconditionally* — they are the
// public performance API and cost a few adds per match call.  The named
// counter/gauge/histogram/phase maps carry whatever the build's
// instrumentation hooks recorded; with SIMTMSG_TELEMETRY=OFF they are empty.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "simt/event_counters.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::telemetry {

/// Immutable copy of a Histogram for export.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  /// Sparse non-empty buckets: (lower bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  [[nodiscard]] static HistogramSnapshot of(const Histogram& h);
};

struct TelemetryReport {
  // Headline matching totals (always populated).
  std::uint64_t calls = 0;    ///< match()/match_queues() invocations, or progress steps.
  std::uint64_t matches = 0;
  double cycles = 0.0;        ///< Modelled device cycles.
  double seconds = 0.0;       ///< cycles / device clock.
  std::uint64_t iterations = 0;

  simt::EventCounters scan_events;
  simt::EventCounters reduce_events;
  simt::EventCounters compact_events;

  // Named instruments (populated only when telemetry is compiled in).
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, PhaseStats> phases;

  [[nodiscard]] double matches_per_second() const noexcept {
    return seconds > 0.0 ? static_cast<double>(matches) / seconds : 0.0;
  }

  /// Sum another report into this one (cluster-level aggregation).
  TelemetryReport& merge(const TelemetryReport& o);

  /// Copy every named instrument out of a registry into this report.
  void absorb(const Registry& registry);

  [[nodiscard]] Json to_json() const;
  /// Flat `metric,value` CSV of the headline totals and named counters.
  void write_csv(std::ostream& os) const;
};

/// JSON encoding of raw event counters (shared with the bench emitters).
[[nodiscard]] Json to_json(const simt::EventCounters& e);

}  // namespace simtmsg::telemetry

#include "telemetry/telemetry.hpp"

#include <bit>

namespace simtmsg::telemetry {

int Histogram::bucket_of(std::uint64_t v) noexcept {
  return v == 0 ? 0 : std::bit_width(v);
}

void Histogram::record(std::uint64_t v) noexcept {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0;
  if (p > 100.0) p = 100.0;
  if (p < 0.0) p = 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) >= target && buckets_[b] > 0) {
      return bucket_lower_bound(b);
    }
  }
  return bucket_lower_bound(kBuckets - 1);
}

Histogram& Histogram::operator+=(const Histogram& o) noexcept {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  count_ += o.count_;
  sum_ += o.sum_;
  if (o.count_ > 0) {
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }
  return *this;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

PhaseStats& Registry::phase(std::string_view name) {
  const auto it = phases_.find(name);
  if (it != phases_.end()) return it->second;
  return phases_.emplace(std::string(name), PhaseStats{}).first->second;
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  phases_.clear();
}

void Registry::reset_values() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, p] : phases_) p = PhaseStats{};
  gauges_.clear();
}

void Registry::merge_from(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : o.gauges_) gauge(name).set(g.value());
  for (const auto& [name, h] : o.histograms_) histogram(name) += h;
  for (const auto& [name, p] : o.phases_) phase(name) += p;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Span::~Span() {
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_);
  auto& p = registry_->phase(phase_);
  ++p.calls;
  p.device_cycles += cycles_;
  p.wall_seconds += elapsed.count();
}

}  // namespace simtmsg::telemetry

// Telemetry core: named counters, gauges, log-scale histograms, and
// phase-scoped span timers, collected in a Registry.
//
// Two layers with different compile-time guarantees:
//
//  * The *classes* (Counter, Gauge, Histogram, Registry, Span) are always
//    compiled and fully functional — tests and exporters rely on them.
//  * The *instrumentation hooks* sprinkled through the matchers and the SIMT
//    launcher go through the inline helpers below (`count()`, `observe()`,
//    `set_gauge()`, `Span` on the global registry), which are `if constexpr`
//    gated on `kEnabled`.  Configuring with -DSIMTMSG_TELEMETRY=OFF compiles
//    every hook to nothing: no registry lookup, no branch, no symbol.
//
// Spans are keyed to *modelled device cycles* (fed from TimingModel
// estimates), not host wall time: the quantity the paper reasons about is
// simulated GPU time.  Host wall seconds are recorded alongside as a
// harness-cost diagnostic.
//
// Thread model (docs/threading.md): the Registry itself is not locked.
// Instead, concurrency is handled by *per-thread staging*: code that runs
// work items on pool threads (simt::launch, PartitionedMatcher) gives each
// work item its own staging Registry via `ScopedStage`, and merges the
// stages into the enclosing registry in work-item index order once all
// items joined.  The hooks below therefore write to `sink()` — the current
// thread's stage if one is installed, the process-global registry
// otherwise.  Because the merge order is fixed by work-item index (not by
// thread schedule), the registry contents after a parallel region are
// bit-identical for every thread count, including the floating-point
// accumulation order of PhaseStats.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#ifndef SIMTMSG_TELEMETRY_ENABLED
#define SIMTMSG_TELEMETRY_ENABLED 1
#endif

namespace simtmsg::telemetry {

inline constexpr bool kEnabled = SIMTMSG_TELEMETRY_ENABLED != 0;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram for counts spanning orders of magnitude (queue
/// depths, iteration counts, hash probes).  Bucket 0 holds the value 0;
/// bucket i >= 1 holds [2^(i-1), 2^i).  64 buckets cover every uint64_t.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  [[nodiscard]] std::uint64_t bucket_count(int bucket) const noexcept {
    return buckets_[bucket];
  }
  /// Smallest value that lands in `bucket`.
  [[nodiscard]] static std::uint64_t bucket_lower_bound(int bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }
  [[nodiscard]] static int bucket_of(std::uint64_t v) noexcept;

  /// Upper-bound estimate of the p-th percentile (0 < p <= 100): the lower
  /// bound of the first bucket whose cumulative count reaches p% — exact for
  /// values that are powers of two, otherwise within one bucket.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  Histogram& operator+=(const Histogram& o) noexcept;
  void reset() noexcept { *this = Histogram{}; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Accumulated cost of one named phase across all its spans.
struct PhaseStats {
  std::uint64_t calls = 0;
  double device_cycles = 0.0;  ///< Modelled cycles charged via Span::add_cycles.
  double wall_seconds = 0.0;   ///< Host time inside the span (harness cost).

  PhaseStats& operator+=(const PhaseStats& o) noexcept {
    calls += o.calls;
    device_cycles += o.device_cycles;
    wall_seconds += o.wall_seconds;
    return *this;
  }
};

class Registry {
 public:
  /// Look up or create.  References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  PhaseStats& phase(std::string_view name);

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, PhaseStats, std::less<>>& phases()
      const noexcept {
    return phases_;
  }

  void reset();

  /// Zero every metric while keeping the name -> slot map nodes alive, so a
  /// recycled staging registry reaches an allocation-free steady state (the
  /// next lookups hit existing nodes instead of re-inserting).  Merging a
  /// reset stage is a no-op for counters/histograms/phases; gauges are
  /// erased outright because merge_from overwrites the target's gauge with
  /// the stage's value, and a stale zero must not clobber it.
  void reset_values();

  /// Merge another registry into this one: counters and histograms add,
  /// phase stats add, gauges take the other registry's (later) value.
  /// Callers merging parallel stages must do so in work-item index order so
  /// floating-point sums are schedule-independent.
  void merge_from(const Registry& o);

  /// Process-wide registry the instrumentation hooks feed.
  static Registry& global();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, PhaseStats, std::less<>> phases_;
};

/// RAII phase timer.  Wall time runs from construction to destruction;
/// modelled device cycles are charged explicitly (the simulator knows them
/// only after the timing model runs).
class Span {
 public:
  Span(Registry& registry, std::string_view phase)
      : registry_(&registry), phase_(phase), start_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  void add_cycles(double cycles) noexcept { cycles_ += cycles; }

 private:
  Registry* registry_;
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
  double cycles_ = 0.0;
};

// ---------------------------------------------------------------------------
// Per-thread staging.

namespace detail {
/// Slot holding the current thread's staging registry (null = use global).
inline Registry*& stage_slot() noexcept {
  thread_local Registry* stage = nullptr;
  return stage;
}
}  // namespace detail

/// The registry the instrumentation hooks write to on this thread: the
/// installed stage if any, else the process-global registry.
inline Registry& sink() noexcept {
  Registry* stage = detail::stage_slot();
  return stage != nullptr ? *stage : Registry::global();
}

/// RAII: route this thread's instrumentation into `stage` for the guard's
/// lifetime.  Used around each parallel work item; the launcher merges the
/// stages back in index order.  Nestable (restores the previous sink).
class ScopedStage {
 public:
  explicit ScopedStage(Registry& stage) noexcept : prev_(detail::stage_slot()) {
    detail::stage_slot() = &stage;
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;
  ~ScopedStage() { detail::stage_slot() = prev_; }

 private:
  Registry* prev_;
};

// ---------------------------------------------------------------------------
// Instrumentation hooks (compile to nothing with SIMTMSG_TELEMETRY=OFF).

inline void count(std::string_view name, std::uint64_t n = 1) {
  if constexpr (kEnabled) sink().counter(name).add(n);
}

inline void observe(std::string_view name, std::uint64_t v) {
  if constexpr (kEnabled) sink().histogram(name).record(v);
}

inline void set_gauge(std::string_view name, double v) {
  if constexpr (kEnabled) sink().gauge(name).set(v);
}

inline void charge_phase(std::string_view name, double device_cycles,
                         std::uint64_t calls = 1) {
  if constexpr (kEnabled) {
    auto& p = sink().phase(name);
    p.calls += calls;
    p.device_cycles += device_cycles;
  }
}

}  // namespace simtmsg::telemetry

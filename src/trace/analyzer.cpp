#include "trace/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "matching/envelope.hpp"
#include "util/stats.hpp"

namespace simtmsg::trace {

TraceCharacteristics analyze(const Trace& trace) {
  TraceCharacteristics c;
  c.app_name = trace.app_name;
  c.suite = trace.suite;
  c.ranks = trace.ranks;

  std::set<std::int32_t> comms;
  std::set<std::int32_t> tags;
  std::vector<std::set<std::int32_t>> peers_of(trace.ranks);
  // Per-destination {src, tag} histograms (Figure 6a).
  std::vector<util::Histogram> tuples_to(trace.ranks);

  for (const auto& e : trace.events) {
    comms.insert(e.comm);
    if (e.type == EventType::kSend) {
      c.sends += 1;
      tags.insert(e.tag);
      c.max_tag = std::max(c.max_tag, e.tag);
      peers_of[e.rank].insert(e.peer);
      const auto key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.rank)) << 32) |
                       static_cast<std::uint32_t>(e.tag);
      tuples_to[static_cast<std::size_t>(e.peer)].add(key);
    } else {
      c.recvs += 1;
      c.src_wildcards += (e.peer == matching::kAnySource);
      c.tag_wildcards += (e.tag == matching::kAnyTag);
    }
  }

  c.communicators = comms.size();
  c.distinct_tags = tags.size();

  std::size_t senders = 0;
  std::size_t peer_sum = 0;
  for (const auto& p : peers_of) {
    if (p.empty()) continue;
    ++senders;
    peer_sum += p.size();
    c.max_peers = std::max(c.max_peers, p.size());
  }
  c.avg_peers = senders > 0 ? static_cast<double>(peer_sum) / static_cast<double>(senders) : 0.0;

  double share_sum = 0.0;
  std::size_t destinations = 0;
  for (const auto& h : tuples_to) {
    if (h.total() == 0) continue;
    ++destinations;
    const double share = h.max_share_percent();
    share_sum += share;
    c.tuple_max_share_worst = std::max(c.tuple_max_share_worst, share);
  }
  c.tuple_max_share_avg =
      destinations > 0 ? share_sum / static_cast<double>(destinations) : 0.0;

  return c;
}

}  // namespace simtmsg::trace

// TraceAnalyzer: the static communication characteristics of Section IV —
// the columns of Table I (wildcard usage, communicator count, peers per
// rank, distinct tags) and the Figure 6a tuple-uniqueness metric.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace simtmsg::trace {

struct TraceCharacteristics {
  std::string app_name;
  std::string suite;
  std::uint32_t ranks = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;

  // Table I columns.
  std::uint64_t src_wildcards = 0;    ///< Receives using MPI_ANY_SOURCE.
  std::uint64_t tag_wildcards = 0;    ///< Receives using MPI_ANY_TAG.
  std::size_t communicators = 0;      ///< Distinct comms in point-to-point traffic.
  double avg_peers = 0.0;             ///< Mean distinct destinations per sending rank.
  std::size_t max_peers = 0;
  std::size_t distinct_tags = 0;      ///< Distinct send tags.
  std::int32_t max_tag = 0;

  // Figure 6a: share of the most frequent {src, tag} tuple among all
  // messages to a destination, averaged over destinations (and the worst
  // destination).  Low values favour hash tables.
  double tuple_max_share_avg = 0.0;   ///< Percent.
  double tuple_max_share_worst = 0.0; ///< Percent.

  /// Paper Section IV: "none of the applications needs tag values longer
  /// than 16 bits" — true when max_tag fits.
  [[nodiscard]] bool tags_fit_16bit() const noexcept { return max_tag <= 0xFFFF; }
};

[[nodiscard]] TraceCharacteristics analyze(const Trace& trace);

}  // namespace simtmsg::trace

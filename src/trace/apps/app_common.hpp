// Shared building blocks for the proxy-application skeleton generators.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "trace/record.hpp"
#include "util/rng.hpp"

namespace simtmsg::trace::apps {

/// A periodic 3D process grid (the layout of every stencil proxy app).
struct Grid3 {
  int nx = 1, ny = 1, nz = 1;

  /// Largest near-cubic grid with nx*ny*nz <= ranks.
  static Grid3 fit(std::uint32_t ranks) {
    Grid3 g;
    const int side = std::max(1, static_cast<int>(std::cbrt(static_cast<double>(ranks))));
    g.nx = g.ny = g.nz = side;
    // Greedily grow dimensions while the product still fits.
    while (static_cast<std::uint32_t>((g.nx + 1) * g.ny * g.nz) <= ranks) ++g.nx;
    while (static_cast<std::uint32_t>(g.nx * (g.ny + 1) * g.nz) <= ranks) ++g.ny;
    return g;
  }

  [[nodiscard]] std::uint32_t ranks() const {
    return static_cast<std::uint32_t>(nx * ny * nz);
  }

  [[nodiscard]] int rank_of(int x, int y, int z) const {
    const auto wrap = [](int v, int n) { return ((v % n) + n) % n; };
    return (wrap(z, nz) * ny + wrap(y, ny)) * nx + wrap(x, nx);
  }

  /// Chebyshev-ball neighbours of `rank` within `radius` (excluding self).
  /// radius 1 = the 26-point halo (LULESH); radius 1 with faces_only = the
  /// 6-point halo (MiniFE); radius 2 widens toward CNS's ~70 peers.
  [[nodiscard]] std::vector<int> neighbors(int rank, int radius,
                                           bool faces_only = false) const {
    const int x = rank % nx;
    const int y = (rank / nx) % ny;
    const int z = rank / (nx * ny);
    std::vector<int> out;
    for (int dz = -radius; dz <= radius; ++dz) {
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          if (faces_only && (std::abs(dx) + std::abs(dy) + std::abs(dz)) != 1) continue;
          const int n = rank_of(x + dx, y + dy, z + dz);
          if (n == rank) continue;  // Periodic wrap collapsed on tiny grids.
          out.push_back(n);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

/// Event-emission cursor: keeps the logical clock and appends records.
class Emitter {
 public:
  explicit Emitter(Trace& trace) : trace_(&trace) {}

  void send(std::uint32_t from, int to, int tag, int comm = 0) {
    trace_->events.push_back({time_, from, EventType::kSend, to, tag, comm});
  }

  void recv(std::uint32_t at, int src, int tag, int comm = 0) {
    trace_->events.push_back({time_, at, EventType::kRecvPost, src, tag, comm});
  }

  /// Advance the logical clock (a new phase: everything emitted before
  /// happens-before everything emitted after).
  void tick() { ++time_; }

  [[nodiscard]] std::uint64_t now() const { return time_; }

 private:
  Trace* trace_;
  std::uint64_t time_ = 0;
};

/// A pre-posted halo exchange step: receives first (time t), sends after
/// (time t+1) — the discipline LULESH uses ("already posts the vast
/// majority of receive requests in advance", Section VII-B).
inline void halo_step_preposted(Emitter& em, const Grid3& grid, int radius,
                                bool faces_only, std::span<const int> tags,
                                int msgs_per_tag = 1) {
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      for (const int tag : tags) {
        for (int m = 0; m < msgs_per_tag; ++m) em.recv(r, n, tag);
      }
    }
  }
  em.tick();
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      for (const int tag : tags) {
        for (int m = 0; m < msgs_per_tag; ++m) em.send(r, n, tag);
      }
    }
  }
  em.tick();
}

/// A late-posted exchange step: all sends land first, receives are posted
/// afterwards *in arrival order* — the discipline that builds deep UMQs
/// (NEKBONE, EXACT MultiGrid in Figure 2).
inline void burst_step_late(Emitter& em, const Grid3& grid, int radius,
                            bool faces_only, int msgs_per_peer, int tag_base) {
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      for (int m = 0; m < msgs_per_peer; ++m) em.send(r, n, tag_base + m);
    }
  }
  em.tick();
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      for (int m = 0; m < msgs_per_peer; ++m) em.recv(r, n, tag_base + m);
    }
  }
  em.tick();
}

/// Right-skewed per-destination burst volumes (few hot ranks own many
/// elements): multiplier with mean ~1 and median ~0.5, matching Figure 2's
/// spread (NEKBONE: mean max ~4,000 but median ~1,800 across ranks).
[[nodiscard]] inline std::vector<double> skewed_volume_factors(std::uint32_t ranks,
                                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> f(ranks);
  for (auto& v : f) {
    const double u = rng.uniform();
    v = std::min(0.25 / (1.02 - u), 6.0);  // Pareto-ish tail, capped.
  }
  return f;
}

/// burst_step_late with per-destination volume scaling.
inline void burst_step_late_skewed(Emitter& em, const Grid3& grid, int radius,
                                   bool faces_only, int base_msgs, int tag_base,
                                   std::span<const double> dst_factor) {
  const auto msgs_to = [&](int dst) {
    return std::max(1, static_cast<int>(static_cast<double>(base_msgs) *
                                        dst_factor[static_cast<std::size_t>(dst)]));
  };
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      for (int m = 0; m < msgs_to(n); ++m) em.send(r, n, tag_base + m);
    }
  }
  em.tick();
  for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
    for (const int n : grid.neighbors(static_cast<int>(r), radius, faces_only)) {
      // Receiver r picks up exactly the volume each neighbour sent it.
      for (int m = 0; m < msgs_to(static_cast<int>(r)); ++m) em.recv(r, n, tag_base + m);
    }
  }
  em.tick();
}

}  // namespace simtmsg::trace::apps

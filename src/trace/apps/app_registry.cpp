#include <array>
#include <cctype>

#include "trace/apps/apps.hpp"

namespace simtmsg::trace::apps {
namespace {

constexpr std::array<AppInfo, 13> kApps = {{
    {"LULESH", "EXMATEX", "3D 27-point halo, 3 tags, pre-posted receives", 1000,
     false, &lulesh},
    {"CMC", "EXMATEX", "Monte Carlo particle streaming, 6-point halo, late receives",
     1024, false, &cmc},
    {"AMG", "Design Forward", "multigrid V-cycle, strided peers (~79), <4 tags",
     13824, false, &amg},
    {"MiniFE", "Design Forward", "CG halo + ANY_SOURCE residual pickup at rank 0",
     1152, true, &minife},
    {"MiniDFT", "Design Forward", "7 communicators, transpose rings, thousands of tags",
     1200, true, &minidft},
    {"PARTISN", "Design Forward", "KBA sweeps, 4 peers, thousands of tags", 1024,
     false, &partisn},
    {"SNAP", "Design Forward", "KBA sweeps, 4 peers, hundreds of tags", 1024, false,
     &snap},
    {"AMR Boxlib", "Design Forward", "irregular box exchange, hub-skewed peers", 1728,
     false, &amr_boxlib},
    {"BigFFT", "Design Forward", "all-to-all transpose, single tag", 1024, false,
     &bigfft},
    {"NEKBONE", "CESAR", "gather-scatter bursts, UMQ ~4000, 2 communicators", 1024,
     false, &nekbone},
    {"MOCFE", "CESAR", "angular sweeps, thousands of (angle, group) tags", 1024,
     false, &mocfe},
    {"CNS", "EXACT", "radius-2 stencil, ~72 peers, 3 tags", 1728, false, &exact_cns},
    {"MultiGrid", "EXACT", "fine-level smoother bursts, UMQ ~2000", 1728, false,
     &exact_multigrid},
}};

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::span<const AppInfo> all_apps() { return kApps; }

const AppInfo* find_app(std::string_view name) {
  for (const auto& app : kApps) {
    if (iequals(app.name, name)) return &app;
  }
  return nullptr;
}

}  // namespace simtmsg::trace::apps

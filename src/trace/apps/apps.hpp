// Synthetic DOE exascale proxy applications (Section IV, Table I).
//
// The real DOE Design Forward / CESAR / EXMATEX / EXACT DUMPI traces are
// not redistributable with this repository, so each proxy application is
// reproduced as a *communication skeleton generator*: the peer topology,
// tag usage, wildcard usage, communicator count, posting discipline
// (pre-posted vs late) and message volume are parameterized to the
// characteristics the paper reports (Table I, Figure 2, Figure 6a).  The
// analyses (analyzer.hpp, replay.hpp) consume these traces through exactly
// the code path a DUMPI reader would feed.
//
// DESIGN.md §2 documents this substitution and why it preserves the
// analyses' behaviour.
#pragma once

#include <span>
#include <string_view>

#include "trace/record.hpp"

namespace simtmsg::trace::apps {

struct AppParams {
  std::uint32_t ranks = 64;  ///< Requested scale; generators may round down.
  int iterations = 3;        ///< Timesteps / solver iterations.
  std::uint64_t seed = 1;
  /// Scale factor on per-iteration message volume (1.0 = calibrated
  /// defaults that land the paper's Figure 2 queue depths).
  double volume_scale = 1.0;
};

using Generator = Trace (*)(const AppParams&);

struct AppInfo {
  std::string_view name;
  std::string_view suite;
  std::string_view skeleton;    ///< One-line communication pattern summary.
  std::uint32_t paper_ranks;    ///< Scale of the DOE trace the paper analyzed.
  bool uses_src_wildcard;       ///< Table I: MPI_ANY_SOURCE usage.
  Generator generate;
};

/// All thirteen proxy applications, in suite order.
[[nodiscard]] std::span<const AppInfo> all_apps();

/// Case-insensitive lookup; nullptr when unknown.
[[nodiscard]] const AppInfo* find_app(std::string_view name);

// Individual generators (exposed for targeted tests).
[[nodiscard]] Trace lulesh(const AppParams&);        // EXMATEX
[[nodiscard]] Trace cmc(const AppParams&);           // EXMATEX
[[nodiscard]] Trace amg(const AppParams&);           // Design Forward
[[nodiscard]] Trace minife(const AppParams&);        // Design Forward
[[nodiscard]] Trace minidft(const AppParams&);       // Design Forward
[[nodiscard]] Trace partisn(const AppParams&);       // Design Forward
[[nodiscard]] Trace snap(const AppParams&);          // Design Forward
[[nodiscard]] Trace amr_boxlib(const AppParams&);    // Design Forward
[[nodiscard]] Trace bigfft(const AppParams&);        // Design Forward
[[nodiscard]] Trace nekbone(const AppParams&);       // CESAR
[[nodiscard]] Trace mocfe(const AppParams&);         // CESAR
[[nodiscard]] Trace exact_cns(const AppParams&);     // EXACT
[[nodiscard]] Trace exact_multigrid(const AppParams&);  // EXACT

}  // namespace simtmsg::trace::apps

// Stencil / halo-exchange proxy apps: LULESH, MiniFE, EXACT CNS, CMC.
#include "trace/apps/app_common.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg::trace::apps {

// EXMATEX LULESH: shock hydrodynamics on a 3D 27-point halo — 26 peers,
// three distinct tags (Table I: "less than four different tags"), no
// wildcards, receives pre-posted (Section VII-B).  Shallow queues.
Trace lulesh(const AppParams& p) {
  Trace t;
  t.app_name = "LULESH";
  t.suite = "EXMATEX";
  const Grid3 grid = Grid3::fit(p.ranks);
  t.ranks = grid.ranks();

  Emitter em(t);
  const int msgs = std::max(1, static_cast<int>(1 * p.volume_scale));
  const int tags[3] = {1024, 1025, 1026};  // Position, velocity, force phases.
  for (int it = 0; it < p.iterations; ++it) {
    halo_step_preposted(em, grid, /*radius=*/1, /*faces_only=*/false, tags, msgs);
  }
  sort_events(t);
  return t;
}

// Design Forward MiniFE: unstructured implicit finite elements (CG solve).
// 6-point face halo per iteration plus a src-wildcard reduction pickup —
// MiniFE is one of only two Table I apps using MPI_ANY_SOURCE.
Trace minife(const AppParams& p) {
  Trace t;
  t.app_name = "MiniFE";
  t.suite = "Design Forward";
  const Grid3 grid = Grid3::fit(p.ranks);
  t.ranks = grid.ranks();

  Emitter em(t);
  const int msgs = std::max(1, static_cast<int>(2 * p.volume_scale));
  const int tags[2] = {0, 1};  // Halo and dot-product phases.
  for (int it = 0; it < p.iterations; ++it) {
    halo_step_preposted(em, grid, /*radius=*/1, /*faces_only=*/true, tags, msgs);

    // Residual collection at rank 0 via MPI_ANY_SOURCE.
    for (std::uint32_t r = 1; r < t.ranks; ++r) {
      em.recv(0, matching::kAnySource, 2);
    }
    em.tick();
    for (std::uint32_t r = 1; r < t.ranks; ++r) em.send(r, 0, 2);
    em.tick();
  }
  sort_events(t);
  return t;
}

// EXACT CNS: compressible Navier-Stokes with a wide anisotropic stencil
// (radius 2 in x/y, radius 1 in z: 5x5x3-1 = 74 peers) — the Table I
// outlier spreading messages across ~72 peers.  Few tags.
Trace exact_cns(const AppParams& p) {
  Trace t;
  t.app_name = "CNS";
  t.suite = "EXACT";
  const Grid3 grid = Grid3::fit(std::max<std::uint32_t>(p.ranks, 125));
  t.ranks = grid.ranks();

  const auto wide_neighbors = [&](int rank) {
    const int x = rank % grid.nx;
    const int y = (rank / grid.nx) % grid.ny;
    const int z = rank / (grid.nx * grid.ny);
    std::vector<int> out;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const int n = grid.rank_of(x + dx, y + dy, z + dz);
          if (n != rank) out.push_back(n);
        }
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  Emitter em(t);
  const int msgs = std::max(1, static_cast<int>(1 * p.volume_scale));
  const int tags[3] = {7, 8, 9};  // Hyperbolic, diffusive, correction terms.
  for (int it = 0; it < p.iterations; ++it) {
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      for (const int n : wide_neighbors(static_cast<int>(r))) {
        for (const int tag : tags) {
          for (int m = 0; m < msgs; ++m) em.recv(r, n, tag);
        }
      }
    }
    em.tick();
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      for (const int n : wide_neighbors(static_cast<int>(r))) {
        for (const int tag : tags) {
          for (int m = 0; m < msgs; ++m) em.send(r, n, tag);
        }
      }
    }
    em.tick();
  }
  sort_events(t);
  return t;
}

// EXMATEX CMC (Monte Carlo proxy): particles stream to the 6 face
// neighbours; receivers cannot know the count in advance, so receives are
// posted late with modest per-peer volume — mid-depth UMQs, single tag.
Trace cmc(const AppParams& p) {
  Trace t;
  t.app_name = "CMC";
  t.suite = "EXMATEX";
  const Grid3 grid = Grid3::fit(p.ranks);
  t.ranks = grid.ranks();

  util::Rng rng(p.seed);
  Emitter em(t);
  constexpr int kParticleTag = 3;
  for (int it = 0; it < p.iterations; ++it) {
    // Particle counts vary per (sender, neighbour) pair: 4..20 messages.
    // The same counts drive both sides so every particle is eventually
    // received.
    std::vector<std::vector<int>> counts(t.ranks);
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      const auto neigh = grid.neighbors(static_cast<int>(r), 1, /*faces_only=*/true);
      counts[r].resize(neigh.size());
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        counts[r][i] = 4 + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(17 * p.volume_scale) + 1));
      }
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        for (int m = 0; m < counts[r][i]; ++m) em.send(r, neigh[i], kParticleTag);
      }
    }
    em.tick();
    // Receivers post after arrival (particle counts are data-dependent).
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      const auto neigh = grid.neighbors(static_cast<int>(r), 1, /*faces_only=*/true);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        // Mirror the sender's draw: neighbour lists are symmetric on a
        // periodic grid, so find r in the neighbour's list.
        const auto& back = grid.neighbors(neigh[i], 1, /*faces_only=*/true);
        std::size_t j = 0;
        while (j < back.size() && back[j] != static_cast<int>(r)) ++j;
        const int particles = counts[static_cast<std::size_t>(neigh[i])][j];
        for (int m = 0; m < particles; ++m) em.recv(r, neigh[i], kParticleTag);
      }
    }
    em.tick();
  }
  sort_events(t);
  return t;
}

}  // namespace simtmsg::trace::apps

// Multigrid / AMR proxy apps: AMG, EXACT MultiGrid, AMR Boxlib.
#include "trace/apps/app_common.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg::trace::apps {
namespace {

/// Neighbours at grid stride 2^level — coarser V-cycle levels reach
/// progressively farther ranks, which is how AMG accumulates ~79 distinct
/// peers (Table I) while each level stays a compact stencil.
std::vector<int> level_neighbors(const Grid3& grid, int rank, int level) {
  const int stride = 1 << level;
  const int x = rank % grid.nx;
  const int y = (rank / grid.nx) % grid.ny;
  const int z = rank / (grid.nx * grid.ny);
  std::vector<int> out;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int n = grid.rank_of(x + dx * stride, y + dy * stride, z + dz * stride);
        if (n != rank) out.push_back(n);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void vcycle_level(Emitter& em, const Grid3& grid, int level, int tag,
                  int msgs_per_peer, bool preposted) {
  const auto side = [&](bool recv_side) {
    for (std::uint32_t r = 0; r < grid.ranks(); ++r) {
      for (const int n : level_neighbors(grid, static_cast<int>(r), level)) {
        for (int m = 0; m < msgs_per_peer; ++m) {
          if (recv_side) {
            em.recv(r, n, tag);
          } else {
            em.send(r, n, tag);
          }
        }
      }
    }
    em.tick();
  };
  if (preposted) {
    side(/*recv_side=*/true);
    side(/*recv_side=*/false);
  } else {
    side(/*recv_side=*/false);
    side(/*recv_side=*/true);
  }
}

}  // namespace

// Design Forward AMG: algebraic multigrid V-cycles.  Many distinct peers
// across levels (~79 at the paper's scale), fewer than four tags, receives
// pre-posted, shallow queues.
Trace amg(const AppParams& p) {
  Trace t;
  t.app_name = "AMG";
  t.suite = "Design Forward";
  const Grid3 grid = Grid3::fit(std::max<std::uint32_t>(p.ranks, 64));
  t.ranks = grid.ranks();

  Emitter em(t);
  const int msgs = std::max(1, static_cast<int>(1 * p.volume_scale));
  const int levels = 4;
  for (int it = 0; it < p.iterations; ++it) {
    for (int level = 0; level < levels; ++level) {  // Down-sweep.
      vcycle_level(em, grid, level, /*tag=*/1, msgs, /*preposted=*/true);
    }
    for (int level = levels - 1; level >= 0; --level) {  // Up-sweep.
      vcycle_level(em, grid, level, /*tag=*/2, msgs, /*preposted=*/true);
    }
  }
  sort_events(t);
  return t;
}

// EXACT MultiGrid: geometric multigrid whose fine-level smoother exchanges
// many messages per peer *before* receives are posted — the app whose UMQ
// reaches ~2,000 entries (mean across ranks) in Figure 2.
Trace exact_multigrid(const AppParams& p) {
  Trace t;
  t.app_name = "MultiGrid";
  t.suite = "EXACT";
  const Grid3 grid = Grid3::fit(p.ranks);
  t.ranks = grid.ranks();

  Emitter em(t);
  // 26 peers x ~77 messages at the mean ~= 2000 unexpected messages at the
  // burst peak, with skewed per-rank box ownership spreading the maxima.
  const int fine_msgs = std::max(1, static_cast<int>(77 * p.volume_scale));
  const auto factors = skewed_volume_factors(t.ranks, p.seed + 17);
  for (int it = 0; it < p.iterations; ++it) {
    burst_step_late_skewed(em, grid, /*radius=*/1, /*faces_only=*/false, fine_msgs,
                           /*tag_base=*/100, factors);
    // Coarser levels: modest, pre-posted.
    for (int level = 1; level < 4; ++level) {
      vcycle_level(em, grid, level, /*tag=*/level, 1, /*preposted=*/true);
    }
  }
  sort_events(t);
  return t;
}

// Design Forward AMR Boxlib: block-structured adaptive refinement.  Peer
// selection is irregular (a few "hub" ranks own many boxes) — the Table I
// app with irregular communication behaviour and the Figure 6a outlier
// (one {src, tag} tuple dominating traffic to the hubs).
Trace amr_boxlib(const AppParams& p) {
  Trace t;
  t.app_name = "AMR Boxlib";
  t.suite = "Design Forward";
  t.ranks = std::max<std::uint32_t>(p.ranks, 16);

  util::Rng rng(p.seed);
  Emitter em(t);
  const int exchanges = std::max(1, static_cast<int>(40 * p.volume_scale));
  const std::uint32_t hubs = std::max<std::uint32_t>(2, t.ranks / 16);

  for (int it = 0; it < p.iterations; ++it) {
    // Fill-boundary phase: every rank exchanges with a skewed peer set —
    // hubs attract most traffic (power-law-ish box ownership).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      for (int e = 0; e < exchanges; ++e) {
        const bool to_hub = rng.chance(0.6);
        std::uint32_t dst =
            to_hub ? static_cast<std::uint32_t>(rng.below(hubs))
                   : static_cast<std::uint32_t>(rng.below(t.ranks));
        if (dst == r) dst = (dst + 1) % t.ranks;
        pairs.emplace_back(r, dst);
      }
    }
    for (const auto& [from, to] : pairs) em.recv(to, static_cast<int>(from), 11);
    em.tick();
    for (const auto& [from, to] : pairs) em.send(from, static_cast<int>(to), 11);
    em.tick();
  }
  sort_events(t);
  return t;
}

}  // namespace simtmsg::trace::apps

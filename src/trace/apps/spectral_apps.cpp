// Spectral / dense-solver proxy apps: MiniDFT, NEKBONE, MOCFE, BigFFT.
#include "trace/apps/app_common.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg::trace::apps {

// Design Forward MiniDFT: plane-wave DFT.  The Table I outlier for
// communicator usage (7 communicators: row/column/band/pool splits) and one
// of two apps using MPI_ANY_SOURCE; thousands of distinct tags.
Trace minidft(const AppParams& p) {
  Trace t;
  t.app_name = "MiniDFT";
  t.suite = "Design Forward";
  t.ranks = std::max<std::uint32_t>(p.ranks, 16);

  util::Rng rng(p.seed);
  Emitter em(t);
  const std::uint32_t row = std::max<std::uint32_t>(2, t.ranks / 4);
  const int bands = std::max(1, static_cast<int>(12 * p.volume_scale));

  int tag_counter = 0;
  for (int it = 0; it < p.iterations; ++it) {
    // 7 communicators: world(0), row(1), col(2), band(3..5), pool(6).
    for (int comm = 0; comm < 7; ++comm) {
      // Transpose-style exchange inside the communicator's process group:
      // ring distance sweep with a fresh tag per (band, step) pair — this
      // is what inflates the distinct-tag count into the thousands.
      for (int b = 0; b < bands; ++b) {
        const int tag = tag_counter++ % 30000;
        for (std::uint32_t r = 0; r < t.ranks; ++r) {
          const std::uint32_t peer = (r + 1 + static_cast<std::uint32_t>(b)) % row +
                                     (r / row) * row;
          if (peer == r || peer >= t.ranks) continue;
          // ~15% of receives use MPI_ANY_SOURCE (scatter collection).
          const bool wildcard = rng.chance(0.15);
          em.recv(peer, wildcard ? matching::kAnySource : static_cast<int>(r), tag, comm);
        }
        em.tick();
        for (std::uint32_t r = 0; r < t.ranks; ++r) {
          const std::uint32_t peer = (r + 1 + static_cast<std::uint32_t>(b)) % row +
                                     (r / row) * row;
          if (peer == r || peer >= t.ranks) continue;
          em.send(r, static_cast<int>(peer), tag, comm);
        }
        em.tick();
      }
    }
  }
  sort_events(t);
  return t;
}

// CESAR NEKBONE: spectral-element CG kernel.  Two communicators; the
// Figure 2 extreme — gather bursts send ~4,000 messages per rank before
// any receive is posted (mean max UMQ ~4,000, median ~1,800).
Trace nekbone(const AppParams& p) {
  Trace t;
  t.app_name = "NEKBONE";
  t.suite = "CESAR";
  const Grid3 grid = Grid3::fit(std::min<std::uint32_t>(p.ranks, 32));
  t.ranks = grid.ranks();

  Emitter em(t);
  // 26-peer gather-scatter, ~154 messages per peer at the mean: per-rank
  // element counts are skewed, so maxima average ~4,000 with a much lower
  // median (Figure 2).
  const int msgs = std::max(1, static_cast<int>(154 * p.volume_scale));
  const auto factors = skewed_volume_factors(t.ranks, p.seed);
  for (int it = 0; it < p.iterations; ++it) {
    burst_step_late_skewed(em, grid, /*radius=*/1, /*faces_only=*/false, msgs,
                           /*tag_base=*/0, factors);
    // Dot products on the second communicator (comm 1), pre-posted.
    for (std::uint32_t r = 1; r < t.ranks; ++r) em.recv(0, static_cast<int>(r), 9000, 1);
    em.tick();
    for (std::uint32_t r = 1; r < t.ranks; ++r) em.send(r, 0, 9000, 1);
    em.tick();
  }
  sort_events(t);
  return t;
}

// CESAR MOCFE: method-of-characteristics neutron transport.  Angular
// sweeps tag each (angle, energy-group) segment distinctly — thousands of
// tags over a compact face-neighbour set.
Trace mocfe(const AppParams& p) {
  Trace t;
  t.app_name = "MOCFE";
  t.suite = "CESAR";
  const Grid3 grid = Grid3::fit(p.ranks);
  t.ranks = grid.ranks();

  Emitter em(t);
  const int angles = std::max(1, static_cast<int>(16 * p.volume_scale));
  const int groups = 8;
  for (int it = 0; it < p.iterations; ++it) {
    for (int a = 0; a < angles; ++a) {
      for (int g = 0; g < groups; ++g) {
        const int tag = (a * groups + g) % 20000;
        halo_step_preposted(em, grid, /*radius=*/1, /*faces_only=*/true,
                            std::span<const int>(&tag, 1));
      }
    }
  }
  sort_events(t);
  return t;
}

// Design Forward BigFFT: 3D FFT transpose — every rank exchanges with every
// other rank (peers ~= ranks), a single tag, pre-posted; the uniform
// all-to-all keeps queues shallow and tuple shares at 1/ranks.
Trace bigfft(const AppParams& p) {
  Trace t;
  t.app_name = "BigFFT";
  t.suite = "Design Forward";
  t.ranks = std::max<std::uint32_t>(p.ranks, 8);

  Emitter em(t);
  constexpr int kTransposeTag = 77;
  for (int it = 0; it < p.iterations; ++it) {
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      for (std::uint32_t s = 0; s < t.ranks; ++s) {
        if (s != r) em.recv(r, static_cast<int>(s), kTransposeTag);
      }
    }
    em.tick();
    for (std::uint32_t r = 0; r < t.ranks; ++r) {
      for (std::uint32_t s = 0; s < t.ranks; ++s) {
        if (s != r) em.send(r, static_cast<int>(s), kTransposeTag);
      }
    }
    em.tick();
  }
  sort_events(t);
  return t;
}

}  // namespace simtmsg::trace::apps

// Wavefront-sweep proxy apps: PARTISN and SNAP (discrete-ordinates
// transport with KBA pipelining).
#include "trace/apps/app_common.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg::trace::apps {
namespace {

/// KBA sweep over a 2D process grid: each octant's wavefront moves
/// diagonally; a cell receives from its upwind neighbours and sends to its
/// downwind neighbours.  Each (octant, plane, group) step carries a fresh
/// tag — the source of PARTISN's thousands of distinct tags (Table I).
void kba_sweep(Emitter& em, int px, int py, int octants, int planes, int groups,
               int& tag_counter) {
  const auto rank_at = [&](int x, int y) { return y * px + x; };

  for (int oct = 0; oct < octants; ++oct) {
    const bool xpos = (oct & 1) != 0;
    const bool ypos = (oct & 2) != 0;
    for (int g = 0; g < groups; ++g) {
      for (int plane = 0; plane < planes; ++plane) {
        const int tag = tag_counter++ % 25000;
        // Downwind receives are posted as the wavefront approaches (late
        // relative to the upwind sends of the same diagonal) — modest UMQ.
        for (int y = 0; y < py; ++y) {
          for (int x = 0; x < px; ++x) {
            const int ux = xpos ? x - 1 : x + 1;
            const int uy = ypos ? y - 1 : y + 1;
            if (ux >= 0 && ux < px) {
              em.send(static_cast<std::uint32_t>(rank_at(ux, y)), rank_at(x, y), tag);
            }
            if (uy >= 0 && uy < py) {
              em.send(static_cast<std::uint32_t>(rank_at(x, uy)), rank_at(x, y), tag);
            }
          }
        }
        em.tick();
        for (int y = 0; y < py; ++y) {
          for (int x = 0; x < px; ++x) {
            const int ux = xpos ? x - 1 : x + 1;
            const int uy = ypos ? y - 1 : y + 1;
            if (ux >= 0 && ux < px) em.recv(static_cast<std::uint32_t>(rank_at(x, y)), rank_at(ux, y), tag);
            if (uy >= 0 && uy < py) em.recv(static_cast<std::uint32_t>(rank_at(x, y)), rank_at(x, uy), tag);
          }
        }
        em.tick();
      }
    }
  }
}

[[nodiscard]] std::pair<int, int> fit_2d(std::uint32_t ranks) {
  int px = 1;
  while ((px + 1) * (px + 1) <= static_cast<int>(ranks)) ++px;
  return {px, px};
}

}  // namespace

// Design Forward PARTISN: SN transport, KBA sweeps over 2D decomposition.
// Four peers per rank, thousands of tags, no wildcards.
Trace partisn(const AppParams& p) {
  Trace t;
  t.app_name = "PARTISN";
  t.suite = "Design Forward";
  const auto [px, py] = fit_2d(p.ranks);
  t.ranks = static_cast<std::uint32_t>(px * py);

  Emitter em(t);
  int tag_counter = 0;
  const int planes = std::max(1, static_cast<int>(8 * p.volume_scale));
  for (int it = 0; it < p.iterations; ++it) {
    kba_sweep(em, px, py, /*octants=*/4, planes, /*groups=*/12, tag_counter);
  }
  sort_events(t);
  return t;
}

// Design Forward SNAP: the modern PARTISN proxy; same sweep structure with
// fewer groups and coarser tag reuse (hundreds of tags).
Trace snap(const AppParams& p) {
  Trace t;
  t.app_name = "SNAP";
  t.suite = "Design Forward";
  const auto [px, py] = fit_2d(p.ranks);
  t.ranks = static_cast<std::uint32_t>(px * py);

  Emitter em(t);
  int tag_counter = 0;
  const int planes = std::max(1, static_cast<int>(4 * p.volume_scale));
  for (int it = 0; it < p.iterations; ++it) {
    // Coarser (octant, plane, group) product than PARTISN: the distinct-tag
    // count stays in the hundreds.
    kba_sweep(em, px, py, /*octants=*/4, planes, /*groups=*/4, tag_counter);
  }
  sort_events(t);
  return t;
}

}  // namespace simtmsg::trace::apps

#include "trace/record.hpp"

#include <algorithm>
#include <stdexcept>

namespace simtmsg::trace {

std::size_t Trace::sends() const noexcept {
  std::size_t n = 0;
  for (const auto& e : events) n += (e.type == EventType::kSend);
  return n;
}

std::size_t Trace::recvs() const noexcept {
  std::size_t n = 0;
  for (const auto& e : events) n += (e.type == EventType::kRecvPost);
  return n;
}

void sort_events(Trace& trace) {
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.rank < b.rank;
                   });
}

void validate(const Trace& trace) {
  if (trace.ranks == 0) throw std::invalid_argument("trace has zero ranks");
  for (const auto& e : trace.events) {
    if (e.rank >= trace.ranks) throw std::invalid_argument("event rank out of range");
    if (e.type == EventType::kSend) {
      if (e.peer < 0 || static_cast<std::uint32_t>(e.peer) >= trace.ranks) {
        throw std::invalid_argument("send destination out of range");
      }
      if (e.tag < 0) throw std::invalid_argument("send tag must be concrete");
    } else {
      const bool wild = e.peer == matching::kAnySource;
      if (!wild && (e.peer < 0 || static_cast<std::uint32_t>(e.peer) >= trace.ranks)) {
        throw std::invalid_argument("recv source out of range");
      }
      if (e.tag < 0 && e.tag != matching::kAnyTag) {
        throw std::invalid_argument("recv tag must be concrete or wildcard");
      }
    }
  }
}

}  // namespace simtmsg::trace

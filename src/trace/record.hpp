// Communication-trace records (DUMPI-like, reduced to the fields the
// matching analyses need: Section II-C "General statistics are collected by
// parsing the trace files, while others require message queues to be
// restored any time a matching is attempted").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matching/envelope.hpp"

namespace simtmsg::trace {

enum class EventType : std::uint8_t {
  kSend = 0,      ///< Point-to-point send (MPI_Send/Isend).
  kRecvPost = 1,  ///< Receive request posted (MPI_Recv/Irecv).
};

struct TraceEvent {
  std::uint64_t time = 0;   ///< Logical timestamp; events replay in time order.
  std::uint32_t rank = 0;   ///< Executing rank.
  EventType type = EventType::kSend;
  /// kSend: destination rank.  kRecvPost: source rank or kAnySource.
  std::int32_t peer = 0;
  std::int32_t tag = 0;     ///< kRecvPost may carry kAnyTag.
  std::int32_t comm = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  std::string app_name;
  std::string suite;        ///< e.g. "Design Forward", "CESAR".
  std::uint32_t ranks = 0;
  std::vector<TraceEvent> events;  ///< Sorted by (time, rank).

  [[nodiscard]] std::size_t sends() const noexcept;
  [[nodiscard]] std::size_t recvs() const noexcept;
};

/// Stable sort events by (time, rank, original order).
void sort_events(Trace& trace);

/// Validate invariants: ranks in range, recv peers in range or wildcard,
/// send peers never wildcard.  Throws std::invalid_argument on violation.
void validate(const Trace& trace);

}  // namespace simtmsg::trace

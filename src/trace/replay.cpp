#include "trace/replay.hpp"

#include <list>

#include "matching/envelope.hpp"

namespace simtmsg::trace {
namespace {

using matching::Envelope;
using matching::matches;

/// Per-rank replay state: plain UMQ/PRQ lists plus depth accounting.
struct RankState {
  std::list<Envelope> umq;
  std::list<Envelope> prq;
  RankQueueStats stats;
  std::uint64_t depth_accum_umq = 0;
  std::uint64_t depth_accum_prq = 0;
  std::uint64_t search_accum = 0;

  void observe_depths() {
    stats.match_attempts += 1;
    stats.umq_max = std::max(stats.umq_max, umq.size());
    stats.prq_max = std::max(stats.prq_max, prq.size());
    depth_accum_umq += umq.size();
    depth_accum_prq += prq.size();
  }

  void arrive(const Envelope& msg) {
    observe_depths();
    std::uint64_t steps = 0;
    for (auto it = prq.begin(); it != prq.end(); ++it) {
      ++steps;
      if (matches(*it, msg)) {
        prq.erase(it);
        search_accum += steps;
        stats.expected_messages += 1;
        return;
      }
    }
    search_accum += steps;
    umq.push_back(msg);
    stats.umq_max = std::max(stats.umq_max, umq.size());
    stats.unexpected_messages += 1;
  }

  void post(const Envelope& recv) {
    observe_depths();
    std::uint64_t steps = 0;
    for (auto it = umq.begin(); it != umq.end(); ++it) {
      ++steps;
      if (matches(recv, *it)) {
        umq.erase(it);
        search_accum += steps;
        return;
      }
    }
    search_accum += steps;
    prq.push_back(recv);
    stats.prq_max = std::max(stats.prq_max, prq.size());
  }

  void finalize() {
    if (stats.match_attempts > 0) {
      stats.umq_mean = static_cast<double>(depth_accum_umq) /
                       static_cast<double>(stats.match_attempts);
      stats.prq_mean = static_cast<double>(depth_accum_prq) /
                       static_cast<double>(stats.match_attempts);
      stats.avg_search_length = static_cast<double>(search_accum) /
                                static_cast<double>(stats.match_attempts);
    }
  }
};

}  // namespace

ReplayResult replay_queues(const Trace& trace) {
  std::vector<RankState> states(trace.ranks);

  for (const auto& e : trace.events) {
    if (e.type == EventType::kSend) {
      // Delivered instantly to the destination's matching engine.
      auto& dst = states[static_cast<std::size_t>(e.peer)];
      dst.arrive({.src = static_cast<matching::Rank>(e.rank), .tag = e.tag, .comm = e.comm});
    } else {
      auto& at = states[e.rank];
      at.post({.src = e.peer, .tag = e.tag, .comm = e.comm});
    }
  }

  ReplayResult result;
  result.per_rank.reserve(states.size());
  for (auto& s : states) {
    s.finalize();
    result.per_rank.push_back(s.stats);
  }
  return result;
}

util::Summary ReplayResult::umq_max_summary() const {
  std::vector<double> maxima;
  maxima.reserve(per_rank.size());
  for (const auto& r : per_rank) maxima.push_back(static_cast<double>(r.umq_max));
  return util::summarize(std::span<const double>(maxima));
}

util::Summary ReplayResult::prq_max_summary() const {
  std::vector<double> maxima;
  maxima.reserve(per_rank.size());
  for (const auto& r : per_rank) maxima.push_back(static_cast<double>(r.prq_max));
  return util::summarize(std::span<const double>(maxima));
}

std::uint64_t ReplayResult::total_unexpected() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : per_rank) n += r.unexpected_messages;
  return n;
}

std::uint64_t ReplayResult::total_messages() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : per_rank) n += r.unexpected_messages + r.expected_messages;
  return n;
}

}  // namespace simtmsg::trace

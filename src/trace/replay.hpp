// Queue replay: reconstruct each rank's UMQ and PRQ at every matching
// attempt, the paper's Figure 2 methodology ("Based on the trace files, we
// reconstruct the queues to assess their maximum length at any matching
// attempt").
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "util/stats.hpp"

namespace simtmsg::trace {

struct RankQueueStats {
  std::uint64_t match_attempts = 0;
  std::size_t umq_max = 0;
  std::size_t prq_max = 0;
  double umq_mean = 0.0;  ///< Mean depth observed at match attempts.
  double prq_mean = 0.0;
  std::uint64_t unexpected_messages = 0;  ///< Messages that waited in the UMQ.
  std::uint64_t expected_messages = 0;    ///< Messages matched on arrival.
  double avg_search_length = 0.0;          ///< Mean list positions traversed.
};

struct ReplayResult {
  std::vector<RankQueueStats> per_rank;

  /// Distribution of per-rank maximum UMQ depth — what Figure 2 plots.
  [[nodiscard]] util::Summary umq_max_summary() const;
  [[nodiscard]] util::Summary prq_max_summary() const;

  [[nodiscard]] std::uint64_t total_unexpected() const noexcept;
  [[nodiscard]] std::uint64_t total_messages() const noexcept;
};

/// Replay a (time-sorted) trace through per-rank UMQ/PRQ list matchers.
/// Sends are delivered to the destination instantly (logical time).
[[nodiscard]] ReplayResult replay_queues(const Trace& trace);

}  // namespace simtmsg::trace

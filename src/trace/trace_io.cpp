#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace simtmsg::trace {
namespace {

constexpr char kMagic[4] = {'S', 'M', 'T', 'R'};

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
[[nodiscard]] T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("trace stream truncated");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] std::string get_string(std::istream& is) {
  const auto len = get<std::uint32_t>(is);
  if (len > (1u << 20)) throw std::runtime_error("unreasonable string length in trace");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("trace stream truncated in string");
  return s;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  put(os, kTraceFormatVersion);
  put(os, trace.ranks);
  put_string(os, trace.app_name);
  put_string(os, trace.suite);
  put(os, static_cast<std::uint64_t>(trace.events.size()));
  for (const auto& e : trace.events) {
    put(os, e.time);
    put(os, e.rank);
    put(os, static_cast<std::uint8_t>(e.type));
    put(os, e.peer);
    put(os, e.tag);
    put(os, e.comm);
  }
  if (!os) throw std::runtime_error("trace write failed");
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_binary(trace, os);
}

Trace read_binary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a simt-match trace (bad magic)");
  }
  const auto version = get<std::uint32_t>(is);
  if (version != kTraceFormatVersion) {
    throw std::runtime_error("unsupported trace version " + std::to_string(version));
  }

  Trace t;
  t.ranks = get<std::uint32_t>(is);
  t.app_name = get_string(is);
  t.suite = get_string(is);
  const auto count = get<std::uint64_t>(is);
  // A corrupt count must not drive allocation: reserve only a sane prefix
  // and let push_back grow the rest — a bogus huge count hits the
  // truncation check long before memory becomes a problem.
  t.events.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent e;
    e.time = get<std::uint64_t>(is);
    e.rank = get<std::uint32_t>(is);
    const auto type = get<std::uint8_t>(is);
    if (type > static_cast<std::uint8_t>(EventType::kRecvPost)) {
      throw std::runtime_error("corrupt trace: unknown event type " +
                               std::to_string(type));
    }
    e.type = static_cast<EventType>(type);
    e.peer = get<std::int32_t>(is);
    e.tag = get<std::int32_t>(is);
    e.comm = get<std::int32_t>(is);
    if (t.ranks != 0 && e.rank >= t.ranks) {
      throw std::runtime_error("corrupt trace: event rank " + std::to_string(e.rank) +
                               " out of range for " + std::to_string(t.ranks) +
                               " ranks");
    }
    t.events.push_back(e);
  }
  return t;
}

Trace read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_binary(is);
}

void write_text(const Trace& trace, std::ostream& os) {
  os << "# app=" << trace.app_name << " suite=" << trace.suite
     << " ranks=" << trace.ranks << " events=" << trace.events.size() << "\n";
  for (const auto& e : trace.events) {
    os << e.time << ' ' << e.rank << ' '
       << (e.type == EventType::kSend ? "send" : "recv") << ' ' << e.peer << ' '
       << e.tag << ' ' << e.comm << '\n';
  }
}

}  // namespace simtmsg::trace

// Binary trace serialization (a compact stand-in for the DUMPI format the
// DOE traces ship in) plus a human-readable text dump.
//
// Layout (little-endian):
//   magic "SMTR" | u32 version | u32 ranks |
//   u32 name_len | name bytes | u32 suite_len | suite bytes |
//   u64 event_count | events (packed: u64 time, u32 rank, u8 type,
//                             i32 peer, i32 tag, i32 comm)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace simtmsg::trace {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Serialize to a stream / file.  Throws std::runtime_error on I/O failure.
void write_binary(const Trace& trace, std::ostream& os);
void write_binary_file(const Trace& trace, const std::string& path);

/// Deserialize.  Throws std::runtime_error on corrupt or mismatched input.
[[nodiscard]] Trace read_binary(std::istream& is);
[[nodiscard]] Trace read_binary_file(const std::string& path);

/// One-line-per-event text dump for debugging and the trace_explorer example.
void write_text(const Trace& trace, std::ostream& os);

}  // namespace simtmsg::trace

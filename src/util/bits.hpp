// Bit-manipulation helpers mirroring the CUDA intrinsics the paper's
// algorithms rely on (__ffs, __popc, __clz) plus generic mask utilities.
//
// CUDA's __ffs(x) returns the 1-based position of the least-significant set
// bit, or 0 when x == 0.  Algorithms 1 and 2 of the paper use exactly this
// convention ("ffs(bidders) - 1"), so we keep it instead of the C++20
// 0-based std::countr_zero convention.
#pragma once

#include <bit>
#include <cstdint>

namespace simtmsg::util {

/// CUDA-style find-first-set: 1-based index of the lowest set bit; 0 if none.
[[nodiscard]] constexpr int ffs(std::uint32_t x) noexcept {
  return x == 0 ? 0 : std::countr_zero(x) + 1;
}

/// CUDA-style find-first-set on 64-bit values.
[[nodiscard]] constexpr int ffsll(std::uint64_t x) noexcept {
  return x == 0 ? 0 : std::countr_zero(x) + 1;
}

/// Population count (number of set bits), as CUDA __popc.
[[nodiscard]] constexpr int popc(std::uint32_t x) noexcept {
  return std::popcount(x);
}

/// Count leading zeros, as CUDA __clz (returns 32 for x == 0).
[[nodiscard]] constexpr int clz(std::uint32_t x) noexcept {
  return std::countl_zero(x);
}

/// Mask with the lowest `n` bits set; n may be 0..32.
[[nodiscard]] constexpr std::uint32_t low_mask(int n) noexcept {
  return n >= 32 ? 0xFFFF'FFFFu : (n <= 0 ? 0u : ((1u << n) - 1u));
}

/// True if exactly zero or one bit is set.
[[nodiscard]] constexpr bool at_most_one_bit(std::uint32_t x) noexcept {
  return (x & (x - 1)) == 0;
}

/// Clear bit `pos` (0-based) of `x`.
[[nodiscard]] constexpr std::uint32_t clear_bit(std::uint32_t x, int pos) noexcept {
  return x & ~(1u << pos);
}

/// Set bit `pos` (0-based) of `x`.
[[nodiscard]] constexpr std::uint32_t set_bit(std::uint32_t x, int pos) noexcept {
  return x | (1u << pos);
}

/// Test bit `pos` (0-based) of `x`.
[[nodiscard]] constexpr bool test_bit(std::uint32_t x, int pos) noexcept {
  return (x >> pos) & 1u;
}

/// Round `v` up to the next multiple of `m` (m > 0).
[[nodiscard]] constexpr std::size_t round_up(std::size_t v, std::size_t m) noexcept {
  return ((v + m - 1) / m) * m;
}

/// Integer ceiling division.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Smallest power of two >= v (v >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

/// True if v is a power of two (v > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && std::has_single_bit(v);
}

}  // namespace simtmsg::util

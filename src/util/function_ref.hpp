// FunctionRef: a non-owning, trivially copyable reference to a callable —
// two pointers, no allocation, no virtual dispatch.
//
// std::function's type erasure heap-allocates whenever the captured state
// exceeds its small-buffer slot, which is exactly what happens for the
// capture-heavy lambdas on the matching hot path (kernel bodies, per-index
// pool work, hash-table verifiers).  Those call sites never store the
// callable beyond the call that receives it, so owning semantics buy
// nothing; FunctionRef gives them an allocation-free parameter type.
//
// Lifetime rule: a FunctionRef is valid only while the callable it refers
// to is alive.  Use it as a function parameter (the argument outlives the
// call by construction); never store one in a longer-lived object.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace simtmsg::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() noexcept = default;
  FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Bind any callable invocable as R(Args...).  Intentionally implicit so
  /// lambdas can be passed straight to FunctionRef parameters.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace simtmsg::util

#include "util/hash.hpp"

namespace simtmsg::util {

std::uint32_t jenkins32(std::uint32_t a) noexcept {
  a = (a + 0x7ed55d16u) + (a << 12);
  a = (a ^ 0xc761c23cu) ^ (a >> 19);
  a = (a + 0x165667b1u) + (a << 5);
  a = (a + 0xd3a2646cu) ^ (a << 9);
  a = (a + 0xfd7046c5u) + (a << 3);
  a = (a ^ 0xb55a4f09u) ^ (a >> 16);
  return a;
}

std::uint32_t fnv1a32(std::uint32_t a) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (int i = 0; i < 4; ++i) {
    h ^= (a >> (8 * i)) & 0xFFu;
    h *= 0x01000193u;
  }
  return h;
}

std::uint32_t murmur3_fmix32(std::uint32_t a) noexcept {
  a ^= a >> 16;
  a *= 0x85ebca6bu;
  a ^= a >> 13;
  a *= 0xc2b2ae35u;
  a ^= a >> 16;
  return a;
}

std::uint32_t identity32(std::uint32_t a) noexcept { return a; }

std::uint32_t mix64to32(std::uint64_t v) noexcept {
  const auto lo = static_cast<std::uint32_t>(v);
  const auto hi = static_cast<std::uint32_t>(v >> 32);
  return jenkins32(lo ^ murmur3_fmix32(hi));
}

std::uint32_t hash32(HashKind kind, std::uint32_t a) noexcept {
  switch (kind) {
    case HashKind::kJenkins: return jenkins32(a);
    case HashKind::kFnv1a: return fnv1a32(a);
    case HashKind::kMurmur3Fmix: return murmur3_fmix32(a);
    case HashKind::kIdentity: return identity32(a);
  }
  return jenkins32(a);
}

std::string_view hash_name(HashKind kind) noexcept {
  switch (kind) {
    case HashKind::kJenkins: return "jenkins-6shift";
    case HashKind::kFnv1a: return "fnv1a";
    case HashKind::kMurmur3Fmix: return "murmur3-fmix";
    case HashKind::kIdentity: return "identity";
  }
  return "unknown";
}

}  // namespace simtmsg::util

// Hash functions for the relaxed (out-of-order) matching data structures.
//
// The paper (Section VI-C) uses "Robert Jenkin's 32-bit (6-shifts) hash
// function" for its two-level device hash table and leaves other hash
// functions to future work.  We provide Jenkins as the default plus FNV-1a
// and the Murmur3 finalizer so that bench/ablation_hash can explore that
// future-work axis.
#pragma once

#include <cstdint>
#include <string_view>

namespace simtmsg::util {

/// Robert Jenkins' 32-bit integer hash, the classic 6-shift variant.
[[nodiscard]] std::uint32_t jenkins32(std::uint32_t a) noexcept;

/// FNV-1a over the 4 bytes of `a` (little-endian order).
[[nodiscard]] std::uint32_t fnv1a32(std::uint32_t a) noexcept;

/// MurmurHash3 32-bit finalizer (fmix32) — strong avalanche, very cheap.
[[nodiscard]] std::uint32_t murmur3_fmix32(std::uint32_t a) noexcept;

/// Identity "hash" — pathological baseline for the ablation study.
[[nodiscard]] std::uint32_t identity32(std::uint32_t a) noexcept;

/// 64 -> 32 bit mixing: hash both halves and combine.  Used to hash the
/// packed {src, tag, comm} header word.
[[nodiscard]] std::uint32_t mix64to32(std::uint64_t v) noexcept;

/// Selectable hash function for ablation studies.
enum class HashKind : std::uint8_t {
  kJenkins,       ///< Paper's choice (Section VI-C).
  kFnv1a,
  kMurmur3Fmix,
  kIdentity,      ///< Deliberately bad; shows collision sensitivity.
};

/// Dispatch on HashKind.
[[nodiscard]] std::uint32_t hash32(HashKind kind, std::uint32_t a) noexcept;

/// Human-readable name for reports.
[[nodiscard]] std::string_view hash_name(HashKind kind) noexcept;

}  // namespace simtmsg::util

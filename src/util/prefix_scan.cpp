#include "util/prefix_scan.hpp"

#include <cassert>

namespace simtmsg::util {

std::uint64_t exclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out) {
  assert(out.size() >= in.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(acc);
    acc += in[i];
  }
  return acc;
}

std::uint64_t inclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out) {
  assert(out.size() >= in.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = static_cast<std::uint32_t>(acc);
  }
  return acc;
}

}  // namespace simtmsg::util

// Prefix-scan primitives used by the queue compaction step (Section V-A:
// "The compaction is composed of a prefix scan and memory move operations").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace simtmsg::util {

/// Exclusive prefix sum: out[i] = sum of in[0..i-1]; returns the total.
std::uint64_t exclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out);

/// Inclusive prefix sum: out[i] = sum of in[0..i]; returns the total.
std::uint64_t inclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out);

/// Stream-compact: copy in[i] to the output for every i with keep[i] != 0,
/// preserving relative order.  Returns the compacted vector.
template <typename T>
[[nodiscard]] std::vector<T> compact(std::span<const T> in,
                                     std::span<const std::uint32_t> keep) {
  std::vector<T> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (keep[i] != 0) out.push_back(in[i]);
  }
  return out;
}

}  // namespace simtmsg::util

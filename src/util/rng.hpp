// Deterministic, seedable pseudo-random generators for workload synthesis.
//
// Benchmarks and property tests need reproducible streams that are cheap and
// independent of the standard library's unspecified distributions, so we
// ship splitmix64 (seeding / stateless mixing) and xoshiro256** (bulk
// generation) with small helpers for bounded ints and shuffling.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace simtmsg::util {

/// splitmix64 step: returns the next value and advances `state`.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.  Uses Lemire's
  /// multiply-shift reduction (bias negligible for bound << 2^64).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace simtmsg::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace simtmsg::util {

double percentile(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = percentile(sorted, 25.0);
  s.median = percentile(sorted, 50.0);
  s.q3 = percentile(sorted, 75.0);

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
  return s;
}

Summary summarize(std::span<const std::uint64_t> sample) {
  std::vector<double> d(sample.begin(), sample.end());
  return summarize(std::span<const double>(d));
}

void Histogram::add(std::uint64_t key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count_of(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::max_share_percent() const {
  if (total_ == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [key, count] : counts_) best = std::max(best, count);
  return 100.0 * static_cast<double>(best) / static_cast<double>(total_);
}

}  // namespace simtmsg::util

// Descriptive statistics for the trace analyses (Figure 2 reports mean and
// median UMQ depth across ranks; Figure 6a reports tuple-share percentages).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace simtmsg::util {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;      ///< 25th percentile (linear interpolation).
  double median = 0.0;  ///< 50th percentile.
  double q3 = 0.0;      ///< 75th percentile.
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
};

/// Compute a Summary; an empty sample yields an all-zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> sample);
[[nodiscard]] Summary summarize(std::span<const std::uint64_t> sample);

/// Percentile with linear interpolation, p in [0, 100].  Empty -> 0.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Frequency histogram over arbitrary integer keys.
class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_of(std::uint64_t key) const;

  /// Largest single-key share of the total, in percent (0 when empty).
  /// This is exactly the Figure 6a "uniqueness" metric: the share of the
  /// most frequent {src, tag} tuple among all messages to a destination.
  [[nodiscard]] double max_share_percent() const;

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace simtmsg::util

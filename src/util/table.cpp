#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace simtmsg::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < row.size() ? row[c] : "") << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string AsciiTable::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string AsciiTable::num(std::uint64_t v) { return std::to_string(v); }

std::string AsciiTable::rate_mps(double matches_per_sec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(1) << matches_per_sec / 1e6 << " M/s";
  return ss.str();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os_ << ',';
    os_ << cells[i];
  }
  os_ << '\n';
}

}  // namespace simtmsg::util

// Plain-text table and CSV emitters used by every bench binary so that the
// reproduced tables/figures print in a uniform, diffable format.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace simtmsg::util {

/// Right-pads / aligns cells and draws an ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Append a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Render with column separators and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Formatting helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string rate_mps(double matches_per_sec);  ///< e.g. "6.1 M/s"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (no quoting needed for our numeric output).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace simtmsg::util

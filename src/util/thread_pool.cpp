#include "util/thread_pool.hpp"

#include <algorithm>

namespace simtmsg::util {
namespace {
/// Set while the current thread executes pool work; a nested run_indexed
/// from inside a task degrades to the serial loop instead of deadlocking on
/// the single job slot.
thread_local bool tls_in_pool_task = false;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stopping_ || (job_.active && job_.next < job_.count); });
    if (stopping_) return;
    drain_job(lock);
  }
}

void ThreadPool::drain_job(std::unique_lock<std::mutex>& lock) {
  while (job_.active && job_.next < job_.count) {
    const std::size_t i = job_.next++;
    const IndexedFn fn = job_.fn;
    lock.unlock();
    std::exception_ptr error;
    tls_in_pool_task = true;
    try {
      fn(i);
    } catch (...) {
      error = std::current_exception();
    }
    tls_in_pool_task = false;
    lock.lock();
    if (error && !job_.error) job_.error = error;
    if (++job_.done == job_.count) done_.notify_all();
  }
}

void ThreadPool::run_indexed(std::size_t count, int parallelism, IndexedFn fn) {
  if (count == 0) return;
  if (parallelism <= 1 || count == 1 || threads_.empty() || tls_in_pool_task) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One job at a time: a second top-level caller waits its turn rather than
  // clobbering the active job.
  const std::lock_guard<std::mutex> submit(submit_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = Job{};
  job_.fn = fn;
  job_.count = count;
  job_.active = true;
  // Wake enough workers to reach `parallelism` including the caller.
  const int helpers = std::min<int>(parallelism - 1, workers());
  for (int i = 0; i < helpers; ++i) wake_.notify_one();

  drain_job(lock);  // The caller works too instead of just blocking.
  done_.wait(lock, [this] { return job_.done == job_.count; });
  job_.active = false;
  const std::exception_ptr error = job_.error;
  job_ = Job{};
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace simtmsg::util

// ThreadPool: a reusable host worker pool for executing independent work
// items (CTAs, partitions) concurrently.
//
// The pool exists to parallelize the *host wall-clock* cost of the
// functional SIMT engine; it must never influence modelled results.  The
// contract that makes this possible is index isolation: `run_indexed(n, p,
// fn)` calls `fn(i)` exactly once for every i in [0, n), each call may touch
// only state owned by its own index (plus read-only shared state), and the
// caller merges per-index results in index order after the call returns.
// Under that contract the outcome is bit-identical for every parallelism
// level, including p == 1 (which runs entirely on the calling thread and
// never wakes a worker).
//
// Workers are started lazily and kept alive for the process lifetime
// (`shared()`), so repeated kernel launches pay no thread start-up cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.hpp"

namespace simtmsg::util {

class ThreadPool {
 public:
  /// A pool with `threads` persistent workers (clamped to >= 1).  The
  /// calling thread of run_indexed always participates, so a pool of k
  /// workers sustains parallelism k + 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool sized to the hardware concurrency, created on first
  /// use.  All launch sites share it so oversubscription stays bounded no
  /// matter how many matchers run.
  static ThreadPool& shared();

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(threads_.size()); }

  /// Per-index work callback.  A non-owning reference: run_indexed blocks
  /// until every index completed, so the callable the caller passed always
  /// outlives the job (and no std::function is materialized per call).
  using IndexedFn = FunctionRef<void(std::size_t)>;

  /// Execute fn(i) once for every i in [0, count), using at most
  /// `parallelism` concurrent threads (the caller plus up to parallelism-1
  /// workers).  parallelism <= 1 runs serially on the calling thread in
  /// index order.  Blocks until every index completed.  If any fn throws,
  /// the first exception (in completion order) is rethrown on the caller
  /// after all indices finished or were abandoned.
  void run_indexed(std::size_t count, int parallelism, IndexedFn fn);

 private:
  struct Job {
    IndexedFn fn;
    std::size_t count = 0;
    std::size_t next = 0;      ///< Next index to claim (under mutex_).
    std::size_t done = 0;      ///< Indices finished (under mutex_).
    std::exception_ptr error;  ///< First failure (under mutex_).
    bool active = false;
  };

  void worker_loop();
  /// Claim-and-run loop shared by workers and the caller.  Returns when the
  /// job has no indices left to claim.
  void drain_job(std::unique_lock<std::mutex>& lock);

  std::mutex submit_mutex_;  ///< Serializes top-level run_indexed callers.
  std::mutex mutex_;
  std::condition_variable wake_;  ///< Workers wait for a job or shutdown.
  std::condition_variable done_;  ///< Caller waits for job completion.
  Job job_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace simtmsg::util

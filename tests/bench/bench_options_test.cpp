// The bench harness's flag parsing (bench/bench_common.hpp).  The seed's
// std::atoi/std::atof silently turned garbage like `--threads 4x` into a
// default-looking run; Options now parses with std::from_chars, rejects any
// partial consumption, and parse() exits 2 with a message naming the flag
// and the bad value.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace simtmsg::bench {
namespace {

std::optional<std::string> run(std::vector<const char*> args, Options& opt) {
  args.insert(args.begin(), "bench_binary");
  return Options::try_parse(static_cast<int>(args.size()), args.data(), opt);
}

std::optional<std::string> run(std::vector<const char*> args) {
  Options opt;
  return run(std::move(args), opt);
}

TEST(BenchOptions, ParsesValidFlagsInAnyOrder) {
  Options opt;
  EXPECT_EQ(run({"--faults", "0.25", "--json", "out.json", "--threads", "4"}, opt),
            std::nullopt);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_EQ(opt.threads, 4);
  EXPECT_DOUBLE_EQ(opt.faults, 0.25);
}

TEST(BenchOptions, DefaultsWhenNoFlagsGiven) {
  Options opt;
  EXPECT_EQ(run({}, opt), std::nullopt);
  EXPECT_TRUE(opt.json_path.empty());
  EXPECT_EQ(opt.threads, 1);
  EXPECT_DOUBLE_EQ(opt.faults, 0.0);
}

TEST(BenchOptions, ThreadsZeroMeansAllCoresAndIsValid) {
  Options opt;
  EXPECT_EQ(run({"--threads", "0"}, opt), std::nullopt);
  EXPECT_EQ(opt.threads, 0);
}

TEST(BenchOptions, RejectsThreadsTrailingGarbage) {
  const auto err = run({"--threads", "4x"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("--threads"), std::string::npos);
  EXPECT_NE(err->find("4x"), std::string::npos);
}

TEST(BenchOptions, RejectsThreadsNonNumeric) {
  EXPECT_TRUE(run({"--threads", "abc"}).has_value());
  EXPECT_TRUE(run({"--threads", ""}).has_value());
  EXPECT_TRUE(run({"--threads", "0x10"}).has_value());
  EXPECT_TRUE(run({"--threads", "-1"}).has_value());  // range, not format
}

TEST(BenchOptions, RejectsFaultsGarbageAndRange) {
  const auto err = run({"--faults", "0.5oops"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("--faults"), std::string::npos);
  EXPECT_NE(err->find("0.5oops"), std::string::npos);
  EXPECT_TRUE(run({"--faults", ""}).has_value());
  EXPECT_TRUE(run({"--faults", "1.5"}).has_value());
  EXPECT_TRUE(run({"--faults", "-0.1"}).has_value());
  EXPECT_TRUE(run({"--faults", "nan"}).has_value());
}

TEST(BenchOptions, AcceptsFaultsBoundaries) {
  Options opt;
  EXPECT_EQ(run({"--faults", "0"}, opt), std::nullopt);
  EXPECT_DOUBLE_EQ(opt.faults, 0.0);
  EXPECT_EQ(run({"--faults", "1"}, opt), std::nullopt);
  EXPECT_DOUBLE_EQ(opt.faults, 1.0);
  EXPECT_EQ(run({"--faults", "1e-3"}, opt), std::nullopt);
  EXPECT_DOUBLE_EQ(opt.faults, 1e-3);
}

TEST(BenchOptions, RejectsMissingValues) {
  for (const char* flag : {"--json", "--threads", "--faults"}) {
    const auto err = run({flag});
    ASSERT_TRUE(err.has_value()) << flag;
    EXPECT_NE(err->find("requires a value"), std::string::npos) << flag;
  }
}

TEST(BenchOptions, RejectsUnknownFlagWithUsage) {
  const auto err = run({"--jsno", "out.json"});
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("usage:"), std::string::npos);
}

TEST(BenchOptions, StrictParseHelpers) {
  int i = 0;
  EXPECT_TRUE(parse_int("42", i));
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(parse_int("-7", i));
  EXPECT_EQ(i, -7);
  EXPECT_FALSE(parse_int("", i));
  EXPECT_FALSE(parse_int(" 1", i));
  EXPECT_FALSE(parse_int("1 ", i));
  EXPECT_FALSE(parse_int("99999999999999999999", i));  // overflow
  double d = 0.0;
  EXPECT_TRUE(parse_double("2.5e-1", d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_FALSE(parse_double("", d));
  EXPECT_FALSE(parse_double("1.0.0", d));
}

TEST(BenchOptionsDeathTest, GarbageThreadsExitsTwo) {
  std::vector<std::string> store = {"bench_binary", "--threads", "8x"};
  std::vector<char*> argv;
  for (auto& s : store) argv.push_back(s.data());
  EXPECT_EXIT((void)Options::parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "--threads: not an integer: '8x'");
}

TEST(BenchOptionsDeathTest, GarbageFaultsExitsTwo) {
  std::vector<std::string> store = {"bench_binary", "--faults", "abc"};
  std::vector<char*> argv;
  for (auto& s : store) argv.push_back(s.data());
  EXPECT_EXIT((void)Options::parse(static_cast<int>(argv.size()), argv.data()),
              ::testing::ExitedWithCode(2), "--faults: not a number: 'abc'");
}

}  // namespace
}  // namespace simtmsg::bench

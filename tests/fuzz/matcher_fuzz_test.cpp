// Differential fuzz wall: every production Matcher implementation runs a
// randomized sweep of workload shapes (queue length, wildcard density, tag
// skew, unexpected ratio) and host execution policies, checked against the
// ReferenceMatcher oracle.  Ordered matchers must reproduce the oracle's
// pairing exactly; unordered matchers must reach the maximum pairable
// cardinality with a valid matching.
//
// Every iteration derives its own seed, printed on failure together with a
// replay recipe:
//
//   SIMTMSG_FUZZ_SEED=<seed> SIMTMSG_FUZZ_ITERS=1 ./test_fuzz
//
// reruns exactly the failing case.  SIMTMSG_FUZZ_ITERS (default 200) scales
// the sweep; CI runs the default so every matcher sees >= 200 random
// configurations per run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "matching/engine.hpp"
#include "matching/hash_matcher.hpp"
#include "matching/hashed_bins_matcher.hpp"
#include "matching/list_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_list_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/pattern_table_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/sharded_engine.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 10);
  return end == v ? fallback : parsed;
}

std::uint64_t fuzz_base_seed() { return env_u64("SIMTMSG_FUZZ_SEED", 0xF12D5EEDu); }
std::uint64_t fuzz_iterations() { return env_u64("SIMTMSG_FUZZ_ITERS", 200); }

/// The replay recipe attached to every assertion of one iteration.
std::string replay_hint(std::uint64_t seed) {
  return "replay: SIMTMSG_FUZZ_SEED=" + std::to_string(seed) +
         " SIMTMSG_FUZZ_ITERS=1 ./test_fuzz";
}

template <typename Rng, typename T>
T pick(Rng& rng, std::initializer_list<T> choices) {
  std::uniform_int_distribution<std::size_t> d(0, choices.size() - 1);
  return *(choices.begin() + static_cast<std::ptrdiff_t>(d(rng)));
}

/// One random workload shape; per-matcher knobs the matcher cannot handle
/// (wildcards, duplicate tuples) are masked off against its traits.
struct FuzzShape {
  std::size_t pairs;
  int sources;
  int tags;
  double src_wildcard_prob;
  double tag_wildcard_prob;
  double match_fraction;
  int threads;
  int shards;
};

template <typename Rng>
FuzzShape random_shape(Rng& rng) {
  FuzzShape s;
  s.pairs = 1 + std::uniform_int_distribution<std::size_t>(0, 255)(rng);
  // Small spaces skew tuples onto few keys (hash-collision pressure and
  // long per-bin chains); large ones spread them thin.
  s.sources = pick(rng, {1, 2, 4, 8, 16, 64, 256});
  s.tags = pick(rng, {1, 2, 4, 8, 16, 64, 256});
  // The wildcard-fraction axis runs all the way to 1.0: the pattern-table
  // matcher must stay exact when *every* receive is a wildcard.
  s.src_wildcard_prob = pick(rng, {0.0, 0.15, 0.5, 1.0});
  s.tag_wildcard_prob = pick(rng, {0.0, 0.15, 0.5, 1.0});
  s.match_fraction = pick(rng, {1.0, 0.9, 0.6, 0.3});
  s.threads = pick(rng, {1, 2, 4, 8});
  s.shards = pick(rng, {1, 2, 8});
  return s;
}

WorkloadSpec spec_for(const FuzzShape& s, const Matcher::Traits& t,
                      std::uint64_t seed) {
  WorkloadSpec spec;
  spec.pairs = s.pairs;
  spec.sources = s.sources;
  spec.tags = s.tags;
  spec.src_wildcard_prob = t.source_wildcards ? s.src_wildcard_prob : 0.0;
  spec.tag_wildcard_prob = t.tag_wildcards ? s.tag_wildcard_prob : 0.0;
  spec.match_fraction = s.match_fraction;
  // Unordered matchers pair exact tuples only; give unique_tuples a tuple
  // space comfortably larger than `pairs`.
  spec.unique_tuples = !t.ordered;
  if (spec.unique_tuples) {
    spec.sources = std::max(spec.sources, 32);
    spec.tags = std::max(spec.tags, 32);
  }
  spec.seed = seed;
  return spec;
}

/// Validity half of the unordered oracle: no message claimed twice, and
/// every pairing joins byte-equal envelopes.
void expect_valid_pairing(const MatchResult& result, const Workload& w,
                          const std::string& where) {
  std::vector<bool> used(w.messages.size(), false);
  for (std::size_t r = 0; r < result.request_match.size(); ++r) {
    const auto m = result.request_match[r];
    if (m == kNoMatch) continue;
    ASSERT_FALSE(used[static_cast<std::size_t>(m)]) << where;
    used[static_cast<std::size_t>(m)] = true;
    EXPECT_EQ(w.requests[r].env, w.messages[static_cast<std::size_t>(m)].env)
        << where;
  }
}

/// Cardinality half: unordered matchers must reach the maximum pairable
/// count.  The SIMT hash-table matcher carries a documented exception: its
/// no-progress safety valve may strand a few pairable tuples once unmatched
/// filler requests saturate the table, so at partial match fractions it is
/// held to "never over-match" instead of exact cardinality (mirrors the
/// repo's own PartialMatchLeavesUnmatched test).
void expect_max_cardinality(const MatchResult& result, const Workload& w,
                            bool exhaustive, const std::string& where) {
  const std::size_t pairable =
      ReferenceMatcher::pairable_count(w.messages, w.requests);
  if (exhaustive) {
    EXPECT_EQ(result.matched(), pairable) << where;
  } else {
    EXPECT_LE(result.matched(), pairable) << where;
  }
}

/// Check one matcher against the oracle; every failure carries `where`.
void check_against_reference(const Matcher& matcher, const Workload& w,
                             const WorkloadSpec& spec, const std::string& where) {
  const auto s = matcher.match(w.messages, w.requests);
  if (matcher.traits().ordered) {
    const auto ref = ReferenceMatcher::match(w.messages, w.requests);
    EXPECT_EQ(s.result.request_match, ref.request_match) << where;
  } else {
    const bool exhaustive =
        matcher.name() != "hash-table" || spec.match_fraction >= 1.0;
    expect_max_cardinality(s.result, w, exhaustive, where);
    expect_valid_pairing(s.result, w, where);
  }
  EXPECT_GE(s.seconds, 0.0) << where;
}

std::vector<std::unique_ptr<Matcher>> matchers_for(const FuzzShape& s) {
  const auto& dev = simt::pascal_gtx1080();
  const simt::ExecutionPolicy policy{s.threads};
  std::vector<std::unique_ptr<Matcher>> out;

  MatrixMatcher::Options mopt;
  mopt.policy = policy;
  out.push_back(std::make_unique<MatrixMatcher>(dev, mopt));

  PartitionedMatcher::Options popt;
  popt.partitions = 8;
  popt.policy = policy;
  out.push_back(std::make_unique<PartitionedMatcher>(dev, popt));

  HashMatcher::Options hopt;
  hopt.ctas = 4;
  hopt.policy = policy;
  out.push_back(std::make_unique<HashMatcher>(dev, hopt));

  PatternTableMatcher::Options topt;
  topt.ctas = 2;
  topt.policy = policy;
  out.push_back(std::make_unique<PatternTableMatcher>(dev, topt));

  out.push_back(std::make_unique<ListMatcher>());
  out.push_back(std::make_unique<PartitionedListMatcher>(8));
  out.push_back(std::make_unique<HashedBinsMatcher>(16));
  return out;
}

TEST(MatcherFuzz, AllMatchersAgreeWithReferenceOnRandomConfigs) {
  const std::uint64_t base = fuzz_base_seed();
  const std::uint64_t iters = fuzz_iterations();

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + i;
    std::mt19937_64 rng(seed);
    const FuzzShape shape = random_shape(rng);

    for (const auto& matcher : matchers_for(shape)) {
      const auto spec = spec_for(shape, matcher->traits(), seed);
      const auto w = make_workload(spec);
      const std::string where =
          std::string(matcher->name()) + " pairs=" + std::to_string(spec.pairs) +
          " sources=" + std::to_string(spec.sources) +
          " tags=" + std::to_string(spec.tags) +
          " match_fraction=" + std::to_string(spec.match_fraction) +
          " threads=" + std::to_string(shape.threads) + "\n" + replay_hint(seed);
      check_against_reference(*matcher, w, spec, where);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(MatcherFuzz, EngineAgreesWithReferenceAcrossSemanticsRows) {
  const std::uint64_t base = fuzz_base_seed();
  const std::uint64_t iters = fuzz_iterations();
  const auto rows = table2_rows();

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + i;
    std::mt19937_64 rng(seed ^ 0x5E3A27C5D1B20943ULL);
    const FuzzShape shape = random_shape(rng);
    const SemanticsConfig cfg = rows[std::uniform_int_distribution<std::size_t>(
        0, rows.size() - 1)(rng)];

    WorkloadSpec spec;
    spec.pairs = shape.pairs;
    spec.sources = shape.sources;
    spec.tags = shape.tags;
    // Prohibiting unexpected messages makes leftovers an error: those rows
    // need every message to find a posted receive under FCFS, which rules
    // out both filler pairs and wildcards (a wildcard receive can steal
    // another pair's message and strand a later arrival).
    const bool must_drain = !cfg.unexpected;
    spec.src_wildcard_prob =
        (cfg.wildcards && !must_drain) ? shape.src_wildcard_prob : 0.0;
    spec.tag_wildcard_prob =
        (cfg.wildcards && !must_drain) ? shape.tag_wildcard_prob : 0.0;
    spec.match_fraction = must_drain ? 1.0 : shape.match_fraction;
    spec.unique_tuples = hashable(cfg);
    if (spec.unique_tuples) {
      spec.sources = std::max(spec.sources, 32);
      spec.tags = std::max(spec.tags, 32);
    }
    spec.seed = seed;
    const auto w = make_workload(spec);

    const MatchEngine engine(simt::pascal_gtx1080(), cfg,
                             simt::ExecutionPolicy{shape.threads});
    const std::string where = describe(cfg) + " pairs=" + std::to_string(spec.pairs) +
                              " threads=" + std::to_string(shape.threads) + "\n" +
                              replay_hint(seed);

    const auto s = engine.match(w.messages, w.requests);
    if (engine.algorithm_kind() == Algorithm::kHashTable) {
      expect_max_cardinality(s.result, w, spec.match_fraction >= 1.0, where);
      expect_valid_pairing(s.result, w, where);
    } else {
      const auto ref = ReferenceMatcher::match(w.messages, w.requests);
      EXPECT_EQ(s.result.request_match, ref.request_match) << where;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MatcherFuzz, ShardedEngineIsBitIdenticalToUnshardedAcrossSemanticsRows) {
  // The sharded determinism contract (docs/sharding.md): for every Table II
  // row, shard counts {1, 2, 8} and random thread counts must reproduce the
  // single-engine pairing exactly.  The hash-table rows carry the same
  // safety-valve exception as above — at partial match fractions the two
  // engines see different table occupancies, so the sharded result is held
  // to the validity + never-over-match oracle instead of byte equality.
  const std::uint64_t base = fuzz_base_seed();
  const std::uint64_t iters = fuzz_iterations();
  const auto rows = table2_rows();

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + i;
    std::mt19937_64 rng(seed ^ 0xA1B2C3D4E5F60718ULL);
    const FuzzShape shape = random_shape(rng);
    const SemanticsConfig cfg = rows[std::uniform_int_distribution<std::size_t>(
        0, rows.size() - 1)(rng)];

    WorkloadSpec spec;
    spec.pairs = shape.pairs;
    spec.sources = shape.sources;
    spec.tags = shape.tags;
    const bool must_drain = !cfg.unexpected;
    spec.src_wildcard_prob =
        (cfg.wildcards && !must_drain) ? shape.src_wildcard_prob : 0.0;
    spec.tag_wildcard_prob =
        (cfg.wildcards && !must_drain) ? shape.tag_wildcard_prob : 0.0;
    spec.match_fraction = must_drain ? 1.0 : shape.match_fraction;
    spec.unique_tuples = hashable(cfg);
    if (spec.unique_tuples) {
      spec.sources = std::max(spec.sources, 32);
      spec.tags = std::max(spec.tags, 32);
    }
    spec.seed = seed;
    const auto w = make_workload(spec);

    const MatchEngine baseline(simt::pascal_gtx1080(), cfg);
    const auto expected = baseline.match(w.messages, w.requests);
    const ShardedMatchEngine sharded(
        simt::pascal_gtx1080(), cfg,
        {.shards = shape.shards, .policy = simt::ExecutionPolicy{shape.threads}});
    const std::string where = describe(cfg) + " pairs=" + std::to_string(spec.pairs) +
                              " shards=" + std::to_string(shape.shards) +
                              " threads=" + std::to_string(shape.threads) + "\n" +
                              replay_hint(seed);

    const auto s = sharded.match(w.messages, w.requests);
    if (sharded.algorithm_kind() == Algorithm::kHashTable &&
        spec.match_fraction < 1.0) {
      expect_max_cardinality(s.result, w, false, where);
      expect_valid_pairing(s.result, w, where);
    } else {
      EXPECT_EQ(s.result.request_match, expected.result.request_match) << where;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MatcherFuzz, PatternTableShardedWallAcrossWildcardFractions) {
  // The wildcard-fraction wall for the pattern-table rows: every fraction in
  // {0, 0.15, 0.5, 1.0} (the bench sweep's anchor points), across shard
  // counts {1, 2, 8} and host thread counts {1, 8}, must reproduce the
  // ReferenceMatcher pairing bit-for-bit — both through the unsharded engine
  // and through the replicated-stub sharded path.  Each grid is 24 engine
  // runs, so the sweep runs a slice of the configured iteration budget.
  const std::uint64_t base = fuzz_base_seed();
  const std::uint64_t iters = std::max<std::uint64_t>(1, fuzz_iterations() / 8);

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + i;
    std::mt19937_64 rng(seed ^ 0x7D0C9B4E2F81A635ULL);

    WorkloadSpec spec;
    spec.pairs = 1 + std::uniform_int_distribution<std::size_t>(0, 127)(rng);
    spec.sources = pick(rng, {1, 2, 8, 64});
    spec.tags = pick(rng, {1, 4, 32});
    spec.match_fraction = pick(rng, {1.0, 0.7, 0.3});
    spec.tag_wildcard_prob = pick(rng, {0.0, 0.15, 0.5, 1.0});
    spec.seed = seed;

    const SemanticsConfig cfg = SemanticsConfig::pattern_tables();

    for (const double wf : {0.0, 0.15, 0.5, 1.0}) {
      spec.src_wildcard_prob = wf;
      const auto w = make_workload(spec);
      const auto ref = ReferenceMatcher::match(w.messages, w.requests);

      for (const int shards : {1, 2, 8}) {
        for (const int threads : {1, 8}) {
          const ShardedMatchEngine engine(
              simt::pascal_gtx1080(), cfg,
              {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
          const std::string where =
              "pattern-table sharded pairs=" + std::to_string(spec.pairs) +
              " src_wf=" + std::to_string(wf) +
              " tag_wf=" + std::to_string(spec.tag_wildcard_prob) +
              " shards=" + std::to_string(shards) +
              " threads=" + std::to_string(threads) + "\n" + replay_hint(seed);
          const auto s = engine.match(w.messages, w.requests);
          EXPECT_EQ(s.result.request_match, ref.request_match) << where;
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace simtmsg::matching

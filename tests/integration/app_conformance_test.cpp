// Trace-replay conformance wall: every proxy application in the registry is
// replayed through every wildcard-capable matcher and compared against the
// ReferenceMatcher oracle bit-for-bit — including the MiniFE/MiniDFT-style
// MPI_ANY_SOURCE pickups that previously forced the compliant matrix path.
// The sweep covers the direct matchers (matrix, list, pattern-table), the
// MatchEngine pattern-table row, and the ShardedMatchEngine replicated-stub
// path at 2 and 8 shards.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "matching/engine.hpp"
#include "matching/list_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/pattern_table_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/sharded_engine.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg {
namespace {

using matching::Message;
using matching::RecvRequest;

/// Per-destination batch extraction: messages in arrival order, receives in
/// posted order (trace events are time-sorted).
struct RankBatches {
  std::map<std::uint32_t, std::vector<Message>> msgs;
  std::map<std::uint32_t, std::vector<RecvRequest>> reqs;
};

RankBatches batches_of(const trace::Trace& t) {
  RankBatches b;
  for (const auto& e : t.events) {
    if (e.type == trace::EventType::kSend) {
      Message m;
      m.env = {.src = static_cast<matching::Rank>(e.rank), .tag = e.tag, .comm = e.comm};
      b.msgs[static_cast<std::uint32_t>(e.peer)].push_back(m);
    } else {
      RecvRequest r;
      r.env = {.src = e.peer, .tag = e.tag, .comm = e.comm};
      b.reqs[e.rank].push_back(r);
    }
  }
  return b;
}

/// The matchers assume one engine per communicator; filter to one comm.
template <typename T>
std::vector<T> only_comm(const std::vector<T>& in, matching::CommId comm) {
  std::vector<T> out;
  for (const auto& e : in) {
    if (e.env.comm == comm) out.push_back(e);
  }
  return out;
}

TEST(AppConformance, EveryAppAgreesWithReferenceAcrossWildcardCapableMatchers) {
  const auto& dev = simt::pascal_gtx1080();
  const auto pattern_cfg = matching::SemanticsConfig::pattern_tables();

  const matching::MatrixMatcher matrix(dev);
  const matching::ListMatcher list;
  const matching::PatternTableMatcher pattern(dev);
  const matching::MatchEngine pattern_engine(dev, pattern_cfg);
  const matching::ShardedMatchEngine sharded2(dev, pattern_cfg, {.shards = 2});
  const matching::ShardedMatchEngine sharded8(dev, pattern_cfg, {.shards = 8});

  int apps_with_wildcards = 0;
  for (const auto& app : trace::apps::all_apps()) {
    trace::apps::AppParams params;
    params.ranks = 27;
    params.iterations = 1;
    params.volume_scale = 0.1;  // Keep per-rank batches test-sized.
    const auto t = app.generate(params);
    const auto b = batches_of(t);
    if (app.uses_src_wildcard) ++apps_with_wildcards;

    bool saw_wildcard = false;
    for (const auto& [rank, reqs] : b.reqs) {
      for (const auto& r : reqs) {
        saw_wildcard = saw_wildcard || r.env.src == matching::kAnySource;
      }
    }

    int ranks_checked = 0;
    for (const auto& [rank, all_msgs] : b.msgs) {
      const auto it = b.reqs.find(rank);
      if (it == b.reqs.end()) continue;
      for (const matching::CommId comm : {0, 1, 2, 3, 4, 5, 6}) {
        const auto msgs = only_comm(all_msgs, comm);
        const auto reqs = only_comm(it->second, comm);
        if (msgs.empty() || reqs.empty()) continue;
        const auto ref = matching::ReferenceMatcher::match(msgs, reqs);
        const std::string where = std::string(app.name) + " rank " +
                                  std::to_string(rank) + " comm " +
                                  std::to_string(comm);

        ASSERT_EQ(matrix.match(msgs, reqs).result.request_match, ref.request_match)
            << "matrix " << where;
        ASSERT_EQ(list.match(msgs, reqs).result.request_match, ref.request_match)
            << "list " << where;
        ASSERT_EQ(pattern.match(msgs, reqs).result.request_match, ref.request_match)
            << "pattern-table " << where;
        ASSERT_EQ(pattern_engine.match(msgs, reqs).result.request_match,
                  ref.request_match)
            << "pattern engine " << where;
        ASSERT_EQ(sharded2.match(msgs, reqs).result.request_match, ref.request_match)
            << "sharded(2) pattern " << where;
        ASSERT_EQ(sharded8.match(msgs, reqs).result.request_match, ref.request_match)
            << "sharded(8) pattern " << where;
        ++ranks_checked;
      }
      if (ranks_checked >= 12) break;  // A dozen (rank, comm) batches per app.
    }
    EXPECT_GT(ranks_checked, 0) << app.name << ": no rank had two-sided traffic";
    // Table I: the ANY_SOURCE apps must actually exercise wildcard pickups
    // in the replay, or this wall would silently stop covering them.
    EXPECT_EQ(saw_wildcard, app.uses_src_wildcard) << app.name;
  }
  EXPECT_GT(apps_with_wildcards, 0) << "registry lost its ANY_SOURCE apps";
}

TEST(AppConformance, PatternRowDrainsWildcardAppsEveryOtherRowRejects) {
  // The feasibility flip the pattern-table row buys: MiniFE's ANY_SOURCE
  // residual pickups run on a hash-speed structure, while the
  // wildcard-prohibiting rows still reject the same traffic.
  trace::apps::AppParams params;
  params.ranks = 27;
  params.iterations = 1;
  const auto t = trace::apps::minife(params);
  const auto b = batches_of(t);
  const auto& reqs = b.reqs.at(0);  // Rank 0 posts the ANY_SOURCE receives.
  const auto& msgs = b.msgs.at(0);

  const matching::MatchEngine pattern_engine(simt::pascal_gtx1080(),
                                             matching::SemanticsConfig::pattern_tables());
  const auto ref = matching::ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(pattern_engine.match(msgs, reqs).result.request_match, ref.request_match);

  matching::SemanticsConfig strict;
  strict.wildcards = false;
  strict.partitions = 4;
  const matching::MatchEngine hash_engine(simt::pascal_gtx1080(), strict);
  EXPECT_THROW((void)hash_engine.match(msgs, reqs), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg

// End-to-end integration: proxy-application traces drive the SIMT
// matchers.  The paper could not run the applications on GPUs ("it is not
// possible to run the applications on GPUs without supporting a full MPI
// stack"); this repository can close that loop in simulation: for each
// destination rank of a trace, the arriving messages and posted receives
// are batch-matched by every production matcher and validated against the
// reference oracle.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "matching/engine.hpp"
#include "matching/list_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "trace/apps/apps.hpp"

namespace simtmsg {
namespace {

using matching::Message;
using matching::RecvRequest;

/// Per-destination batch extraction from a trace: messages in arrival
/// order, receives in posted order (events are time-sorted).
struct RankBatches {
  std::map<std::uint32_t, std::vector<Message>> msgs;
  std::map<std::uint32_t, std::vector<RecvRequest>> reqs;
};

RankBatches batches_of(const trace::Trace& t) {
  RankBatches b;
  for (const auto& e : t.events) {
    if (e.type == trace::EventType::kSend) {
      Message m;
      m.env = {.src = static_cast<matching::Rank>(e.rank), .tag = e.tag, .comm = e.comm};
      b.msgs[static_cast<std::uint32_t>(e.peer)].push_back(m);
    } else {
      RecvRequest r;
      r.env = {.src = e.peer, .tag = e.tag, .comm = e.comm};
      b.reqs[e.rank].push_back(r);
    }
  }
  return b;
}

/// The matchers assume one engine per communicator (Section V-A); filter a
/// batch down to one comm.
template <typename T>
std::vector<T> only_comm(const std::vector<T>& in, matching::CommId comm) {
  std::vector<T> out;
  for (const auto& e : in) {
    if (e.env.comm == comm) out.push_back(e);
  }
  return out;
}

class TraceMatchingIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceMatchingIntegration, MatrixMatcherReproducesReferenceOnAppTraffic) {
  const auto* app = trace::apps::find_app(GetParam());
  ASSERT_NE(app, nullptr);
  trace::apps::AppParams params;
  params.ranks = 27;
  params.iterations = 1;
  params.volume_scale = 0.1;  // Keep per-rank batches test-sized.
  const auto t = app->generate(params);
  const auto b = batches_of(t);

  const matching::MatrixMatcher matcher(simt::pascal_gtx1080());
  int ranks_checked = 0;
  for (const auto& [rank, msgs] : b.msgs) {
    const auto it = b.reqs.find(rank);
    if (it == b.reqs.end()) continue;
    for (const matching::CommId comm : {0, 1, 2, 3, 4, 5, 6}) {
      const auto m = only_comm(msgs, comm);
      const auto r = only_comm(it->second, comm);
      if (m.empty() || r.empty()) continue;

      matching::MessageQueue mq;
      matching::RecvQueue rq;
      for (const auto& x : m) mq.push(x);
      for (const auto& x : r) rq.push(x);
      const auto ours = matcher.match_queues(mq, rq);
      const auto ref = matching::ReferenceMatcher::match(m, r);
      ASSERT_EQ(ours.result.request_match, ref.request_match)
          << app->name << " rank " << rank << " comm " << comm;
      ++ranks_checked;
    }
    if (ranks_checked >= 6) break;  // A few ranks suffice per app.
  }
  EXPECT_GT(ranks_checked, 0) << "no rank had two-sided traffic";
}

TEST_P(TraceMatchingIntegration, ListMatcherFullyDrainsAppTraffic) {
  const auto* app = trace::apps::find_app(GetParam());
  ASSERT_NE(app, nullptr);
  trace::apps::AppParams params;
  params.ranks = 27;
  params.iterations = 1;
  params.volume_scale = 0.1;
  const auto t = app->generate(params);
  const auto b = batches_of(t);

  // Every app skeleton is a complete exchange: per destination, matching
  // all messages against all receives must drain both sides entirely.
  for (const auto& [rank, msgs] : b.msgs) {
    const auto it = b.reqs.find(rank);
    ASSERT_NE(it, b.reqs.end()) << "rank " << rank << " received but never posted";
    const auto result = matching::ListMatcher{}.match(msgs, it->second).result;
    EXPECT_EQ(result.matched(), msgs.size()) << app->name << " rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, TraceMatchingIntegration,
                         ::testing::Values("LULESH", "MiniFE", "MiniDFT", "PARTISN",
                                           "NEKBONE", "MultiGrid", "AMR Boxlib",
                                           "BigFFT"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name(info.param);
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(TraceMatchingIntegration, EngineTable2RowsHandleLuleshTraffic) {
  // LULESH uses no wildcards and pre-posts receives, so *every* Table II
  // row can carry its traffic — the paper's feasibility argument.
  trace::apps::AppParams params;
  params.ranks = 27;
  params.iterations = 1;
  const auto t = trace::apps::lulesh(params);
  const auto b = batches_of(t);

  const auto& msgs = b.msgs.begin()->second;
  const auto& reqs = b.reqs.at(b.msgs.begin()->first);

  for (const auto& row : matching::table2_rows()) {
    const matching::MatchEngine engine(simt::pascal_gtx1080(), row);
    const auto stats = engine.match(msgs, reqs);
    EXPECT_EQ(stats.result.matched(), msgs.size()) << matching::describe(row);
  }
}

TEST(TraceMatchingIntegration, HashRowRejectsMiniFeWildcards) {
  // MiniFE uses MPI_ANY_SOURCE (Table I), so the wildcard-prohibiting rows
  // must reject its traffic — the flip side of the feasibility argument.
  trace::apps::AppParams params;
  params.ranks = 27;
  params.iterations = 1;
  const auto t = trace::apps::minife(params);
  const auto b = batches_of(t);

  // Rank 0 posts the ANY_SOURCE residual receives.
  const auto& reqs = b.reqs.at(0);
  const auto& msgs = b.msgs.at(0);

  matching::SemanticsConfig strict;
  strict.wildcards = false;
  strict.partitions = 4;
  const matching::MatchEngine engine(simt::pascal_gtx1080(), strict);
  EXPECT_THROW((void)engine.match(msgs, reqs), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg

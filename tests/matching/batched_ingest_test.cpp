// Batched-ingestion contract (docs/perf.md): match_batch(msgs, reqs, mq, rq)
// is bit-identical to pushing the same arrivals one message at a time and
// then running one match_queues pass — same sequence stamping, same pairing,
// same queue remnants — for every Table II row, shard count, thread count,
// and batch size.  The batch boundary is purely an amortization lever; it
// must never be observable in results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "matching/engine.hpp"
#include "matching/queue.hpp"
#include "matching/sharded_engine.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

/// Push every element of `chunk` individually — the per-message baseline a
/// batched append must be indistinguishable from.
template <typename Q, typename T>
void push_each(Q& q, std::span<const T> chunk) {
  for (const T& item : chunk) q.push(item);
}

/// Queues must agree element-wise in envelope, payload/user_data carrier,
/// and stamped sequence — and the SoA lanes must mirror the AoS items.
void expect_queues_equal(const MessageQueue& a, const MessageQueue& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].env, b[i].env) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << i;
    EXPECT_EQ(a.lanes().word[i], b.lanes().word[i]) << i;
  }
}

void expect_queues_equal(const RecvQueue& a, const RecvQueue& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].env, b[i].env) << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << i;
  }
}

TEST(BatchedIngest, EmptyBatchIsPlainMatchQueuesPass) {
  WorkloadSpec spec;
  spec.pairs = 64;
  spec.match_fraction = 0.5;
  spec.seed = 11;
  const auto w = make_workload(spec);

  const MatchEngine engine(pascal(), SemanticsConfig{});
  MessageQueue mq_a, mq_b;
  RecvQueue rq_a, rq_b;
  fill_queues(w, mq_a, rq_a);
  fill_queues(w, mq_b, rq_b);

  SimtMatchStats batched;
  engine.match_batch({}, {}, mq_a, rq_a, batched);
  SimtMatchStats plain;
  engine.match_queues(mq_b, rq_b, plain);

  EXPECT_EQ(batched.result.request_match, plain.result.request_match);
  EXPECT_EQ(batched.cycles, plain.cycles);
  expect_queues_equal(mq_a, mq_b);
  expect_queues_equal(rq_a, rq_b);
}

TEST(BatchedIngest, EmptyBatchOnEmptyQueuesMatchesNothing) {
  const MatchEngine engine(pascal(), SemanticsConfig{});
  MessageQueue mq;
  RecvQueue rq;
  const auto s = engine.match_batch({}, {}, mq, rq);
  EXPECT_EQ(s.result.matched(), 0u);
  EXPECT_TRUE(mq.empty());
  EXPECT_TRUE(rq.empty());
}

TEST(BatchedIngest, BatchSpanningMultipleCommsBucketsLikePerMessagePush) {
  // One batch carrying traffic on three communicators: the comm-bucketing
  // pass inside match_queues must see the same per-comm sub-queues as if
  // every message had been pushed individually.
  std::vector<Message> msgs;
  std::vector<RecvRequest> reqs;
  for (int i = 0; i < 24; ++i) {
    Message m;
    m.env = {.src = i % 4, .tag = i, .comm = i % 3};
    m.payload = static_cast<std::uint64_t>(1000 + i);
    msgs.push_back(m);
    RecvRequest r;
    r.env = {.src = i % 4, .tag = i, .comm = i % 3};
    r.user_data = static_cast<std::uint64_t>(i);
    reqs.push_back(r);
  }

  const MatchEngine engine(pascal(), SemanticsConfig{});
  MessageQueue mq_a, mq_b;
  RecvQueue rq_a, rq_b;

  SimtMatchStats batched;
  engine.match_batch(msgs, reqs, mq_a, rq_a, batched);

  push_each(mq_b, std::span<const Message>(msgs));
  push_each(rq_b, std::span<const RecvRequest>(reqs));
  SimtMatchStats plain;
  engine.match_queues(mq_b, rq_b, plain);

  EXPECT_EQ(batched.result.request_match, plain.result.request_match);
  EXPECT_EQ(batched.result.matched(), reqs.size());
  expect_queues_equal(mq_a, mq_b);
  expect_queues_equal(rq_a, rq_b);
}

TEST(BatchedIngest, BatchInterleavedWithSinglePushStampsIdentically) {
  // Mixing push_n batches with single-message push calls must produce the
  // exact sequence numbering of an all-singles ingest of the same stream.
  WorkloadSpec spec;
  spec.pairs = 40;
  spec.seed = 12;
  const auto w = make_workload(spec);

  MessageQueue mixed, singles;
  const std::span<const Message> stream(w.messages);
  // Schedule: 1 single, batch of 5, 2 singles, batch of 0, rest as a batch.
  mixed.push(stream[0]);
  mixed.push_n(stream.subspan(1, 5));
  mixed.push(stream[6]);
  mixed.push(stream[7]);
  mixed.push_n(stream.subspan(8, 0));
  mixed.push_n(stream.subspan(8));
  push_each(singles, stream);
  expect_queues_equal(mixed, singles);
}

TEST(BatchedIngest, FuzzBatchSizesBitIdenticalAcrossRowsAndShards) {
  // The fuzz axis: chunk one arrival stream into batches of B ∈ {1, 7, 64}
  // and feed each chunk through match_batch; the twin ingests the same
  // chunks per-message and runs match_queues at the same boundaries.  Every
  // pass's pairing and both final queue remnants must be bit-identical for
  // every Table II row and shard count (the batch boundary schedule is the
  // SAME on both sides — only the ingestion granularity differs).
  WorkloadSpec spec;
  spec.pairs = 160;
  spec.sources = 12;
  spec.tags = 10;
  spec.match_fraction = 0.7;
  spec.seed = 13;
  const auto w = make_workload(spec);

  for (const auto& row : table2_rows()) {
    for (const int shards : {1, 2, 8}) {
      const int threads = shards == 8 ? 8 : 1;
      const ShardedMatchEngine engine(
          pascal(), row, {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
      for (const std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
        MessageQueue mq_a, mq_b;
        RecvQueue rq_a, rq_b;
        SimtMatchStats batched, plain;
        std::uint64_t matched_a = 0;
        std::uint64_t matched_b = 0;
        for (std::size_t off = 0; off < w.messages.size(); off += batch) {
          const std::size_t n = std::min(batch, w.messages.size() - off);
          const std::span<const Message> mchunk(&w.messages[off], n);
          const std::span<const RecvRequest> rchunk(&w.requests[off], n);
          engine.match_batch(mchunk, rchunk, mq_a, rq_a, batched);
          matched_a += batched.result.matched();

          push_each(mq_b, mchunk);
          push_each(rq_b, rchunk);
          engine.match_queues(mq_b, rq_b, plain);
          matched_b += plain.result.matched();

          ASSERT_EQ(batched.result.request_match, plain.result.request_match)
              << describe(row) << " shards=" << shards << " batch=" << batch
              << " off=" << off;
        }
        EXPECT_EQ(matched_a, matched_b)
            << describe(row) << " shards=" << shards << " batch=" << batch;
        expect_queues_equal(mq_a, mq_b);
        expect_queues_equal(rq_a, rq_b);
      }
    }
  }
}

}  // namespace
}  // namespace simtmsg::matching

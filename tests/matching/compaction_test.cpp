#include "matching/compaction.hpp"

#include <gtest/gtest.h>

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

TEST(Compactor, NoRemovalNoCost) {
  const Compactor c(pascal());
  const auto s = c.cost(1024, 0);
  EXPECT_EQ(s.cycles, 0.0);
  EXPECT_EQ(s.removed, 0u);
}

TEST(Compactor, EmptyQueueNoCost) {
  const Compactor c(pascal());
  EXPECT_EQ(c.cost(0, 0).cycles, 0.0);
}

TEST(Compactor, CostGrowsWithQueueLength) {
  const Compactor c(pascal());
  EXPECT_LT(c.cost(128, 64).cycles, c.cost(4096, 64).cycles);
}

TEST(Compactor, CompactRemovesAndReports) {
  const Compactor c(pascal());
  MessageQueue q;
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.payload = static_cast<std::uint64_t>(i);
    q.push(m);
  }
  std::vector<std::uint8_t> flags(100, 0);
  for (int i = 0; i < 100; i += 2) flags[static_cast<std::size_t>(i)] = 1;
  const auto s = c.compact(q, flags);
  EXPECT_EQ(s.removed, 50u);
  EXPECT_EQ(q.size(), 50u);
  EXPECT_EQ(q[0].payload, 1u);  // Odd payloads survive.
  EXPECT_GT(s.cycles, 0.0);
}

TEST(Compactor, CostIsSmallFractionOfMatching) {
  // Section VI-B: compaction reduces the matching rate by about 10%, so its
  // cost must be a small fraction of a 1024-element matching pass
  // (~300k cycles on the Pascal model).
  const Compactor c(pascal());
  const auto s = c.cost(2048, 1024);  // Both queues of a 1024 match.
  EXPECT_GT(s.cycles, 100.0);
  EXPECT_LT(s.cycles, 100000.0);
}

}  // namespace
}  // namespace simtmsg::matching

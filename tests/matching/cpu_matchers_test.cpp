// The related-work CPU matchers (Section III): Zounmevo-style partitioned
// lists and Flajslik-style hashed bins must preserve exact MPI semantics
// while shortening searches.
#include <gtest/gtest.h>

#include <tuple>

#include "matching/hashed_bins_matcher.hpp"
#include "matching/list_matcher.hpp"
#include "matching/partitioned_list_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

Message msg(Rank src, Tag tag) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = 0};
  return m;
}

RecvRequest req(Rank src, Tag tag) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = 0};
  return r;
}

// ---------------------------------------------------------------------------
// PartitionedListMatcher (rank-space partitions + sequence numbers).

TEST(PartitionedList, RejectsZeroPartitions) {
  EXPECT_THROW(PartitionedListMatcher(0), std::invalid_argument);
}

TEST(PartitionedList, BasicExpectedFlow) {
  PartitionedListMatcher m(4);
  EXPECT_FALSE(m.post(req(2, 7)).has_value());
  const auto hit = m.arrive(msg(2, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(m.prq_depth(), 0u);
}

TEST(PartitionedList, WildcardOrderingAgainstConcreteRequest) {
  // A wildcard posted BEFORE a concrete request must win the message even
  // though it lives in a different (the wildcard) queue — the sequence
  // numbers arbitrate.
  PartitionedListMatcher m(4);
  (void)m.post(req(kAnySource, 7));
  (void)m.post(req(2, 7));
  const auto hit = m.arrive(msg(2, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.src, kAnySource);
  EXPECT_EQ(m.prq_depth(), 1u);  // The concrete request remains.
}

TEST(PartitionedList, ConcreteBeforeWildcardWins) {
  PartitionedListMatcher m(4);
  (void)m.post(req(2, 7));
  (void)m.post(req(kAnySource, 7));
  const auto hit = m.arrive(msg(2, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.src, 2);
}

TEST(PartitionedList, WildcardPostTakesEarliestAcrossPartitions) {
  PartitionedListMatcher m(4);
  (void)m.arrive(msg(5, 1));  // Partition 1, seq 0.
  (void)m.arrive(msg(2, 1));  // Partition 2, seq 1.
  const auto hit = m.post(req(kAnySource, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.src, 5);  // Earliest arrival, not lowest partition.
}

TEST(PartitionedList, SearchShorterThanFlatList) {
  // The whole point: concrete lookups touch one partition.
  constexpr int kMsgs = 256;
  ListMatcher flat;
  PartitionedListMatcher part(16);
  for (int i = 0; i < kMsgs; ++i) {
    (void)flat.arrive(msg(i % 16, i));
    (void)part.arrive(msg(i % 16, i));
  }
  (void)flat.post(req(15, 255));   // Last element: full traversal.
  (void)part.post(req(15, 255));
  EXPECT_LT(part.search_steps(), flat.search_steps() / 4);
}

TEST(PartitionedList, ClearResets) {
  PartitionedListMatcher m(4);
  (void)m.arrive(msg(0, 0));
  (void)m.post(req(1, 1));
  m.clear();
  EXPECT_EQ(m.umq_depth(), 0u);
  EXPECT_EQ(m.prq_depth(), 0u);
  EXPECT_EQ(m.search_steps(), 0u);
}

// ---------------------------------------------------------------------------
// HashedBinsMatcher ({src, tag} bins + marker-style ordering).

TEST(HashedBins, RejectsZeroBins) {
  EXPECT_THROW(HashedBinsMatcher(0), std::invalid_argument);
}

TEST(HashedBins, BasicUnexpectedFlow) {
  HashedBinsMatcher m(8);
  EXPECT_FALSE(m.arrive(msg(1, 9)).has_value());
  EXPECT_EQ(m.umq_depth(), 1u);
  const auto hit = m.post(req(1, 9));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(m.umq_depth(), 0u);
}

TEST(HashedBins, TagWildcardGoesThroughWildcardPath) {
  HashedBinsMatcher m(8);
  (void)m.arrive(msg(1, 100));
  const auto hit = m.post(req(1, kAnyTag));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.tag, 100);
}

TEST(HashedBins, WildcardPostFindsEarliestAcrossBins) {
  HashedBinsMatcher m(8);
  (void)m.arrive(msg(3, 50));  // seq 0, some bin.
  (void)m.arrive(msg(3, 51));  // seq 1, likely another bin.
  const auto hit = m.post(req(3, kAnyTag));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.tag, 50);
}

TEST(HashedBins, EarlierWildcardBeatsBinnedRequest) {
  HashedBinsMatcher m(8);
  (void)m.post(req(2, kAnyTag));  // seq 0 (wildcard list).
  (void)m.post(req(2, 7));        // seq 1 (binned).
  const auto hit = m.arrive(msg(2, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.tag, kAnyTag);
}

TEST(HashedBins, SpreadsTagHeavyTraffic) {
  // PARTISN-like: one source, many tags — rank partitioning cannot spread
  // this, hashed bins can.
  constexpr int kMsgs = 256;
  PartitionedListMatcher by_rank(16);
  HashedBinsMatcher by_hash(16);
  for (int i = 0; i < kMsgs; ++i) {
    (void)by_rank.arrive(msg(0, i));
    (void)by_hash.arrive(msg(0, i));
  }
  (void)by_rank.post(req(0, kMsgs - 1));
  (void)by_hash.post(req(0, kMsgs - 1));
  EXPECT_LT(by_hash.search_steps(), by_rank.search_steps() / 4);
}

// ---------------------------------------------------------------------------
// Both related-work matchers must agree with the reference oracle exactly.

using CpuParams = std::tuple<int /*queues*/, std::size_t /*pairs*/, int /*sources*/,
                             int /*tags*/, double /*src_wc*/, double /*tag_wc*/,
                             std::uint64_t /*seed*/>;

class CpuMatcherProperty : public ::testing::TestWithParam<CpuParams> {
 protected:
  Workload make() const {
    const auto& [queues, pairs, sources, tags, src_wc, tag_wc, seed] = GetParam();
    WorkloadSpec spec;
    spec.pairs = pairs;
    spec.sources = sources;
    spec.tags = tags;
    spec.src_wildcard_prob = src_wc;
    spec.tag_wildcard_prob = tag_wc;
    spec.seed = seed;
    return make_workload(spec);
  }
  int queues() const { return std::get<0>(GetParam()); }
};

TEST_P(CpuMatcherProperty, PartitionedListEqualsReference) {
  const auto w = make();
  EXPECT_EQ(PartitionedListMatcher(queues()).match(w.messages, w.requests)
                .result.request_match,
            ReferenceMatcher::match(w.messages, w.requests).request_match);
}

TEST_P(CpuMatcherProperty, HashedBinsEqualsReference) {
  const auto w = make();
  EXPECT_EQ(HashedBinsMatcher(queues()).match(w.messages, w.requests)
                .result.request_match,
            ReferenceMatcher::match(w.messages, w.requests).request_match);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpuMatcherProperty,
    ::testing::Combine(::testing::Values(1, 4, 64),
                       ::testing::Values<std::size_t>(200),
                       ::testing::Values(2, 16),
                       ::testing::Values(2, 64),
                       ::testing::Values(0.0, 0.3),
                       ::testing::Values(0.0, 0.3),
                       ::testing::Values<std::uint64_t>(51, 52)));

INSTANTIATE_TEST_SUITE_P(
    WildcardHeavy, CpuMatcherProperty,
    ::testing::Combine(::testing::Values(8), ::testing::Values<std::size_t>(300),
                       ::testing::Values(8), ::testing::Values(8),
                       ::testing::Values(1.0), ::testing::Values(1.0),
                       ::testing::Values<std::uint64_t>(53)));

}  // namespace
}  // namespace simtmsg::matching

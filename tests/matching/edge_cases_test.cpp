// Edge cases and failure-injection across the matching module.
#include <gtest/gtest.h>

#include "matching/engine.hpp"
#include "matching/hash_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/pattern_table_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

Message msg(Rank src, Tag tag) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = 0};
  return m;
}

RecvRequest req(Rank src, Tag tag) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = 0};
  return r;
}

// ---------------------------------------------------------------------------
// Hash matcher: 32-bit key aliasing.  The fold key (src << 16) ^ tag is
// injective only for 16-bit-scale sources; wider sources can alias and must
// be caught by the full-envelope verification (claim is undone, message
// deferred, correctness preserved).

TEST(HashAliasing, AliasedKeysNeverMisMatch) {
  // (0x10001 << 16) ^ 0x10 == (0x1 << 16) ^ 0x10 in 32 bits.
  const std::vector<Message> msgs = {msg(0x10001, 0x10)};
  const std::vector<RecvRequest> reqs = {req(0x1, 0x10)};
  const HashMatcher matcher(pascal());
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.matched(), 0u);  // Aliased but different envelopes.
}

TEST(HashAliasing, RealPairStillMatchesNextToAlias) {
  // The aliasing message must not consume the request; the true partner
  // arriving later in the batch must still get it.
  const std::vector<Message> msgs = {msg(0x10001, 0x10), msg(0x1, 0x10)};
  const std::vector<RecvRequest> reqs = {req(0x1, 0x10)};
  const HashMatcher matcher(pascal());
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.matched(), 1u);
  EXPECT_EQ(s.result.request_match[0], 1);  // The genuine source.
}

TEST(HashAliasing, SymmetricAliasPairBothMatch) {
  const std::vector<Message> msgs = {msg(0x10001, 0x10), msg(0x1, 0x10)};
  const std::vector<RecvRequest> reqs = {req(0x10001, 0x10), req(0x1, 0x10)};
  const HashMatcher matcher(pascal());
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.matched(), 2u);
  EXPECT_EQ(s.result.request_match[0], 0);
  EXPECT_EQ(s.result.request_match[1], 1);
}

// ---------------------------------------------------------------------------
// Matrix matcher option sweeps: cost knobs must never change results.

TEST(MatrixOptions, ColumnChunkDoesNotChangeResults) {
  WorkloadSpec spec;
  spec.pairs = 300;
  spec.sources = 8;
  spec.tags = 4;
  spec.src_wildcard_prob = 0.2;
  spec.seed = 61;
  const auto w = make_workload(spec);

  std::vector<std::vector<std::int32_t>> results;
  for (const int chunk : {1, 7, 64, 1024}) {
    MatrixMatcher::Options opt;
    opt.column_chunk = chunk;
    const auto s = MatrixMatcher(pascal(), opt).match_window(w.messages, w.requests);
    results.push_back(s.result.request_match);
  }
  for (std::size_t i = 1; i < results.size(); ++i) EXPECT_EQ(results[i], results[0]);
}

TEST(MatrixOptions, RequestWindowChangesCostNotOutcome) {
  WorkloadSpec spec;
  spec.pairs = 400;
  spec.sources = 10;
  spec.tags = 10;
  spec.seed = 62;
  const auto w = make_workload(spec);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);

  for (const int window : {16, 100, 1024}) {
    MatrixMatcher::Options opt;
    opt.request_window = window;
    MessageQueue mq;
    RecvQueue rq;
    fill_queues(w, mq, rq);
    const auto s = MatrixMatcher(pascal(), opt).match_queues(mq, rq);
    EXPECT_EQ(s.result.request_match, ref.request_match) << "window=" << window;
  }
}

TEST(MatrixOptions, CompactFlagAffectsOnlyCycles) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.match_fraction = 0.5;  // Leftovers make compaction non-trivial.
  spec.sources = 32;
  spec.tags = 32;
  spec.seed = 63;
  const auto w = make_workload(spec);

  MatrixMatcher::Options on;
  on.compact = true;
  MatrixMatcher::Options off;
  off.compact = false;
  MessageQueue mq1, mq2;
  RecvQueue rq1, rq2;
  fill_queues(w, mq1, rq1);
  fill_queues(w, mq2, rq2);
  const auto s_on = MatrixMatcher(pascal(), on).match_queues(mq1, rq1);
  const auto s_off = MatrixMatcher(pascal(), off).match_queues(mq2, rq2);
  EXPECT_EQ(s_on.result.request_match, s_off.result.request_match);
  EXPECT_GT(s_on.cycles, s_off.cycles);  // Charged vs tolerated bubbles.
  EXPECT_EQ(mq1.size(), mq2.size());     // Functional state identical.
}

// ---------------------------------------------------------------------------
// Engine queue variant.

TEST(EngineQueues, LeftoversRemainAndAreOrdered) {
  const MatchEngine engine(pascal(), SemanticsConfig{});
  MessageQueue mq;
  RecvQueue rq;
  mq.push(msg(0, 1));
  mq.push(msg(0, 2));
  mq.push(msg(0, 3));
  rq.push(req(0, 2));
  const auto s = engine.match_queues(mq, rq);
  EXPECT_EQ(s.result.matched(), 1u);
  ASSERT_EQ(mq.size(), 2u);
  EXPECT_EQ(mq[0].env.tag, 1);  // Relative order preserved.
  EXPECT_EQ(mq[1].env.tag, 3);
  EXPECT_TRUE(rq.empty());
}

TEST(EngineQueues, HashRowDrainsQueues) {
  SemanticsConfig cfg;
  cfg.wildcards = false;
  cfg.ordering = false;
  cfg.partitions = 4;
  const MatchEngine engine(pascal(), cfg);
  WorkloadSpec spec;
  spec.pairs = 128;
  spec.unique_tuples = true;
  spec.sources = 32;
  spec.tags = 32;
  spec.seed = 64;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  (void)engine.match_queues(mq, rq);
  EXPECT_TRUE(mq.empty());
  EXPECT_TRUE(rq.empty());
}

// ---------------------------------------------------------------------------
// Pattern-table FIFO tiebreaks: candidates from different wildcard-class
// tables compete on global posting order alone — never on "specificity".

TEST(PatternFifo, SameKeyRaceResolvesInPostedOrder) {
  // Three receives on one bucket, three identical messages: the per-key FIFO
  // must hand them out head-first.
  const PatternTableMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(1, 1), msg(1, 1), msg(1, 1)};
  const std::vector<RecvRequest> reqs = {req(1, 1), req(1, 1), req(1, 1)};
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(PatternFifo, AnyTagVsAnySourcePriorityIsPostingOrder) {
  // One message acceptable to both wildcard classes: whichever receive was
  // posted first wins, in either posting order.
  const PatternTableMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(2, 9)};

  const std::vector<RecvRequest> src_first = {req(kAnySource, 9), req(2, kAnyTag)};
  const auto a = matcher.match(msgs, src_first);
  EXPECT_EQ(a.result.request_match, (std::vector<std::int32_t>{0, kNoMatch}));

  const std::vector<RecvRequest> tag_first = {req(2, kAnyTag), req(kAnySource, 9)};
  const auto b = matcher.match(msgs, tag_first);
  EXPECT_EQ(b.result.request_match, (std::vector<std::int32_t>{0, kNoMatch}));
}

TEST(PatternFifo, DoubleWildcardBeatsLaterConcreteReceive) {
  // MPI has no best-match rule: an (ANY, ANY) receive posted before an exact
  // one takes the message, even though the exact receive is more specific.
  const PatternTableMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(2, 9)};
  const std::vector<RecvRequest> reqs = {req(kAnySource, kAnyTag), req(2, 9)};
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{0, kNoMatch}));
}

TEST(PatternFifo, AllFourClassesCompeteOnPostingOrder) {
  // One receive per wildcard class, all acceptable to every message: four
  // identical messages must drain the classes in global posting order, and
  // the pairing must equal the oracle's.
  const PatternTableMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(2, 9), msg(2, 9), msg(2, 9), msg(2, 9)};
  const std::vector<RecvRequest> reqs = {req(2, 9), req(kAnySource, 9),
                                         req(2, kAnyTag), req(kAnySource, kAnyTag)};
  const auto s = matcher.match(msgs, reqs);
  const auto ref = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(s.result.request_match, ref.request_match);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(PatternFifo, WildcardsStayInsideTheirCommunicator) {
  // Class keys include the communicator: an ANY_SOURCE receive on comm 1
  // must not see the identical-looking comm-0 message.
  const PatternTableMatcher matcher(pascal());
  Message m0, m1;
  m0.env = {.src = 1, .tag = 5, .comm = 0};
  m1.env = {.src = 1, .tag = 5, .comm = 1};
  RecvRequest r0, r1;
  r0.env = {.src = kAnySource, .tag = 5, .comm = 1};  // Posted first.
  r1.env = {.src = 1, .tag = 5, .comm = 0};
  const std::vector<Message> msgs = {m0, m1};
  const std::vector<RecvRequest> reqs = {r0, r1};
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{1, 0}));
}

TEST(PatternFifo, DenseWildcardMixAgreesWithReference) {
  // Small key spaces + both wildcard axes: every table sees long FIFO
  // chains and every message probes several classes.
  WorkloadSpec spec;
  spec.pairs = 300;
  spec.sources = 3;
  spec.tags = 3;
  spec.src_wildcard_prob = 0.5;
  spec.tag_wildcard_prob = 0.5;
  spec.match_fraction = 0.7;
  spec.seed = 65;
  const auto w = make_workload(spec);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  const auto s = PatternTableMatcher(pascal()).match(w.messages, w.requests);
  EXPECT_EQ(s.result.request_match, ref.request_match);
}

// ---------------------------------------------------------------------------
// Degenerate shapes.

TEST(EdgeShapes, OneMessageManyRequests) {
  const MatrixMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(1, 1)};
  std::vector<RecvRequest> reqs(500, req(1, 1));
  const auto s = matcher.match_window(msgs, reqs);
  EXPECT_EQ(s.result.matched(), 1u);
  EXPECT_EQ(s.result.request_match[0], 0);
}

TEST(EdgeShapes, ManyMessagesOneRequest) {
  const MatrixMatcher matcher(pascal());
  std::vector<Message> msgs;
  for (int i = 0; i < 500; ++i) msgs.push_back(msg(1, 1));
  const std::vector<RecvRequest> reqs = {req(1, 1)};
  const auto s = matcher.match_window(msgs, reqs);
  EXPECT_EQ(s.result.request_match[0], 0);  // Earliest message.
}

TEST(EdgeShapes, AllWildcardsAllDuplicates) {
  // The maximal-dependency stress: everything matches everything.
  const MatrixMatcher matcher(pascal());
  std::vector<Message> msgs;
  std::vector<RecvRequest> reqs;
  for (int i = 0; i < 100; ++i) {
    msgs.push_back(msg(5, 5));
    reqs.push_back(req(kAnySource, kAnyTag));
  }
  const auto s = matcher.match_window(msgs, reqs);
  // Ordering: request i must take message i.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.result.request_match[static_cast<std::size_t>(i)], i);
  }
}

TEST(EdgeShapes, ExactWindowBoundary) {
  // 1024 and 1025 messages straddle the one-iteration capacity.
  for (const std::size_t n : {1024u, 1025u}) {
    WorkloadSpec spec;
    spec.pairs = n;
    spec.sources = 64;
    spec.tags = 64;
    spec.seed = n;
    const auto w = make_workload(spec);
    MessageQueue mq;
    RecvQueue rq;
    fill_queues(w, mq, rq);
    const auto s = MatrixMatcher(pascal()).match_queues(mq, rq);
    EXPECT_EQ(s.result.matched(), n);
    EXPECT_EQ(s.iterations, n <= 1024 ? 1 : 2);
  }
}

}  // namespace
}  // namespace simtmsg::matching

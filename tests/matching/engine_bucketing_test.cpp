// The MatchEngine's multi-communicator split (engine.cpp): a single-pass
// O(M + R + C) bucket build replaced the old per-comm rescan.  These tests
// pin its correctness against ReferenceMatcher across distinct-comm counts —
// including 33 comms, which exceeds the split's initial table sizing for
// small batches — and check that recycling the engine's workspace across
// calls is observationally identical.
#include <gtest/gtest.h>

#include "matching/engine.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"
#include "util/rng.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

/// `n_comms` communicators with per-comm distinct workloads (different
/// seeds), wildcard receives included, interleaved into one batch.
Workload bucketing_workload(int n_comms, std::size_t per_comm, std::uint64_t seed) {
  Workload all;
  for (int c = 0; c < n_comms; ++c) {
    WorkloadSpec spec;
    spec.pairs = per_comm;
    spec.sources = 4;
    spec.tags = 4;
    spec.comm = c;
    spec.src_wildcard_prob = 0.25;
    spec.tag_wildcard_prob = 0.25;
    spec.seed = seed + static_cast<std::uint64_t>(c);
    const auto w = make_workload(spec);
    all.messages.insert(all.messages.end(), w.messages.begin(), w.messages.end());
    all.requests.insert(all.requests.end(), w.requests.begin(), w.requests.end());
  }
  util::Rng rng(seed + 1000);
  rng.shuffle(all.messages);
  rng.shuffle(all.requests);
  return all;
}

class EngineBucketing : public ::testing::TestWithParam<int> {};

TEST_P(EngineBucketing, MatchesReferenceWithWildcards) {
  const int n_comms = GetParam();
  const auto w = bucketing_workload(n_comms, 24, 500);
  const MatchEngine engine(pascal(), SemanticsConfig{});
  const auto stats = engine.match(w.messages, w.requests);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(stats.result.request_match, ref.request_match);
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    if (m == kNoMatch) continue;
    EXPECT_EQ(w.requests[r].env.comm, w.messages[static_cast<std::size_t>(m)].env.comm);
  }
}

INSTANTIATE_TEST_SUITE_P(DistinctCommCounts, EngineBucketing,
                         ::testing::Values(1, 2, 33),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "comms" + std::to_string(info.param);
                         });

TEST(EngineBucketing, WorkspaceRecyclingIsObservationallyIdentical) {
  // Same engine, same batch, back to back: the second call runs entirely on
  // recycled workspace buffers and must reproduce the first bit for bit.
  const auto w = bucketing_workload(33, 16, 700);
  const MatchEngine engine(pascal(), SemanticsConfig{});
  SimtMatchStats first;
  engine.match(w.messages, w.requests, first);
  SimtMatchStats again;
  engine.match(w.messages, w.requests, again);
  EXPECT_EQ(first.result.request_match, again.result.request_match);
  EXPECT_EQ(first.cycles, again.cycles);
  EXPECT_EQ(first.iterations, again.iterations);
  EXPECT_EQ(first.warps_used, again.warps_used);
}

TEST(EngineBucketing, QueueEntryPointHandlesManyComms) {
  const auto w = bucketing_workload(33, 16, 900);
  const MatchEngine engine(pascal(), SemanticsConfig{});
  MessageQueue mq;
  RecvQueue rq;
  for (const auto& m : w.messages) mq.push(m);
  for (const auto& r : w.requests) rq.push(r);
  SimtMatchStats stats;
  engine.match_queues(mq, rq, stats);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(stats.result.request_match, ref.request_match);
  EXPECT_EQ(mq.size(), w.messages.size() - stats.result.matched());
  EXPECT_EQ(rq.size(), w.requests.size() - stats.result.matched());
}

}  // namespace
}  // namespace simtmsg::matching

#include "matching/engine.hpp"

#include <gtest/gtest.h>

#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

TEST(MatchEngine, AlgorithmSelectionFollowsTable2) {
  EXPECT_EQ(MatchEngine(pascal(), SemanticsConfig::compliant()).algorithm_kind(),
            Algorithm::kMatrix);
  EXPECT_EQ(MatchEngine(pascal(), SemanticsConfig::partitioned()).algorithm_kind(),
            Algorithm::kPartitionedMatrix);
  EXPECT_EQ(MatchEngine(pascal(), SemanticsConfig::relaxed_unordered()).algorithm_kind(),
            Algorithm::kHashTable);
  EXPECT_EQ(MatchEngine(pascal(), SemanticsConfig::pattern_tables()).algorithm_kind(),
            Algorithm::kPatternTable);
}

TEST(MatchEngine, AlgorithmToString) {
  EXPECT_EQ(to_string(Algorithm::kMatrix), "matrix");
  EXPECT_EQ(to_string(Algorithm::kPartitionedMatrix), "partitioned-matrix");
  EXPECT_EQ(to_string(Algorithm::kHashTable), "hash-table");
}

TEST(MatchEngine, AlgorithmKindRoundTripsThroughToString) {
  const MatchEngine engine(pascal(), SemanticsConfig{});
  EXPECT_EQ(to_string(engine.algorithm_kind()), "matrix");
}

TEST(MatchEngine, RejectsInconsistentSemantics) {
  SemanticsConfig bad;
  bad.partitions = 4;  // Wildcards still allowed: invalid.
  EXPECT_THROW(MatchEngine(pascal(), bad), std::invalid_argument);
}

TEST(MatchEngine, EnforcesWildcardProhibition) {
  SemanticsConfig cfg;
  cfg.wildcards = false;
  const MatchEngine engine(pascal(), cfg);
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = 0, .comm = 0};
  const std::vector<RecvRequest> reqs = {r};
  const std::vector<Message> msgs = {Message{}};
  EXPECT_THROW((void)engine.match(msgs, reqs), std::invalid_argument);
}

TEST(MatchEngine, EnforcesNoUnexpectedMessages) {
  SemanticsConfig cfg;
  cfg.unexpected = false;
  const MatchEngine engine(pascal(), cfg);
  Message m;
  m.env = {.src = 0, .tag = 0, .comm = 0};
  const std::vector<Message> msgs = {m};  // No matching request posted.
  EXPECT_THROW((void)engine.match(msgs, {}), std::runtime_error);
}

TEST(MatchEngine, FullMpiRowMatchesReference) {
  const MatchEngine engine(pascal(), SemanticsConfig{});
  WorkloadSpec spec;
  spec.pairs = 200;
  spec.src_wildcard_prob = 0.1;
  spec.tag_wildcard_prob = 0.1;
  spec.seed = 21;
  const auto w = make_workload(spec);
  const auto s = engine.match(w.messages, w.requests);
  EXPECT_EQ(s.result.request_match,
            ReferenceMatcher::match(w.messages, w.requests).request_match);
}

TEST(MatchEngine, AllSixRowsCompleteFullyMatchingWorkload) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 32;
  spec.tags = 32;
  spec.unique_tuples = true;  // Every row can match this workload fully.
  spec.seed = 22;
  const auto w = make_workload(spec);

  for (const auto& row : table2_rows()) {
    const MatchEngine engine(pascal(), row);
    const auto s = engine.match(w.messages, w.requests);
    EXPECT_EQ(s.result.matched(), 256u) << describe(row);
    EXPECT_GT(s.matches_per_second(), 0.0) << describe(row);
  }
}

TEST(MatchEngine, RelaxationsAreMonotonicallyFaster) {
  // The paper's core claim: each relaxation row is at least as fast as the
  // fully compliant baseline; the hash rows are dramatically faster.
  WorkloadSpec spec;
  spec.pairs = 1024;
  spec.sources = 64;
  spec.tags = 64;
  spec.unique_tuples = true;
  spec.seed = 23;
  const auto w = make_workload(spec);

  std::vector<double> rates;
  for (const auto& row : table2_rows()) {
    rates.push_back(MatchEngine(pascal(), row).match(w.messages, w.requests)
                        .matches_per_second());
  }
  const double full_mpi = rates[0];
  const double partitioned = rates[2];
  const double hash = rates[4];
  EXPECT_GT(partitioned, 2.0 * full_mpi);
  EXPECT_GT(hash, 10.0 * full_mpi);
}

TEST(MatchEngine, MoveSemantics) {
  MatchEngine a(pascal(), SemanticsConfig{});
  MatchEngine b = std::move(a);
  EXPECT_EQ(b.algorithm_kind(), Algorithm::kMatrix);
}

}  // namespace
}  // namespace simtmsg::matching

#include "matching/envelope.hpp"

#include <gtest/gtest.h>

namespace simtmsg::matching {
namespace {

TEST(Envelope, ExactMatch) {
  const Envelope recv{.src = 3, .tag = 7, .comm = 1};
  EXPECT_TRUE(matches(recv, {.src = 3, .tag = 7, .comm = 1}));
  EXPECT_FALSE(matches(recv, {.src = 4, .tag = 7, .comm = 1}));
  EXPECT_FALSE(matches(recv, {.src = 3, .tag = 8, .comm = 1}));
  EXPECT_FALSE(matches(recv, {.src = 3, .tag = 7, .comm = 2}));
}

TEST(Envelope, SourceWildcardMatchesAnySource) {
  const Envelope recv{.src = kAnySource, .tag = 7, .comm = 0};
  EXPECT_TRUE(matches(recv, {.src = 0, .tag = 7, .comm = 0}));
  EXPECT_TRUE(matches(recv, {.src = 999, .tag = 7, .comm = 0}));
  EXPECT_FALSE(matches(recv, {.src = 0, .tag = 8, .comm = 0}));
}

TEST(Envelope, TagWildcardMatchesAnyTag) {
  const Envelope recv{.src = 2, .tag = kAnyTag, .comm = 0};
  EXPECT_TRUE(matches(recv, {.src = 2, .tag = 0, .comm = 0}));
  EXPECT_TRUE(matches(recv, {.src = 2, .tag = 65535, .comm = 0}));
  EXPECT_FALSE(matches(recv, {.src = 3, .tag = 0, .comm = 0}));
}

TEST(Envelope, DoubleWildcardOnlyChecksComm) {
  const Envelope recv{.src = kAnySource, .tag = kAnyTag, .comm = 5};
  EXPECT_TRUE(matches(recv, {.src = 1, .tag = 2, .comm = 5}));
  EXPECT_FALSE(matches(recv, {.src = 1, .tag = 2, .comm = 6}));
}

TEST(Envelope, CommunicatorNeverWildcards) {
  // MPI has no MPI_ANY_COMM: the communicator always participates.
  const Envelope recv{.src = kAnySource, .tag = kAnyTag, .comm = 0};
  EXPECT_FALSE(matches(recv, {.src = 0, .tag = 0, .comm = 1}));
}

TEST(Envelope, HasWildcardDetection) {
  EXPECT_FALSE(has_wildcard({.src = 0, .tag = 0, .comm = 0}));
  EXPECT_TRUE(has_wildcard({.src = kAnySource, .tag = 0, .comm = 0}));
  EXPECT_TRUE(has_wildcard({.src = 0, .tag = kAnyTag, .comm = 0}));
}

TEST(Envelope, PackUnpackRoundTrip) {
  // Section IV: 16-bit tag + 32-bit src + comm bits fit one 64-bit word.
  const Envelope e{.src = 123456, .tag = 65535, .comm = 17};
  EXPECT_EQ(unpack(pack(e)), e);
}

TEST(Envelope, PackRoundTripExtremes) {
  const Envelope zero{.src = 0, .tag = 0, .comm = 0};
  EXPECT_EQ(unpack(pack(zero)), zero);
  const Envelope big{.src = 0x7FFFFFFF, .tag = 0xFFFF, .comm = 0xFFFF};
  EXPECT_EQ(unpack(pack(big)), big);
}

TEST(Envelope, PackRejectsWildcardsAndOverflow) {
  EXPECT_THROW((void)pack({.src = kAnySource, .tag = 0, .comm = 0}), std::invalid_argument);
  EXPECT_THROW((void)pack({.src = 0, .tag = kAnyTag, .comm = 0}), std::invalid_argument);
  EXPECT_THROW((void)pack({.src = 0, .tag = 0x1'0000, .comm = 0}), std::invalid_argument);
  EXPECT_THROW((void)pack({.src = 0, .tag = 0, .comm = 0x1'0000}), std::invalid_argument);
}

TEST(Envelope, MatchKeyDistinguishesSmallTuples) {
  // Injective on the trace-realistic domain (src, tag < 2^16).
  EXPECT_NE(match_key({.src = 1, .tag = 0, .comm = 0}),
            match_key({.src = 0, .tag = 1, .comm = 0}));
  EXPECT_NE(match_key({.src = 1, .tag = 2, .comm = 0}),
            match_key({.src = 2, .tag = 1, .comm = 0}));
}

TEST(Envelope, ToStringShowsWildcards) {
  EXPECT_EQ(to_string({.src = kAnySource, .tag = 3, .comm = 0}),
            "{src=ANY, tag=3, comm=0}");
  EXPECT_EQ(to_string({.src = 1, .tag = kAnyTag, .comm = 2}),
            "{src=1, tag=ANY, comm=2}");
}

}  // namespace
}  // namespace simtmsg::matching

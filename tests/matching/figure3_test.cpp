// A transcription of the paper's Figure 3 worked example: "The picture
// shows four warps with a generic warp size of four threads."
//
// Sixteen messages live in the message queue (four logical warps of width
// four); the receive request queue holds requests A, B, C, ...  The figure
// walks the scan votes and the reduce decisions:
//   - column A has a single vote from the message at position 14
//     ("the matching message can be found at position 14
//       (warp ID x warp size + bit position - 1)"),
//   - column B has several bidders and "the first thread gets the match due
//     to its lowest thread ID ... the matching message ... can be found at
//     the head of the queue",
//   - column C demonstrates a wildcard ("it also works with wildcards as
//     the third column shows").
#include <gtest/gtest.h>

#include "matching/matrix_matcher.hpp"
#include "matching/reference_matcher.hpp"

namespace simtmsg::matching {
namespace {

Message msg(Rank src, Tag tag) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = 0};
  return m;
}

RecvRequest req(Rank src, Tag tag) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = 0};
  return r;
}

class Figure3 : public ::testing::Test {
 protected:
  Figure3() {
    // Sixteen messages = 4 warps x 4 lanes.  Tuples chosen so that:
    //  - request A = {7, 70} matches ONLY the message at position 14,
    //  - request B = {1, 10} matches positions 0, 5 and 9 (several bidders
    //    across warps; position 0 must win),
    //  - request C = {ANY, 30} matches positions 3 and 12 via the source
    //    wildcard (position 3 must win).
    for (int i = 0; i < 16; ++i) msgs_.push_back(msg(90 + i, 900 + i));  // Fillers.
    msgs_[0] = msg(1, 10);
    msgs_[5] = msg(1, 10);
    msgs_[9] = msg(1, 10);
    msgs_[3] = msg(2, 30);
    msgs_[12] = msg(3, 30);
    msgs_[14] = msg(7, 70);
  }

  std::vector<Message> msgs_;
  MatrixMatcher::Options width4_{.warp_width = 4};
};

TEST_F(Figure3, SingleVoteColumnResolvesToPosition14) {
  const MatrixMatcher matcher(simt::pascal_gtx1080(), width4_);
  const std::vector<RecvRequest> reqs = {req(7, 70)};
  const auto s = matcher.match_window(msgs_, reqs);
  // Warp 3 (positions 12..15), bit position 3 within the warp:
  // warp_id * warp_size + bit = 3 * 4 + 2 = 14.
  EXPECT_EQ(s.result.request_match[0], 14);
  EXPECT_EQ(s.warps_used, 4);
}

TEST_F(Figure3, MultipleBiddersLowestThreadWins) {
  const MatrixMatcher matcher(simt::pascal_gtx1080(), width4_);
  const std::vector<RecvRequest> reqs = {req(1, 10)};
  const auto s = matcher.match_window(msgs_, reqs);
  // Positions 0 (warp 0), 5 (warp 1) and 9 (warp 2) all bid; "the first
  // thread gets the match due to its lowest thread ID" -> head of queue.
  EXPECT_EQ(s.result.request_match[0], 0);
}

TEST_F(Figure3, WildcardColumnWorks) {
  const MatrixMatcher matcher(simt::pascal_gtx1080(), width4_);
  const std::vector<RecvRequest> reqs = {req(kAnySource, 30)};
  const auto s = matcher.match_window(msgs_, reqs);
  EXPECT_EQ(s.result.request_match[0], 3);  // Earliest of {3, 12}.
}

TEST_F(Figure3, SequentialColumnsConsumeWithoutRematching) {
  // Reducing B twice: the mask must prevent re-matching position 0, so the
  // second B takes position 5, the third takes 9, the fourth finds nothing.
  const MatrixMatcher matcher(simt::pascal_gtx1080(), width4_);
  const std::vector<RecvRequest> reqs = {req(1, 10), req(1, 10), req(1, 10),
                                         req(1, 10)};
  const auto s = matcher.match_window(msgs_, reqs);
  EXPECT_EQ(s.result.request_match,
            (std::vector<std::int32_t>{0, 5, 9, kNoMatch}));
}

TEST_F(Figure3, FullFigureScenarioMatchesReference) {
  // All three figure columns posted together, in order A, B, C.
  const MatrixMatcher matcher(simt::pascal_gtx1080(), width4_);
  const std::vector<RecvRequest> reqs = {req(7, 70), req(1, 10), req(kAnySource, 30)};
  const auto s = matcher.match_window(msgs_, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{14, 0, 3}));
  EXPECT_EQ(s.result.request_match,
            ReferenceMatcher::match(msgs_, reqs).request_match);
}

}  // namespace
}  // namespace simtmsg::matching

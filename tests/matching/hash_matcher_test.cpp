#include "matching/hash_matcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

/// Unordered-semantics validity: every matched pair has equal envelopes,
/// no message/request is used twice, and the number of pairs equals the
/// maximum pairable count.
void expect_valid_unordered(const MatchResult& result, std::span<const Message> msgs,
                            std::span<const RecvRequest> reqs) {
  std::vector<bool> msg_used(msgs.size(), false);
  for (std::size_t r = 0; r < result.request_match.size(); ++r) {
    const auto m = result.request_match[r];
    if (m == kNoMatch) continue;
    ASSERT_GE(m, 0);
    ASSERT_LT(static_cast<std::size_t>(m), msgs.size());
    EXPECT_FALSE(msg_used[static_cast<std::size_t>(m)]) << "message matched twice";
    msg_used[static_cast<std::size_t>(m)] = true;
    EXPECT_EQ(reqs[r].env, msgs[static_cast<std::size_t>(m)].env);
  }
  EXPECT_EQ(result.matched(), ReferenceMatcher::pairable_count(msgs, reqs));
}

TEST(HashMatcher, RejectsWildcards) {
  const HashMatcher matcher(pascal());
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = 0, .comm = 0};
  const std::vector<RecvRequest> reqs = {r};
  const std::vector<Message> msgs = {Message{}};
  EXPECT_THROW((void)matcher.match(msgs, reqs), std::invalid_argument);
}

TEST(HashMatcher, UniqueTuplesMatchInOneIteration) {
  const HashMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 1024;
  spec.unique_tuples = true;
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 5;
  const auto w = make_workload(spec);
  const auto s = matcher.match(w.messages, w.requests);
  EXPECT_EQ(s.result.matched(), 1024u);
  // Unique random keys into a ~2.5x table: almost everything lands in one
  // or two iterations.
  EXPECT_LE(s.iterations, 4);
  expect_valid_unordered(s.result, w.messages, w.requests);
}

TEST(HashMatcher, DuplicateTuplesNeedMoreIterations) {
  const HashMatcher matcher(pascal());
  WorkloadSpec dup;
  dup.pairs = 512;
  dup.sources = 2;
  dup.tags = 2;  // Heavy duplication: 4 distinct tuples.
  dup.seed = 6;
  const auto w = make_workload(dup);
  const auto s = matcher.match(w.messages, w.requests);
  expect_valid_unordered(s.result, w.messages, w.requests);
  EXPECT_GT(s.iterations, 4);  // "The more collisions ... the more iterations".
}

TEST(HashMatcher, PartialMatchLeavesUnmatched) {
  const HashMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 32;
  spec.tags = 32;
  spec.match_fraction = 0.5;
  spec.seed = 7;
  const auto w = make_workload(spec);
  const auto s = matcher.match(w.messages, w.requests);
  expect_valid_unordered(s.result, w.messages, w.requests);
  EXPECT_LT(s.result.matched(), w.messages.size());
}

TEST(HashMatcher, MultipleCtasSameResultDifferentTiming) {
  WorkloadSpec spec;
  spec.pairs = 2048;
  spec.unique_tuples = true;
  spec.sources = 128;
  spec.tags = 64;
  spec.seed = 8;
  const auto w = make_workload(spec);

  HashMatcher::Options one;
  one.ctas = 1;
  HashMatcher::Options four;
  four.ctas = 4;
  const auto s1 = HashMatcher(pascal(), one).match(w.messages, w.requests);
  const auto s4 = HashMatcher(pascal(), four).match(w.messages, w.requests);
  EXPECT_EQ(s1.result.matched(), s4.result.matched());
  EXPECT_GT(s1.cycles, 0.0);
  EXPECT_GT(s4.cycles, 0.0);
}

TEST(HashMatcher, EmptyInputs) {
  const HashMatcher matcher(pascal());
  const auto s = matcher.match({}, {});
  EXPECT_EQ(s.result.matched(), 0u);
  EXPECT_EQ(s.iterations, 0);
}

TEST(HashMatcher, MatchQueuesRemovesMatched) {
  const HashMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 300;
  spec.sources = 16;
  spec.tags = 16;
  spec.match_fraction = 0.7;
  spec.seed = 9;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  const auto before_msgs = mq.size();
  const auto s = matcher.match_queues(mq, rq);
  EXPECT_EQ(mq.size(), before_msgs - s.result.matched());
  EXPECT_EQ(rq.size(), w.requests.size() - s.result.matched());
}

TEST(HashMatcher, IdentityHashDegradesIterationsNotCorrectness) {
  WorkloadSpec spec;
  spec.pairs = 512;
  spec.unique_tuples = true;
  spec.sources = 512;
  spec.tags = 16;
  spec.seed = 10;
  const auto w = make_workload(spec);

  HashMatcher::Options good;
  good.hash = util::HashKind::kJenkins;
  HashMatcher::Options bad;
  bad.hash = util::HashKind::kIdentity;
  const auto sg = HashMatcher(pascal(), good).match(w.messages, w.requests);
  const auto sb = HashMatcher(pascal(), bad).match(w.messages, w.requests);
  expect_valid_unordered(sb.result, w.messages, w.requests);
  EXPECT_EQ(sg.result.matched(), sb.result.matched());
}

TEST(HashMatcher, FasterThanMpiCompliantPathAt1024) {
  // The whole point of the relaxation: orders of magnitude more throughput.
  WorkloadSpec spec;
  spec.pairs = 1024;
  spec.unique_tuples = true;
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 11;
  const auto w = make_workload(spec);
  const auto s = HashMatcher(pascal()).match(w.messages, w.requests);
  // > 100 M matches/s on the Pascal model.
  EXPECT_GT(s.matches_per_second(), 100e6);
}

}  // namespace
}  // namespace simtmsg::matching

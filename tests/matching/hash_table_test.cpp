#include "matching/device_hash_table.hpp"

#include <gtest/gtest.h>

#include "simt/cta.hpp"
#include "util/bits.hpp"

namespace simtmsg::matching {
namespace {

class HashTableTest : public ::testing::Test {
 protected:
  simt::EventCounters counters_;
  simt::WarpContext warp_{0, counters_};
};

TEST_F(HashTableTest, SizingFollowsRatio) {
  const DeviceHashTable t(1000, 5.0);
  EXPECT_EQ(t.secondary_size(), 512u);  // next_pow2(500).
  EXPECT_EQ(t.primary_size(), 5u * 512u);
}

TEST_F(HashTableTest, InsertThenProbeRoundTrip) {
  DeviceHashTable t(64);
  simt::LaneU32 keys, values;
  for (int lane = 0; lane < 32; ++lane) {
    keys[lane] = static_cast<std::uint32_t>(lane) << 16;
    values[lane] = static_cast<std::uint32_t>(lane) + 100;
  }
  simt::LaneBool inserted;
  t.insert(warp_, keys, values, inserted);
  for (int lane = 0; lane < 32; ++lane) EXPECT_TRUE(inserted[lane]) << lane;
  EXPECT_EQ(t.occupancy(), 32u);

  simt::LaneU32 out;
  simt::LaneBool found;
  t.probe_claim(warp_, keys, out, found);
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_TRUE(found[lane]) << lane;
    EXPECT_EQ(out[lane], static_cast<std::uint32_t>(lane) + 100);
  }
  EXPECT_EQ(t.occupancy(), 0u);  // Claims remove entries.
}

TEST_F(HashTableTest, ProbeMissingKeyFails) {
  DeviceHashTable t(64);
  simt::LaneU32 keys(12345u), out;
  simt::LaneBool found;
  warp_.set_active(1u);
  t.probe_claim(warp_, keys, out, found);
  EXPECT_FALSE(found[0]);
}

TEST_F(HashTableTest, DuplicateKeysSecondLaneSpills) {
  // Two lanes with the same key: one goes to primary, the other collides
  // into secondary; a third holder defers ("the thread holds on to the
  // request for the next iteration").
  DeviceHashTable t(64);
  simt::LaneU32 keys(777u), values;
  for (int lane = 0; lane < 32; ++lane) values[lane] = static_cast<std::uint32_t>(lane);
  warp_.set_active(0b111u);
  simt::LaneBool inserted;
  t.insert(warp_, keys, values, inserted);
  const int ok = inserted[0] + inserted[1] + inserted[2];
  EXPECT_EQ(ok, 2);  // Primary + secondary.
  EXPECT_EQ(t.occupancy(), 2u);
}

TEST_F(HashTableTest, ClaimIsExclusiveAmongDuplicateProbes) {
  DeviceHashTable t(64);
  simt::LaneU32 keys(42u), values(7u);
  warp_.set_active(1u);
  simt::LaneBool inserted;
  t.insert(warp_, keys, values, inserted);
  ASSERT_TRUE(inserted[0]);

  // Two lanes probe the same key; exactly one may claim the single entry.
  warp_.set_active(0b11u);
  simt::LaneU32 out;
  simt::LaneBool found;
  t.probe_claim(warp_, keys, out, found);
  EXPECT_EQ(found[0] + found[1], 1);
}

TEST_F(HashTableTest, ReinsertHostRestoresEntry) {
  DeviceHashTable t(64);
  EXPECT_TRUE(t.reinsert_host(9u, 3u));
  EXPECT_EQ(t.occupancy(), 1u);
  simt::LaneU32 keys(9u), out;
  simt::LaneBool found;
  warp_.set_active(1u);
  t.probe_claim(warp_, keys, out, found);
  EXPECT_TRUE(found[0]);
  EXPECT_EQ(out[0], 3u);
}

TEST_F(HashTableTest, ClearEmptiesBothLevels) {
  DeviceHashTable t(64);
  (void)t.reinsert_host(1u, 1u);
  (void)t.reinsert_host(2u, 2u);
  t.clear();
  EXPECT_EQ(t.occupancy(), 0u);
}

TEST_F(HashTableTest, InsertCountsAtomics) {
  DeviceHashTable t(64);
  simt::LaneU32 keys, values;
  for (int lane = 0; lane < 32; ++lane) keys[lane] = static_cast<std::uint32_t>(lane * 9901);
  simt::LaneBool inserted;
  t.insert(warp_, keys, values, inserted);
  EXPECT_GE(counters_.atomic_operations, 32u);
  EXPECT_GT(counters_.alu_instructions, 0u);
}

TEST_F(HashTableTest, IdentityHashStillCorrect) {
  // The pathological hash must stay functionally correct (just slower).
  DeviceHashTable t(64, 5.0, util::HashKind::kIdentity);
  simt::LaneU32 keys, values;
  for (int lane = 0; lane < 32; ++lane) {
    keys[lane] = static_cast<std::uint32_t>(lane);
    values[lane] = static_cast<std::uint32_t>(lane);
  }
  simt::LaneBool inserted;
  t.insert(warp_, keys, values, inserted);
  simt::LaneU32 out;
  simt::LaneBool found;
  t.probe_claim(warp_, keys, out, found);
  for (int lane = 0; lane < 32; ++lane) {
    EXPECT_TRUE(found[lane]);
    EXPECT_EQ(out[lane], static_cast<std::uint32_t>(lane));
  }
}

TEST_F(HashTableTest, HashCostRanking) {
  EXPECT_GT(DeviceHashTable::hash_cost(util::HashKind::kJenkins),
            DeviceHashTable::hash_cost(util::HashKind::kMurmur3Fmix));
  EXPECT_GT(DeviceHashTable::hash_cost(util::HashKind::kMurmur3Fmix),
            DeviceHashTable::hash_cost(util::HashKind::kIdentity));
}

TEST_F(HashTableTest, ActiveMaskRestoredAfterOps) {
  DeviceHashTable t(64);
  warp_.set_active(0xFFu);
  simt::LaneU32 keys(5u), values(1u), out;
  simt::LaneBool inserted, found;
  t.insert(warp_, keys, values, inserted);
  EXPECT_EQ(warp_.active(), 0xFFu);
  t.probe_claim(warp_, keys, out, found);
  EXPECT_EQ(warp_.active(), 0xFFu);
}

}  // namespace
}  // namespace simtmsg::matching

#include "matching/list_matcher.hpp"

#include <gtest/gtest.h>

#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

Message msg(Rank src, Tag tag) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = 0};
  return m;
}

RecvRequest req(Rank src, Tag tag) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = 0};
  return r;
}

TEST(ListMatcher, UnexpectedMessageLandsInUmq) {
  ListMatcher lm;
  EXPECT_FALSE(lm.arrive(msg(0, 1)).has_value());
  EXPECT_EQ(lm.umq_depth(), 1u);
  EXPECT_EQ(lm.prq_depth(), 0u);
}

TEST(ListMatcher, PostedReceiveLandsInPrq) {
  ListMatcher lm;
  EXPECT_FALSE(lm.post(req(0, 1)).has_value());
  EXPECT_EQ(lm.prq_depth(), 1u);
}

TEST(ListMatcher, PostConsumesUnexpectedMessage) {
  ListMatcher lm;
  (void)lm.arrive(msg(2, 3));
  const auto hit = lm.post(req(2, 3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->env.src, 2);
  EXPECT_EQ(lm.umq_depth(), 0u);
  EXPECT_EQ(lm.prq_depth(), 0u);
}

TEST(ListMatcher, ArriveConsumesPostedReceive) {
  ListMatcher lm;
  (void)lm.post(req(2, 3));
  const auto hit = lm.arrive(msg(2, 3));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(lm.prq_depth(), 0u);
  EXPECT_EQ(lm.umq_depth(), 0u);
}

TEST(ListMatcher, UmqSearchIsArrivalOrder) {
  ListMatcher lm;
  (void)lm.arrive(msg(1, 7));
  (void)lm.arrive(msg(1, 7));
  const auto hit = lm.post(req(1, 7));
  ASSERT_TRUE(hit.has_value());
  // The remaining unexpected message is the later one.
  EXPECT_EQ(lm.umq_depth(), 1u);
}

TEST(ListMatcher, PrqSearchIsPostedOrder) {
  ListMatcher lm;
  (void)lm.post(req(kAnySource, kAnyTag));
  (void)lm.post(req(5, 5));
  const auto hit = lm.arrive(msg(5, 5));
  ASSERT_TRUE(hit.has_value());
  // The wildcard (posted first) must win.
  EXPECT_TRUE(has_wildcard(hit->env));
  EXPECT_EQ(lm.prq_depth(), 1u);
}

TEST(ListMatcher, SearchStepsCountTraversals) {
  ListMatcher lm;
  for (int i = 0; i < 10; ++i) (void)lm.arrive(msg(i, 0));
  (void)lm.post(req(9, 0));  // Must traverse all 10 entries.
  EXPECT_EQ(lm.search_steps(), 10u);
}

TEST(ListMatcher, ClearResetsEverything) {
  ListMatcher lm;
  (void)lm.arrive(msg(0, 0));
  (void)lm.post(req(1, 1));
  lm.clear();
  EXPECT_EQ(lm.umq_depth(), 0u);
  EXPECT_EQ(lm.prq_depth(), 0u);
  EXPECT_EQ(lm.search_steps(), 0u);
}

TEST(ListMatcher, BatchAgreesWithReferenceOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadSpec spec;
    spec.pairs = 200;
    spec.sources = 8;
    spec.tags = 4;
    spec.src_wildcard_prob = 0.1;
    spec.tag_wildcard_prob = 0.1;
    spec.seed = seed;
    const auto w = make_workload(spec);
    const auto ours = ListMatcher{}.match(w.messages, w.requests).result;
    const auto ref = ReferenceMatcher::match(w.messages, w.requests);
    EXPECT_EQ(ours.request_match, ref.request_match) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace simtmsg::matching

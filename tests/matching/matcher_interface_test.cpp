// Interface conformance: every production Matcher implementation — the
// three SIMT matchers and the three CPU baselines — runs through one shared
// randomized sweep driven only by the base-class interface, with its
// traits() deciding the workload shape and the comparison mode against the
// ReferenceMatcher oracle.
#include "matching/matcher.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "matching/hash_matcher.hpp"
#include "matching/hashed_bins_matcher.hpp"
#include "matching/list_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_list_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

std::vector<std::unique_ptr<Matcher>> all_matchers() {
  const auto& dev = simt::pascal_gtx1080();
  std::vector<std::unique_ptr<Matcher>> out;
  out.push_back(std::make_unique<MatrixMatcher>(dev));
  PartitionedMatcher::Options popt;
  popt.partitions = 8;
  out.push_back(std::make_unique<PartitionedMatcher>(dev, popt));
  out.push_back(std::make_unique<HashMatcher>(dev));
  out.push_back(std::make_unique<ListMatcher>());
  out.push_back(std::make_unique<PartitionedListMatcher>(8));
  out.push_back(std::make_unique<HashedBinsMatcher>(16));
  return out;
}

Workload workload_for(const Matcher::Traits& t, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.pairs = 300;
  spec.src_wildcard_prob = t.source_wildcards ? 0.2 : 0.0;
  spec.tag_wildcard_prob = t.tag_wildcards ? 0.2 : 0.0;
  // Unordered matchers pair exact tuples only; keep every tuple matchable
  // (and give unique_tuples a tuple space larger than `pairs`).
  spec.unique_tuples = !t.ordered;
  spec.sources = spec.unique_tuples ? 32 : 16;
  spec.tags = spec.sources;
  spec.seed = seed;
  return make_workload(spec);
}

TEST(MatcherInterface, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const auto& m : all_matchers()) {
    EXPECT_FALSE(m->name().empty());
    EXPECT_TRUE(names.insert(std::string(m->name())).second)
        << "duplicate matcher name " << m->name();
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(MatcherInterface, EveryMatcherAgreesWithReferenceOnRandomSweep) {
  for (const auto& matcher : all_matchers()) {
    const auto traits = matcher->traits();
    for (std::uint64_t seed = 81; seed <= 84; ++seed) {
      const auto w = workload_for(traits, seed);
      const auto s = matcher->match(w.messages, w.requests);
      const std::string where =
          std::string(matcher->name()) + " seed=" + std::to_string(seed);

      if (traits.ordered) {
        // Ordered matchers must reproduce the oracle pairing exactly.
        const auto ref = ReferenceMatcher::match(w.messages, w.requests);
        EXPECT_EQ(s.result.request_match, ref.request_match) << where;
      } else {
        // Unordered matchers must produce a maximum valid matching over
        // exact tuples: same cardinality, envelopes equal, nothing reused.
        EXPECT_EQ(s.result.matched(),
                  ReferenceMatcher::pairable_count(w.messages, w.requests))
            << where;
        std::vector<bool> used(w.messages.size(), false);
        for (std::size_t r = 0; r < s.result.request_match.size(); ++r) {
          const auto m = s.result.request_match[r];
          if (m == kNoMatch) continue;
          ASSERT_FALSE(used[static_cast<std::size_t>(m)]) << where;
          used[static_cast<std::size_t>(m)] = true;
          EXPECT_EQ(w.requests[r].env, w.messages[static_cast<std::size_t>(m)].env)
              << where;
        }
      }
      EXPECT_GE(s.seconds, 0.0) << where;
    }
  }
}

TEST(MatcherInterface, DefaultMatchQueuesDrainsMatchedEntries) {
  // The base-class match_queues() (used by the CPU baselines) must remove
  // matched elements from both queues, like the SIMT overrides do.
  for (const auto& matcher : all_matchers()) {
    const auto w = workload_for(matcher->traits(), 91);
    MessageQueue mq;
    RecvQueue rq;
    fill_queues(w, mq, rq);
    const auto s = matcher->match_queues(mq, rq);
    const std::string where(matcher->name());
    EXPECT_EQ(mq.size(), w.messages.size() - s.result.matched()) << where;
    EXPECT_EQ(rq.size(), w.requests.size() - s.result.matched()) << where;
  }
}

TEST(MatcherInterface, TraitsMatchDocumentedSemantics) {
  for (const auto& m : all_matchers()) {
    const auto t = m->traits();
    const std::string_view name = m->name();
    if (name == "partitioned-matrix") {
      EXPECT_FALSE(t.source_wildcards);
      EXPECT_TRUE(t.ordered);
    } else if (name == "hash-table") {
      EXPECT_FALSE(t.ordered);
      EXPECT_FALSE(t.tag_wildcards);
      EXPECT_FALSE(t.source_wildcards);
    } else {
      // Matrix and the three CPU list baselines implement full MPI
      // semantics.
      EXPECT_TRUE(t.ordered) << name;
      EXPECT_TRUE(t.tag_wildcards) << name;
      EXPECT_TRUE(t.source_wildcards) << name;
    }
  }
}

}  // namespace
}  // namespace simtmsg::matching

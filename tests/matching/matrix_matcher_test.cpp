#include "matching/matrix_matcher.hpp"

#include <gtest/gtest.h>

#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

Message msg(Rank src, Tag tag) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = 0};
  return m;
}

RecvRequest req(Rank src, Tag tag) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = 0};
  return r;
}

TEST(MatrixMatcher, FastPathSimplePairs) {
  const MatrixMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(0, 1), msg(0, 2), msg(1, 1)};
  const std::vector<RecvRequest> reqs = {req(1, 1), req(0, 2), req(0, 1)};
  const auto s = matcher.match_window(msgs, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{2, 1, 0}));
  EXPECT_EQ(s.warps_used, 1);
}

TEST(MatrixMatcher, FastPathOrderingDuplicates) {
  const MatrixMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(1, 5), msg(1, 5), msg(1, 5)};
  const std::vector<RecvRequest> reqs = {req(1, 5), req(1, 5)};
  const auto s = matcher.match_window(msgs, reqs);
  // Earliest messages must go to earliest requests (MPI ordering).
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{0, 1}));
}

TEST(MatrixMatcher, FastPathWildcards) {
  const MatrixMatcher matcher(pascal());
  const std::vector<Message> msgs = {msg(7, 3), msg(2, 3)};
  const std::vector<RecvRequest> reqs = {req(kAnySource, 3), req(kAnySource, kAnyTag)};
  const auto s = matcher.match_window(msgs, reqs);
  EXPECT_EQ(s.result.request_match, (std::vector<std::int32_t>{0, 1}));
}

TEST(MatrixMatcher, GeneralPathUsesMultipleWarps) {
  const MatrixMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 100;  // > 32 messages: matrix path.
  spec.seed = 3;
  const auto w = make_workload(spec);
  const auto s = matcher.match_window(w.messages, w.requests);
  EXPECT_EQ(s.warps_used, 4);  // ceil(100 / 32).
  EXPECT_EQ(s.result.matched(), 100u);
}

TEST(MatrixMatcher, GeneralPathAgreesWithReference) {
  const MatrixMatcher matcher(pascal());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadSpec spec;
    spec.pairs = 300;
    spec.sources = 12;
    spec.tags = 6;
    spec.src_wildcard_prob = 0.15;
    spec.tag_wildcard_prob = 0.1;
    spec.seed = seed;
    const auto w = make_workload(spec);
    const auto ours = matcher.match_window(w.messages, w.requests);
    const auto ref = ReferenceMatcher::match(w.messages, w.requests);
    EXPECT_EQ(ours.result.request_match, ref.request_match) << "seed=" << seed;
  }
}

TEST(MatrixMatcher, WindowCapsAtCapacity) {
  MatrixMatcher::Options opt;
  opt.max_warps = 2;  // Capacity 64 messages.
  const MatrixMatcher matcher(pascal(), opt);
  EXPECT_EQ(matcher.capacity(), 64);
  WorkloadSpec spec;
  spec.pairs = 100;
  spec.unique_tuples = true;
  spec.sources = 64;
  spec.tags = 64;
  const auto w = make_workload(spec);
  const auto s = matcher.match_window(w.messages, w.requests);
  // Only the first 64 messages participate in a single window.
  EXPECT_LE(s.result.matched(), 64u);
}

TEST(MatrixMatcher, MatchQueuesDrainsBeyondCapacity) {
  const MatrixMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 2500;  // > 1024: multiple iterations required.
  spec.sources = 40;
  spec.tags = 40;
  spec.seed = 9;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  const auto s = matcher.match_queues(mq, rq);
  EXPECT_EQ(s.result.matched(), 2500u);
  EXPECT_TRUE(mq.empty());
  EXPECT_TRUE(rq.empty());
  EXPECT_GT(s.iterations, 1);
}

TEST(MatrixMatcher, MatchQueuesAgreesWithReferenceAcrossWindows) {
  // Wildcards + duplicates + queues longer than one window: the hardest
  // ordering case (requests sliding across window boundaries).
  MatrixMatcher::Options opt;
  opt.max_warps = 2;        // Small capacity to force many windows.
  opt.request_window = 48;  // Smaller than the queue.
  const MatrixMatcher matcher(pascal(), opt);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadSpec spec;
    spec.pairs = 300;
    spec.sources = 6;
    spec.tags = 3;
    spec.src_wildcard_prob = 0.2;
    spec.tag_wildcard_prob = 0.1;
    spec.seed = seed;
    const auto w = make_workload(spec);

    MessageQueue mq;
    RecvQueue rq;
    fill_queues(w, mq, rq);
    const auto ours = matcher.match_queues(mq, rq);
    const auto ref = ReferenceMatcher::match(w.messages, w.requests);
    EXPECT_EQ(ours.result.request_match, ref.request_match) << "seed=" << seed;
  }
}

TEST(MatrixMatcher, UnmatchedElementsStayInQueues) {
  const MatrixMatcher matcher(pascal());
  MessageQueue mq;
  RecvQueue rq;
  mq.push(msg(0, 0));
  mq.push(msg(1, 1));
  rq.push(req(0, 0));
  rq.push(req(9, 9));  // Never matches.
  const auto s = matcher.match_queues(mq, rq);
  EXPECT_EQ(s.result.matched(), 1u);
  EXPECT_EQ(mq.size(), 1u);
  EXPECT_EQ(rq.size(), 1u);
  EXPECT_EQ(mq[0].env.src, 1);
  EXPECT_EQ(rq[0].env.src, 9);
}

TEST(MatrixMatcher, EmptyInputsAreSafe) {
  const MatrixMatcher matcher(pascal());
  const auto s = matcher.match_window({}, {});
  EXPECT_TRUE(s.result.request_match.empty());
  MessageQueue mq;
  RecvQueue rq;
  const auto q = matcher.match_queues(mq, rq);
  EXPECT_EQ(q.result.matched(), 0u);
}

TEST(MatrixMatcher, CyclesGrowWithWindow) {
  const MatrixMatcher matcher(pascal());
  WorkloadSpec small, large;
  small.pairs = 128;
  large.pairs = 1024;
  const auto ws = make_workload(small);
  const auto wl = make_workload(large);
  const auto ss = matcher.match_window(ws.messages, ws.requests);
  const auto sl = matcher.match_window(wl.messages, wl.requests);
  EXPECT_GT(sl.cycles, ss.cycles);
}

TEST(MatrixMatcher, PipeliningReducesCycles) {
  // With fewer warps than the maximum, scan and reduce overlap.
  WorkloadSpec spec;
  spec.pairs = 512;
  const auto w = make_workload(spec);

  MatrixMatcher::Options pipe;
  pipe.pipelined = true;
  MatrixMatcher::Options serial;
  serial.pipelined = false;
  const auto sp = MatrixMatcher(pascal(), pipe).match_window(w.messages, w.requests);
  const auto ss = MatrixMatcher(pascal(), serial).match_window(w.messages, w.requests);
  EXPECT_LT(sp.cycles, ss.cycles);
  EXPECT_EQ(sp.result.request_match, ss.result.request_match);
}

TEST(MatrixMatcher, At1024AllWarpsBusyNoOverlap) {
  // Figure 4's drop at 1024: the scan needs all 32 warps, so pipelining
  // cannot help and per-match cost rises.
  const MatrixMatcher matcher(pascal());
  WorkloadSpec spec;
  spec.pairs = 1024;
  const auto w = make_workload(spec);
  const auto s = matcher.match_window(w.messages, w.requests);
  EXPECT_EQ(s.warps_used, 32);

  WorkloadSpec spec768;
  spec768.pairs = 768;
  const auto w768 = make_workload(spec768);
  const auto s768 = matcher.match_window(w768.messages, w768.requests);

  const double per_match_1024 = s.cycles / 1024.0;
  const double per_match_768 = s768.cycles / 768.0;
  EXPECT_GT(per_match_1024, per_match_768);
}

TEST(MatrixMatcher, DeviceClockOrdersRuntime) {
  WorkloadSpec spec;
  spec.pairs = 256;
  const auto w = make_workload(spec);
  const auto k = MatrixMatcher(simt::kepler_k80()).match_window(w.messages, w.requests);
  const auto p = MatrixMatcher(pascal()).match_window(w.messages, w.requests);
  EXPECT_GT(k.seconds, p.seconds);
  EXPECT_EQ(k.result.request_match, p.result.request_match);
}

}  // namespace
}  // namespace simtmsg::matching

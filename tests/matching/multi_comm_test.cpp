// Communicator isolation: "The communicator is part of the matching
// criteria ... no wildcard can be applied" (Section IV).  The MatchEngine
// splits multi-communicator traffic into per-comm engines ("we presume one
// matching engine per communicator", Section V-A); matching must never
// cross a communicator boundary.
#include <gtest/gtest.h>

#include "matching/engine.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"
#include "util/rng.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

/// A workload whose tuples repeat across `n_comms` communicators — every
/// envelope exists in every comm, so cross-comm matching would be caught.
Workload multi_comm_workload(int n_comms, std::size_t per_comm, std::uint64_t seed) {
  Workload all;
  for (int c = 0; c < n_comms; ++c) {
    WorkloadSpec spec;
    spec.pairs = per_comm;
    spec.sources = 4;
    spec.tags = 4;
    spec.comm = c;
    spec.seed = seed;  // Same seed: identical tuples per comm.
    const auto w = make_workload(spec);
    all.messages.insert(all.messages.end(), w.messages.begin(), w.messages.end());
    all.requests.insert(all.requests.end(), w.requests.begin(), w.requests.end());
  }
  // Interleave across comms to stress the split.
  util::Rng rng(seed + 99);
  rng.shuffle(all.messages);
  rng.shuffle(all.requests);
  return all;
}

class MultiCommEngine : public ::testing::TestWithParam<SemanticsConfig> {};

TEST_P(MultiCommEngine, NeverMatchesAcrossCommunicators) {
  const MatchEngine engine(pascal(), GetParam());
  const auto w = multi_comm_workload(3, 64, 7);
  const auto stats = engine.match(w.messages, w.requests);
  EXPECT_EQ(stats.result.matched(), w.messages.size());
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    ASSERT_NE(m, kNoMatch);
    EXPECT_EQ(w.requests[r].env.comm, w.messages[static_cast<std::size_t>(m)].env.comm);
    EXPECT_TRUE(matches(w.requests[r].env, w.messages[static_cast<std::size_t>(m)].env));
  }
}

TEST_P(MultiCommEngine, QueueVariantAlsoIsolates) {
  const MatchEngine engine(pascal(), GetParam());
  const auto w = multi_comm_workload(2, 48, 11);
  MessageQueue mq;
  RecvQueue rq;
  for (const auto& m : w.messages) mq.push(m);
  for (const auto& r : w.requests) rq.push(r);
  const auto stats = engine.match_queues(mq, rq);
  EXPECT_EQ(stats.result.matched(), w.messages.size());
  EXPECT_TRUE(mq.empty());
  EXPECT_TRUE(rq.empty());
  for (std::size_t r = 0; r < stats.result.request_match.size(); ++r) {
    const auto m = stats.result.request_match[r];
    ASSERT_NE(m, kNoMatch);
    EXPECT_EQ(w.requests[r].env.comm, w.messages[static_cast<std::size_t>(m)].env.comm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MultiCommEngine,
    ::testing::Values(
        SemanticsConfig{},  // Matrix.
        SemanticsConfig{.wildcards = false, .ordering = true, .unexpected = true,
                        .partitions = 4},  // Partitioned matrix.
        SemanticsConfig{.wildcards = false, .ordering = false, .unexpected = true,
                        .partitions = 4}),  // Hash table.
    [](const ::testing::TestParamInfo<SemanticsConfig>& info) {
      if (info.param.ordering && info.param.wildcards) return std::string("matrix");
      if (info.param.ordering) return std::string("partitioned");
      return std::string("hash");
    });

TEST(MultiCommEngine, MatrixOrderingHoldsPerCommunicator) {
  // Duplicate tuples within each comm: ordering must hold per comm exactly
  // as the reference prescribes for the full interleaved batch.
  const MatchEngine engine(pascal(), SemanticsConfig{});
  const auto w = multi_comm_workload(3, 40, 23);
  const auto stats = engine.match(w.messages, w.requests);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(stats.result.request_match, ref.request_match);
}

TEST(MultiCommEngine, MiniDftStyleSevenComms) {
  // The paper's communicator outlier: seven communicators at once.
  const MatchEngine engine(pascal(), SemanticsConfig{});
  const auto w = multi_comm_workload(7, 32, 31);
  const auto stats = engine.match(w.messages, w.requests);
  EXPECT_EQ(stats.result.matched(), w.messages.size());
}

}  // namespace
}  // namespace simtmsg::matching

// Multi-SM scaling of the partitioned matcher (Section VI-A remark).
#include <gtest/gtest.h>

#include "matching/partitioned_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

Workload big_workload() {
  WorkloadSpec spec;
  spec.pairs = 8192;
  spec.sources = 64;
  spec.tags = 64;
  spec.seed = 71;
  return make_workload(spec);
}

TEST(MultiSm, ResultsIndependentOfSmCount) {
  const auto w = big_workload();
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  for (const int sms : {1, 4, 8}) {
    PartitionedMatcher::Options opt;
    opt.partitions = 32;
    opt.sms = sms;
    const auto s = PartitionedMatcher(pascal(), opt).match(w.messages, w.requests);
    EXPECT_EQ(s.result.request_match, ref.request_match) << "sms=" << sms;
  }
}

TEST(MultiSm, MoreSmsNeverSlower) {
  const auto w = big_workload();
  double prev = 0.0;
  for (const int sms : {1, 2, 4, 8}) {
    PartitionedMatcher::Options opt;
    opt.partitions = 32;
    opt.sms = sms;
    const auto s = PartitionedMatcher(pascal(), opt).match(w.messages, w.requests);
    if (sms > 1) {
      EXPECT_LE(s.cycles, prev) << "sms=" << sms;
    }
    prev = s.cycles;
  }
}

TEST(MultiSm, SpeedupRoughlyLinearWhileWavesRemain) {
  const auto w = big_workload();
  PartitionedMatcher::Options one;
  one.partitions = 32;
  one.sms = 1;
  PartitionedMatcher::Options four;
  four.partitions = 32;
  four.sms = 4;
  const auto s1 = PartitionedMatcher(pascal(), one).match(w.messages, w.requests);
  const auto s4 = PartitionedMatcher(pascal(), four).match(w.messages, w.requests);
  const double speedup = s1.cycles / s4.cycles;
  EXPECT_GT(speedup, 2.0);  // "increasing linearly" (minus sync overheads).
  EXPECT_LE(speedup, 4.2);
}

TEST(MultiSm, RejectsInvalidSmCounts) {
  PartitionedMatcher::Options opt;
  opt.sms = 0;
  EXPECT_THROW(PartitionedMatcher(pascal(), opt), std::invalid_argument);
  opt.sms = pascal().sm_count + 1;
  EXPECT_THROW(PartitionedMatcher(pascal(), opt), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg::matching

#include "matching/partitioned_matcher.hpp"

#include <gtest/gtest.h>

#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

TEST(PartitionedMatcher, RejectsSourceWildcard) {
  const PartitionedMatcher matcher(pascal());
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = 0, .comm = 0};
  const std::vector<RecvRequest> reqs = {r};
  const std::vector<Message> msgs = {Message{}};
  EXPECT_THROW((void)matcher.match(msgs, reqs), std::invalid_argument);
}

TEST(PartitionedMatcher, TagWildcardStaysLegal) {
  // Only the *source* wildcard blocks partitioning (Section VI-A).
  const PartitionedMatcher matcher(pascal());
  Message m;
  m.env = {.src = 3, .tag = 7, .comm = 0};
  RecvRequest r;
  r.env = {.src = 3, .tag = kAnyTag, .comm = 0};
  const std::vector<Message> msgs = {m};
  const std::vector<RecvRequest> reqs = {r};
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.request_match[0], 0);
}

TEST(PartitionedMatcher, StaticPartitionIsSourceModulo) {
  PartitionedMatcher::Options opt;
  opt.partitions = 4;
  const PartitionedMatcher matcher(pascal(), opt);
  EXPECT_EQ(matcher.partition_of(0), 0);
  EXPECT_EQ(matcher.partition_of(5), 1);
  EXPECT_EQ(matcher.partition_of(7), 3);
}

TEST(PartitionedMatcher, AgreesWithReferenceWithoutSrcWildcards) {
  for (const int partitions : {1, 2, 4, 8, 16}) {
    PartitionedMatcher::Options opt;
    opt.partitions = partitions;
    const PartitionedMatcher matcher(pascal(), opt);
    WorkloadSpec spec;
    spec.pairs = 400;
    spec.sources = 24;
    spec.tags = 8;
    spec.tag_wildcard_prob = 0.1;  // src wildcard prohibited, tag allowed.
    spec.seed = static_cast<std::uint64_t>(partitions) + 1;
    const auto w = make_workload(spec);
    const auto ours = matcher.match(w.messages, w.requests);
    const auto ref = ReferenceMatcher::match(w.messages, w.requests);
    // Partitioning preserves per-source ordering; with no src wildcard the
    // reference pairing is reproduced exactly.
    EXPECT_EQ(ours.result.request_match, ref.request_match)
        << "partitions=" << partitions;
  }
}

TEST(PartitionedMatcher, MorePartitionsFewerCycles) {
  // Figure 5: performance scales with the number of queues.
  WorkloadSpec spec;
  spec.pairs = 1024;
  spec.sources = 32;  // Uniform across partitions.
  spec.tags = 32;
  spec.seed = 77;
  const auto w = make_workload(spec);

  double prev_cycles = 0.0;
  for (const int partitions : {1, 4}) {
    PartitionedMatcher::Options opt;
    opt.partitions = partitions;
    const auto s = PartitionedMatcher(pascal(), opt).match(w.messages, w.requests);
    EXPECT_EQ(s.result.matched(), 1024u);
    if (partitions == 1) {
      prev_cycles = s.cycles;
    } else {
      EXPECT_LT(s.cycles, prev_cycles);
    }
  }
}

TEST(PartitionedMatcher, EmptyPartitionsAreSkipped) {
  PartitionedMatcher::Options opt;
  opt.partitions = 8;
  const PartitionedMatcher matcher(pascal(), opt);
  // All traffic from a single source: only one partition is busy.
  std::vector<Message> msgs;
  std::vector<RecvRequest> reqs;
  for (int i = 0; i < 64; ++i) {
    Message m;
    m.env = {.src = 3, .tag = i, .comm = 0};
    msgs.push_back(m);
    RecvRequest r;
    r.env = {.src = 3, .tag = i, .comm = 0};
    reqs.push_back(r);
  }
  const auto s = matcher.match(msgs, reqs);
  EXPECT_EQ(s.result.matched(), 64u);
  EXPECT_EQ(s.ctas_used, 1);
}

TEST(PartitionedMatcher, InvalidPartitionCountThrows) {
  PartitionedMatcher::Options opt;
  opt.partitions = 0;
  EXPECT_THROW(PartitionedMatcher(pascal(), opt), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg::matching

// Property-based sweeps: every production matcher is validated against the
// ReferenceMatcher oracle over a parameter grid of queue lengths, tuple
// spaces, and wildcard densities (see DESIGN.md §6).
#include <gtest/gtest.h>

#include <tuple>

#include "matching/hash_matcher.hpp"
#include "matching/list_matcher.hpp"
#include "matching/matrix_matcher.hpp"
#include "matching/partitioned_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

// ---------------------------------------------------------------------------
// Ordered matchers (matrix, list) must reproduce the reference pairing
// exactly, wildcards included.

using OrderedParams = std::tuple<std::size_t /*pairs*/, int /*sources*/, int /*tags*/,
                                 double /*src_wc*/, double /*tag_wc*/, std::uint64_t /*seed*/>;

class OrderedMatcherProperty : public ::testing::TestWithParam<OrderedParams> {
 protected:
  Workload make() const {
    const auto& [pairs, sources, tags, src_wc, tag_wc, seed] = GetParam();
    WorkloadSpec spec;
    spec.pairs = pairs;
    spec.sources = sources;
    spec.tags = tags;
    spec.src_wildcard_prob = src_wc;
    spec.tag_wildcard_prob = tag_wc;
    spec.seed = seed;
    return make_workload(spec);
  }
};

TEST_P(OrderedMatcherProperty, MatrixWindowEqualsReference) {
  const auto w = make();
  if (w.messages.size() > 1024) GTEST_SKIP() << "window test capped at 1024";
  const auto ours = MatrixMatcher(pascal()).match_window(w.messages, w.requests);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(ours.result.request_match, ref.request_match);
}

TEST_P(OrderedMatcherProperty, MatrixQueuesEqualReference) {
  const auto w = make();
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  const auto ours = MatrixMatcher(pascal()).match_queues(mq, rq);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(ours.result.request_match, ref.request_match);
}

TEST_P(OrderedMatcherProperty, ListBatchEqualsReference) {
  const auto w = make();
  EXPECT_EQ(ListMatcher{}.match(w.messages, w.requests).result.request_match,
            ReferenceMatcher::match(w.messages, w.requests).request_match);
}

TEST_P(OrderedMatcherProperty, ExactlyOneInvariant) {
  const auto w = make();
  const auto r = ReferenceMatcher::match(w.messages, w.requests);
  std::vector<int> msg_hits(w.messages.size(), 0);
  for (const auto m : r.request_match) {
    if (m != kNoMatch) ++msg_hits[static_cast<std::size_t>(m)];
  }
  for (const auto hits : msg_hits) EXPECT_LE(hits, 1);
}

INSTANTIATE_TEST_SUITE_P(
    QueueLengthSweep, OrderedMatcherProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 31, 32, 33, 64, 200, 1024, 1500),
                       ::testing::Values(8), ::testing::Values(8),
                       ::testing::Values(0.0), ::testing::Values(0.0),
                       ::testing::Values<std::uint64_t>(1)));

INSTANTIATE_TEST_SUITE_P(
    WildcardDensitySweep, OrderedMatcherProperty,
    ::testing::Combine(::testing::Values<std::size_t>(150), ::testing::Values(8),
                       ::testing::Values(4),
                       ::testing::Values(0.0, 0.25, 1.0),
                       ::testing::Values(0.0, 0.25, 1.0),
                       ::testing::Values<std::uint64_t>(2, 3)));

INSTANTIATE_TEST_SUITE_P(
    TupleSpaceSweep, OrderedMatcherProperty,
    ::testing::Combine(::testing::Values<std::size_t>(256),
                       ::testing::Values(1, 2, 64),
                       ::testing::Values(1, 2, 64),
                       ::testing::Values(0.1), ::testing::Values(0.1),
                       ::testing::Values<std::uint64_t>(4)));

// ---------------------------------------------------------------------------
// The partitioned matcher (no source wildcard) must also equal the
// reference, for any partition count.

using PartitionedParams = std::tuple<int /*partitions*/, std::size_t /*pairs*/,
                                     int /*sources*/, std::uint64_t /*seed*/>;

class PartitionedProperty : public ::testing::TestWithParam<PartitionedParams> {};

TEST_P(PartitionedProperty, EqualsReference) {
  const auto& [partitions, pairs, sources, seed] = GetParam();
  WorkloadSpec spec;
  spec.pairs = pairs;
  spec.sources = sources;
  spec.tags = 4;
  spec.tag_wildcard_prob = 0.2;
  spec.seed = seed;
  const auto w = make_workload(spec);

  PartitionedMatcher::Options opt;
  opt.partitions = partitions;
  const auto ours = PartitionedMatcher(pascal(), opt).match(w.messages, w.requests);
  const auto ref = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(ours.result.request_match, ref.request_match);
}

INSTANTIATE_TEST_SUITE_P(
    PartitionSweep, PartitionedProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 32),
                       ::testing::Values<std::size_t>(64, 500),
                       ::testing::Values(5, 40),
                       ::testing::Values<std::uint64_t>(11, 12)));

// ---------------------------------------------------------------------------
// The hash matcher (unordered) must produce a maximum matching over exact
// tuples: same cardinality as the reference's pairable count, envelopes
// equal pairwise, nothing matched twice.

using HashParams = std::tuple<std::size_t /*pairs*/, int /*space*/, bool /*unique*/,
                              util::HashKind, std::uint64_t /*seed*/>;

class HashProperty : public ::testing::TestWithParam<HashParams> {};

TEST_P(HashProperty, MaximumValidMatching) {
  const auto& [pairs, space, unique, hash, seed] = GetParam();
  WorkloadSpec spec;
  spec.pairs = pairs;
  spec.sources = space;
  spec.tags = space;
  spec.unique_tuples = unique;
  spec.seed = seed;
  const auto w = make_workload(spec);

  HashMatcher::Options opt;
  opt.hash = hash;
  const auto s = HashMatcher(pascal(), opt).match(w.messages, w.requests);

  EXPECT_EQ(s.result.matched(),
            ReferenceMatcher::pairable_count(w.messages, w.requests));
  std::vector<bool> used(w.messages.size(), false);
  for (std::size_t r = 0; r < s.result.request_match.size(); ++r) {
    const auto m = s.result.request_match[r];
    if (m == kNoMatch) continue;
    EXPECT_FALSE(used[static_cast<std::size_t>(m)]);
    used[static_cast<std::size_t>(m)] = true;
    EXPECT_EQ(w.requests[r].env, w.messages[static_cast<std::size_t>(m)].env);
  }
}

INSTANTIATE_TEST_SUITE_P(
    HashSweep, HashProperty,
    ::testing::Combine(::testing::Values<std::size_t>(32, 256, 1024),
                       ::testing::Values(64),
                       ::testing::Values(false, true),
                       ::testing::Values(util::HashKind::kJenkins,
                                         util::HashKind::kFnv1a,
                                         util::HashKind::kMurmur3Fmix),
                       ::testing::Values<std::uint64_t>(31, 32)));

INSTANTIATE_TEST_SUITE_P(
    HashDuplicateStress, HashProperty,
    ::testing::Combine(::testing::Values<std::size_t>(512),
                       ::testing::Values(2, 4),
                       ::testing::Values(false),
                       ::testing::Values(util::HashKind::kJenkins),
                       ::testing::Values<std::uint64_t>(33)));

}  // namespace
}  // namespace simtmsg::matching

#include "matching/queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace simtmsg::matching {
namespace {

TEST(MatchQueue, PushStampsMonotonicSequence) {
  MessageQueue q;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.env = {.src = i, .tag = 0, .comm = 0};
    q.push(m);
  }
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i].seq, i);
}

TEST(MatchQueue, PushRawPreservesSequence) {
  MessageQueue q;
  Message m;
  m.seq = 42;
  q.push_raw(m);
  EXPECT_EQ(q[0].seq, 42u);
  Message next;
  q.push(next);
  EXPECT_EQ(q[1].seq, 43u);  // Continues after the raw element.
}

TEST(MatchQueue, WindowClampsToSize) {
  RecvQueue q;
  for (int i = 0; i < 3; ++i) q.push(RecvRequest{});
  EXPECT_EQ(q.window(2).size(), 2u);
  EXPECT_EQ(q.window(10).size(), 3u);
  EXPECT_EQ(q.window(0).size(), 0u);
}

TEST(MatchQueue, CompactRemovesFlaggedKeepsOrder) {
  MessageQueue q;
  for (int i = 0; i < 6; ++i) {
    Message m;
    m.payload = static_cast<std::uint64_t>(i);
    q.push(m);
  }
  const std::vector<std::uint8_t> flags = {0, 1, 0, 1, 1, 0};
  EXPECT_EQ(q.compact(flags), 3u);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0].payload, 0u);
  EXPECT_EQ(q[1].payload, 2u);
  EXPECT_EQ(q[2].payload, 5u);
}

TEST(MatchQueue, CompactWithShortFlagVectorOnlyTouchesPrefix) {
  MessageQueue q;
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.payload = static_cast<std::uint64_t>(i);
    q.push(m);
  }
  const std::vector<std::uint8_t> flags = {1, 1};  // Only first two flagged.
  EXPECT_EQ(q.compact(flags), 2u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].payload, 2u);
}

TEST(MatchQueue, CompactNothingIsNoop) {
  MessageQueue q;
  q.push(Message{});
  const std::vector<std::uint8_t> flags = {0};
  EXPECT_EQ(q.compact(flags), 0u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(MatchQueue, ClearEmpties) {
  RecvQueue q;
  q.push(RecvRequest{});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MatchQueue, ViewExposesContiguousStorage) {
  MessageQueue q;
  for (int i = 0; i < 3; ++i) q.push(Message{});
  const auto v = q.view();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(&v[0], &q[0]);
}

// Regression: push_raw of seq == UINT64_MAX used to compute UINT64_MAX + 1
// for the stamping cursor, wrapping it to 0 so the next push re-issued
// sequence numbers already present in the queue (breaking the posted-order
// tiebreak).  The cursor must saturate instead.
TEST(MatchQueue, PushRawSaturatesAtMaxSequence) {
  MessageQueue q;
  Message m;
  m.seq = std::numeric_limits<std::uint64_t>::max();
  q.push_raw(m);
  EXPECT_EQ(q[0].seq, std::numeric_limits<std::uint64_t>::max());
  Message next;
  q.push(next);  // Must not wrap to 0.
  EXPECT_EQ(q[1].seq, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(q.lanes().seq[1], std::numeric_limits<std::uint64_t>::max());
}

TEST(MatchQueue, PushNStampsIdenticallyToSequentialPush) {
  MessageQueue a;
  MessageQueue b;
  std::vector<Message> batch(5);
  for (int i = 0; i < 5; ++i) {
    batch[static_cast<std::size_t>(i)].env = {.src = i, .tag = i * 7, .comm = i % 2};
  }
  a.push_n(batch);
  for (const Message& m : batch) b.push(m);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a.lanes().word[i], b.lanes().word[i]);
  }
}

TEST(MatchQueue, LanesMirrorEnvelopesThroughPushAndCompact) {
  MessageQueue q;
  for (int i = 0; i < 6; ++i) {
    Message m;
    m.env = {.src = 10 + i, .tag = 20 + i, .comm = i % 3};
    q.push(m);
  }
  const std::vector<std::uint8_t> flags = {1, 0, 1, 0, 0, 1};
  q.compact(flags);
  ASSERT_EQ(q.size(), 3u);
  const auto lanes = q.lanes();
  ASSERT_EQ(lanes.src.size(), 3u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(lanes.src[i], q[i].env.src);
    EXPECT_EQ(lanes.tag[i], q[i].env.tag);
    EXPECT_EQ(lanes.comm[i], q[i].env.comm);
    EXPECT_EQ(lanes.seq[i], q[i].seq);
    EXPECT_EQ(lanes.word[i], scan_word(q[i].env));
  }
}

TEST(MatchQueue, WordLaneEncodesWildcardHalves) {
  RecvQueue q;
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = kAnyTag, .comm = 0};
  q.push(r);
  // Both halves saturate to all-ones: the value the SIMT scan kernels
  // compare wildcard-free windows against never collides with a concrete
  // (src, tag) pair because ranks and tags are non-negative.
  EXPECT_EQ(q.words()[0], ~std::uint64_t{0});
}

}  // namespace
}  // namespace simtmsg::matching

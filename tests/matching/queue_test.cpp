#include "matching/queue.hpp"

#include <gtest/gtest.h>

namespace simtmsg::matching {
namespace {

TEST(MatchQueue, PushStampsMonotonicSequence) {
  MessageQueue q;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.env = {.src = i, .tag = 0, .comm = 0};
    q.push(m);
  }
  for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i].seq, i);
}

TEST(MatchQueue, PushRawPreservesSequence) {
  MessageQueue q;
  Message m;
  m.seq = 42;
  q.push_raw(m);
  EXPECT_EQ(q[0].seq, 42u);
  Message next;
  q.push(next);
  EXPECT_EQ(q[1].seq, 43u);  // Continues after the raw element.
}

TEST(MatchQueue, WindowClampsToSize) {
  RecvQueue q;
  for (int i = 0; i < 3; ++i) q.push(RecvRequest{});
  EXPECT_EQ(q.window(2).size(), 2u);
  EXPECT_EQ(q.window(10).size(), 3u);
  EXPECT_EQ(q.window(0).size(), 0u);
}

TEST(MatchQueue, CompactRemovesFlaggedKeepsOrder) {
  MessageQueue q;
  for (int i = 0; i < 6; ++i) {
    Message m;
    m.payload = static_cast<std::uint64_t>(i);
    q.push(m);
  }
  const std::vector<std::uint8_t> flags = {0, 1, 0, 1, 1, 0};
  EXPECT_EQ(q.compact(flags), 3u);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0].payload, 0u);
  EXPECT_EQ(q[1].payload, 2u);
  EXPECT_EQ(q[2].payload, 5u);
}

TEST(MatchQueue, CompactWithShortFlagVectorOnlyTouchesPrefix) {
  MessageQueue q;
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.payload = static_cast<std::uint64_t>(i);
    q.push(m);
  }
  const std::vector<std::uint8_t> flags = {1, 1};  // Only first two flagged.
  EXPECT_EQ(q.compact(flags), 2u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].payload, 2u);
}

TEST(MatchQueue, CompactNothingIsNoop) {
  MessageQueue q;
  q.push(Message{});
  const std::vector<std::uint8_t> flags = {0};
  EXPECT_EQ(q.compact(flags), 0u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(MatchQueue, ClearEmpties) {
  RecvQueue q;
  q.push(RecvRequest{});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MatchQueue, ViewExposesContiguousStorage) {
  MessageQueue q;
  for (int i = 0; i < 3; ++i) q.push(Message{});
  const auto v = q.view();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(&v[0], &q[0]);
}

}  // namespace
}  // namespace simtmsg::matching

#include "matching/reference_matcher.hpp"

#include <gtest/gtest.h>

namespace simtmsg::matching {
namespace {

Message msg(Rank src, Tag tag, CommId comm = 0) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = comm};
  return m;
}

RecvRequest req(Rank src, Tag tag, CommId comm = 0) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = comm};
  return r;
}

TEST(ReferenceMatcher, SimplePairing) {
  const std::vector<Message> msgs = {msg(0, 1), msg(0, 2)};
  const std::vector<RecvRequest> reqs = {req(0, 2), req(0, 1)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match, (std::vector<std::int32_t>{1, 0}));
}

TEST(ReferenceMatcher, OrderingEarliestMessageWins) {
  // Two identical messages: the earlier one must satisfy the earlier recv.
  const std::vector<Message> msgs = {msg(1, 5), msg(1, 5)};
  const std::vector<RecvRequest> reqs = {req(1, 5), req(1, 5)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match, (std::vector<std::int32_t>{0, 1}));
}

TEST(ReferenceMatcher, WildcardTakesEarliestEligible) {
  const std::vector<Message> msgs = {msg(3, 9), msg(2, 9)};
  const std::vector<RecvRequest> reqs = {req(kAnySource, 9)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match[0], 0);
}

TEST(ReferenceMatcher, ExactlyOneMatchPerMessage) {
  const std::vector<Message> msgs = {msg(1, 1)};
  const std::vector<RecvRequest> reqs = {req(1, 1), req(1, 1)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match[0], 0);
  EXPECT_EQ(r.request_match[1], kNoMatch);
}

TEST(ReferenceMatcher, NoMatchAcrossCommunicators) {
  const std::vector<Message> msgs = {msg(1, 1, /*comm=*/2)};
  const std::vector<RecvRequest> reqs = {req(1, 1, /*comm=*/3)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match[0], kNoMatch);
}

TEST(ReferenceMatcher, WildcardAndSpecificInterleave) {
  // Posted order decides priority: the wildcard posted first steals the
  // earliest message even if a later specific recv also wanted it.
  const std::vector<Message> msgs = {msg(4, 0)};
  const std::vector<RecvRequest> reqs = {req(kAnySource, kAnyTag), req(4, 0)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.request_match[0], 0);
  EXPECT_EQ(r.request_match[1], kNoMatch);
}

TEST(ReferenceMatcher, EmptyInputs) {
  EXPECT_TRUE(ReferenceMatcher::match({}, {}).request_match.empty());
  const std::vector<Message> msgs = {msg(0, 0)};
  EXPECT_TRUE(ReferenceMatcher::match(msgs, {}).request_match.empty());
  const std::vector<RecvRequest> reqs = {req(0, 0)};
  const auto r = ReferenceMatcher::match({}, reqs);
  EXPECT_EQ(r.request_match[0], kNoMatch);
}

TEST(ReferenceMatcher, MatchedCountAndPairs) {
  const std::vector<Message> msgs = {msg(0, 0), msg(0, 1)};
  const std::vector<RecvRequest> reqs = {req(0, 1), req(9, 9)};
  const auto r = ReferenceMatcher::match(msgs, reqs);
  EXPECT_EQ(r.matched(), 1u);
  const auto pairs = r.pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].msg_index, 1u);
  EXPECT_EQ(pairs[0].req_index, 0u);
}

TEST(ReferenceMatcher, PairableCountMinOfMultiplicities) {
  const std::vector<Message> msgs = {msg(0, 0), msg(0, 0), msg(0, 1)};
  const std::vector<RecvRequest> reqs = {req(0, 0), req(0, 1), req(0, 1)};
  EXPECT_EQ(ReferenceMatcher::pairable_count(msgs, reqs), 2u);
}

TEST(ReferenceMatcher, PairableCountRejectsWildcards) {
  const std::vector<Message> msgs = {msg(0, 0)};
  const std::vector<RecvRequest> reqs = {req(kAnySource, 0)};
  EXPECT_THROW((void)ReferenceMatcher::pairable_count(msgs, reqs), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg::matching

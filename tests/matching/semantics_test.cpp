#include "matching/semantics.hpp"

#include <gtest/gtest.h>

namespace simtmsg::matching {
namespace {

TEST(Semantics, DefaultIsFullMpi) {
  const SemanticsConfig cfg;
  EXPECT_TRUE(cfg.wildcards);
  EXPECT_TRUE(cfg.ordering);
  EXPECT_TRUE(cfg.unexpected);
  EXPECT_EQ(cfg.partitions, 1);
  EXPECT_TRUE(valid(cfg));
  EXPECT_FALSE(hashable(cfg));
}

TEST(Semantics, PartitioningRequiresNoSourceWildcard) {
  // "The next level could partition among ranks, but this is impossible due
  // to wildcards" (Section VI).
  SemanticsConfig cfg;
  cfg.partitions = 8;
  EXPECT_FALSE(valid(cfg));
  cfg.wildcards = false;
  EXPECT_TRUE(valid(cfg));
}

TEST(Semantics, NonPositivePartitionsInvalid) {
  SemanticsConfig cfg;
  cfg.partitions = 0;
  EXPECT_FALSE(valid(cfg));
}

TEST(Semantics, HashableNeedsNoWildcardsAndNoOrdering) {
  SemanticsConfig cfg;
  cfg.wildcards = false;
  cfg.ordering = false;
  EXPECT_TRUE(hashable(cfg));
  cfg.ordering = true;
  EXPECT_FALSE(hashable(cfg));
  cfg.ordering = false;
  cfg.wildcards = true;
  EXPECT_FALSE(hashable(cfg));
}

TEST(Semantics, TableTwoHasSixValidRows) {
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) EXPECT_TRUE(valid(row));
}

TEST(Semantics, TableTwoRowOrderMatchesPaper) {
  const auto rows = table2_rows();
  // Row 1: full MPI.  Row 5/6: hash rows.
  EXPECT_TRUE(rows[0].wildcards);
  EXPECT_TRUE(rows[0].ordering);
  EXPECT_TRUE(rows[0].unexpected);
  EXPECT_FALSE(rows[1].unexpected);
  EXPECT_FALSE(rows[2].wildcards);
  EXPECT_GT(rows[2].partitions, 1);
  EXPECT_TRUE(hashable(rows[4]));
  EXPECT_TRUE(hashable(rows[5]));
  EXPECT_TRUE(rows[4].unexpected);
  EXPECT_FALSE(rows[5].unexpected);
}

TEST(Semantics, PresetsAreValidAndNameTableTwoRows) {
  // Every named preset must be internally consistent, and the Table II
  // presets must reproduce the published rows in order — the factories are
  // the single source of truth table2_rows() is built from.
  EXPECT_TRUE(valid(SemanticsConfig::compliant()));
  EXPECT_TRUE(valid(SemanticsConfig::compliant_preposted()));
  EXPECT_TRUE(valid(SemanticsConfig::partitioned()));
  EXPECT_TRUE(valid(SemanticsConfig::partitioned_preposted()));
  EXPECT_TRUE(valid(SemanticsConfig::relaxed_unordered()));
  EXPECT_TRUE(valid(SemanticsConfig::relaxed_unordered_preposted()));
  EXPECT_TRUE(valid(SemanticsConfig::pattern_tables()));

  EXPECT_EQ(SemanticsConfig::compliant(), SemanticsConfig{});
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0], SemanticsConfig::compliant());
  EXPECT_EQ(rows[1], SemanticsConfig::compliant_preposted());
  EXPECT_EQ(rows[2], SemanticsConfig::partitioned());
  EXPECT_EQ(rows[3], SemanticsConfig::partitioned_preposted());
  EXPECT_EQ(rows[4], SemanticsConfig::relaxed_unordered());
  EXPECT_EQ(rows[5], SemanticsConfig::relaxed_unordered_preposted());

  EXPECT_TRUE(hashable(SemanticsConfig::relaxed_unordered()));
  EXPECT_TRUE(SemanticsConfig::pattern_tables().pattern_table);
  EXPECT_FALSE(hashable(SemanticsConfig::pattern_tables()));
}

TEST(Semantics, DescribeIsHumanReadable) {
  SemanticsConfig cfg;
  cfg.wildcards = false;
  cfg.partitions = 4;
  const auto s = describe(cfg);
  EXPECT_NE(s.find("wildcards=no"), std::string::npos);
  EXPECT_NE(s.find("partitions=4"), std::string::npos);
}

}  // namespace
}  // namespace simtmsg::matching

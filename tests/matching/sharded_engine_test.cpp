// ShardedMatchEngine determinism contract (docs/sharding.md): match results
// are bit-identical across shard counts and host thread counts, telemetry
// snapshots are bit-identical across thread counts for a fixed shard count,
// and an MPI_ANY_SOURCE receive pins the pass into serialized all-shard
// mode.  The hash-table rows are exercised on fully matchable unique-tuple
// workloads, where exact equality holds (the safety-valve exception only
// applies to partial-match workloads — covered by the fuzz oracle).
#include "matching/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "matching/engine.hpp"
#include "matching/workload.hpp"
#include "telemetry/telemetry.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

/// Value of a named counter in a captured stage; 0 when never written.
std::uint64_t counter_of(const telemetry::Registry& reg, std::string_view name) {
  const auto it = reg.counters().find(std::string(name));
  return it == reg.counters().end() ? 0 : it->second.value();
}

/// A workload every Table II row can match fully (unique tuples, no
/// wildcards), shuffled across a reasonable rank/tag space.
Workload full_match_workload(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 64;
  spec.tags = 64;
  spec.unique_tuples = true;
  spec.seed = seed;
  return make_workload(spec);
}

TEST(ShardedMatchEngine, ResultsBitIdenticalAcrossShardsAndThreadsPerRow) {
  const auto w = full_match_workload(101);
  for (const auto& row : table2_rows()) {
    const MatchEngine baseline(pascal(), row);
    const auto expected = baseline.match(w.messages, w.requests);
    ASSERT_EQ(expected.result.matched(), w.requests.size()) << describe(row);

    for (const int shards : {1, 2, 8}) {
      for (const int threads : {1, 8}) {
        const ShardedMatchEngine engine(
            pascal(), row,
            {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
        const auto s = engine.match(w.messages, w.requests);
        EXPECT_EQ(s.result.request_match, expected.result.request_match)
            << describe(row) << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedMatchEngine, OrderedRowsBitIdenticalOnPartialMatchWorkloads) {
  // Ordered (matrix-family) rows must reproduce the unsharded pairing even
  // when messages/requests go unmatched and tag wildcards are present.
  WorkloadSpec spec;
  spec.pairs = 200;
  spec.sources = 8;
  spec.tags = 8;
  spec.tag_wildcard_prob = 0.2;
  spec.match_fraction = 0.6;
  spec.seed = 102;
  const auto w = make_workload(spec);

  const MatchEngine baseline(pascal(), SemanticsConfig{});
  const auto expected = baseline.match(w.messages, w.requests);
  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 8}) {
      const ShardedMatchEngine engine(
          pascal(), SemanticsConfig{},
          {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
      const auto s = engine.match(w.messages, w.requests);
      EXPECT_EQ(s.result.request_match, expected.result.request_match)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedMatchEngine, SnapshotBitIdenticalAcrossThreadCounts) {
  const auto w = full_match_workload(103);
  for (const int shards : {1, 2, 8}) {
    const auto run = [&](int threads) {
      const ShardedMatchEngine engine(
          pascal(), SemanticsConfig{},
          {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
      SimtMatchStats stats;
      for (int i = 0; i < 3; ++i) engine.match(w.messages, w.requests, stats);
      return engine.snapshot().to_json().dump();
    };
    const std::string serial = run(1);
    EXPECT_EQ(run(8), serial) << "shards=" << shards;
  }
}

TEST(ShardedMatchEngine, SingleShardSnapshotMatchesPlainEngine) {
  const auto w = full_match_workload(104);
  const MatchEngine plain(pascal(), SemanticsConfig{});
  const ShardedMatchEngine sharded(pascal(), SemanticsConfig{}, {.shards = 1});
  SimtMatchStats stats;
  for (int i = 0; i < 2; ++i) {
    plain.match(w.messages, w.requests, stats);
    sharded.match(w.messages, w.requests, stats);
  }
  EXPECT_EQ(sharded.snapshot().to_json().dump(), plain.snapshot().to_json().dump());
  EXPECT_EQ(sharded.serialized_passes(), 0u);
  EXPECT_EQ(sharded.sharded_passes(), 0u);  // Single shard: plain delegation.
}

TEST(ShardedMatchEngine, AnySourcePinsSerializedPass) {
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 4});

  // Batch with an MPI_ANY_SOURCE receive: serialized all-shard pass.
  Message m;
  m.env = {.src = 3, .tag = 7, .comm = 0};
  m.payload = 99;
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = 7, .comm = 0};
  const std::vector<Message> msgs = {m};
  const std::vector<RecvRequest> wild = {r};
  const auto s1 = engine.match(msgs, wild);
  EXPECT_EQ(s1.result.matched(), 1u);
  EXPECT_EQ(engine.serialized_passes(), 1u);
  EXPECT_EQ(engine.sharded_passes(), 0u);

  // Concrete sources fan out across the shards.
  r.env.src = 3;
  const std::vector<RecvRequest> concrete = {r};
  const auto s2 = engine.match(msgs, concrete);
  EXPECT_EQ(s2.result.matched(), 1u);
  EXPECT_EQ(engine.serialized_passes(), 1u);
  EXPECT_EQ(engine.sharded_passes(), 1u);
}

TEST(ShardedMatchEngine, AnySourceFirstPassStagesShardTelemetry) {
  // Regression: a fresh engine whose FIRST pass carries an MPI_ANY_SOURCE
  // receive (posted before any concrete receive) runs serialized through
  // shard 0.  The serialized pass used to write shard 0's matcher telemetry
  // straight into the ambient sink instead of staging it, so a stage-scoped
  // caller saw different counters than for any other pass.  Pin the exact
  // values a capture stage must observe.
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 4});

  Message m;
  m.env = {.src = 3, .tag = 7, .comm = 0};
  RecvRequest wild;
  wild.env = {.src = kAnySource, .tag = 7, .comm = 0};
  RecvRequest concrete;
  concrete.env = {.src = 3, .tag = 8, .comm = 0};
  Message m2;
  m2.env = {.src = 3, .tag = 8, .comm = 0};
  const std::vector<Message> msgs = {m, m2};
  const std::vector<RecvRequest> reqs = {wild, concrete};  // Wildcard posted first.

  telemetry::Registry captured;
  {
    const telemetry::ScopedStage stage(captured);
    const auto s = engine.match(msgs, reqs);
    EXPECT_EQ(s.result.matched(), 2u);
  }
  EXPECT_EQ(counter_of(captured, "matching.shard.serialized_passes"), 1u);
  EXPECT_EQ(counter_of(captured, "matching.shard.wildcard_posts"), 1u);
  EXPECT_EQ(counter_of(captured, "matching.shard.sharded_passes"), 0u);
  EXPECT_EQ(counter_of(captured, "matching.shard.replicated_passes"), 0u);

  // A concrete-only follow-up fans out and counts as a sharded pass.
  telemetry::Registry captured2;
  {
    const telemetry::ScopedStage stage(captured2);
    const auto s = engine.match(msgs, {&reqs[1], 1});
    EXPECT_EQ(s.result.matched(), 1u);
  }
  EXPECT_EQ(counter_of(captured2, "matching.shard.serialized_passes"), 0u);
  EXPECT_EQ(counter_of(captured2, "matching.shard.sharded_passes"), 1u);
  EXPECT_EQ(counter_of(captured2, "matching.shard.wildcard_posts"), 0u);
}

TEST(ShardedMatchEngine, ReplicatedPassTelemetryMatchesUnsharded) {
  // Pattern-table wildcard pass: an ANY_SOURCE receive posted before any
  // concrete receive takes the replicated-stub path.  With single-source
  // traffic exactly one shard does all the work on exactly the unsharded
  // queues, so the matcher-level counters must equal the plain engine's,
  // plus pinned pass accounting: one replicated pass, one reconciliation
  // round, nothing serialized.
  const SemanticsConfig cfg = SemanticsConfig::pattern_tables();

  Message a, b, c;
  a.env = {.src = 3, .tag = 7, .comm = 0};
  b.env = {.src = 3, .tag = 8, .comm = 0};
  c.env = {.src = 3, .tag = 9, .comm = 0};
  RecvRequest r0, r1, r2;
  r0.env = {.src = kAnySource, .tag = 7, .comm = 0};  // Wildcard posted first.
  r1.env = {.src = 3, .tag = 8, .comm = 0};
  r2.env = {.src = kAnySource, .tag = 9, .comm = 0};
  const std::vector<Message> msgs = {a, b, c};
  const std::vector<RecvRequest> reqs = {r0, r1, r2};

  const MatchEngine plain(pascal(), cfg);
  telemetry::Registry plain_stage;
  {
    const telemetry::ScopedStage stage(plain_stage);
    const auto s = plain.match(msgs, reqs);
    ASSERT_EQ(s.result.matched(), 3u);
  }

  const ShardedMatchEngine sharded(pascal(), cfg, {.shards = 4});
  telemetry::Registry shard_stage;
  {
    const telemetry::ScopedStage stage(shard_stage);
    const auto s = sharded.match(msgs, reqs);
    ASSERT_EQ(s.result.matched(), 3u);
  }

  for (const auto name : {"matching.pattern.probes", "matching.pattern.hits",
                          "matching.pattern.wildcard_posts"}) {
    EXPECT_EQ(counter_of(shard_stage, name), counter_of(plain_stage, name)) << name;
    EXPECT_GT(counter_of(plain_stage, name), 0u) << name;
  }
  EXPECT_EQ(counter_of(shard_stage, "matching.pattern.hits"), 3u);
  EXPECT_EQ(counter_of(shard_stage, "matching.shard.wildcard_posts"), 2u);
  EXPECT_EQ(counter_of(shard_stage, "matching.shard.replicated_passes"), 1u);
  EXPECT_EQ(counter_of(shard_stage, "matching.shard.replication_rounds"), 1u);
  EXPECT_EQ(counter_of(shard_stage, "matching.shard.serialized_passes"), 0u);
  EXPECT_EQ(counter_of(shard_stage, "matching.shard.sharded_passes"), 0u);
  EXPECT_EQ(sharded.replicated_passes(), 1u);
  EXPECT_EQ(sharded.serialized_passes(), 0u);
}

TEST(ShardedMatchEngine, ReplicatedWildcardPassBitIdenticalToUnsharded) {
  // Multi-source wildcard traffic through the pattern-table rows: the
  // replicated-stub fixpoint must reproduce the unsharded pairing exactly
  // (including cross-shard stub races), without ever serializing.
  const SemanticsConfig cfg = SemanticsConfig::pattern_tables();
  WorkloadSpec spec;
  spec.pairs = 220;
  spec.sources = 12;
  spec.tags = 6;
  spec.src_wildcard_prob = 0.3;
  spec.tag_wildcard_prob = 0.2;
  spec.match_fraction = 0.8;
  spec.seed = 107;
  const auto w = make_workload(spec);

  const MatchEngine plain(pascal(), cfg);
  const auto expected = plain.match(w.messages, w.requests);
  for (const int shards : {2, 8}) {
    for (const int threads : {1, 8}) {
      const ShardedMatchEngine engine(
          pascal(), cfg,
          {.shards = shards, .policy = simt::ExecutionPolicy{threads}});
      const auto s = engine.match(w.messages, w.requests);
      EXPECT_EQ(s.result.request_match, expected.result.request_match)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(engine.replicated_passes(), 1u);
      EXPECT_EQ(engine.serialized_passes(), 0u);
    }
  }
}

TEST(ShardedMatchEngine, QueueDrainRemovesMatchedKeepsLeftovers) {
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 4});
  MessageQueue mq;
  RecvQueue rq;
  Message m;
  m.env = {.src = 0, .tag = 5, .comm = 0};
  mq.push(m);
  m.env = {.src = 1, .tag = 6, .comm = 0};  // No receive for this one.
  mq.push(m);
  RecvRequest r;
  r.env = {.src = 0, .tag = 5, .comm = 0};
  rq.push(r);
  r.env = {.src = 2, .tag = 9, .comm = 0};  // No message for this one.
  rq.push(r);

  const auto s = engine.match_queues(mq, rq);
  EXPECT_EQ(s.result.matched(), 1u);
  ASSERT_EQ(mq.size(), 1u);
  EXPECT_EQ(mq[0].env.src, 1);
  ASSERT_EQ(rq.size(), 1u);
  EXPECT_EQ(rq[0].env.src, 2);
}

TEST(ShardedMatchEngine, QueueDrainBitIdenticalToUnsharded) {
  WorkloadSpec spec;
  spec.pairs = 128;
  spec.sources = 16;
  spec.tags = 8;
  spec.match_fraction = 0.7;
  spec.seed = 105;
  const auto w = make_workload(spec);
  const auto fill = [&w](MessageQueue& mq, RecvQueue& rq) {
    for (const auto& m : w.messages) mq.push(m);
    for (const auto& r : w.requests) rq.push(r);
  };

  MessageQueue mq1, mq8;
  RecvQueue rq1, rq8;
  fill(mq1, rq1);
  fill(mq8, rq8);
  const MatchEngine plain(pascal(), SemanticsConfig{});
  const ShardedMatchEngine sharded(pascal(), SemanticsConfig{}, {.shards = 8});
  const auto a = plain.match_queues(mq1, rq1);
  const auto b = sharded.match_queues(mq8, rq8);
  EXPECT_EQ(a.result.request_match, b.result.request_match);
  ASSERT_EQ(mq1.size(), mq8.size());
  for (std::size_t i = 0; i < mq1.size(); ++i) {
    EXPECT_EQ(mq1[i].env, mq8[i].env) << i;
    EXPECT_EQ(mq1[i].seq, mq8[i].seq) << i;
  }
  ASSERT_EQ(rq1.size(), rq8.size());
  for (std::size_t i = 0; i < rq1.size(); ++i) EXPECT_EQ(rq1[i].env, rq8[i].env) << i;
}

TEST(ShardedMatchEngine, ModelledTimeIsMaxOverShardsNotSum) {
  // Shards model concurrent communication SMs: the pass costs as much as
  // its slowest shard, so sharding a big batch must not cost more than the
  // unsharded matrix pass over the full queues.
  const auto w = full_match_workload(106);
  const MatchEngine plain(pascal(), SemanticsConfig{});
  const ShardedMatchEngine sharded(pascal(), SemanticsConfig{}, {.shards = 8});
  const auto a = plain.match(w.messages, w.requests);
  const auto b = sharded.match(w.messages, w.requests);
  EXPECT_GT(b.seconds, 0.0);
  EXPECT_LE(b.cycles, a.cycles);
  EXPECT_LE(b.seconds, a.seconds);
}

TEST(ShardedMatchEngine, ShardOfIsStableAndInRange) {
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 8});
  EXPECT_EQ(engine.shard_count(), 8);
  for (int comm = 0; comm < 4; ++comm) {
    for (int src = 0; src < 64; ++src) {
      const int s = engine.shard_of(comm, src, kDefaultStream);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 8);
      EXPECT_EQ(engine.shard_of(comm, src, kDefaultStream), s);  // Stable.
    }
  }
}

TEST(ShardedMatchEngine, ShardOfRotatesStreamsAcrossShards) {
  // Stream affinity: the stream id is added after the (comm, src) mix, so
  // the streams of one pair walk consecutive shards — S distinct streams
  // cover all S shards — while stream 0 keeps the historical map.
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 8});
  for (int comm = 0; comm < 4; ++comm) {
    for (int src = 0; src < 16; ++src) {
      const int base = engine.shard_of(comm, src, kDefaultStream);
      for (StreamId stream = 0; stream < 8; ++stream) {
        EXPECT_EQ(engine.shard_of(comm, src, stream), (base + stream) % 8);
      }
    }
  }
}

TEST(ShardedMatchEngine, RejectsInvalidConfig) {
  EXPECT_THROW(ShardedMatchEngine(pascal(), SemanticsConfig{}, {.shards = 0}),
               std::invalid_argument);
  const ShardedMatchEngine engine(pascal(), SemanticsConfig{}, {.shards = 2});
  EXPECT_THROW((void)engine.shard_snapshot(2), std::out_of_range);
  EXPECT_THROW((void)engine.shard_snapshot(-1), std::out_of_range);
}

TEST(ShardedMatchEngine, EnforcesSemanticsLikePlainEngine) {
  // Wildcard receives rejected when prohibited (via the serialized path's
  // MatchEngine), unmatched messages rejected under no-unexpected.
  SemanticsConfig no_wild;
  no_wild.wildcards = false;
  const ShardedMatchEngine strict(pascal(), no_wild, {.shards = 4});
  RecvRequest r;
  r.env = {.src = kAnySource, .tag = 0, .comm = 0};
  const std::vector<RecvRequest> reqs = {r};
  const std::vector<Message> msgs = {Message{}};
  EXPECT_THROW((void)strict.match(msgs, reqs), std::invalid_argument);

  SemanticsConfig no_unexpected;
  no_unexpected.unexpected = false;
  const ShardedMatchEngine drain(pascal(), no_unexpected, {.shards = 4});
  Message m;
  m.env = {.src = 0, .tag = 0, .comm = 0};
  const std::vector<Message> orphan = {m};
  EXPECT_THROW((void)drain.match(orphan, {}), std::runtime_error);
}

TEST(ShardedMatchEngine, MoveSemantics) {
  ShardedMatchEngine a(pascal(), SemanticsConfig{}, {.shards = 4});
  ShardedMatchEngine b = std::move(a);
  EXPECT_EQ(b.shard_count(), 4);
  EXPECT_EQ(b.algorithm_kind(), Algorithm::kMatrix);
}

}  // namespace
}  // namespace simtmsg::matching

// Matching-layer stream semantics (docs/streams.md): per-stream sequence
// cursors in the queues, (comm, stream) bucketing in the engine, and
// bit-identity of batched multi-stream ingestion against per-message
// pushes.  The runtime-level ordering wall lives in
// tests/runtime/stream_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "matching/engine.hpp"
#include "matching/queue.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

Message msg(Rank src, Tag tag, CommId comm, StreamId stream, std::uint64_t payload) {
  Message m;
  m.env = {.src = src, .tag = tag, .comm = comm, .stream = stream};
  m.payload = payload;
  return m;
}

RecvRequest req(Rank src, Tag tag, CommId comm, StreamId stream) {
  RecvRequest r;
  r.env = {.src = src, .tag = tag, .comm = comm, .stream = stream};
  return r;
}

TEST(StreamQueue, EachStreamOwnsAnIndependentSequenceCursor) {
  MessageQueue q;
  // Interleave three ordering domains; each must count from 0 on its own.
  q.push(msg(0, 0, 0, /*stream=*/0, 1));
  q.push(msg(0, 1, 0, /*stream=*/7, 2));
  q.push(msg(0, 2, 0, /*stream=*/0, 3));
  q.push(msg(0, 3, 0, /*stream=*/7, 4));
  q.push(msg(0, 4, 0, /*stream=*/3, 5));
  q.push(msg(0, 5, 0, /*stream=*/7, 6));

  const auto lanes = q.lanes();
  ASSERT_EQ(lanes.seq.size(), 6u);
  EXPECT_EQ(lanes.seq[0], 0u);  // Stream 0: 0, 1.
  EXPECT_EQ(lanes.seq[2], 1u);
  EXPECT_EQ(lanes.seq[1], 0u);  // Stream 7: 0, 1, 2.
  EXPECT_EQ(lanes.seq[3], 1u);
  EXPECT_EQ(lanes.seq[5], 2u);
  EXPECT_EQ(lanes.seq[4], 0u);  // Stream 3: 0.
  EXPECT_EQ(std::vector<StreamId>(lanes.stream.begin(), lanes.stream.end()),
            (std::vector<StreamId>{0, 7, 0, 7, 3, 7}));
}

TEST(StreamQueue, RawPushAdvancesOnlyItsOwnStreamCursor) {
  MessageQueue q;
  Message high = msg(0, 0, 0, /*stream=*/2, 0);
  high.seq = 500;
  q.push_raw(high);
  // Stream 2's cursor continues past the raw sequence...
  q.push(msg(0, 1, 0, /*stream=*/2, 0));
  // ...while stream 0's cursor is untouched.
  q.push(msg(0, 2, 0, /*stream=*/0, 0));

  const auto lanes = q.lanes();
  EXPECT_EQ(lanes.seq[0], 500u);
  EXPECT_EQ(lanes.seq[1], 501u);
  EXPECT_EQ(lanes.seq[2], 0u);
}

TEST(StreamQueue, CompactPreservesStreamLaneAlignment) {
  MessageQueue q;
  q.push(msg(0, 0, 0, 1, 10));
  q.push(msg(0, 1, 0, 2, 11));
  q.push(msg(0, 2, 0, 3, 12));
  const std::vector<std::uint8_t> matched = {0, 1, 0};  // Drop the middle one.
  EXPECT_EQ(q.compact(matched), 1u);

  const auto lanes = q.lanes();
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(lanes.stream[0], 1);
  EXPECT_EQ(lanes.stream[1], 3);
  EXPECT_EQ(q[0].env.stream, 1);
  EXPECT_EQ(q[1].env.stream, 3);
  EXPECT_EQ(lanes.seq[1], q[1].seq);
}

TEST(StreamMatching, StreamJoinsTheMatchTuple) {
  // Same (src, tag, comm) on two different streams: a receive matches only
  // the message of its own ordering domain — there is no stream wildcard.
  const MatchEngine engine(pascal(), SemanticsConfig::compliant());
  const std::vector<Message> msgs = {msg(0, 5, 0, /*stream=*/1, 111)};
  {
    const std::vector<RecvRequest> reqs = {req(0, 5, 0, /*stream=*/2)};
    const auto s = engine.match(msgs, reqs);
    EXPECT_EQ(s.result.matched(), 0u);
  }
  {
    const std::vector<RecvRequest> reqs = {req(0, 5, 0, /*stream=*/1)};
    const auto s = engine.match(msgs, reqs);
    ASSERT_EQ(s.result.request_match.size(), 1u);
    EXPECT_EQ(s.result.request_match[0], 0);
  }
}

TEST(StreamMatching, EngineBucketsByCommAndStream) {
  // Identical envelopes across two comms x two streams: every request must
  // land on the message of its exact (comm, stream) bucket.
  const MatchEngine engine(pascal(), SemanticsConfig::compliant());
  std::vector<Message> msgs;
  std::vector<RecvRequest> reqs;
  for (const CommId comm : {0, 9}) {
    for (const StreamId stream : {0, 4}) {
      msgs.push_back(msg(1, 2, comm, stream,
                         static_cast<std::uint64_t>(comm * 100 + stream)));
      reqs.push_back(req(1, 2, comm, stream));
    }
  }
  const auto s = engine.match(msgs, reqs);
  ASSERT_EQ(s.result.request_match.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(s.result.request_match[i], static_cast<std::int32_t>(i)) << i;
  }
}

TEST(StreamMatching, PostedOrderTiebreakHoldsWithinAStream) {
  // Two identical envelopes on one stream: the first-posted receive takes
  // the first-arrived message (the MPI non-overtaking rule, per stream).
  const MatchEngine engine(pascal(), SemanticsConfig::compliant());
  const std::vector<Message> msgs = {msg(2, 3, 0, /*stream=*/5, 1000),
                                     msg(2, 3, 0, /*stream=*/5, 1001)};
  const std::vector<RecvRequest> reqs = {req(2, 3, 0, /*stream=*/5),
                                         req(2, 3, 0, /*stream=*/5)};
  const auto s = engine.match(msgs, reqs);
  ASSERT_EQ(s.result.request_match.size(), 2u);
  EXPECT_EQ(s.result.request_match[0], 0);
  EXPECT_EQ(s.result.request_match[1], 1);
}

TEST(StreamMatching, InterleavedBatchIngestionIsBitIdenticalToPerMessage) {
  // match_batch over an interleaved multi-stream batch must produce the
  // same lanes, the same sequence stamps, and the same match result as
  // ingesting the same arrivals one element at a time.
  std::vector<Message> arrivals;
  std::vector<RecvRequest> posts;
  for (int i = 0; i < 48; ++i) {
    const StreamId stream = i % 5;  // Streams 0..4 interleaved.
    arrivals.push_back(msg(i % 3, i, 0, stream, 0xABC0 + static_cast<std::uint64_t>(i)));
    posts.push_back(req(i % 3, i, 0, stream));
  }

  const MatchEngine engine(pascal(), SemanticsConfig::compliant());

  MessageQueue mq_batch;
  RecvQueue rq_batch;
  SimtMatchStats batch_stats;
  engine.match_batch(arrivals, posts, mq_batch, rq_batch, batch_stats);

  MessageQueue mq_single;
  RecvQueue rq_single;
  for (const Message& m : arrivals) mq_single.push(m);
  for (const RecvRequest& r : posts) rq_single.push(r);
  SimtMatchStats single_stats;
  engine.match_queues(mq_single, rq_single, single_stats);

  EXPECT_EQ(batch_stats.result.request_match, single_stats.result.request_match);
  EXPECT_EQ(batch_stats.result.matched(), arrivals.size());
  // Both queues drained identically (fully matching workload).
  EXPECT_EQ(mq_batch.size(), mq_single.size());
  EXPECT_EQ(rq_batch.size(), rq_single.size());
}

TEST(StreamMatching, BatchLanesMatchPerMessageLanes) {
  // The ingestion half of the bit-identity claim, checked lane by lane
  // (no matching pass: raw stamping equivalence).
  std::vector<Message> arrivals;
  for (int i = 0; i < 32; ++i) {
    arrivals.push_back(msg(i % 4, i, i % 2, /*stream=*/i % 3, 0));
  }
  MessageQueue batched;
  batched.push_n(arrivals);
  MessageQueue single;
  for (const Message& m : arrivals) single.push(m);

  const auto a = batched.lanes();
  const auto b = single.lanes();
  ASSERT_EQ(a.seq.size(), b.seq.size());
  for (std::size_t i = 0; i < a.seq.size(); ++i) {
    EXPECT_EQ(a.src[i], b.src[i]) << i;
    EXPECT_EQ(a.tag[i], b.tag[i]) << i;
    EXPECT_EQ(a.comm[i], b.comm[i]) << i;
    EXPECT_EQ(a.stream[i], b.stream[i]) << i;
    EXPECT_EQ(a.seq[i], b.seq[i]) << i;
    EXPECT_EQ(a.word[i], b.word[i]) << i;
  }
}

}  // namespace
}  // namespace simtmsg::matching

// Variable warp sizing (Section VII-C extension): correctness must be
// width-independent; only the cost model changes.
#include <gtest/gtest.h>

#include "matching/matrix_matcher.hpp"
#include "matching/reference_matcher.hpp"
#include "matching/workload.hpp"

namespace simtmsg::matching {
namespace {

const simt::DeviceSpec& pascal() { return simt::pascal_gtx1080(); }

class WarpWidthProperty : public ::testing::TestWithParam<int> {};

TEST_P(WarpWidthProperty, WindowEqualsReferenceAtAnyWidth) {
  MatrixMatcher::Options opt;
  opt.warp_width = GetParam();
  const MatrixMatcher matcher(pascal(), opt);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadSpec spec;
    spec.pairs = 150;
    spec.sources = 8;
    spec.tags = 4;
    spec.src_wildcard_prob = 0.2;
    spec.tag_wildcard_prob = 0.2;
    spec.seed = seed;
    const auto w = make_workload(spec);
    // One window only sees the first `capacity()` messages (narrow widths
    // shrink it); the reference must be computed over the same span.
    const auto visible = std::span<const Message>(w.messages)
                             .first(std::min<std::size_t>(
                                 w.messages.size(),
                                 static_cast<std::size_t>(matcher.capacity())));
    EXPECT_EQ(matcher.match_window(w.messages, w.requests).result.request_match,
              ReferenceMatcher::match(visible, w.requests).request_match)
        << "width=" << GetParam() << " seed=" << seed;
  }
}

TEST_P(WarpWidthProperty, QueueDrainEqualsReference) {
  MatrixMatcher::Options opt;
  opt.warp_width = GetParam();
  const MatrixMatcher matcher(pascal(), opt);
  WorkloadSpec spec;
  spec.pairs = 500;  // Beyond one window for narrow widths.
  spec.sources = 12;
  spec.tags = 6;
  spec.seed = 99;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  EXPECT_EQ(matcher.match_queues(mq, rq).result.request_match,
            ReferenceMatcher::match(w.messages, w.requests).request_match);
  EXPECT_TRUE(mq.empty());
}

INSTANTIATE_TEST_SUITE_P(Widths, WarpWidthProperty, ::testing::Values(1, 4, 8, 16, 32));

TEST(WarpWidth, CapacityScalesWithWidth) {
  MatrixMatcher::Options opt;
  opt.warp_width = 8;
  EXPECT_EQ(MatrixMatcher(pascal(), opt).capacity(), 32 * 8);
  opt.warp_width = 32;
  EXPECT_EQ(MatrixMatcher(pascal(), opt).capacity(), 1024);
}

TEST(WarpWidth, ClampedToHardwareRange) {
  MatrixMatcher::Options opt;
  opt.warp_width = 0;
  EXPECT_EQ(MatrixMatcher(pascal(), opt).options().warp_width, 1);
  opt.warp_width = 64;
  EXPECT_EQ(MatrixMatcher(pascal(), opt).options().warp_width, 32);
}

TEST(WarpWidth, NarrowWarpsHelpShortQueues) {
  // The paper's Section VII-C hypothesis, as reproduced by
  // bench/ablation_warp_size: at 64 elements width 8 must beat width 32.
  WorkloadSpec spec;
  spec.pairs = 64;
  spec.seed = 5;
  const auto w = make_workload(spec);

  MatrixMatcher::Options narrow;
  narrow.warp_width = 8;
  MatrixMatcher::Options full;
  full.warp_width = 32;
  const auto rn = MatrixMatcher(pascal(), narrow).match_window(w.messages, w.requests);
  const auto rf = MatrixMatcher(pascal(), full).match_window(w.messages, w.requests);
  EXPECT_LT(rn.cycles, rf.cycles);
}

TEST(WarpWidth, FullWidthStillWinsLongQueues) {
  WorkloadSpec spec;
  spec.pairs = 1024;
  spec.seed = 6;
  const auto w = make_workload(spec);

  MatrixMatcher::Options narrow;
  narrow.warp_width = 8;
  MatrixMatcher::Options full;
  full.warp_width = 32;
  MessageQueue mq1, mq2;
  RecvQueue rq1, rq2;
  fill_queues(w, mq1, rq1);
  fill_queues(w, mq2, rq2);
  const auto rn = MatrixMatcher(pascal(), narrow).match_queues(mq1, rq1);
  const auto rf = MatrixMatcher(pascal(), full).match_queues(mq2, rq2);
  EXPECT_GT(rn.cycles, rf.cycles);
}

}  // namespace
}  // namespace simtmsg::matching

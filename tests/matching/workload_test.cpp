#include "matching/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "matching/reference_matcher.hpp"

namespace simtmsg::matching {
namespace {

TEST(Workload, SizesMatchSpec) {
  WorkloadSpec spec;
  spec.pairs = 100;
  const auto w = make_workload(spec);
  EXPECT_EQ(w.messages.size(), 100u);
  EXPECT_EQ(w.requests.size(), 100u);
}

TEST(Workload, Deterministic) {
  WorkloadSpec spec;
  spec.pairs = 50;
  spec.seed = 99;
  const auto a = make_workload(spec);
  const auto b = make_workload(spec);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.requests, b.requests);
}

TEST(Workload, FullyMatchingByConstruction) {
  // Section V-B: "all tuples of the message queue match with tuples in the
  // receive queue, thus no elements are left".
  WorkloadSpec spec;
  spec.pairs = 333;
  spec.seed = 4;
  const auto w = make_workload(spec);
  const auto r = ReferenceMatcher::match(w.messages, w.requests);
  EXPECT_EQ(r.matched(), 333u);
}

TEST(Workload, ValuesStayInConfiguredSpaces) {
  WorkloadSpec spec;
  spec.pairs = 500;
  spec.sources = 7;
  spec.tags = 3;
  const auto w = make_workload(spec);
  for (const auto& m : w.messages) {
    EXPECT_GE(m.env.src, 0);
    EXPECT_LT(m.env.src, 7);
    EXPECT_GE(m.env.tag, 0);
    EXPECT_LT(m.env.tag, 3);
  }
}

TEST(Workload, UniqueTuplesAreUnique) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.unique_tuples = true;
  spec.sources = 32;
  spec.tags = 32;
  const auto w = make_workload(spec);
  std::set<std::pair<Rank, Tag>> seen;
  for (const auto& m : w.messages) seen.insert({m.env.src, m.env.tag});
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Workload, UniqueTuplesRejectsTooSmallSpace) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.unique_tuples = true;
  spec.sources = 4;
  spec.tags = 4;
  EXPECT_THROW(make_workload(spec), std::invalid_argument);
}

TEST(Workload, MatchFractionKeepsQueuesFullButUnpairable) {
  WorkloadSpec spec;
  spec.pairs = 1000;
  spec.match_fraction = 0.5;
  spec.seed = 8;
  const auto w = make_workload(spec);
  // Section VI-B scenario: both queues stay full...
  EXPECT_EQ(w.messages.size(), 1000u);
  EXPECT_EQ(w.requests.size(), 1000u);
  // ...but only ~half the elements can pair.
  const auto pairable = ReferenceMatcher::pairable_count(w.messages, w.requests);
  EXPECT_GT(pairable, 350u);
  EXPECT_LT(pairable, 650u);
}

TEST(Workload, FillerTagsLiveInDisjointSpaces) {
  WorkloadSpec spec;
  spec.pairs = 200;
  spec.tags = 8;
  spec.match_fraction = 0.0;  // Everything is filler.
  const auto w = make_workload(spec);
  for (const auto& m : w.messages) {
    EXPECT_GE(m.env.tag, 8);
    EXPECT_LT(m.env.tag, 16);
  }
  for (const auto& r : w.requests) {
    EXPECT_GE(r.env.tag, 16);
    EXPECT_LT(r.env.tag, 24);
  }
  EXPECT_EQ(ReferenceMatcher::match(w.messages, w.requests).matched(), 0u);
}

TEST(Workload, WildcardProbabilityProducesWildcards) {
  WorkloadSpec spec;
  spec.pairs = 500;
  spec.src_wildcard_prob = 0.5;
  spec.tag_wildcard_prob = 0.25;
  spec.seed = 10;
  const auto w = make_workload(spec);
  std::size_t src_wc = 0, tag_wc = 0;
  for (const auto& r : w.requests) {
    src_wc += (r.env.src == kAnySource);
    tag_wc += (r.env.tag == kAnyTag);
  }
  EXPECT_GT(src_wc, 150u);
  EXPECT_LT(src_wc, 350u);
  EXPECT_GT(tag_wc, 60u);
  EXPECT_LT(tag_wc, 200u);
}

TEST(Workload, SequenceNumbersStampedInOrder) {
  WorkloadSpec spec;
  spec.pairs = 20;
  const auto w = make_workload(spec);
  for (std::size_t i = 0; i < w.messages.size(); ++i) EXPECT_EQ(w.messages[i].seq, i);
  for (std::size_t i = 0; i < w.requests.size(); ++i) EXPECT_EQ(w.requests[i].seq, i);
}

TEST(Workload, FillQueuesCopiesEverything) {
  WorkloadSpec spec;
  spec.pairs = 15;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  fill_queues(w, mq, rq);
  EXPECT_EQ(mq.size(), 15u);
  EXPECT_EQ(rq.size(), 15u);
  EXPECT_EQ(mq[3].env, w.messages[3].env);
}

TEST(Workload, RejectsDegenerateSpaces) {
  WorkloadSpec spec;
  spec.sources = 0;
  EXPECT_THROW(make_workload(spec), std::invalid_argument);
}

}  // namespace
}  // namespace simtmsg::matching

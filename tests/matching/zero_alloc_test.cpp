// Allocation gate for the steady-state matching path (docs/perf.md): after a
// few warm-up calls, MatchEngine::match / match_queues through the engine's
// recycled MatchWorkspace must perform ZERO heap allocations — for all three
// SIMT algorithms and for the multi-communicator split.
//
// This binary overrides the global operator new/delete with a counting shim
// (which is why it is its own executable, see tests/CMakeLists.txt); the
// counter is armed only around the steady-state calls, so gtest's and the
// warm-up's allocations are not charged.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "matching/engine.hpp"
#include "matching/sharded_engine.hpp"
#include "matching/workload.hpp"
#include "simt/timing_model.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n > 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t al) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t align =
      std::max(static_cast<std::size_t>(al), sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, align, n > 0 ? n : align) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) { return counted_alloc(n, al); }
void* operator new[](std::size_t n, std::align_val_t al) { return counted_alloc(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace simtmsg::matching {
namespace {

constexpr int kWarmup = 3;
constexpr int kSteady = 5;

/// Arms the allocation counter for one steady-state region.
class CountingRegion {
 public:
  CountingRegion() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~CountingRegion() { g_counting.store(false, std::memory_order_relaxed); }
  CountingRegion(const CountingRegion&) = delete;
  CountingRegion& operator=(const CountingRegion&) = delete;

  [[nodiscard]] static std::uint64_t stop() {
    g_counting.store(false, std::memory_order_relaxed);
    return g_allocations.load(std::memory_order_relaxed);
  }
};

/// Warm up the engine on the workload, then assert that further identical
/// calls through the span entry point allocate nothing.
void expect_steady_state_alloc_free(const SemanticsConfig& sem, const WorkloadSpec& spec) {
  const MatchEngine engine(simt::pascal_gtx1080(), sem);
  const auto w = make_workload(spec);
  SimtMatchStats stats;
  for (int i = 0; i < kWarmup; ++i) engine.match(w.messages, w.requests, stats);
  const auto matched = stats.result.matched();
  ASSERT_GT(matched, 0u);
  for (int i = 0; i < kSteady; ++i) {
    CountingRegion region;
    engine.match(w.messages, w.requests, stats);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_EQ(stats.result.matched(), matched);
  }
}

TEST(ZeroAllocSteadyState, MatrixWithWildcards) {
  WorkloadSpec spec;
  spec.pairs = 192;
  spec.sources = 8;
  spec.tags = 8;
  spec.src_wildcard_prob = 0.25;
  spec.tag_wildcard_prob = 0.25;
  spec.seed = 41;
  expect_steady_state_alloc_free(SemanticsConfig{}, spec);
}

TEST(ZeroAllocSteadyState, PartitionedMatrix) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 32;
  spec.tags = 16;
  spec.seed = 42;
  expect_steady_state_alloc_free(
      SemanticsConfig{.wildcards = false, .ordering = true, .unexpected = true,
                      .partitions = 4},
      spec);
}

TEST(ZeroAllocSteadyState, PatternTableWithWildcards) {
  // The four class tables, FIFO links, and classification scratch all live
  // in MatchWorkspace::pattern; a stable wildcard-heavy shape must reuse
  // them without touching the heap.
  WorkloadSpec spec;
  spec.pairs = 224;
  spec.sources = 12;
  spec.tags = 8;
  spec.src_wildcard_prob = 0.3;
  spec.tag_wildcard_prob = 0.3;
  spec.seed = 47;
  expect_steady_state_alloc_free(SemanticsConfig::pattern_tables(), spec);
}

TEST(ZeroAllocSteadyState, HashTable) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 512;
  spec.tags = 512;
  spec.unique_tuples = true;
  spec.seed = 43;
  expect_steady_state_alloc_free(
      SemanticsConfig{.wildcards = false, .ordering = false, .unexpected = true,
                      .partitions = 4},
      spec);
}

/// Sharded twin of expect_steady_state_alloc_free: the route scratch, the
/// per-shard workspaces, and the telemetry stages must all be recycled.
void expect_sharded_steady_state_alloc_free(const SemanticsConfig& sem,
                                            const WorkloadSpec& spec,
                                            const ShardedMatchEngine::Options& opt) {
  const ShardedMatchEngine engine(simt::pascal_gtx1080(), sem, opt);
  const auto w = make_workload(spec);
  SimtMatchStats stats;
  for (int i = 0; i < kWarmup; ++i) engine.match(w.messages, w.requests, stats);
  const auto matched = stats.result.matched();
  ASSERT_GT(matched, 0u);
  for (int i = 0; i < kSteady; ++i) {
    CountingRegion region;
    engine.match(w.messages, w.requests, stats);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_EQ(stats.result.matched(), matched);
  }
}

TEST(ZeroAllocSteadyState, ShardedMatrix) {
  WorkloadSpec spec;
  spec.pairs = 192;
  spec.sources = 16;
  spec.tags = 8;
  spec.seed = 44;
  expect_sharded_steady_state_alloc_free(SemanticsConfig{}, spec, {.shards = 4});
}

TEST(ZeroAllocSteadyState, ShardedMatrixThreaded) {
  WorkloadSpec spec;
  spec.pairs = 192;
  spec.sources = 16;
  spec.tags = 8;
  spec.seed = 45;
  expect_sharded_steady_state_alloc_free(
      SemanticsConfig{}, spec,
      {.shards = 4, .policy = simt::ExecutionPolicy{4}});
}

TEST(ZeroAllocSteadyState, ShardedHashTable) {
  WorkloadSpec spec;
  spec.pairs = 256;
  spec.sources = 512;
  spec.tags = 512;
  spec.unique_tuples = true;
  spec.seed = 46;
  expect_sharded_steady_state_alloc_free(
      SemanticsConfig{.wildcards = false, .ordering = false, .unexpected = true,
                      .partitions = 4},
      spec, {.shards = 4});
}

TEST(ZeroAllocSteadyState, ShardedPatternReplicatedWildcards) {
  // The replicated-stub wildcard path: routing index lists, per-shard stub
  // masks, the claim scratch, and the reconciliation scan vectors must all
  // recycle once warm — rounds are deterministic for a fixed workload, so
  // the warm-up sizes every buffer the steady state touches.
  WorkloadSpec spec;
  spec.pairs = 200;
  spec.sources = 12;
  spec.tags = 8;
  spec.src_wildcard_prob = 0.3;
  spec.tag_wildcard_prob = 0.2;
  spec.match_fraction = 0.8;
  spec.seed = 48;
  expect_sharded_steady_state_alloc_free(SemanticsConfig::pattern_tables(), spec,
                                         {.shards = 4});
}

TEST(ZeroAllocSteadyState, ShardedPatternReplicatedThreaded) {
  WorkloadSpec spec;
  spec.pairs = 200;
  spec.sources = 12;
  spec.tags = 8;
  spec.src_wildcard_prob = 0.3;
  spec.seed = 49;
  expect_sharded_steady_state_alloc_free(
      SemanticsConfig::pattern_tables(), spec,
      {.shards = 4, .policy = simt::ExecutionPolicy{4}});
}

TEST(ZeroAllocSteadyState, ShardedQueueDrain) {
  // The sharded drain path: route, fan out, merge, and compact both queues
  // through the recycled flag vectors — refills happen outside the counting
  // region, the drain itself must not allocate.
  const ShardedMatchEngine engine(simt::pascal_gtx1080(), SemanticsConfig{},
                                  {.shards = 4});
  MessageQueue mq;
  RecvQueue rq;
  SimtMatchStats stats;
  const auto refill = [&mq, &rq] {
    WorkloadSpec spec;
    spec.pairs = 128;
    spec.sources = 16;
    spec.tags = 4;
    spec.seed = 18;
    const auto w = make_workload(spec);
    for (const auto& m : w.messages) mq.push(m);
    for (const auto& r : w.requests) rq.push(r);
  };

  for (int i = 0; i < kWarmup; ++i) {
    refill();
    engine.match_queues(mq, rq, stats);
    ASSERT_TRUE(mq.empty());
    ASSERT_TRUE(rq.empty());
  }
  for (int i = 0; i < kSteady; ++i) {
    refill();
    CountingRegion region;
    engine.match_queues(mq, rq, stats);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_TRUE(mq.empty());
    EXPECT_TRUE(rq.empty());
  }
}

TEST(ZeroAllocSteadyState, MultiCommQueueDrain) {
  // The engine's O(M+R+C) split plus queue compaction, across three
  // communicators, repeatedly refilled: the refills happen outside the
  // counting region (the queues keep their capacity), the match itself must
  // not allocate.
  const MatchEngine engine(simt::pascal_gtx1080(), SemanticsConfig{});
  MessageQueue mq;
  RecvQueue rq;
  SimtMatchStats stats;
  const auto refill = [&mq, &rq] {
    Workload all;
    for (int c = 0; c < 3; ++c) {
      WorkloadSpec spec;
      spec.pairs = 64;
      spec.sources = 4;
      spec.tags = 4;
      spec.comm = c;
      spec.seed = 17;  // Same tuples in every comm: crossing would mismatch.
      const auto w = make_workload(spec);
      all.messages.insert(all.messages.end(), w.messages.begin(), w.messages.end());
      all.requests.insert(all.requests.end(), w.requests.begin(), w.requests.end());
    }
    util::Rng rng(99);
    rng.shuffle(all.messages);
    rng.shuffle(all.requests);
    for (const auto& m : all.messages) mq.push(m);
    for (const auto& r : all.requests) rq.push(r);
  };

  for (int i = 0; i < kWarmup; ++i) {
    refill();
    engine.match_queues(mq, rq, stats);
    ASSERT_TRUE(mq.empty());
    ASSERT_TRUE(rq.empty());
  }
  for (int i = 0; i < kSteady; ++i) {
    refill();
    CountingRegion region;
    engine.match_queues(mq, rq, stats);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_TRUE(mq.empty());
    EXPECT_TRUE(rq.empty());
  }
}

TEST(ZeroAllocSteadyState, ScalarTimingEstimate) {
  // Regression: the scalar TimingModel::estimate() used to expand its
  // homogeneous per-CTA counters into a heap vector on EVERY call (the cost
  // the pattern matcher dodged with workspace scratch).  It must be
  // allocation-free outright — multi-wave launches included.
  const simt::TimingModel model(simt::pascal_gtx1080());
  simt::EventCounters ev;
  ev.global_load_requests = 1024;
  ev.global_transactions = 2048;
  ev.alu_instructions = 4096;
  ev.branch_instructions = 512;
  simt::LaunchConfig launch;
  launch.ctas = 96;  // Several serialized waves on the Pascal spec.
  launch.warps_per_cta = 8;
  launch.mlp_per_warp = 2.0;

  simt::TimingEstimate warm;
  for (int i = 0; i < kWarmup; ++i) warm = model.estimate(ev, launch);
  ASSERT_GT(warm.cycles, 0.0);
  ASSERT_GT(warm.waves, 1);
  for (int i = 0; i < kSteady; ++i) {
    CountingRegion region;
    const auto est = model.estimate(ev, launch);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_EQ(est.cycles, warm.cycles);
    EXPECT_EQ(est.waves, warm.waves);
  }
}

TEST(ZeroAllocSteadyState, BatchedIngestDrain) {
  // match_batch in steady state: the bulk append must reuse queue and lane
  // capacity (the counting-new wall extends to the batch entry point).  The
  // arrival vectors are refilled outside the counting region; the fully
  // matchable workload drains both queues every pass.
  const MatchEngine engine(simt::pascal_gtx1080(), SemanticsConfig{});
  WorkloadSpec spec;
  spec.pairs = 128;
  spec.sources = 16;
  spec.tags = 8;
  spec.seed = 19;
  const auto w = make_workload(spec);
  MessageQueue mq;
  RecvQueue rq;
  SimtMatchStats stats;

  for (int i = 0; i < kWarmup; ++i) {
    engine.match_batch(w.messages, w.requests, mq, rq, stats);
    ASSERT_TRUE(mq.empty());
    ASSERT_TRUE(rq.empty());
  }
  for (int i = 0; i < kSteady; ++i) {
    CountingRegion region;
    engine.match_batch(w.messages, w.requests, mq, rq, stats);
    const auto allocations = CountingRegion::stop();
    EXPECT_EQ(allocations, 0u) << "steady-state iteration " << i;
    EXPECT_TRUE(mq.empty());
    EXPECT_TRUE(rq.empty());
  }
}

}  // namespace
}  // namespace simtmsg::matching

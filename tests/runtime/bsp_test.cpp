#include "runtime/bsp.hpp"

#include <gtest/gtest.h>

namespace simtmsg::runtime {
namespace {

ClusterConfig relaxed(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  cfg.semantics.partitions = 4;
  return cfg;
}

TEST(Bsp, SuperstepAdvancesOnSync) {
  Cluster c(relaxed(2));
  BspSession bsp(c);
  EXPECT_EQ(bsp.superstep(), 0);
  bsp.sync();
  EXPECT_EQ(bsp.superstep(), 1);
}

TEST(Bsp, TagEpochsAlternate) {
  Cluster c(relaxed(2));
  BspSession bsp(c, /*tags_per_step=*/100);
  const auto t0 = bsp.tag(5);
  bsp.sync();
  const auto t1 = bsp.tag(5);
  bsp.sync();
  const auto t2 = bsp.tag(5);
  EXPECT_NE(t0, t1);
  EXPECT_EQ(t0, t2);  // Epochs alternate: reuse after two syncs.
}

TEST(Bsp, RejectsTagOutsideBudget) {
  Cluster c(relaxed(2));
  BspSession bsp(c, 10);
  EXPECT_THROW((void)bsp.tag(10), std::invalid_argument);
  EXPECT_THROW((void)bsp.tag(-1), std::invalid_argument);
  EXPECT_NO_THROW((void)bsp.tag(9));
}

TEST(Bsp, RejectsEpochBeyond16Bits) {
  Cluster c(relaxed(2));
  BspSession bsp(c, 0x9000);  // Two epochs would exceed 16 bits.
  EXPECT_NO_THROW((void)bsp.tag(0));
  bsp.sync();
  EXPECT_THROW((void)bsp.tag(0x8FFF), std::invalid_argument);
}

TEST(Bsp, TagReuseAcrossSuperstepsIsSafe) {
  // The paper's BSP argument: the same user tag can be reused each
  // superstep under unordered semantics, because the epoch disambiguates.
  Cluster c(relaxed(2));
  BspSession bsp(c);

  for (int step = 0; step < 4; ++step) {
    const auto h = bsp.irecv(1, 0, /*user_tag=*/7);
    bsp.send(0, 1, /*user_tag=*/7, static_cast<std::uint64_t>(step));
    bsp.sync();
    const auto r = c.result(h);
    ASSERT_TRUE(r.has_value()) << "step " << step;
    EXPECT_EQ(r->payload, static_cast<std::uint64_t>(step));
  }
}

TEST(Bsp, ManyMessagesPerSuperstep) {
  Cluster c(relaxed(4));
  BspSession bsp(c, 256);
  std::vector<RecvHandle> handles;
  for (int t = 0; t < 64; ++t) {
    for (int n = 1; n < 4; ++n) handles.push_back(bsp.irecv(0, n, t));
  }
  for (int t = 0; t < 64; ++t) {
    for (int n = 1; n < 4; ++n) {
      bsp.send(n, 0, t, static_cast<std::uint64_t>(n * 1000 + t));
    }
  }
  bsp.sync();
  for (const auto& h : handles) EXPECT_TRUE(c.test(h));
}

ClusterConfig lossy_relaxed(int nodes) {
  ClusterConfig cfg = relaxed(nodes);
  cfg.network.seed = 0xB5B;
  cfg.network.jitter_us = 0.3;
  cfg.network.faults.drop_prob = 0.15;
  cfg.network.faults.dup_prob = 0.1;
  cfg.network.faults.corrupt_prob = 0.05;
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 10.0;
  cfg.reliability.max_attempts = 12;
  return cfg;
}

TEST(BspLossy, SuperstepsMatchTheLosslessRun) {
  Cluster ideal(relaxed(4));
  Cluster lossy(lossy_relaxed(4));
  BspSession ideal_bsp(ideal, 256);
  BspSession lossy_bsp(lossy, 256);

  for (int step = 0; step < 3; ++step) {
    std::vector<std::pair<RecvHandle, RecvHandle>> handles;
    for (int t = 0; t < 16; ++t) {
      for (int n = 1; n < 4; ++n) {
        handles.push_back({ideal_bsp.irecv(0, n, t), lossy_bsp.irecv(0, n, t)});
      }
    }
    for (int t = 0; t < 16; ++t) {
      for (int n = 1; n < 4; ++n) {
        const auto payload = static_cast<std::uint64_t>(step * 10000 + n * 100 + t);
        ideal_bsp.send(n, 0, t, payload);
        lossy_bsp.send(n, 0, t, payload);
      }
    }
    ideal_bsp.sync();
    lossy_bsp.sync();
    EXPECT_EQ(lossy_bsp.losses_last_sync(), 0u) << "step " << step;
    for (const auto& [hi, hl] : handles) {
      const auto ri = ideal.result(hi);
      const auto rl = lossy.result(hl);
      ASSERT_TRUE(ri.has_value());
      ASSERT_TRUE(rl.has_value());
      EXPECT_EQ(rl->payload, ri->payload);
      EXPECT_EQ(rl->src, ri->src);
    }
  }
}

TEST(BspLossy, FailOnLossTurnsDroppedMessagesIntoASuperstepError) {
  ClusterConfig cfg = relaxed(2);
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 5.0;
  cfg.reliability.max_attempts = 2;
  cfg.network.faults.script = [](const Packet& p) {
    return WireFault{.drop = p.kind == PacketKind::kData};
  };
  Cluster c(cfg);
  BspSession bsp(c);
  bsp.fail_on_loss(true);
  const auto h = bsp.irecv(1, 0, 3);
  bsp.send(0, 1, 3, 42);
  EXPECT_THROW(bsp.sync(), std::runtime_error);
  EXPECT_EQ(bsp.losses_last_sync(), 1u);
  EXPECT_FALSE(c.result(h).has_value());
}

TEST(BspLossy, WithoutFailOnLossTheLossIsReportedNotThrown) {
  ClusterConfig cfg = relaxed(2);
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 5.0;
  cfg.reliability.max_attempts = 2;
  cfg.network.faults.script = [](const Packet& p) {
    return WireFault{.drop = p.kind == PacketKind::kData};
  };
  Cluster c(cfg);
  BspSession bsp(c);
  (void)bsp.irecv(1, 0, 3);
  bsp.send(0, 1, 3, 42);
  EXPECT_NO_THROW(bsp.sync());
  EXPECT_EQ(bsp.losses_last_sync(), 1u);
  EXPECT_EQ(c.delivery_failures().size(), 1u);
}

}  // namespace
}  // namespace simtmsg::runtime

// Chaos differential-fuzz wall: random {fault schedule x semantics row x
// thread count x traffic pattern} configurations run on a faulted cluster
// and are checked against a fault-free oracle cluster running the same
// traffic.  The invariant (docs/faults.md):
//
//   every receive either completes with exactly the oracle's payload, or
//   its message appears in delivery_failures() — never a hang, crash, or
//   silent loss or corruption.
//
// Note the protocol is at-least-once: a message can be delivered AND
// reported failed (every ack lost until the sender gave up), so a completed
// receive with a recorded failure is legal; an incomplete receive without a
// recorded failure is not.
//
// Every iteration derives its own seed, printed on failure with a replay
// recipe:
//
//   SIMTMSG_FUZZ_SEED=<seed> SIMTMSG_CHAOS_ITERS=1 ./test_chaos
//
// SIMTMSG_CHAOS_ITERS (default 200) scales the sweep — CI nightlies crank
// it up; the default keeps the suite in tier-1 budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "matching/semantics.hpp"
#include "runtime/endpoint.hpp"
#include "runtime/reliability.hpp"
#include "runtime/star_forest.hpp"

namespace simtmsg::runtime {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(v, &end, 10);
  return end == v ? fallback : parsed;
}

std::uint64_t chaos_base_seed() { return env_u64("SIMTMSG_FUZZ_SEED", 0xC4A05u); }
std::uint64_t chaos_iterations() { return env_u64("SIMTMSG_CHAOS_ITERS", 200); }

std::string replay_hint(std::uint64_t seed) {
  return "replay: SIMTMSG_FUZZ_SEED=" + std::to_string(seed) +
         " SIMTMSG_CHAOS_ITERS=1 ./test_chaos";
}

template <typename Rng, typename T>
T pick(Rng& rng, std::initializer_list<T> choices) {
  std::uniform_int_distribution<std::size_t> d(0, choices.size() - 1);
  return *(choices.begin() + static_cast<std::ptrdiff_t>(d(rng)));
}

/// One message of the random traffic pattern.  Tags are globally unique, so
/// each receive pairs with exactly one send no matter how faults and jitter
/// reorder arrivals — the pairing (and thus the oracle comparison) is
/// deterministic across matchers, semantics rows, and thread counts.
struct Flow {
  int from;
  int to;
  matching::Tag tag;
  std::uint64_t payload;
};

struct ChaosShape {
  int nodes;
  int threads;
  matching::SemanticsConfig semantics;
  NetworkConfig network;
  ReliabilityConfig reliability;
  std::vector<Flow> flows;
};

template <typename Rng>
ChaosShape random_shape(Rng& rng, std::uint64_t seed) {
  ChaosShape s;
  s.nodes = pick(rng, {2, 3, 4});
  s.threads = pick(rng, {1, 2, 8});

  const auto rows = matching::table2_rows();
  s.semantics = rows[std::uniform_int_distribution<std::size_t>(
      0, rows.size() - 1)(rng)];

  s.network.seed = seed ^ 0xFAB51Cull;
  s.network.latency_us = 1.3;
  s.network.jitter_us = pick(rng, {0.0, 0.3});
  s.network.faults.drop_prob = pick(rng, {0.0, 0.05, 0.2});
  s.network.faults.dup_prob = pick(rng, {0.0, 0.05, 0.2});
  s.network.faults.corrupt_prob = pick(rng, {0.0, 0.05, 0.1});
  s.network.faults.delay_spike_prob = pick(rng, {0.0, 0.1});
  s.network.faults.delay_spike_us = 25.0;
  // Pair reorder only when the semantics dropped the ordering guarantee —
  // with it on, the reliability layer is what restores order, and that path
  // is exercised by jitter + retransmission races anyway.
  s.network.faults.allow_pair_reorder = !s.semantics.ordering && pick(rng, {true, false});

  s.reliability.enabled = true;
  s.reliability.timeout_us = 10.0;
  s.reliability.backoff = 2.0;
  // Mostly generous caps (recovery must succeed); sometimes tight ones to
  // exercise the typed-failure path.
  s.reliability.max_attempts = pick(rng, {12, 12, 12, 2});

  const int messages = 1 + static_cast<int>(
      std::uniform_int_distribution<std::uint32_t>(0, 39)(rng));
  std::uniform_int_distribution<int> node_pick(0, s.nodes - 1);
  for (int j = 0; j < messages; ++j) {
    Flow f;
    f.from = node_pick(rng);
    do {
      f.to = node_pick(rng);
    } while (f.to == f.from);
    f.tag = static_cast<matching::Tag>(j);  // Globally unique.
    f.payload = std::uniform_int_distribution<std::uint64_t>()(rng);
    s.flows.push_back(f);
  }
  return s;
}

/// Run the traffic on one cluster: pre-post every receive, fire every send,
/// drain to quiescence, and collect each flow's completion (if any).
std::vector<std::optional<RecvResult>> run_traffic(Cluster& cluster,
                                                   const std::vector<Flow>& flows) {
  std::vector<RecvHandle> handles;
  handles.reserve(flows.size());
  for (const Flow& f : flows) handles.push_back(cluster.irecv(f.to, f.from, f.tag));
  for (const Flow& f : flows) cluster.send(f.from, f.to, f.tag, f.payload);
  cluster.run_until_quiescent();
  std::vector<std::optional<RecvResult>> out;
  out.reserve(flows.size());
  for (const RecvHandle& h : handles) out.push_back(cluster.result(h));
  return out;
}

ClusterConfig config_for(const ChaosShape& s, bool faulted) {
  ClusterConfig cfg;
  cfg.nodes = s.nodes;
  cfg.semantics = s.semantics;
  cfg.policy = simt::ExecutionPolicy{s.threads};
  cfg.network = s.network;
  if (!faulted) {
    cfg.network.faults = FaultModel{};  // The ideal lossless wire.
  }
  cfg.reliability = s.reliability;
  return cfg;
}

std::string describe(const ChaosShape& s, std::uint64_t seed) {
  return matching::describe(s.semantics) + " nodes=" + std::to_string(s.nodes) +
         " threads=" + std::to_string(s.threads) +
         " flows=" + std::to_string(s.flows.size()) +
         " drop=" + std::to_string(s.network.faults.drop_prob) +
         " dup=" + std::to_string(s.network.faults.dup_prob) +
         " corrupt=" + std::to_string(s.network.faults.corrupt_prob) +
         " spike=" + std::to_string(s.network.faults.delay_spike_prob) +
         " max_attempts=" + std::to_string(s.reliability.max_attempts) + "\n" +
         replay_hint(seed);
}

TEST(ChaosFuzz, FaultedClusterMatchesFaultFreeOracleOrReportsTheLoss) {
  const std::uint64_t base = chaos_base_seed();
  const std::uint64_t iters = chaos_iterations();

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + i;
    std::mt19937_64 rng(seed);
    const ChaosShape shape = random_shape(rng, seed);
    const std::string where = describe(shape, seed);

    Cluster oracle(config_for(shape, /*faulted=*/false));
    const auto expected = run_traffic(oracle, shape.flows);
    ASSERT_TRUE(oracle.delivery_failures().empty()) << where;

    Cluster faulted(config_for(shape, /*faulted=*/true));
    const auto got = run_traffic(faulted, shape.flows);

    // Index delivery failures by (from, to, tag) — tags are unique, so this
    // identifies the flow.
    std::map<std::pair<std::pair<int, int>, matching::Tag>, int> failed;
    for (const DeliveryFailure& f : faulted.delivery_failures()) {
      ++failed[{{f.from, f.to}, f.env.tag}];
    }

    for (std::size_t j = 0; j < shape.flows.size(); ++j) {
      const Flow& f = shape.flows[j];
      ASSERT_TRUE(expected[j].has_value()) << where;
      if (got[j].has_value()) {
        // Delivered: must be bit-exact against the oracle (checksums keep
        // corrupted copies out; unique tags pin the pairing).
        EXPECT_EQ(got[j]->payload, expected[j]->payload) << where;
        EXPECT_EQ(got[j]->src, expected[j]->src) << where;
        EXPECT_EQ(got[j]->tag, expected[j]->tag) << where;
      } else {
        // Undelivered: never silent — the flow must be in the failure list.
        const auto key = std::pair{std::pair{f.from, f.to}, f.tag};
        EXPECT_GT(failed[key], 0) << "silent loss of flow " << j << " " << where;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }

    // A generous retry cap over this fault mix must always recover: any
    // failure then indicates a protocol bug, not bad luck.
    if (shape.reliability.max_attempts >= 12 &&
        shape.network.faults.drop_prob <= 0.2 &&
        shape.network.faults.corrupt_prob <= 0.1) {
      EXPECT_TRUE(faulted.delivery_failures().empty())
          << faulted.delivery_failures().size() << " failures under a 12-attempt cap "
          << where;
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse-traffic leg: random star forests (docs/collectives.md) with
// Table I degrees, driven in partial-failure mode on a faulted cluster and
// compared edge-by-edge against a fault-free StarForest oracle.

struct SfShape {
  int nodes;
  int threads;
  int degree;
  matching::SemanticsConfig semantics;
  NetworkConfig network;
  ReliabilityConfig reliability;
  std::vector<SfEdge> edges;
};

template <typename Rng>
SfShape random_sf_shape(Rng& rng, std::uint64_t seed) {
  SfShape s;
  s.nodes = pick(rng, {6, 9, 12});
  s.threads = pick(rng, {1, 8});
  s.degree = pick(rng, {4, 13, 23, 79});  // Table I neighborhood sizes.

  const auto rows = matching::table2_rows();
  s.semantics = rows[std::uniform_int_distribution<std::size_t>(
      0, rows.size() - 1)(rng)];

  s.network.seed = seed ^ 0x5FA57ull;
  s.network.latency_us = 1.3;
  s.network.jitter_us = pick(rng, {0.0, 0.3});
  s.network.faults.drop_prob = pick(rng, {0.0, 0.05, 0.2});
  s.network.faults.dup_prob = pick(rng, {0.0, 0.1});
  s.network.faults.corrupt_prob = pick(rng, {0.0, 0.05});
  s.network.faults.allow_pair_reorder = !s.semantics.ordering && pick(rng, {true, false});

  s.reliability.enabled = true;
  s.reliability.timeout_us = 10.0;
  s.reliability.backoff = 2.0;
  s.reliability.max_attempts = pick(rng, {12, 12, 12, 2});

  // Every node roots `degree` edges to random peers; self edges (local
  // data movement) are allowed.  Slots are globally unique per edge, so
  // each edge's outcome is independently checkable under partial failure.
  std::uniform_int_distribution<int> node_pick(0, s.nodes - 1);
  std::int32_t slot = 0;
  for (int n = 0; n < s.nodes; ++n) {
    for (int k = 0; k < s.degree; ++k) {
      s.edges.push_back({.root = n, .root_slot = slot, .leaf = node_pick(rng),
                         .leaf_slot = slot});
      ++slot;
    }
  }
  return s;
}

ClusterConfig sf_config_for(const SfShape& s, bool faulted) {
  ClusterConfig cfg;
  cfg.nodes = s.nodes;
  cfg.semantics = s.semantics;
  cfg.policy = simt::ExecutionPolicy{s.threads};
  cfg.network = s.network;
  if (!faulted) cfg.network.faults = FaultModel{};
  cfg.reliability = s.reliability;
  return cfg;
}

std::string describe_sf(const SfShape& s, std::uint64_t seed) {
  return matching::describe(s.semantics) + " nodes=" + std::to_string(s.nodes) +
         " degree=" + std::to_string(s.degree) +
         " threads=" + std::to_string(s.threads) +
         " drop=" + std::to_string(s.network.faults.drop_prob) +
         " dup=" + std::to_string(s.network.faults.dup_prob) +
         " corrupt=" + std::to_string(s.network.faults.corrupt_prob) +
         " max_attempts=" + std::to_string(s.reliability.max_attempts) + "\n" +
         replay_hint(seed);
}

/// Deterministic slot data shared by both clusters.
std::uint64_t sf_value(int node, std::int32_t slot) {
  return 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(node + 1) ^
         static_cast<std::uint64_t>(slot);
}

/// One bcast + one reduce; returns the per-(node, slot) stores and the
/// failed edge set of each op.
struct SfOutcome {
  std::map<std::pair<int, std::int32_t>, std::uint64_t> bcast;
  std::map<std::pair<int, std::int32_t>, std::uint64_t> reduce;
  std::vector<int> bcast_failed;
  std::vector<int> reduce_failed;
};

SfOutcome run_sf(Cluster& cluster, const std::vector<SfEdge>& edges) {
  StarForestConfig sf_cfg;
  sf_cfg.on_incomplete = StarForestConfig::OnIncomplete::kPartial;
  StarForest sf(cluster, edges, sf_cfg);
  SfOutcome out;
  sf.bcast([](int n, std::int32_t s) { return sf_value(n, s); },
           [&](int n, std::int32_t s, std::uint64_t v) { out.bcast[{n, s}] = v; });
  out.bcast_failed.assign(sf.last_failures().begin(), sf.last_failures().end());
  sf.reduce([](int n, std::int32_t s) { return sf_value(n, s); },
            [](int n, std::int32_t s) { return sf_value(n, s); },
            [&](int n, std::int32_t s, std::uint64_t v) { out.reduce[{n, s}] = v; },
            [](std::uint64_t a, std::uint64_t b) { return a * 1000003ull + b; });
  out.reduce_failed.assign(sf.last_failures().begin(), sf.last_failures().end());
  return out;
}

TEST(ChaosFuzz, SparseForestMatchesOracleOrRecordsFailedEdges) {
  const std::uint64_t base = chaos_base_seed();
  // Forests are much denser than the point-to-point flows above (up to 12
  // nodes x degree 79), so a slice of the iteration budget covers them.
  const std::uint64_t iters = std::max<std::uint64_t>(1, chaos_iterations() / 10);

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + 0x5F0Fu + i;
    std::mt19937_64 rng(seed);
    const SfShape shape = random_sf_shape(rng, seed);
    const std::string where = describe_sf(shape, seed);

    Cluster oracle_cluster(sf_config_for(shape, /*faulted=*/false));
    const SfOutcome oracle = run_sf(oracle_cluster, shape.edges);
    ASSERT_TRUE(oracle.bcast_failed.empty() && oracle.reduce_failed.empty()) << where;
    ASSERT_TRUE(oracle_cluster.delivery_failures().empty()) << where;

    Cluster faulted_cluster(sf_config_for(shape, /*faulted=*/true));
    const SfOutcome got = run_sf(faulted_cluster, shape.edges);

    const auto check_op = [&](const char* op, const auto& oracle_stores,
                              const auto& got_stores, const std::vector<int>& failed,
                              const auto key_of) {
      std::set<int> failed_set(failed.begin(), failed.end());
      for (std::size_t e = 0; e < shape.edges.size(); ++e) {
        const auto key = key_of(shape.edges[e]);
        const auto it = got_stores.find(key);
        if (it != got_stores.end()) {
          // Stored: must be bit-exact against the fault-free oracle.
          EXPECT_EQ(it->second, oracle_stores.at(key))
              << op << " edge " << e << " " << where;
        } else {
          // Untouched: never silent — the edge must be recorded as failed.
          EXPECT_TRUE(failed_set.contains(static_cast<int>(e)))
              << op << " silently skipped edge " << e << " " << where;
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    };
    check_op("bcast", oracle.bcast, got.bcast, got.bcast_failed,
             [](const SfEdge& e) { return std::pair{e.leaf, e.leaf_slot}; });
    check_op("reduce", oracle.reduce, got.reduce, got.reduce_failed,
             [](const SfEdge& e) { return std::pair{e.root, e.root_slot}; });

    // A generous retry cap over this fault mix must always recover.
    if (shape.reliability.max_attempts >= 12) {
      EXPECT_TRUE(got.bcast_failed.empty() && got.reduce_failed.empty())
          << got.bcast_failed.size() << "+" << got.reduce_failed.size()
          << " failed edges under a 12-attempt cap " << where;
    }
  }
}

TEST(ChaosFuzz, FaultScheduleAndTelemetryAreThreadCountInvariant) {
  const std::uint64_t base = chaos_base_seed();
  // A slice of the sweep re-run across thread counts: the full snapshot
  // (fault counters, retransmit counters, histograms, matcher totals) must
  // serialize byte-identically — the PR 2 invariant extended to chaos.
  const std::uint64_t iters = std::max<std::uint64_t>(1, chaos_iterations() / 10);

  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base + 0x7E1Eu + i;
    std::mt19937_64 rng(seed);
    ChaosShape shape = random_shape(rng, seed);
    const std::string where = describe(shape, seed);

    std::string baseline;
    for (const int threads : {1, 2, 8}) {
      shape.threads = threads;
      Cluster cluster(config_for(shape, /*faulted=*/true));
      (void)run_traffic(cluster, shape.flows);
      const std::string json = cluster.snapshot().to_json().dump();
      if (threads == 1) {
        baseline = json;
      } else {
        EXPECT_EQ(json, baseline) << "threads=" << threads << " " << where;
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace simtmsg::runtime

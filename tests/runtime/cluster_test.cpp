#include "runtime/endpoint.hpp"

#include <gtest/gtest.h>

namespace simtmsg::runtime {
namespace {

// Every cluster test runs under both scheduler policies (the equivalence
// wall: kEventDriven must be observationally identical to the seed's
// lockstep loop).  Tests asserting *scheduler-specific* behavior live in
// scheduler_test.cpp.
class ClusterPolicyTest : public ::testing::TestWithParam<SchedulerPolicy> {
 protected:
  ClusterConfig nodes_cfg(int n) const {
    ClusterConfig cfg;
    cfg.nodes = n;
    cfg.scheduler = GetParam();
    return cfg;
  }
  ClusterConfig two_nodes() const { return nodes_cfg(2); }
};

INSTANTIATE_TEST_SUITE_P(
    Policies, ClusterPolicyTest,
    ::testing::Values(SchedulerPolicy::kLegacyLockstep, SchedulerPolicy::kEventDriven),
    [](const auto& info) {
      return info.param == SchedulerPolicy::kLegacyLockstep ? "Lockstep" : "EventDriven";
    });

TEST_P(ClusterPolicyTest, SendThenRecvCompletes) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 7);
  c.send(0, 1, 7, 0xBEEF);
  const auto r = c.wait(h);
  EXPECT_EQ(r.payload, 0xBEEFu);
  EXPECT_EQ(r.src, 0);
  EXPECT_EQ(r.tag, 7);
}

TEST_P(ClusterPolicyTest, RecvBeforeSendAlsoCompletes) {
  Cluster c(two_nodes());
  c.send(0, 1, 3, 42);
  const auto h = c.irecv(1, 0, 3);
  EXPECT_EQ(c.wait(h).payload, 42u);
}

TEST_P(ClusterPolicyTest, TestIsNonBlocking) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 1);
  EXPECT_FALSE(c.test(h));
  c.send(0, 1, 1, 5);
  c.run_until_quiescent();
  EXPECT_TRUE(c.test(h));
  EXPECT_EQ(c.result(h)->payload, 5u);
}

TEST_P(ClusterPolicyTest, WildcardRecvResolvesConcreteSource) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, matching::kAnySource, matching::kAnyTag);
  c.send(0, 1, 9, 1);
  const auto r = c.wait(h);
  EXPECT_EQ(r.src, 0);
  EXPECT_EQ(r.tag, 9);
}

TEST_P(ClusterPolicyTest, OrderingBetweenSamePair) {
  // MPI guarantee: same-pair same-tag messages match posted receives in
  // send order.
  Cluster c(two_nodes());
  const auto h1 = c.irecv(1, 0, 4);
  const auto h2 = c.irecv(1, 0, 4);
  c.send(0, 1, 4, 111);
  c.send(0, 1, 4, 222);
  EXPECT_EQ(c.wait(h1).payload, 111u);
  EXPECT_EQ(c.wait(h2).payload, 222u);
}

TEST_P(ClusterPolicyTest, DeadlockIsDetected) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 5);
  // No send: the wait must fail rather than spin forever.
  EXPECT_THROW((void)c.wait(h), std::runtime_error);
}

TEST_P(ClusterPolicyTest, WrongTagDoesNotMatch) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 5);
  c.send(0, 1, 6, 1);
  EXPECT_THROW((void)c.wait(h), std::runtime_error);
}

TEST_P(ClusterPolicyTest, WildcardsRejectedWhenProhibited) {
  ClusterConfig cfg = two_nodes();
  cfg.semantics.wildcards = false;
  cfg.semantics.partitions = 4;
  Cluster c(cfg);
  EXPECT_THROW((void)c.irecv(1, matching::kAnySource, 0), std::invalid_argument);
  EXPECT_NO_THROW((void)c.irecv(1, 0, 0));
}

TEST_P(ClusterPolicyTest, InvalidConfigRejected) {
  ClusterConfig bad = two_nodes();
  bad.semantics.partitions = 4;  // Partitioning with wildcards: invalid.
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  ClusterConfig none = two_nodes();
  none.nodes = 0;
  EXPECT_THROW(Cluster{none}, std::invalid_argument);
}

TEST_P(ClusterPolicyTest, BarrierDetectsUnexpectedUnderStrictSemantics) {
  ClusterConfig cfg = two_nodes();
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  cfg.semantics.unexpected = false;
  cfg.semantics.partitions = 2;
  Cluster c(cfg);
  c.send(0, 1, 3, 1);  // No receive posted: illegal under these semantics.
  EXPECT_THROW(c.barrier(), std::runtime_error);
}

TEST_P(ClusterPolicyTest, BarrierPassesWhenAllPrePosted) {
  ClusterConfig cfg = two_nodes();
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  cfg.semantics.unexpected = false;
  cfg.semantics.partitions = 2;
  Cluster c(cfg);
  const auto h = c.irecv(1, 0, 3);
  c.send(0, 1, 3, 77);
  EXPECT_NO_THROW(c.barrier());
  EXPECT_EQ(c.result(h)->payload, 77u);
}

TEST_P(ClusterPolicyTest, HashSemanticsDeliverAllPayloads) {
  ClusterConfig cfg = nodes_cfg(4);
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  cfg.semantics.partitions = 4;
  Cluster c(cfg);

  std::vector<RecvHandle> handles;
  for (int src = 1; src < 4; ++src) {
    for (int tag = 0; tag < 16; ++tag) handles.push_back(c.irecv(0, src, tag));
  }
  for (int src = 1; src < 4; ++src) {
    for (int tag = 0; tag < 16; ++tag) {
      c.send(src, 0, tag, static_cast<std::uint64_t>(src * 100 + tag));
    }
  }
  c.run_until_quiescent();
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto r = c.result(handles[i]);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->payload, static_cast<std::uint64_t>(r->src * 100 + r->tag));
  }
}

TEST_P(ClusterPolicyTest, StatsAccumulate) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 0);
  c.send(0, 1, 0, 1);
  (void)c.wait(h);
  const auto s = c.stats();
  EXPECT_EQ(s.messages_sent, 1u);
  EXPECT_EQ(s.receives_posted, 1u);
  EXPECT_EQ(s.matches, 1u);
  EXPECT_GT(s.matching_seconds, 0.0);
  EXPECT_GT(s.virtual_time_us, 0.0);
}

TEST_P(ClusterPolicyTest, ManyToOneFanIn) {
  Cluster c(nodes_cfg(8));
  std::vector<RecvHandle> handles;
  for (int src = 1; src < 8; ++src) handles.push_back(c.irecv(0, src, 1));
  for (int src = 1; src < 8; ++src) c.send(src, 0, 1, static_cast<std::uint64_t>(src));
  c.run_until_quiescent();
  for (int src = 1; src < 8; ++src) {
    EXPECT_EQ(c.result(handles[static_cast<std::size_t>(src - 1)])->payload,
              static_cast<std::uint64_t>(src));
  }
}

TEST_P(ClusterPolicyTest, VirtualTimeAdvancesWithTraffic) {
  Cluster c(two_nodes());
  EXPECT_EQ(c.now_us(), 0.0);
  const auto h = c.irecv(1, 0, 0);
  c.send(0, 1, 0, 1);
  (void)c.wait(h);
  EXPECT_GE(c.now_us(), c.stats().virtual_time_us);
  EXPECT_GT(c.now_us(), 1.0);  // At least the network latency.
}


TEST_P(ClusterPolicyTest, CommunicatorsIsolateTraffic) {
  // Same {src, tag} on two communicators: each receive must take the
  // message from its own communicator (the progress engine's MatchEngine
  // splits per comm).
  Cluster c(two_nodes());
  const auto h_a = c.irecv(1, 0, 5, /*comm=*/1);
  const auto h_b = c.irecv(1, 0, 5, /*comm=*/2);
  c.send(0, 1, 5, /*payload=*/222, /*comm=*/2);
  c.send(0, 1, 5, /*payload=*/111, /*comm=*/1);
  c.run_until_quiescent();
  EXPECT_EQ(c.result(h_a)->payload, 111u);
  EXPECT_EQ(c.result(h_b)->payload, 222u);
}

TEST_P(ClusterPolicyTest, JitteredNetworkStillDeliversEverything) {
  ClusterConfig cfg = nodes_cfg(4);
  cfg.network.jitter_us = 2.0;  // Cross-pair reordering.
  Cluster c(cfg);
  std::vector<RecvHandle> handles;
  for (int src = 1; src < 4; ++src) {
    for (int t = 0; t < 8; ++t) handles.push_back(c.irecv(0, src, t));
  }
  for (int src = 1; src < 4; ++src) {
    for (int t = 0; t < 8; ++t) {
      c.send(src, 0, t, static_cast<std::uint64_t>(src * 10 + t));
    }
  }
  c.run_until_quiescent();
  for (const auto& h : handles) {
    const auto r = c.result(h);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->payload, static_cast<std::uint64_t>(r->src * 10 + r->tag));
  }
}

TEST_P(ClusterPolicyTest, SendRejectsBadArguments) {
  Cluster c(two_nodes());
  EXPECT_THROW(c.send(-1, 1, 0, 0), std::out_of_range);
  EXPECT_THROW(c.send(0, 5, 0, 0), std::out_of_range);
  EXPECT_THROW(c.send(0, 1, matching::kAnyTag, 0), std::invalid_argument);
}

TEST_P(ClusterPolicyTest, WaitReturnsImmediatelyWhenAlreadyComplete) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 2);
  c.send(0, 1, 2, 9);
  c.run_until_quiescent();
  EXPECT_EQ(c.wait(h).payload, 9u);  // No further progress needed.
}

TEST_P(ClusterPolicyTest, DeadlockErrorNamesTheStuckHandle) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 5, /*comm=*/3);
  try {
    (void)c.wait(h);
    FAIL() << "wait() should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node 1"), std::string::npos) << what;
    EXPECT_NE(what.find("handle " + std::to_string(h.id)), std::string::npos) << what;
    EXPECT_NE(what.find("src=0"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
    EXPECT_NE(what.find("comm=3"), std::string::npos) << what;
    // The scheduler's view: receives posted, nothing inbound.
    EXPECT_NE(what.find("scheduler view: starved"), std::string::npos) << what;
  }
}

TEST_P(ClusterPolicyTest, ShardsPerNodeZeroRejected) {
  ClusterConfig bad = two_nodes();
  bad.shards_per_node = 0;
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
}

TEST_P(ClusterPolicyTest, ShardedNodesDeliverIdenticalResultsAndHeadlineStats) {
  // shards_per_node partitions each node's matching by (comm, src); every
  // receive must resolve to the same payload, and the headline counters
  // must agree with the single-shard run (matching_seconds may differ: the
  // modelled time is the slowest shard's, not the sum).
  const auto run = [this](int shards) {
    ClusterConfig cfg = nodes_cfg(4);
    cfg.shards_per_node = shards;
    Cluster c(cfg);
    std::vector<RecvHandle> handles;
    for (int src = 1; src < 4; ++src) {
      for (int tag = 0; tag < 12; ++tag) handles.push_back(c.irecv(0, src, tag));
    }
    for (int src = 1; src < 4; ++src) {
      for (int tag = 0; tag < 12; ++tag) {
        c.send(src, 0, tag, static_cast<std::uint64_t>(src * 100 + tag));
      }
    }
    c.run_until_quiescent();
    std::vector<std::uint64_t> payloads;
    for (const auto& h : handles) {
      const auto r = c.result(h);
      EXPECT_TRUE(r.has_value()) << "shards=" << shards;
      payloads.push_back(r ? r->payload : 0);
    }
    const auto s = c.stats();
    return std::make_tuple(payloads, s.messages_sent, s.receives_posted, s.matches);
  };
  const auto base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(8), base);
}

TEST_P(ClusterPolicyTest, ShardedWildcardRecvStillResolves) {
  // An MPI_ANY_SOURCE receive on a sharded node takes the serialized
  // all-shard path; delivery must be unaffected.
  ClusterConfig cfg = two_nodes();
  cfg.shards_per_node = 4;
  Cluster c(cfg);
  const auto h = c.irecv(1, matching::kAnySource, matching::kAnyTag);
  c.send(0, 1, 9, 1);
  const auto r = c.wait(h);
  EXPECT_EQ(r.src, 0);
  EXPECT_EQ(r.tag, 9);
}

TEST_P(ClusterPolicyTest, SnapshotExportsHeadlineAndPerNodeEntries) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 0);
  c.send(0, 1, 0, 1);
  (void)c.wait(h);
  const auto r = c.snapshot();
  EXPECT_EQ(r.counters.at("runtime.cluster.messages_sent"), 1u);
  EXPECT_EQ(r.counters.at("runtime.cluster.receives_posted"), 1u);
  EXPECT_EQ(r.counters.at("runtime.cluster.delivery_failures"), 0u);
  EXPECT_GT(r.gauges.at("runtime.cluster.virtual_time_us"), 0.0);
  ASSERT_TRUE(r.gauges.contains("runtime.node.0.matching_seconds"));
  ASSERT_TRUE(r.gauges.contains("runtime.node.1.matching_seconds"));
  // Node 1 did the matching; node 0 only sent.
  EXPECT_GT(r.gauges.at("runtime.node.1.matching_seconds"), 0.0);
  EXPECT_EQ(r.gauges.at("runtime.node.0.matching_seconds"), 0.0);

  // stats() is a thin view over the same report: the fields must agree.
  const auto s = c.stats();
  EXPECT_EQ(s.messages_sent, r.counters.at("runtime.cluster.messages_sent"));
  EXPECT_EQ(s.matches, r.matches);
  EXPECT_EQ(s.matching_seconds, r.seconds);
  EXPECT_EQ(s.virtual_time_us, r.gauges.at("runtime.cluster.virtual_time_us"));
}

TEST_P(ClusterPolicyTest, SnapshotExportsSchedulerInstruments) {
  Cluster c(two_nodes());
  const auto h = c.irecv(1, 0, 0);
  c.send(0, 1, 0, 1);
  (void)c.wait(h);
  const auto r = c.snapshot();
  EXPECT_GT(r.counters.at("runtime.scheduler.ticks"), 0u);
  EXPECT_GT(r.counters.at("runtime.scheduler.nodes_stepped"), 0u);
  EXPECT_GT(r.counters.at("runtime.scheduler.wakes"), 0u);
  EXPECT_EQ(r.counters.at("runtime.scheduler.rto_expiries"), 0u);  // Ideal wire.
  EXPECT_GE(r.gauges.at("runtime.scheduler.active_set_peak"), 1.0);
  // Only node 1 ever has matching work: the idle sender is never stepped.
  EXPECT_GT(r.counters.at("runtime.scheduler.idle_steps_skipped"), 0u);
}

}  // namespace
}  // namespace simtmsg::runtime

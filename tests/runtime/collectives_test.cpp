#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace simtmsg::runtime {
namespace {

ClusterConfig nodes_cfg(int n) {
  ClusterConfig cfg;
  cfg.nodes = n;
  return cfg;
}

std::vector<std::uint64_t> iota_contributions(int n) {
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i + 1);
  return v;
}

/// Axes: node count x pattern-table matching x scheduler policy.  Every
/// dense collective must be value-identical across the whole grid.
class CollectivesParam
    : public ::testing::TestWithParam<std::tuple<int, bool, SchedulerPolicy>> {
 protected:
  [[nodiscard]] static int nodes() { return std::get<0>(GetParam()); }

  [[nodiscard]] static ClusterConfig cfg() {
    ClusterConfig c = nodes_cfg(nodes());
    c.semantics.pattern_table = std::get<1>(GetParam());
    c.scheduler = std::get<2>(GetParam());
    return c;
  }
};

std::string collectives_param_name(
    const ::testing::TestParamInfo<std::tuple<int, bool, SchedulerPolicy>>& info) {
  return "p" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_pattern" : "_baseline") +
         (std::get<2>(info.param) == SchedulerPolicy::kEventDriven ? "_event"
                                                                   : "_lockstep");
}

TEST_P(CollectivesParam, BroadcastReachesEveryNode) {
  Cluster c(cfg());
  Collectives coll(c);
  const auto values = coll.broadcast(/*root=*/0, 0xABCD);
  for (const auto v : values) EXPECT_EQ(v, 0xABCDu);
}

TEST_P(CollectivesParam, BroadcastFromNonZeroRoot) {
  const int p = nodes();
  Cluster c(cfg());
  Collectives coll(c);
  const auto values = coll.broadcast(p - 1, 77);
  for (const auto v : values) EXPECT_EQ(v, 77u);
}

TEST_P(CollectivesParam, ReduceSumsEverything) {
  const int p = nodes();
  Cluster c(cfg());
  Collectives coll(c);
  const auto contrib = iota_contributions(p);
  const auto total = coll.reduce_sum(0, contrib);
  EXPECT_EQ(total, static_cast<std::uint64_t>(p) * (p + 1) / 2);
}

TEST_P(CollectivesParam, AllreduceGivesEveryoneTheSum) {
  const int p = nodes();
  Cluster c(cfg());
  Collectives coll(c);
  const auto out = coll.allreduce_sum(iota_contributions(p));
  ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
  for (const auto v : out) EXPECT_EQ(v, static_cast<std::uint64_t>(p) * (p + 1) / 2);
}

TEST_P(CollectivesParam, AllgatherCollectsAllBlocks) {
  const int p = nodes();
  Cluster c(cfg());
  Collectives coll(c);
  const auto out = coll.allgather(iota_contributions(p));
  ASSERT_EQ(out.size(), static_cast<std::size_t>(p));
  for (int n = 0; n < p; ++n) {
    for (int b = 0; b < p; ++b) {
      EXPECT_EQ(out[static_cast<std::size_t>(n)][static_cast<std::size_t>(b)],
                static_cast<std::uint64_t>(b + 1))
          << "node " << n << " block " << b;
    }
  }
}

// Power-of-two and odd node counts (recursive doubling vs reduce+bcast),
// list vs pattern-table matching, both scheduler policies.
INSTANTIATE_TEST_SUITE_P(
    NodeCountsByMatcherBySchedulers, CollectivesParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16), ::testing::Bool(),
                       ::testing::Values(SchedulerPolicy::kLegacyLockstep,
                                         SchedulerPolicy::kEventDriven)),
    collectives_param_name);

TEST(Collectives, AllreduceWithMaxOperator) {
  Cluster c(nodes_cfg(8));
  Collectives coll(c);
  const std::vector<std::uint64_t> contrib = {3, 9, 1, 7, 2, 8, 5, 4};
  const auto out = coll.allreduce(
      contrib, [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  for (const auto v : out) EXPECT_EQ(v, 9u);
}

TEST(Collectives, RecursiveDoublingMessageComplexity) {
  // Power-of-two allreduce: exactly p * log2(p) messages.
  Cluster c(nodes_cfg(8));
  Collectives coll(c);
  (void)coll.allreduce_sum(iota_contributions(8));
  EXPECT_EQ(coll.messages_used(), 8u * 3u);
}

TEST(Collectives, BroadcastMessageComplexity) {
  // Binomial tree: p - 1 messages.
  Cluster c(nodes_cfg(16));
  Collectives coll(c);
  (void)coll.broadcast(0, 1);
  EXPECT_EQ(coll.messages_used(), 15u);
}

TEST(Collectives, WorksUnderRelaxedSemantics) {
  // Collectives must compose with the hash (out-of-order) matching row —
  // the tags are unique per round, which is all the relaxation requires.
  ClusterConfig cfg = nodes_cfg(8);
  cfg.semantics.wildcards = false;
  cfg.semantics.ordering = false;
  cfg.semantics.partitions = 4;
  Cluster c(cfg);
  Collectives coll(c);
  const auto out = coll.allreduce_sum(iota_contributions(8));
  for (const auto v : out) EXPECT_EQ(v, 36u);
  const auto bc = coll.broadcast(3, 123);
  for (const auto v : bc) EXPECT_EQ(v, 123u);
}

TEST(Collectives, RejectsBadArguments) {
  Cluster c(nodes_cfg(4));
  Collectives coll(c);
  EXPECT_THROW((void)coll.broadcast(9, 0), std::out_of_range);
  const std::vector<std::uint64_t> wrong_size = {1, 2};
  EXPECT_THROW((void)coll.reduce_sum(0, wrong_size), std::invalid_argument);
  EXPECT_THROW((void)coll.allreduce_sum(wrong_size), std::invalid_argument);
  EXPECT_THROW((void)coll.allgather(wrong_size), std::invalid_argument);
}

TEST(Collectives, SingleNodeDegenerates) {
  Cluster c(nodes_cfg(1));
  Collectives coll(c);
  EXPECT_EQ(coll.broadcast(0, 5)[0], 5u);
  const std::vector<std::uint64_t> one = {42};
  EXPECT_EQ(coll.reduce_sum(0, one), 42u);
  EXPECT_EQ(coll.allgather(one)[0][0], 42u);
  EXPECT_EQ(coll.messages_used(), 0u);
}

/// A fabric that drops, duplicates, corrupts, and delays — with a retry cap
/// generous enough that the reliability layer always recovers.
ClusterConfig lossy_cfg(int n, std::uint64_t seed) {
  ClusterConfig cfg = nodes_cfg(n);
  cfg.network.seed = seed;
  cfg.network.jitter_us = 0.3;
  cfg.network.faults.drop_prob = 0.15;
  cfg.network.faults.dup_prob = 0.1;
  cfg.network.faults.corrupt_prob = 0.05;
  cfg.network.faults.delay_spike_prob = 0.05;
  cfg.network.faults.delay_spike_us = 20.0;
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 10.0;
  cfg.reliability.max_attempts = 12;
  return cfg;
}

TEST(CollectivesLossy, ResultsMatchTheLosslessRun) {
  for (const int p : {2, 3, 8}) {
    Cluster ideal(nodes_cfg(p));
    Collectives ideal_coll(ideal);
    Cluster lossy(lossy_cfg(p, /*seed=*/0xC0FFEE));
    Collectives lossy_coll(lossy);

    const auto contrib = iota_contributions(p);
    EXPECT_EQ(lossy_coll.broadcast(0, 0xABCD), ideal_coll.broadcast(0, 0xABCD));
    EXPECT_EQ(lossy_coll.reduce_sum(0, contrib), ideal_coll.reduce_sum(0, contrib));
    EXPECT_EQ(lossy_coll.allreduce_sum(contrib), ideal_coll.allreduce_sum(contrib));
    EXPECT_EQ(lossy_coll.allgather(contrib), ideal_coll.allgather(contrib));
    EXPECT_TRUE(lossy.delivery_failures().empty()) << "p=" << p;
  }
}

TEST(CollectivesLossy, RecoveryCostShowsUpInTelemetryNotInResults) {
  Cluster lossy(lossy_cfg(8, /*seed=*/0xC0FFEE));
  Collectives coll(lossy);
  const auto out = coll.allreduce_sum(iota_contributions(8));
  for (const auto v : out) EXPECT_EQ(v, 36u);
  // Same message complexity at the collective layer: retransmissions are
  // the reliability layer's business, not extra collective rounds.
  EXPECT_EQ(coll.messages_used(), 8u * 3u);
}

TEST(CollectivesLossy, DeadLinkFailsTheOperationWithTheFailureAttached) {
  // One direction of one link eats every data packet: the round cannot
  // complete, and the error names the delivery failures instead of hanging.
  ClusterConfig cfg = nodes_cfg(4);
  cfg.reliability.enabled = true;
  cfg.reliability.timeout_us = 5.0;
  cfg.reliability.max_attempts = 2;
  cfg.network.faults.script = [](const Packet& p) {
    return WireFault{.drop = p.kind == PacketKind::kData && p.from == 1 && p.to == 0};
  };
  Cluster c(cfg);
  Collectives coll(c);
  try {
    (void)coll.allreduce_sum(iota_contributions(4));
    FAIL() << "allreduce over a dead link must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("delivery failure"), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(c.delivery_failures().empty());
}

TEST(Collectives, BackToBackOperationsDoNotInterfere) {
  Cluster c(nodes_cfg(4));
  Collectives coll(c);
  for (int i = 0; i < 5; ++i) {
    const auto out = coll.allreduce_sum(iota_contributions(4));
    for (const auto v : out) EXPECT_EQ(v, 10u);
    const auto bc = coll.broadcast(i % 4, static_cast<std::uint64_t>(i));
    for (const auto v : bc) EXPECT_EQ(v, static_cast<std::uint64_t>(i));
  }
}

}  // namespace
}  // namespace simtmsg::runtime
